// Reproduces the paper's running example: isolates the conjunctive query of
// TPC-H Q5 (Example 1), prints its hypergraph (Fig. 1), computes its
// hypertree width, and shows the q-hypertree decomposition the optimizer
// evaluates (Section 4), with and without Procedure Optimize.
//
//   $ ./decompose_tpch

#include <cstdio>

#include "api/hybrid_optimizer.h"
#include "cq/hypergraph_builder.h"
#include "decomp/det_k_decomp.h"
#include "decomp/qhd.h"
#include "hypergraph/gyo.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

int main() {
  using namespace htqo;

  Catalog catalog;
  PopulateTpch(TpchConfig{0.005, 42}, &catalog);
  StatisticsRegistry stats;
  stats.AnalyzeAll(catalog);

  std::string sql = TpchQ5("ASIA", "1994-01-01");
  std::printf("TPC-H Q5:\n%s\n\n", sql.c_str());

  HybridOptimizer optimizer(&catalog, &stats);
  auto rq = optimizer.Resolve(sql, TidMode::kNone);
  if (!rq.ok()) {
    std::printf("isolation failed: %s\n", rq.status().message().c_str());
    return 1;
  }

  std::printf("Conjunctive query CQ(Q5) (Example 1):\n  %s\n\n",
              rq->cq.ToString().c_str());

  Hypergraph h = BuildHypergraph(rq->cq);
  std::printf("Hypergraph H(Q5) (Fig. 1):\n%s\n", h.ToString().c_str());
  std::printf("acyclic: %s\n", IsAcyclic(h) ? "yes" : "no");
  auto width = ComputeHypertreeWidth(h, 4);
  std::printf("hypertree width: %zu\n\n", width.ok() ? *width : 0);

  Bitset out = OutputVarsBitset(rq->cq);
  Estimator estimator(&stats);
  StatsDecompositionCostModel model(h, BuildEdgeStats(rq->cq, estimator));

  auto plain = QHypertreeDecomp(h, out, model, QhdOptions{4, false});
  if (plain.ok()) {
    std::printf("q-hypertree decomposition (before Optimize), width %zu:\n%s\n",
                plain->width, plain->hd.ToString(h).c_str());
  }
  auto optimized = QHypertreeDecomp(h, out, model, QhdOptions{4, true});
  if (optimized.ok()) {
    std::printf("after Procedure Optimize (%zu lambda entries pruned):\n%s\n",
                optimized->pruned, optimized->hd.ToString(h).c_str());
  }

  // Evaluate and show the answer.
  RunOptions options;
  options.mode = OptimizerMode::kQhdHybrid;
  auto run = optimizer.Run(sql, options);
  if (!run.ok()) {
    std::printf("run failed: %s\n", run.status().message().c_str());
    return 1;
  }
  std::printf("Q5 answer (revenue per ASIA nation, one year of orders):\n%s",
              run->output.ToString(10).c_str());
  return 0;
}

// Stand-alone mode (Section 5): rewrite a query as SQL views following its
// q-hypertree decomposition — the output you would hand to any DBMS — then
// execute the views on our own engine and check they compute the original
// answer.
//
//   $ ./view_rewriter_demo

#include <cstdio>

#include "api/hybrid_optimizer.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

int main() {
  using namespace htqo;

  Catalog catalog;
  PopulateTpch(TpchConfig{0.002, 42}, &catalog);
  StatisticsRegistry stats;
  stats.AnalyzeAll(catalog);
  HybridOptimizer optimizer(&catalog, &stats);

  std::string sql = TpchQ5("ASIA", "1994-01-01");
  std::printf("Original query:\n%s\n\n", sql.c_str());

  auto rewritten = optimizer.RewriteQuery(sql, RunOptions{});
  if (!rewritten.ok()) {
    std::printf("rewrite failed: %s\n", rewritten.status().message().c_str());
    return 1;
  }
  std::printf("Rewritten as %zu views:\n\n%s\n",
              rewritten->view_bodies.size(), rewritten->ToScript().c_str());

  // Execute the view cascade on our engine...
  ExecContext ctx;
  auto via_views = ExecuteRewrittenQuery(*rewritten, catalog, &ctx);
  if (!via_views.ok()) {
    std::printf("view execution failed: %s\n",
                via_views.status().message().c_str());
    return 1;
  }
  // ... and compare against the direct evaluation (same set semantics).
  RunOptions direct;
  direct.mode = OptimizerMode::kDpStatistics;
  direct.tid_mode = TidMode::kNone;
  auto run = optimizer.Run(sql, direct);
  if (!run.ok()) {
    std::printf("direct run failed: %s\n", run.status().message().c_str());
    return 1;
  }
  std::printf("views result (%zu rows) == direct result (%zu rows): %s\n",
              via_views->NumRows(), run->output.NumRows(),
              via_views->SameRowsAs(run->output) ? "yes" : "NO");
  std::printf("%s", via_views->ToString(10).c_str());
  return 0;
}

// Width measures side by side: hypertree width vs treewidth (min-fill
// upper bound) vs degree of cyclicity (hinge trees) vs biconnected-
// component width, across the structured hypergraph zoo — the
// generalization hierarchy the paper's related-work section walks through.
// Hypertree width is never worse than any of the others, and on cycles and
// big atoms it is strictly better.
//
//   $ ./width_zoo

#include <cstdio>
#include <string>
#include <vector>

#include "decomp/biconnected.h"
#include "decomp/det_k_decomp.h"
#include "decomp/hinge.h"
#include "decomp/tree_decomposition.h"
#include "hypergraph/gyo.h"
#include "workload/hypergraph_zoo.h"

int main() {
  using namespace htqo;

  struct Instance {
    std::string name;
    Hypergraph h;
  };
  std::vector<Instance> instances;
  instances.push_back({"line-8", LineHypergraph(8)});
  instances.push_back({"cycle-6", CycleHypergraph(6)});
  instances.push_back({"cycle-10", CycleHypergraph(10)});
  instances.push_back({"clique-5", CliqueHypergraph(5)});
  instances.push_back({"clique-6", CliqueHypergraph(6)});
  instances.push_back({"grid-2x5", GridHypergraph(2, 5)});
  instances.push_back({"grid-3x3", GridHypergraph(3, 3)});
  instances.push_back({"wheel-8", WheelHypergraph(8)});
  instances.push_back({"window-9/3", SlidingWindowCycle(9, 3)});

  std::printf("%-12s %6s %8s %4s %5s %8s %8s\n", "instance", "edges",
              "acyclic", "hw", "tw", "cyc.deg", "bicomp");
  for (const Instance& inst : instances) {
    const Hypergraph& h = inst.h;
    auto hw = ComputeHypertreeWidth(h, 6);
    TreeDecomposition td = MinFillTreeDecomposition(h);
    auto degree = DegreeOfCyclicity(h);
    BiconnectedDecomposition bc = BiconnectedComponents(h);
    std::printf("%-12s %6zu %8s %4s %5zu %8s %8zu\n", inst.name.c_str(),
                h.NumEdges(), IsAcyclic(h) ? "yes" : "no",
                hw.ok() ? std::to_string(*hw).c_str() : ">6",
                td.Width(),
                degree.ok() ? std::to_string(*degree).c_str() : "-",
                bc.Width());
  }

  std::printf(
      "\nReading: hw <= each of the others (hypertree decompositions\n"
      "strongly generalize the older methods); cycles separate hw (2) from\n"
      "the degree of cyclicity (n); cliques and big atoms separate hw from\n"
      "treewidth.\n");
  return 0;
}

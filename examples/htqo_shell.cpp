// Interactive shell: the stand-alone face of the hybrid optimizer. Loads a
// workload, runs SQL under any optimizer mode, and can explain the
// decomposition it used (including Graphviz output).
//
//   $ ./htqo_shell
//   htqo> \load tpch 0.005
//   htqo> \mode qhd-hybrid
//   htqo> SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS r ...;
//   htqo> \help
//
// Also scriptable:  echo '...' | ./htqo_shell

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "api/hybrid_optimizer.h"
#include "cache/decomp_cache.h"
#include "cq/hypergraph_builder.h"
#include "decomp/qhd.h"
#include "obs/flightrec.h"
#include "stats/feedback.h"
#include "storage/csv.h"
#include "workload/synthetic.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

// Ctrl-C cancels the in-flight query through the exact mechanism the query
// server's drain path uses: a shared atomic wired into
// RunOptions::cancel_flag, polled at every governor checkpoint. The handler
// only flips the flag (async-signal-safe); the run unwinds cooperatively
// and surfaces kDeadlineExceeded with a cancellation message.
std::atomic<bool> g_cancel{false};

extern "C" void HandleSigint(int) {
  g_cancel.store(true, std::memory_order_relaxed);
  constexpr char kMsg[] = "\n[cancel requested — finishing at the next "
                          "governor checkpoint; \\quit exits]\n";
  ssize_t ignored = write(STDOUT_FILENO, kMsg, sizeof(kMsg) - 1);
  (void)ignored;
}

namespace {

using namespace htqo;

struct ShellState {
  Catalog catalog;
  StatisticsRegistry stats;
  RunOptions options;
  bool explain = false;
  bool analyze = false;       // EXPLAIN ANALYZE: trace + annotated plan
  std::string trace_path;     // Chrome trace output per query ("" = off)
  // Adaptive loop (\adaptive): mid-query replans armed + every query's
  // trace reconciled into the statistics registry afterwards.
  bool adaptive = false;
};

const struct {
  const char* name;
  OptimizerMode mode;
} kModes[] = {
    {"qhd-hybrid", OptimizerMode::kQhdHybrid},
    {"qhd-structural", OptimizerMode::kQhdStructural},
    {"qhd-no-optimize", OptimizerMode::kQhdNoOptimize},
    {"dp-statistics", OptimizerMode::kDpStatistics},
    {"naive", OptimizerMode::kNaive},
    {"geqo-defaults", OptimizerMode::kGeqoDefaults},
    {"yannakakis", OptimizerMode::kYannakakis},
    {"classic-hd", OptimizerMode::kClassicHd},
    {"tree-decomposition", OptimizerMode::kTreeDecomposition},
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  \\load tpch <scale-factor>          generate the TPC-H database\n"
      "  \\load synthetic <card> <sel> <n>   generate r1..rN(a,b)\n"
      "  \\mode <name>                       pick the optimizer mode\n"
      "  \\width <k>                         decomposition width bound\n"
      "  \\deadline <seconds>                wall-clock deadline (0 = off)\n"
      "  \\budget <nodes>                    search-node budget (0 = off)\n"
      "  \\mem <bytes>                       memory budget + spilling (0 = off)\n"
      "  \\spill <dir>                       spill directory (- = system tmp)\n"
      "  \\threads <n>                       worker lanes (1 = serial)\n"
      "  \\shards <n>                        hash-partition shards (0 = "
      "off)\n"
      "  \\cache [on|off|clear]              plan cache control; no argument\n"
      "                                     prints hit/miss/eviction stats\n"
      "  \\vectorized [on|off]               batch engine (default on); off\n"
      "                                     selects the row-at-a-time path\n"
      "  \\adaptive [on|off]                 adaptive loop: mid-query replans\n"
      "                                     + post-query stats feedback\n"
      "  \\explain                           toggle plan explanation\n"
      "  \\analyze                           toggle EXPLAIN ANALYZE (traced\n"
      "                                     run, per-node rows and times)\n"
      "  \\trace <file.json>                 write a Chrome trace per query\n"
      "                                     (chrome://tracing; - = off)\n"
      "  \\dot <sql>                         print the decomposition as DOT\n"
      "  \\rewrite <sql>                     print the SQL-views rewriting\n"
      "  \\import <name> <path.csv>          load a relation from CSV\n"
      "  \\export <name> <path.csv>          write a relation to CSV\n"
      "  \\relations                         list relations\n"
      "  \\q5 / \\q8                          run the TPC-H queries\n"
      "  \\slow [n]                          slowest queries this session\n"
      "                                     (flight recorder, default 10)\n"
      "  \\help, \\quit\n"
      "modes:");
  for (const auto& m : kModes) std::printf(" %s", m.name);
  std::printf("\nSQL statements end with ';'.\n");
}

void RunSql(ShellState& state, const std::string& sql) {
  HybridOptimizer optimizer(&state.catalog, &state.stats);
  // One tracer per query: \analyze, \trace and the \adaptive feedback loop
  // all need the span tree, and a fresh tracer keeps each query's trace
  // self-contained.
  const bool traced =
      state.analyze || !state.trace_path.empty() || state.adaptive;
  Tracer tracer;
  state.options.trace.tracer = traced ? &tracer : nullptr;
  state.options.trace.parent = 0;
  // Arm Ctrl-C for this run only; a flag left over from an idle-prompt ^C
  // must not kill the next query before it starts.
  g_cancel.store(false, std::memory_order_relaxed);
  state.options.cancel_flag = &g_cancel;
  auto run = optimizer.Run(sql, state.options);
  state.options.cancel_flag = nullptr;
  state.options.trace.tracer = nullptr;
  // Every completed query — success or failure — lands in the flight
  // recorder, the same ring \slow reads and the server dumps on crash.
  FlightRecord rec;
  rec.SetTenant("shell");
  rec.fingerprint = QueryShapeFingerprint(sql);
  rec.status = static_cast<int32_t>(run.ok() ? StatusCode::kOk
                                             : run.status().code());
  if (run.ok()) {
    rec.rows = run->output.NumRows();
    rec.width = static_cast<uint32_t>(run->decomposition_width);
    rec.degradations = static_cast<uint32_t>(run->degradations.size());
    rec.replans = static_cast<uint32_t>(run->replans);
    rec.spill_bytes = run->spill.bytes_written;
    rec.parse_us = static_cast<uint64_t>(run->parse_seconds * 1e6);
    rec.plan_us = static_cast<uint64_t>(run->plan_seconds * 1e6);
    rec.exec_us = static_cast<uint64_t>(run->exec_seconds * 1e6);
    rec.total_us = static_cast<uint64_t>(
        (run->parse_seconds + run->plan_seconds + run->exec_seconds) * 1e6);
  }
  FlightRecorder::Global().Record(rec);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  if (!state.trace_path.empty()) {
    // Exporter I/O failure is the exporter's problem, never the query's.
    Status ts = tracer.WriteChromeTrace(state.trace_path);
    if (ts.ok()) {
      std::printf("trace: %zu spans -> %s\n", tracer.NumSpans(),
                  state.trace_path.c_str());
    } else {
      std::printf("warning: trace export failed: %s\n",
                  ts.ToString().c_str());
    }
  }
  for (const std::string& step : run->degradations) {
    std::printf("degraded: %s\n", step.c_str());
  }
  if (state.explain || state.analyze) {
    std::printf("plan: %s%s\n", run->plan_description.c_str(),
                run->used_fallback() ? " (fallback)" : "");
    if (!run->plan_details.empty()) {
      std::printf("%s", run->plan_details.c_str());
    }
    std::printf("plan time: %.2f ms, exec time: %.2f ms, work: %zu, "
                "peak intermediate: %zu rows\n",
                run->plan_seconds * 1e3, run->exec_seconds * 1e3,
                run->ctx.work_charged.load(), run->ctx.peak_rows.load());
    if (!run->plan_cache.empty()) {
      std::printf("plan cache: %s\n", run->plan_cache.c_str());
    }
    if (run->governor.search_nodes > 0) {
      std::printf("governor: %zu search nodes, %zu trips\n",
                  run->governor.search_nodes, run->governor.trips());
    }
    if (run->spill.spill_events > 0) {
      std::printf("spill: %zu event(s), %zu bytes written, %zu partitions, "
                  "recursion depth %zu\n",
                  run->spill.spill_events, run->spill.bytes_written,
                  run->spill.partitions, run->spill.max_recursion_depth);
    }
    if (run->shard.num_shards > 0 && run->shard.exchanges > 0) {
      std::printf("shards: %zu (%zu partitioned, %zu replicated), "
                  "%zu exchange(s) shipped %zu filter + %zu key bytes "
                  "(vs %zu row bytes), pruned %zu rows\n",
                  run->shard.num_shards, run->shard.partitions,
                  run->shard.replicated, run->shard.exchanges,
                  run->shard.filter_bytes, run->shard.key_bytes,
                  run->shard.row_ship_bytes, run->shard.rows_pruned);
    }
  }
  if (state.analyze) {
    std::printf("-- spans --\n%s", tracer.ToTreeString().c_str());
  }
  if (run->replans > 0) {
    std::printf("replans: %zu\n", run->replans);
  }
  if (state.adaptive) {
    // Post-query reconciliation: mine this query's trace, refresh any
    // relation whose statistics have drifted. Nested queries don't Resolve
    // as a single CQ — skip feedback for those, never the query itself.
    auto rq = optimizer.Resolve(sql, state.options.tid_mode);
    if (rq.ok()) {
      FeedbackCollector collector(&state.catalog, &state.stats);
      FeedbackReport report = collector.Reconcile(rq.value(), tracer);
      for (const std::string& name : report.refreshed) {
        std::printf("feedback: refreshed statistics for %s (max estimate "
                    "error %.1fx)\n",
                    name.c_str(), report.max_error_factor);
      }
      if (report.skipped > 0) {
        std::printf("feedback: %zu refresh(es) skipped\n", report.skipped);
      }
    }
  }
  std::printf("%s", run->output.ToString(25).c_str());
}

void Dot(ShellState& state, const std::string& sql) {
  HybridOptimizer optimizer(&state.catalog, &state.stats);
  auto rq = optimizer.Resolve(sql, TidMode::kNone);
  if (!rq.ok()) {
    std::printf("error: %s\n", rq.status().ToString().c_str());
    return;
  }
  Hypergraph h = BuildHypergraph(rq->cq);
  Estimator estimator(&state.stats);
  StatsDecompositionCostModel model(h, BuildEdgeStats(rq->cq, estimator));
  QhdOptions qhd;
  qhd.max_width = state.options.max_width;
  auto decomp = QHypertreeDecomp(h, OutputVarsBitset(rq->cq), model, qhd);
  if (!decomp.ok()) {
    std::printf("error: %s\n", decomp.status().ToString().c_str());
    return;
  }
  std::printf("%s", decomp->hd.ToDot(h).c_str());
}

void Rewrite(ShellState& state, const std::string& sql) {
  HybridOptimizer optimizer(&state.catalog, &state.stats);
  auto rewritten = optimizer.RewriteQuery(sql, state.options);
  if (!rewritten.ok()) {
    std::printf("error: %s\n", rewritten.status().ToString().c_str());
    return;
  }
  std::printf("%s", rewritten->ToScript().c_str());
}

bool HandleCommand(ShellState& state, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\quit" || cmd == "\\q") return false;
  if (cmd == "\\help") {
    PrintHelp();
  } else if (cmd == "\\load") {
    std::string kind;
    in >> kind;
    if (kind == "tpch") {
      double sf = 0.005;
      in >> sf;
      PopulateTpch(TpchConfig{sf, 42}, &state.catalog);
      state.stats.AnalyzeAll(state.catalog);
      std::printf("loaded TPC-H at SF %g (%zu rows total)\n", sf,
                  state.catalog.TotalRows());
    } else if (kind == "synthetic") {
      SyntheticConfig config;
      in >> config.cardinality >> config.selectivity >>
          config.num_relations;
      PopulateSyntheticCatalog(config, &state.catalog);
      state.stats.AnalyzeAll(state.catalog);
      std::printf("loaded r1..r%zu (card %zu, selectivity %zu%%)\n",
                  config.num_relations, config.cardinality,
                  config.selectivity);
    } else {
      std::printf("usage: \\load tpch <sf> | \\load synthetic <card> <sel> "
                  "<n>\n");
    }
  } else if (cmd == "\\mode") {
    std::string name;
    in >> name;
    bool found = false;
    for (const auto& m : kModes) {
      if (name == m.name) {
        state.options.mode = m.mode;
        found = true;
      }
    }
    std::printf(found ? "mode = %s\n" : "unknown mode: %s\n", name.c_str());
  } else if (cmd == "\\width") {
    in >> state.options.max_width;
    std::printf("width bound k = %zu\n", state.options.max_width);
  } else if (cmd == "\\deadline") {
    in >> state.options.deadline_seconds;
    std::printf("deadline = %g s%s\n", state.options.deadline_seconds,
                state.options.deadline_seconds > 0 ? "" : " (off)");
  } else if (cmd == "\\budget") {
    long long nodes = 0;  // signed, so "-7" reads as negative instead of wrapping
    in >> nodes;
    if (nodes > 0) {
      state.options.search_node_budget = static_cast<std::size_t>(nodes);
      std::printf("search-node budget = %lld\n", nodes);
    } else {
      state.options.search_node_budget =
          std::numeric_limits<std::size_t>::max();
      std::printf("search-node budget off\n");
    }
  } else if (cmd == "\\mem") {
    long long bytes = 0;
    in >> bytes;
    if (bytes > 0) {
      state.options.memory_budget_bytes = static_cast<std::size_t>(bytes);
      state.options.enable_spill = true;
      std::printf("memory budget = %lld bytes (spilling past %g%% of it)\n",
                  bytes, state.options.soft_memory_fraction * 100.0);
    } else {
      state.options.memory_budget_bytes =
          std::numeric_limits<std::size_t>::max();
      state.options.enable_spill = false;
      std::printf("memory budget off\n");
    }
  } else if (cmd == "\\spill") {
    std::string dir;
    in >> dir;
    if (dir == "-") dir.clear();
    state.options.spill_dir = dir;
    std::printf("spill directory = %s\n",
                dir.empty() ? "<system temp>" : dir.c_str());
  } else if (cmd == "\\threads") {
    long long n = 0;
    in >> n;
    state.options.num_threads = n > 1 ? static_cast<std::size_t>(n) : 1;
    std::printf("threads = %zu%s\n", state.options.num_threads,
                state.options.num_threads == 1 ? " (serial engine)" : "");
  } else if (cmd == "\\shards") {
    long long n = 0;
    in >> n;
    state.options.num_shards = n > 0 ? static_cast<std::size_t>(n) : 0;
    std::printf("shards = %zu%s\n", state.options.num_shards,
                state.options.num_shards == 0
                    ? " (sharded evaluation off)"
                    : " (hash-partitioned semijoin reduction)");
  } else if (cmd == "\\cache") {
    std::string arg;
    in >> arg;
    if (arg == "on") {
      state.options.use_plan_cache = true;
      std::printf("plan cache on\n");
    } else if (arg == "off") {
      state.options.use_plan_cache = false;
      std::printf("plan cache off\n");
    } else if (arg == "clear") {
      DecompCache::Global().Clear();
      std::printf("plan cache cleared\n");
    } else {
      DecompCache::Stats s = DecompCache::Global().stats();
      std::printf("plan cache %s: %llu entries, %llu/%llu bytes\n"
                  "  hits %llu, misses %llu, stale %llu, evictions %llu, "
                  "single-flight waits %llu\n",
                  state.options.use_plan_cache ? "on" : "off",
                  static_cast<unsigned long long>(s.entries),
                  static_cast<unsigned long long>(s.bytes),
                  static_cast<unsigned long long>(s.byte_budget),
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.misses),
                  static_cast<unsigned long long>(s.stale),
                  static_cast<unsigned long long>(s.evictions),
                  static_cast<unsigned long long>(s.singleflight_waits));
    }
  } else if (cmd == "\\vectorized") {
    std::string arg;
    in >> arg;
    if (arg == "on") {
      state.options.use_vectorized = true;
    } else if (arg == "off") {
      state.options.use_vectorized = false;
    } else if (!arg.empty()) {
      std::printf("usage: \\vectorized [on|off]\n");
      return true;
    } else {
      state.options.use_vectorized = !state.options.use_vectorized;
    }
    std::printf("vectorized engine %s%s\n",
                state.options.use_vectorized ? "on" : "off",
                state.options.use_vectorized ? "" : " (row-at-a-time path)");
  } else if (cmd == "\\adaptive") {
    std::string arg;
    in >> arg;
    if (arg == "on") {
      state.adaptive = true;
    } else if (arg == "off") {
      state.adaptive = false;
    } else if (!arg.empty()) {
      std::printf("usage: \\adaptive [on|off]\n");
      return true;
    } else {
      state.adaptive = !state.adaptive;
    }
    state.options.enable_replan = state.adaptive;
    std::printf("adaptive loop %s%s\n", state.adaptive ? "on" : "off",
                state.adaptive
                    ? " (mid-query replans + post-query stats feedback)"
                    : "");
  } else if (cmd == "\\explain") {
    state.explain = !state.explain;
    std::printf("explain %s\n", state.explain ? "on" : "off");
  } else if (cmd == "\\analyze") {
    state.analyze = !state.analyze;
    std::printf("analyze %s%s\n", state.analyze ? "on" : "off",
                state.analyze && !kTracingCompiledIn
                    ? " (tracing compiled out: spans will be empty)"
                    : "");
  } else if (cmd == "\\trace") {
    std::string path;
    in >> path;
    if (path == "-") path.clear();
    state.trace_path = path;
    std::printf("trace output = %s\n",
                path.empty() ? "off" : path.c_str());
  } else if (cmd == "\\stats") {
    // Manual statistics (Section 5 stand-alone usage): relation name, row
    // count, then one distinct count per column (0 or omitted = unknown).
    std::string name;
    std::size_t rows = 0;
    in >> name >> rows;
    std::vector<std::size_t> distinct;
    std::size_t d;
    while (in >> d) distinct.push_back(d);
    const Relation* rel = state.catalog.Find(name);
    if (rel != nullptr) distinct.resize(rel->arity(), 0);
    state.stats.Put(name, MakeManualStats(rows, distinct));
    std::printf("declared stats for %s: %zu rows, %zu column counts\n",
                name.c_str(), rows, distinct.size());
  } else if (cmd == "\\import") {
    std::string name, path;
    in >> name >> path;
    auto rel = ReadCsvFile(path);
    if (!rel.ok()) {
      std::printf("error: %s\n", rel.status().ToString().c_str());
    } else {
      std::printf("loaded %zu rows into %s\n", rel->NumRows(), name.c_str());
      state.catalog.Put(name, std::move(rel.value()));
      state.stats.AnalyzeAll(state.catalog);
    }
  } else if (cmd == "\\export") {
    std::string name, path;
    in >> name >> path;
    const Relation* rel = state.catalog.Find(name);
    if (rel == nullptr) {
      std::printf("error: unknown relation %s\n", name.c_str());
    } else {
      Status s = WriteCsvFile(*rel, path);
      std::printf("%s\n", s.ok() ? "written" : s.ToString().c_str());
    }
  } else if (cmd == "\\relations") {
    for (const std::string& name : state.catalog.Names()) {
      std::printf("  %-12s %8zu rows %s\n", name.c_str(),
                  state.catalog.Find(name)->NumRows(),
                  state.catalog.Find(name)->schema().ToString().c_str());
    }
  } else if (cmd == "\\dot") {
    std::string rest;
    std::getline(in, rest);
    Dot(state, rest);
  } else if (cmd == "\\rewrite") {
    std::string rest;
    std::getline(in, rest);
    Rewrite(state, rest);
  } else if (cmd == "\\q5") {
    RunSql(state, TpchQ5());
  } else if (cmd == "\\q8") {
    RunSql(state, TpchQ8());
  } else if (cmd == "\\slow") {
    std::size_t n = 10;
    in >> n;
    if (n == 0) n = 10;
    const FlightRecorder& recorder = FlightRecorder::Global();
    auto slow = recorder.Slowest(n);
    if (slow.empty()) {
      std::printf("flight recorder empty — run a query first\n");
    } else {
      std::printf("%-5s %-10s %-16s %9s %6s %5s %5s %10s %10s\n", "id",
                  "status", "fingerprint", "total ms", "rows", "w", "deg",
                  "plan ms", "exec ms");
      for (const FlightRecord& r : slow) {
        std::printf("%-5llu %-10s %016llx %9.2f %6llu %5u %5u %10.2f "
                    "%10.2f\n",
                    static_cast<unsigned long long>(r.id),
                    StatusCodeKebab(r.status),
                    static_cast<unsigned long long>(r.fingerprint),
                    r.total_us / 1e3, static_cast<unsigned long long>(r.rows),
                    r.width, r.degradations, r.plan_us / 1e3,
                    r.exec_us / 1e3);
      }
      std::printf("%zu of %llu recorded (ring capacity %zu)\n", slow.size(),
                  static_cast<unsigned long long>(recorder.total_recorded()),
                  recorder.capacity());
    }
  } else {
    std::printf("unknown command: %s (try \\help)\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  // SA_RESTART keeps the prompt's getline alive across ^C: the signal only
  // sets the cancel flag, and a running query notices it cooperatively.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSigint;
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);

  ShellState state;
  state.options.mode = OptimizerMode::kQhdHybrid;
  // Interactive sessions re-plan the same templates constantly; the cache
  // is on by default here (libraries opt in via RunOptions).
  state.options.use_plan_cache = true;
  state.explain = true;
  std::printf("htqo shell — hypertree decompositions for query "
              "optimization.\nType \\help for commands.\n");

  std::string buffer;
  std::string line;
  bool interactive = true;
  while (interactive) {
    std::printf(buffer.empty() ? "htqo> " : "  ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (!HandleCommand(state, line)) break;
      continue;
    }
    buffer += line + "\n";
    if (line.find(';') != std::string::npos) {
      RunSql(state, buffer);
      buffer.clear();
    } else if (line.empty()) {
      buffer.clear();
    }
  }
  std::printf("\n");
  return 0;
}

// The paper's headline experiment, live: chain queries of growing length
// evaluated by every optimizer mode. Prints a table of work units and
// wall-clock per (atoms, method) — the Fig. 7/9 phenomenon in miniature.
//
//   $ ./chain_showdown [max_atoms]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "api/hybrid_optimizer.h"
#include "workload/query_gen.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace htqo;

  std::size_t max_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  if (max_atoms < 2) max_atoms = 2;
  if (max_atoms > 10) max_atoms = 10;

  Catalog catalog;
  SyntheticConfig config;
  config.cardinality = 450;
  config.selectivity = 60;
  config.num_relations = max_atoms;
  PopulateSyntheticCatalog(config, &catalog);
  StatisticsRegistry stats;
  stats.AnalyzeAll(catalog);
  HybridOptimizer optimizer(&catalog, &stats);

  const OptimizerMode modes[] = {
      OptimizerMode::kNaive,         OptimizerMode::kGeqoDefaults,
      OptimizerMode::kDpStatistics,  OptimizerMode::kQhdStructural,
      OptimizerMode::kQhdHybrid,
  };

  std::printf("chain queries, cardinality 450, selectivity 60%%\n");
  std::printf("%-6s %-16s %12s %12s %10s %8s\n", "atoms", "method",
              "work", "ms", "answers", "status");
  for (std::size_t n = 2; n <= max_atoms; ++n) {
    std::string sql = ChainQuerySql(n);
    for (OptimizerMode mode : modes) {
      RunOptions options;
      options.mode = mode;
      options.work_budget = 200'000'000;
      options.row_budget = 50'000'000;
      options.fallback_to_dp = false;
      auto start = std::chrono::steady_clock::now();
      auto run = optimizer.Run(sql, options);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (run.ok()) {
        std::printf("%-6zu %-16s %12zu %12.2f %10zu %8s\n", n,
                    OptimizerModeName(mode).c_str(), run->ctx.work_charged.load(),
                    ms, run->output.NumRows(), "ok");
      } else {
        std::printf("%-6zu %-16s %12s %12.2f %10s %8s\n", n,
                    OptimizerModeName(mode).c_str(), "-", ms, "-", "DNF");
      }
    }
  }
  return 0;
}

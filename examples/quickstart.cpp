// Quickstart: build a tiny database, run one cyclic query through the
// hybrid optimizer, and compare the structural plan against a conventional
// one.
//
//   $ ./quickstart

#include <cstdio>

#include "api/hybrid_optimizer.h"
#include "workload/query_gen.h"
#include "workload/synthetic.h"

int main() {
  using namespace htqo;

  // 1. A database: five relations r1..r5(a, b), 300 rows each, attribute
  //    selectivity 40% (so joins fan out ~2.5x).
  Catalog catalog;
  SyntheticConfig config;
  config.cardinality = 300;
  config.selectivity = 40;
  config.num_relations = 5;
  PopulateSyntheticCatalog(config, &catalog);

  // 2. Statistics (the quantitative half of the hybrid optimizer).
  StatisticsRegistry stats;
  stats.AnalyzeAll(catalog);

  // 3. A cyclic chain query: r1 -> r2 -> ... -> r5 -> r1.
  std::string sql = ChainQuerySql(5);
  std::printf("Query:\n%s\n\n", sql.c_str());

  HybridOptimizer optimizer(&catalog, &stats);

  // 4. Run it with the q-hypertree-decomposition optimizer...
  RunOptions qhd;
  qhd.mode = OptimizerMode::kQhdHybrid;
  auto qhd_run = optimizer.Run(sql, qhd);
  if (!qhd_run.ok()) {
    std::printf("q-HD run failed: %s\n", qhd_run.status().message().c_str());
    return 1;
  }
  std::printf("q-HD plan: %s\n", qhd_run->plan_description.c_str());
  std::printf("  answers: %zu rows,  work: %zu units,  peak intermediate: "
              "%zu rows\n\n",
              qhd_run->output.NumRows(), qhd_run->ctx.work_charged.load(),
              qhd_run->ctx.peak_rows.load());

  // 5. ... and with a conventional DP join-order optimizer.
  RunOptions dp;
  dp.mode = OptimizerMode::kDpStatistics;
  auto dp_run = optimizer.Run(sql, dp);
  if (!dp_run.ok()) {
    std::printf("DP run failed: %s\n", dp_run.status().message().c_str());
    return 1;
  }
  std::printf("DP plan: %s\n", dp_run->plan_description.c_str());
  std::printf("  answers: %zu rows,  work: %zu units,  peak intermediate: "
              "%zu rows\n\n",
              dp_run->output.NumRows(), dp_run->ctx.work_charged.load(),
              dp_run->ctx.peak_rows.load());

  // 6. Same answers, different work.
  std::printf("answers agree: %s\n",
              qhd_run->output.SameRowsAs(dp_run->output) ? "yes" : "NO");
  std::printf("first rows:\n%s", qhd_run->output.ToString(5).c_str());
  return 0;
}

// Client for the htqo query server: one-shot queries and a load-test
// harness.
//
// One-shot (SQL from the command line or stdin):
//
//   $ ./htqo_client --port 7070 --tenant acme "SELECT ... ;"
//   $ echo "SELECT ... ;" | ./htqo_client --port 7070
//
// Load test (the CI server job and tools/check.sh --server run this):
//
//   $ ./htqo_client --port 7070 --loadtest --clients 4,16,64 \
//         --queries 10 --json BENCH_server.json
//
// Each level spawns N worker threads across 4 tenants (t0..t3), every
// worker running the query template with a per-query deadline, honoring
// shed retry-after hints with jittered backoff (that logic lives in
// Client::Query — this binary is deliberately dumb about it). A chaos
// client runs alongside: it connects, sends a query, and vanishes without
// reading the response, over and over — the server must shrug that off
// with zero effect on the workers' results.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "workload/tpch_queries.h"

namespace {

using namespace htqo;

struct LevelResult {
  int clients = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t sheds_retried = 0;   // retries absorbed by the backoff loop
  uint64_t sheds_final = 0;     // queries that stayed shed after retries
  uint64_t deadline_errors = 0;
  uint64_t degraded = 0;        // OK responses planned at admission level > 0
  uint64_t backoff_ms = 0;
  double wall_seconds = 0;
  double throughput_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(idx + 0.5)];
}

// Chaos client: repeatedly HELLO + QUERY, then hang up without reading the
// response — simulating a peer that dies mid-query.
void ChaosLoop(const std::string& host, uint16_t port, const std::string& sql,
               std::atomic<bool>* stop, uint64_t* disconnects) {
  while (!stop->load(std::memory_order_relaxed)) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) break;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      Frame hello;
      hello.type = FrameType::kHello;
      hello.fields["tenant"] = "chaos";
      (void)WriteFrame(fd, hello);
      Frame query;
      query.type = FrameType::kQuery;
      query.payload = sql;
      (void)WriteFrame(fd, query);
      ++*disconnects;  // close with the response (and maybe query) in flight
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

LevelResult RunLevel(const std::string& host, uint16_t port, int clients,
                     int queries_per_client, const std::string& sql,
                     uint64_t deadline_ms, bool chaos,
                     const std::string& trace_dir) {
  LevelResult result;
  result.clients = clients;
  std::mutex mu;
  std::vector<double> latencies_ms;

  std::atomic<bool> stop_chaos{false};
  uint64_t chaos_disconnects = 0;
  std::thread chaos_thread;
  if (chaos) {
    chaos_thread = std::thread(
        [&] { ChaosLoop(host, port, sql, &stop_chaos, &chaos_disconnects); });
  }

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {
      ClientOptions copts;
      copts.host = host;
      copts.port = port;
      copts.tenant = "t" + std::to_string(w % 4);
      copts.backoff_jitter_seed = 1000 + static_cast<uint64_t>(w);
      // One traced worker per level is enough to produce client-initiated
      // stitched traces without drowning the trace directory.
      if (w == 0) copts.trace_dir = trace_dir;
      Client client(copts);
      if (!client.Connect().ok()) {
        std::lock_guard<std::mutex> lock(mu);
        result.errors += static_cast<uint64_t>(queries_per_client);
        return;
      }
      for (int q = 0; q < queries_per_client; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        auto reply = client.Query(sql, deadline_ms);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::lock_guard<std::mutex> lock(mu);
        if (reply.ok()) {
          ++result.ok;
          latencies_ms.push_back(ms);
          result.sheds_retried +=
              static_cast<uint64_t>(reply->sheds_retried);
          result.backoff_ms += reply->backoff_ms;
          if (reply->admission_level > 0) ++result.degraded;
        } else {
          ++result.errors;
          if (reply.status().code() == StatusCode::kResourceExhausted) {
            ++result.sheds_final;
          } else if (reply.status().code() ==
                     StatusCode::kDeadlineExceeded) {
            ++result.deadline_errors;
          }
        }
      }
      client.Close();
    });
  }
  for (std::thread& t : workers) t.join();
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count();
  if (chaos) {
    stop_chaos.store(true, std::memory_order_relaxed);
    chaos_thread.join();
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 50);
  result.p99_ms = Percentile(latencies_ms, 99);
  result.throughput_qps = result.wall_seconds > 0
                              ? static_cast<double>(result.ok) /
                                    result.wall_seconds
                              : 0;
  std::printf(
      "clients=%3d  ok=%llu errors=%llu (shed=%llu deadline=%llu)  "
      "retries=%llu backoff=%llums degraded=%llu  "
      "qps=%.1f p50=%.1fms p99=%.1fms  chaos_disconnects=%llu\n",
      clients, static_cast<unsigned long long>(result.ok),
      static_cast<unsigned long long>(result.errors),
      static_cast<unsigned long long>(result.sheds_final),
      static_cast<unsigned long long>(result.deadline_errors),
      static_cast<unsigned long long>(result.sheds_retried),
      static_cast<unsigned long long>(result.backoff_ms),
      static_cast<unsigned long long>(result.degraded),
      result.throughput_qps, result.p50_ms, result.p99_ms,
      static_cast<unsigned long long>(chaos ? chaos_disconnects : 0));
  std::fflush(stdout);
  return result;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<LevelResult>& levels,
                    const std::string& metrics_text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  // Shed/drain counters scraped from the server, so the bench file records
  // not just client-side latency but what admission control actually did.
  auto scrape = [&](const char* name) -> long long {
    std::istringstream in(metrics_text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(name, 0) == 0 && line.size() > std::strlen(name) &&
          line[std::strlen(name)] == ' ') {
        return std::atoll(line.c_str() + std::strlen(name) + 1);
      }
    }
    return -1;
  };
  std::fprintf(f, "{\n  \"bench\": \"server\",\n  \"levels\": [\n");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    std::fprintf(
        f,
        "    {\"clients\": %d, \"ok\": %llu, \"errors\": %llu, "
        "\"sheds_final\": %llu, \"deadline_errors\": %llu, "
        "\"sheds_retried\": %llu, \"backoff_ms\": %llu, "
        "\"degraded\": %llu, \"wall_seconds\": %.3f, "
        "\"throughput_qps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f}%s\n",
        r.clients, static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.sheds_final),
        static_cast<unsigned long long>(r.deadline_errors),
        static_cast<unsigned long long>(r.sheds_retried),
        static_cast<unsigned long long>(r.backoff_ms),
        static_cast<unsigned long long>(r.degraded), r.wall_seconds,
        r.throughput_qps, r.p50_ms, r.p99_ms,
        i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"server_metrics\": {\n");
  const char* scraped[] = {
      "htqo_admission_admitted_total",  "htqo_admission_queued_total",
      "htqo_admission_shed_total",      "htqo_admission_queue_timeout_total",
      "htqo_admission_degraded_total",  "htqo_server_connections_total",
      "htqo_server_queries_total",      "htqo_server_protocol_errors_total",
  };
  for (std::size_t i = 0; i < sizeof(scraped) / sizeof(scraped[0]); ++i) {
    std::fprintf(f, "    \"%s\": %lld%s\n", scraped[i], scrape(scraped[i]),
                 i + 1 < sizeof(scraped) / sizeof(scraped[0]) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port <p> [options] [\"SQL;\"]\n"
      "  --host <addr>        server address (default 127.0.0.1)\n"
      "  --tenant <name>      tenant for HELLO (default: default)\n"
      "  --deadline-ms <d>    per-query deadline (default 0 = server "
      "default)\n"
      "  --metrics            print the server's Prometheus metrics and "
      "exit\n"
      "  --debug <what>       print a /debug JSON document and exit; <what> "
      "is\n"
      "                       sessions|queues|cache|slow|record|build\n"
      "  --id <n>             flight-record id for --debug record\n"
      "  --n <k>              slow-log bound for --debug slow\n"
      "  --trace-dir <dir>    trace queries client-side; send trace context "
      "so\n"
      "                       the server's spans stitch under ours\n"
      "  --loadtest           run the concurrency sweep instead of one "
      "query\n"
      "  --clients <a,b,c>    sweep levels (default 4,16,64)\n"
      "  --queries <n>        queries per client per level (default 10)\n"
      "  --no-chaos           disable the disconnecting chaos client\n"
      "  --json <path>        write BENCH_server.json-style results\n"
      "With no SQL argument, the query is read from stdin (one-shot) or\n"
      "defaults to TPC-H Q5 (loadtest).\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string tenant = "default";
  uint64_t deadline_ms = 0;
  bool loadtest = false;
  bool metrics_only = false;
  bool chaos = true;
  std::vector<int> levels = {4, 16, 64};
  int queries_per_client = 10;
  std::string json_path;
  std::string sql;
  std::string debug_what;
  uint64_t debug_id = 0;
  uint64_t debug_n = 0;
  std::string trace_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value (%s)\n", arg.c_str(), what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("address");
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next("port")));
    } else if (arg == "--tenant") {
      tenant = next("name");
    } else if (arg == "--deadline-ms") {
      deadline_ms = static_cast<uint64_t>(std::atoll(next("ms")));
    } else if (arg == "--metrics") {
      metrics_only = true;
    } else if (arg == "--debug") {
      debug_what = next("what");
    } else if (arg == "--id") {
      debug_id = static_cast<uint64_t>(std::atoll(next("record id")));
    } else if (arg == "--n") {
      debug_n = static_cast<uint64_t>(std::atoll(next("count")));
    } else if (arg == "--trace-dir") {
      trace_dir = next("directory");
    } else if (arg == "--loadtest") {
      loadtest = true;
    } else if (arg == "--no-chaos") {
      chaos = false;
    } else if (arg == "--clients") {
      levels.clear();
      std::istringstream in(next("levels"));
      std::string token;
      while (std::getline(in, token, ',')) {
        levels.push_back(std::atoi(token.c_str()));
      }
    } else if (arg == "--queries") {
      queries_per_client = std::atoi(next("count"));
    } else if (arg == "--json") {
      json_path = next("path");
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      sql = arg;
    }
  }
  if (port == 0) return Usage(argv[0]);

  if (!debug_what.empty()) {
    ClientOptions copts;
    copts.host = host;
    copts.port = port;
    copts.tenant = tenant;
    Client client(copts);
    Status s = client.Connect();
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    auto json = client.Debug(debug_what, debug_id, debug_n);
    if (!json.ok()) {
      std::fprintf(stderr, "error: %s\n", json.status().ToString().c_str());
      client.Close();
      return 1;
    }
    std::printf("%s\n", json->c_str());
    client.Close();
    return 0;
  }

  if (metrics_only) {
    ClientOptions copts;
    copts.host = host;
    copts.port = port;
    copts.tenant = tenant;
    Client client(copts);
    Status s = client.Connect();
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    auto text = client.Metrics();
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", text->c_str());
    client.Close();
    return 0;
  }

  if (loadtest) {
    if (sql.empty()) sql = TpchQ5();
    if (deadline_ms == 0) deadline_ms = 15000;
    std::vector<LevelResult> results;
    for (int clients : levels) {
      results.push_back(RunLevel(host, port, clients, queries_per_client,
                                 sql, deadline_ms, chaos, trace_dir));
    }
    if (!json_path.empty()) {
      ClientOptions copts;
      copts.host = host;
      copts.port = port;
      copts.tenant = "bench";
      Client client(copts);
      std::string metrics_text;
      if (client.Connect().ok()) {
        auto text = client.Metrics();
        if (text.ok()) metrics_text = std::move(text.value());
        client.Close();
      }
      WriteBenchJson(json_path, results, metrics_text);
    }
    uint64_t total_errors = 0;
    for (const LevelResult& r : results) total_errors += r.errors;
    // Sheds and deadline misses are the protocol working as designed under
    // overload; anything else (internal, invalid) fails the harness.
    for (const LevelResult& r : results) {
      uint64_t unexplained =
          r.errors - r.sheds_final - r.deadline_errors;
      if (unexplained > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu unexplained errors at %d clients\n",
                     static_cast<unsigned long long>(unexplained), r.clients);
        return 1;
      }
    }
    return 0;
  }

  if (sql.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    sql = buffer.str();
  }
  if (sql.empty()) return Usage(argv[0]);

  ClientOptions copts;
  copts.host = host;
  copts.port = port;
  copts.tenant = tenant;
  copts.trace_dir = trace_dir;
  Client client(copts);
  Status s = client.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reply = client.Query(sql, deadline_ms);
  if (!reply.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reply.status().ToString().c_str());
    client.Close();
    return 1;
  }
  std::printf("%s", reply->result_text.c_str());
  std::printf(
      "rows=%llu plan=%.2fms exec=%.2fms queued=%lluus%s%s\n",
      static_cast<unsigned long long>(reply->rows), reply->plan_ms,
      reply->exec_ms, static_cast<unsigned long long>(reply->queued_us),
      reply->admission_level > 0 ? " (degraded admission)" : "",
      reply->sheds_retried > 0 ? " (retried after shed)" : "");
  client.Close();
  return 0;
}

// Stand-alone query server daemon over a generated workload.
//
//   $ ./htqo_server --port 7070 --metrics-port 7071 --load tpch 0.005
//   listening on 127.0.0.1:7070
//   metrics on http://127.0.0.1:7071/metrics
//
// SIGTERM (or SIGINT) triggers a graceful drain: stop accepting, shed the
// admission queues, wait up to --drain-deadline seconds for in-flight
// queries, cancel stragglers through their governors, then exit 0. The
// signal handler only writes one byte to a self-pipe; all real work happens
// on the main thread, so the drain path is async-signal-safe by
// construction.
//
// Scripts (tools/check.sh --server, the CI server job) parse the
// "listening on" line for the bound port, so keep its format stable.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "workload/synthetic.h"
#include "workload/tpch_gen.h"

namespace {

using namespace htqo;

// Self-pipe: the handler's only side effect. Read end is polled (blocking
// read) by main; write end is signal-safe.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host <addr>             bind address (default 127.0.0.1)\n"
      "  --port <p>                query port (default 0 = kernel-assigned)\n"
      "  --metrics-port <p>        enable HTTP /metrics on this port (0 = "
      "kernel-assigned)\n"
      "  --load tpch <sf>          generate TPC-H at the scale factor "
      "(default 0.005)\n"
      "  --load synthetic <card> <sel> <n>   generate r1..rN(a,b)\n"
      "  --max-concurrent <n>      slots across all tenants (default 4)\n"
      "  --tenant-concurrent <n>   per-tenant running-query cap (default 2)\n"
      "  --queue-depth <n>         per-tenant queue bound (default 8)\n"
      "  --node-budget <n>         process-wide search-node budget\n"
      "  --mem-budget <bytes>      process-wide memory budget (enables "
      "spill)\n"
      "  --threads <n>             per-query worker lanes (default 1)\n"
      "  --shards <n>              hash-partition shards per query (0 = "
      "off)\n"
      "  --default-deadline <s>    deadline for QUERY without deadline_ms "
      "(default 30)\n"
      "  --idle-timeout <s>        session idle timeout (default 300)\n"
      "  --drain-deadline <s>      grace period on SIGTERM (default 5)\n"
      "  --trace-dir <dir>         arm per-query tracing; export Chrome "
      "traces here\n"
      "  --trace-sample <frac>     head-sampling fraction in [0,1] "
      "(default 0)\n"
      "  --trace-slow-ms <ms>      tail-capture queries slower than this\n"
      "  --slo-p99 <ms>            default tenant SLO target p99 (default "
      "250)\n"
      "  --slo-budget <frac>       default tenant error budget (default "
      "0.01)\n"
      "  --tenant-slo <t> <ms> <b> per-tenant SLO override\n"
      "  --flight-capacity <n>     flight-recorder ring size (default "
      "1024)\n"
      "  --crash-dump <path>       dump the flight ring here on a fatal "
      "signal\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool metrics = false;
  uint16_t metrics_port = 0;
  std::string load_kind = "tpch";
  double tpch_sf = 0.005;
  SyntheticConfig synthetic;
  ServerOptions options;
  double drain_deadline = 5.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value (%s)\n", arg.c_str(), what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("address");
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next("port")));
    } else if (arg == "--metrics-port") {
      metrics = true;
      metrics_port = static_cast<uint16_t>(std::atoi(next("port")));
    } else if (arg == "--load") {
      load_kind = next("tpch|synthetic");
      if (load_kind == "tpch") {
        tpch_sf = std::atof(next("scale factor"));
      } else if (load_kind == "synthetic") {
        synthetic.cardinality =
            static_cast<std::size_t>(std::atoll(next("cardinality")));
        synthetic.selectivity =
            static_cast<std::size_t>(std::atoll(next("selectivity")));
        synthetic.num_relations =
            static_cast<std::size_t>(std::atoll(next("relations")));
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-concurrent") {
      options.admission.max_total_concurrent =
          static_cast<std::size_t>(std::atoll(next("slots")));
    } else if (arg == "--tenant-concurrent") {
      options.admission.default_quota.max_concurrent =
          static_cast<std::size_t>(std::atoll(next("slots")));
    } else if (arg == "--queue-depth") {
      options.admission.default_quota.max_queue_depth =
          static_cast<std::size_t>(std::atoll(next("depth")));
    } else if (arg == "--node-budget") {
      options.admission.node_budget =
          static_cast<std::size_t>(std::atoll(next("nodes")));
    } else if (arg == "--mem-budget") {
      options.admission.memory_budget_bytes =
          static_cast<std::size_t>(std::atoll(next("bytes")));
    } else if (arg == "--threads") {
      options.run_template.num_threads =
          static_cast<std::size_t>(std::atoll(next("threads")));
    } else if (arg == "--shards") {
      options.run_template.num_shards =
          static_cast<std::size_t>(std::atoll(next("shards")));
    } else if (arg == "--default-deadline") {
      options.default_deadline_seconds = std::atof(next("seconds"));
    } else if (arg == "--idle-timeout") {
      options.idle_timeout_seconds = std::atof(next("seconds"));
    } else if (arg == "--drain-deadline") {
      drain_deadline = std::atof(next("seconds"));
    } else if (arg == "--trace-dir") {
      options.trace_dir = next("directory");
    } else if (arg == "--trace-sample") {
      options.trace_sample_rate = std::atof(next("fraction"));
    } else if (arg == "--trace-slow-ms") {
      options.trace_slow_ms = std::atof(next("milliseconds"));
    } else if (arg == "--slo-p99") {
      options.default_slo.target_p99_ms = std::atof(next("milliseconds"));
    } else if (arg == "--slo-budget") {
      options.default_slo.error_budget = std::atof(next("fraction"));
    } else if (arg == "--tenant-slo") {
      std::string tenant = next("tenant");
      SloPolicy policy;
      policy.target_p99_ms = std::atof(next("p99 ms"));
      policy.error_budget = std::atof(next("error budget"));
      options.tenant_slos[tenant] = policy;
    } else if (arg == "--flight-capacity") {
      options.flight_capacity =
          static_cast<std::size_t>(std::atoll(next("records")));
    } else if (arg == "--crash-dump") {
      options.crash_dump_path = next("path");
    } else {
      return Usage(argv[0]);
    }
  }

  Catalog catalog;
  StatisticsRegistry stats;
  if (load_kind == "tpch") {
    PopulateTpch(TpchConfig{tpch_sf, 42}, &catalog);
    std::printf("loaded TPC-H at SF %g (%zu rows total)\n", tpch_sf,
                catalog.TotalRows());
  } else {
    PopulateSyntheticCatalog(synthetic, &catalog);
    std::printf("loaded r1..r%zu (card %zu, selectivity %zu%%)\n",
                synthetic.num_relations, synthetic.cardinality,
                synthetic.selectivity);
  }
  stats.AnalyzeAll(catalog);

  options.host = host;
  options.port = port;
  options.enable_metrics_http = metrics;
  options.metrics_http_port = metrics_port;
  options.run_template.mode = OptimizerMode::kQhdHybrid;
  options.run_template.use_plan_cache = true;

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "self-pipe failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  // No SA_RESTART: the park loop below must come back from read() after a
  // signal. Sanitizer runtimes defer user handlers to the next interception
  // point; a transparently restarted read() never reaches one, so with
  // SA_RESTART a TSan build would absorb SIGTERM and park forever. Every
  // other syscall here already loops on EINTR.
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  QueryServer server(&catalog, &stats, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", host.c_str(), server.port());
  if (metrics) {
    std::printf("metrics on http://%s:%u/metrics\n", host.c_str(),
                server.metrics_http_port());
    std::printf("debug on http://%s:%u/debug/{sessions,queues,cache,slow}\n",
                host.c_str(), server.metrics_http_port());
  }
  if (!options.trace_dir.empty()) {
    std::printf("tracing to %s (sample %g, slow >= %gms)\n",
                options.trace_dir.c_str(), options.trace_sample_rate,
                options.trace_slow_ms);
  }
  std::fflush(stdout);

  // Park until a shutdown signal lands in the self-pipe.
  char byte;
  ssize_t n;
  do {
    n = read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::printf("draining (deadline %gs)...\n", drain_deadline);
  std::fflush(stdout);
  std::size_t cancelled = 0;
  Status drained = server.Drain(drain_deadline, &cancelled);
  std::printf("drained: %zu straggler(s) cancelled\n", cancelled);
  return drained.ok() ? 0 : 1;
}

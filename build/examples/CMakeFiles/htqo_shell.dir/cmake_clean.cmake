file(REMOVE_RECURSE
  "CMakeFiles/htqo_shell.dir/htqo_shell.cpp.o"
  "CMakeFiles/htqo_shell.dir/htqo_shell.cpp.o.d"
  "htqo_shell"
  "htqo_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

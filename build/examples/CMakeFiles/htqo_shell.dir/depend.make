# Empty dependencies file for htqo_shell.
# This may be replaced when dependencies are built.

# Empty dependencies file for width_zoo.
# This may be replaced when dependencies are built.

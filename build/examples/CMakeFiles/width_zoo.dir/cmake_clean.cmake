file(REMOVE_RECURSE
  "CMakeFiles/width_zoo.dir/width_zoo.cpp.o"
  "CMakeFiles/width_zoo.dir/width_zoo.cpp.o.d"
  "width_zoo"
  "width_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

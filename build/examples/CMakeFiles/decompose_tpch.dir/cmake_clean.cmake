file(REMOVE_RECURSE
  "CMakeFiles/decompose_tpch.dir/decompose_tpch.cpp.o"
  "CMakeFiles/decompose_tpch.dir/decompose_tpch.cpp.o.d"
  "decompose_tpch"
  "decompose_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for decompose_tpch.
# This may be replaced when dependencies are built.

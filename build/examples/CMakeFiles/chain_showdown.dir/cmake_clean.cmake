file(REMOVE_RECURSE
  "CMakeFiles/chain_showdown.dir/chain_showdown.cpp.o"
  "CMakeFiles/chain_showdown.dir/chain_showdown.cpp.o.d"
  "chain_showdown"
  "chain_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

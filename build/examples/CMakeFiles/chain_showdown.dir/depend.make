# Empty dependencies file for chain_showdown.
# This may be replaced when dependencies are built.

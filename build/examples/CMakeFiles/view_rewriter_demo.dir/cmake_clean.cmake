file(REMOVE_RECURSE
  "CMakeFiles/view_rewriter_demo.dir/view_rewriter_demo.cpp.o"
  "CMakeFiles/view_rewriter_demo.dir/view_rewriter_demo.cpp.o.d"
  "view_rewriter_demo"
  "view_rewriter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_rewriter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for view_rewriter_demo.
# This may be replaced when dependencies are built.

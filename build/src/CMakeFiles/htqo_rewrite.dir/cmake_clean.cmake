file(REMOVE_RECURSE
  "CMakeFiles/htqo_rewrite.dir/rewrite/view_rewriter.cc.o"
  "CMakeFiles/htqo_rewrite.dir/rewrite/view_rewriter.cc.o.d"
  "libhtqo_rewrite.a"
  "libhtqo_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtqo_rewrite.a"
)

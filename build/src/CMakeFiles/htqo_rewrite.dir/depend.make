# Empty dependencies file for htqo_rewrite.
# This may be replaced when dependencies are built.

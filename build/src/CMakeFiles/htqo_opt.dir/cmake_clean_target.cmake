file(REMOVE_RECURSE
  "libhtqo_opt.a"
)

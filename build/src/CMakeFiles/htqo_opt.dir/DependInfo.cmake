
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cost_model.cc" "src/CMakeFiles/htqo_opt.dir/opt/cost_model.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/cost_model.cc.o.d"
  "/root/repo/src/opt/dp_optimizer.cc" "src/CMakeFiles/htqo_opt.dir/opt/dp_optimizer.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/dp_optimizer.cc.o.d"
  "/root/repo/src/opt/geqo_optimizer.cc" "src/CMakeFiles/htqo_opt.dir/opt/geqo_optimizer.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/geqo_optimizer.cc.o.d"
  "/root/repo/src/opt/join_graph.cc" "src/CMakeFiles/htqo_opt.dir/opt/join_graph.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/join_graph.cc.o.d"
  "/root/repo/src/opt/naive_optimizer.cc" "src/CMakeFiles/htqo_opt.dir/opt/naive_optimizer.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/naive_optimizer.cc.o.d"
  "/root/repo/src/opt/qhd_planner.cc" "src/CMakeFiles/htqo_opt.dir/opt/qhd_planner.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/qhd_planner.cc.o.d"
  "/root/repo/src/opt/yannakakis.cc" "src/CMakeFiles/htqo_opt.dir/opt/yannakakis.cc.o" "gcc" "src/CMakeFiles/htqo_opt.dir/opt/yannakakis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

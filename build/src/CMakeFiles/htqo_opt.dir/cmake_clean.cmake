file(REMOVE_RECURSE
  "CMakeFiles/htqo_opt.dir/opt/cost_model.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/cost_model.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/dp_optimizer.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/dp_optimizer.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/geqo_optimizer.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/geqo_optimizer.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/join_graph.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/join_graph.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/naive_optimizer.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/naive_optimizer.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/qhd_planner.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/qhd_planner.cc.o.d"
  "CMakeFiles/htqo_opt.dir/opt/yannakakis.cc.o"
  "CMakeFiles/htqo_opt.dir/opt/yannakakis.cc.o.d"
  "libhtqo_opt.a"
  "libhtqo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

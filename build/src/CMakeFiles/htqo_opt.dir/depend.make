# Empty dependencies file for htqo_opt.
# This may be replaced when dependencies are built.

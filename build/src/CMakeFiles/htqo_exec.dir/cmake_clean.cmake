file(REMOVE_RECURSE
  "CMakeFiles/htqo_exec.dir/exec/executor.cc.o"
  "CMakeFiles/htqo_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/htqo_exec.dir/exec/expression.cc.o"
  "CMakeFiles/htqo_exec.dir/exec/expression.cc.o.d"
  "CMakeFiles/htqo_exec.dir/exec/operators.cc.o"
  "CMakeFiles/htqo_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/htqo_exec.dir/exec/plan.cc.o"
  "CMakeFiles/htqo_exec.dir/exec/plan.cc.o.d"
  "libhtqo_exec.a"
  "libhtqo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtqo_exec.a"
)

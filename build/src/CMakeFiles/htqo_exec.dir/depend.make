# Empty dependencies file for htqo_exec.
# This may be replaced when dependencies are built.

# Empty dependencies file for htqo_decomp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/biconnected.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/biconnected.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/biconnected.cc.o.d"
  "/root/repo/src/decomp/cost_k_decomp.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/cost_k_decomp.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/cost_k_decomp.cc.o.d"
  "/root/repo/src/decomp/det_k_decomp.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/det_k_decomp.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/det_k_decomp.cc.o.d"
  "/root/repo/src/decomp/hinge.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/hinge.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/hinge.cc.o.d"
  "/root/repo/src/decomp/hypertree.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/hypertree.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/hypertree.cc.o.d"
  "/root/repo/src/decomp/optimize.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/optimize.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/optimize.cc.o.d"
  "/root/repo/src/decomp/qhd.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/qhd.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/qhd.cc.o.d"
  "/root/repo/src/decomp/tree_decomposition.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/tree_decomposition.cc.o.d"
  "/root/repo/src/decomp/validate.cc" "src/CMakeFiles/htqo_decomp.dir/decomp/validate.cc.o" "gcc" "src/CMakeFiles/htqo_decomp.dir/decomp/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

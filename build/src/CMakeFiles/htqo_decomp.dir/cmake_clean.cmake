file(REMOVE_RECURSE
  "CMakeFiles/htqo_decomp.dir/decomp/biconnected.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/biconnected.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/cost_k_decomp.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/cost_k_decomp.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/det_k_decomp.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/det_k_decomp.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/hinge.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/hinge.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/hypertree.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/hypertree.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/optimize.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/optimize.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/qhd.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/qhd.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/tree_decomposition.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/tree_decomposition.cc.o.d"
  "CMakeFiles/htqo_decomp.dir/decomp/validate.cc.o"
  "CMakeFiles/htqo_decomp.dir/decomp/validate.cc.o.d"
  "libhtqo_decomp.a"
  "libhtqo_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtqo_decomp.a"
)

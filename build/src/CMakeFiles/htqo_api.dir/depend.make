# Empty dependencies file for htqo_api.
# This may be replaced when dependencies are built.

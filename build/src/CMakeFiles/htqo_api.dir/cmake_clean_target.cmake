file(REMOVE_RECURSE
  "libhtqo_api.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htqo_api.dir/api/hybrid_optimizer.cc.o"
  "CMakeFiles/htqo_api.dir/api/hybrid_optimizer.cc.o.d"
  "libhtqo_api.a"
  "libhtqo_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/htqo_util.dir/util/bitset.cc.o"
  "CMakeFiles/htqo_util.dir/util/bitset.cc.o.d"
  "CMakeFiles/htqo_util.dir/util/strings.cc.o"
  "CMakeFiles/htqo_util.dir/util/strings.cc.o.d"
  "libhtqo_util.a"
  "libhtqo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

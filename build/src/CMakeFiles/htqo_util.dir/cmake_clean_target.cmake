file(REMOVE_RECURSE
  "libhtqo_util.a"
)

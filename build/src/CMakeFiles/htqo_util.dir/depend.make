# Empty dependencies file for htqo_util.
# This may be replaced when dependencies are built.

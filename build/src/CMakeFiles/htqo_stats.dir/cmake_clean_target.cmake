file(REMOVE_RECURSE
  "libhtqo_stats.a"
)

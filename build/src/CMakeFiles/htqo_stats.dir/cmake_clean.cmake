file(REMOVE_RECURSE
  "CMakeFiles/htqo_stats.dir/stats/estimator.cc.o"
  "CMakeFiles/htqo_stats.dir/stats/estimator.cc.o.d"
  "CMakeFiles/htqo_stats.dir/stats/statistics.cc.o"
  "CMakeFiles/htqo_stats.dir/stats/statistics.cc.o.d"
  "libhtqo_stats.a"
  "libhtqo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htqo_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htqo_workload.dir/workload/hypergraph_zoo.cc.o"
  "CMakeFiles/htqo_workload.dir/workload/hypergraph_zoo.cc.o.d"
  "CMakeFiles/htqo_workload.dir/workload/query_gen.cc.o"
  "CMakeFiles/htqo_workload.dir/workload/query_gen.cc.o.d"
  "CMakeFiles/htqo_workload.dir/workload/synthetic.cc.o"
  "CMakeFiles/htqo_workload.dir/workload/synthetic.cc.o.d"
  "CMakeFiles/htqo_workload.dir/workload/tpch_gen.cc.o"
  "CMakeFiles/htqo_workload.dir/workload/tpch_gen.cc.o.d"
  "CMakeFiles/htqo_workload.dir/workload/tpch_queries.cc.o"
  "CMakeFiles/htqo_workload.dir/workload/tpch_queries.cc.o.d"
  "libhtqo_workload.a"
  "libhtqo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

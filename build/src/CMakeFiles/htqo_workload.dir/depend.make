# Empty dependencies file for htqo_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/hypergraph_zoo.cc" "src/CMakeFiles/htqo_workload.dir/workload/hypergraph_zoo.cc.o" "gcc" "src/CMakeFiles/htqo_workload.dir/workload/hypergraph_zoo.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/htqo_workload.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/htqo_workload.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/htqo_workload.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/htqo_workload.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/tpch_gen.cc" "src/CMakeFiles/htqo_workload.dir/workload/tpch_gen.cc.o" "gcc" "src/CMakeFiles/htqo_workload.dir/workload/tpch_gen.cc.o.d"
  "/root/repo/src/workload/tpch_queries.cc" "src/CMakeFiles/htqo_workload.dir/workload/tpch_queries.cc.o" "gcc" "src/CMakeFiles/htqo_workload.dir/workload/tpch_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhtqo_workload.a"
)

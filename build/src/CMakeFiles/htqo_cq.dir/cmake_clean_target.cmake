file(REMOVE_RECURSE
  "libhtqo_cq.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/conjunctive_query.cc" "src/CMakeFiles/htqo_cq.dir/cq/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/htqo_cq.dir/cq/conjunctive_query.cc.o.d"
  "/root/repo/src/cq/hypergraph_builder.cc" "src/CMakeFiles/htqo_cq.dir/cq/hypergraph_builder.cc.o" "gcc" "src/CMakeFiles/htqo_cq.dir/cq/hypergraph_builder.cc.o.d"
  "/root/repo/src/cq/isolator.cc" "src/CMakeFiles/htqo_cq.dir/cq/isolator.cc.o" "gcc" "src/CMakeFiles/htqo_cq.dir/cq/isolator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/htqo_cq.dir/cq/conjunctive_query.cc.o"
  "CMakeFiles/htqo_cq.dir/cq/conjunctive_query.cc.o.d"
  "CMakeFiles/htqo_cq.dir/cq/hypergraph_builder.cc.o"
  "CMakeFiles/htqo_cq.dir/cq/hypergraph_builder.cc.o.d"
  "CMakeFiles/htqo_cq.dir/cq/isolator.cc.o"
  "CMakeFiles/htqo_cq.dir/cq/isolator.cc.o.d"
  "libhtqo_cq.a"
  "libhtqo_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for htqo_cq.
# This may be replaced when dependencies are built.

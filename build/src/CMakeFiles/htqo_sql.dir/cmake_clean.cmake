file(REMOVE_RECURSE
  "CMakeFiles/htqo_sql.dir/sql/ast.cc.o"
  "CMakeFiles/htqo_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/htqo_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/htqo_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/htqo_sql.dir/sql/parser.cc.o"
  "CMakeFiles/htqo_sql.dir/sql/parser.cc.o.d"
  "libhtqo_sql.a"
  "libhtqo_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtqo_sql.a"
)

# Empty compiler generated dependencies file for htqo_sql.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/gyo.cc.o"
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/gyo.cc.o.d"
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/hypergraph.cc.o"
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/hypergraph.cc.o.d"
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/join_tree.cc.o"
  "CMakeFiles/htqo_hypergraph.dir/hypergraph/join_tree.cc.o.d"
  "libhtqo_hypergraph.a"
  "libhtqo_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

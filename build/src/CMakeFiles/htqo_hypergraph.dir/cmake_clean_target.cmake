file(REMOVE_RECURSE
  "libhtqo_hypergraph.a"
)

# Empty dependencies file for htqo_hypergraph.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for htqo_hypergraph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhtqo_storage.a"
)

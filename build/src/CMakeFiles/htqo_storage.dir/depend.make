# Empty dependencies file for htqo_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htqo_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/htqo_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/htqo_storage.dir/storage/csv.cc.o"
  "CMakeFiles/htqo_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/htqo_storage.dir/storage/relation.cc.o"
  "CMakeFiles/htqo_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/htqo_storage.dir/storage/schema.cc.o"
  "CMakeFiles/htqo_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/htqo_storage.dir/storage/value.cc.o"
  "CMakeFiles/htqo_storage.dir/storage/value.cc.o.d"
  "libhtqo_storage.a"
  "libhtqo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htqo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

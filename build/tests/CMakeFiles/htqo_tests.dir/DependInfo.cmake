
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitset_test.cc" "tests/CMakeFiles/htqo_tests.dir/bitset_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/bitset_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/htqo_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/decomposition_test.cc" "tests/CMakeFiles/htqo_tests.dir/decomposition_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/decomposition_test.cc.o.d"
  "/root/repo/tests/end_to_end_test.cc" "tests/CMakeFiles/htqo_tests.dir/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/end_to_end_test.cc.o.d"
  "/root/repo/tests/equivalence_property_test.cc" "tests/CMakeFiles/htqo_tests.dir/equivalence_property_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/equivalence_property_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/htqo_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/expression_test.cc" "tests/CMakeFiles/htqo_tests.dir/expression_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/expression_test.cc.o.d"
  "/root/repo/tests/having_limit_test.cc" "tests/CMakeFiles/htqo_tests.dir/having_limit_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/having_limit_test.cc.o.d"
  "/root/repo/tests/hinge_test.cc" "tests/CMakeFiles/htqo_tests.dir/hinge_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/hinge_test.cc.o.d"
  "/root/repo/tests/hypergraph_test.cc" "tests/CMakeFiles/htqo_tests.dir/hypergraph_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/hypergraph_test.cc.o.d"
  "/root/repo/tests/hypergraph_zoo_test.cc" "tests/CMakeFiles/htqo_tests.dir/hypergraph_zoo_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/hypergraph_zoo_test.cc.o.d"
  "/root/repo/tests/hypertree_test.cc" "tests/CMakeFiles/htqo_tests.dir/hypertree_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/hypertree_test.cc.o.d"
  "/root/repo/tests/in_predicate_test.cc" "tests/CMakeFiles/htqo_tests.dir/in_predicate_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/in_predicate_test.cc.o.d"
  "/root/repo/tests/isolator_test.cc" "tests/CMakeFiles/htqo_tests.dir/isolator_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/isolator_test.cc.o.d"
  "/root/repo/tests/misc_coverage_test.cc" "tests/CMakeFiles/htqo_tests.dir/misc_coverage_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/misc_coverage_test.cc.o.d"
  "/root/repo/tests/nested_query_test.cc" "tests/CMakeFiles/htqo_tests.dir/nested_query_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/nested_query_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/htqo_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/optimize_test.cc" "tests/CMakeFiles/htqo_tests.dir/optimize_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/optimize_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/htqo_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/paper_examples_test.cc" "tests/CMakeFiles/htqo_tests.dir/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/paper_examples_test.cc.o.d"
  "/root/repo/tests/qhd_eval_test.cc" "tests/CMakeFiles/htqo_tests.dir/qhd_eval_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/qhd_eval_test.cc.o.d"
  "/root/repo/tests/relation_test.cc" "tests/CMakeFiles/htqo_tests.dir/relation_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/relation_test.cc.o.d"
  "/root/repo/tests/rewriter_test.cc" "tests/CMakeFiles/htqo_tests.dir/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/rewriter_test.cc.o.d"
  "/root/repo/tests/scalar_subquery_test.cc" "tests/CMakeFiles/htqo_tests.dir/scalar_subquery_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/scalar_subquery_test.cc.o.d"
  "/root/repo/tests/sql_parser_test.cc" "tests/CMakeFiles/htqo_tests.dir/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/sql_parser_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/htqo_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/structural_baselines_test.cc" "tests/CMakeFiles/htqo_tests.dir/structural_baselines_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/structural_baselines_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/htqo_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/validate_test.cc" "tests/CMakeFiles/htqo_tests.dir/validate_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/validate_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/htqo_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/htqo_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/yannakakis_test.cc" "tests/CMakeFiles/htqo_tests.dir/yannakakis_test.cc.o" "gcc" "tests/CMakeFiles/htqo_tests.dir/yannakakis_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for htqo_tests.
# This may be replaced when dependencies are built.

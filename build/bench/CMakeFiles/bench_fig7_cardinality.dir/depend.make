# Empty dependencies file for bench_fig7_cardinality.
# This may be replaced when dependencies are built.

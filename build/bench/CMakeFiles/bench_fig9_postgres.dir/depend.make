# Empty dependencies file for bench_fig9_postgres.
# This may be replaced when dependencies are built.

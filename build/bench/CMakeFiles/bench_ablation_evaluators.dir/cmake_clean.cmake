file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_evaluators.dir/bench_ablation_evaluators.cc.o"
  "CMakeFiles/bench_ablation_evaluators.dir/bench_ablation_evaluators.cc.o.d"
  "bench_ablation_evaluators"
  "bench_ablation_evaluators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evaluators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10_optimize.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_optimize.cc" "bench/CMakeFiles/bench_fig10_optimize.dir/bench_fig10_optimize.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_optimize.dir/bench_fig10_optimize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htqo_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_optimize.dir/bench_fig10_optimize.cc.o"
  "CMakeFiles/bench_fig10_optimize.dir/bench_fig10_optimize.cc.o.d"
  "bench_fig10_optimize"
  "bench_fig10_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "opt/qhd_planner.h"

#include <algorithm>
#include <optional>

#include "cq/hypergraph_builder.h"
#include "exec/adaptive.h"
#include "exec/executor.h"
#include "exec/shard.h"
#include "opt/tree_waves.h"

namespace htqo {

namespace {

// Projects `rel` onto the chi variables that are present in its schema,
// deduplicating (set semantics).
Result<Relation> ProjectToChi(const ResolvedQuery& rq, const Bitset& chi,
                              const Relation& rel, ExecContext* ctx) {
  std::vector<std::string> keep;
  for (std::size_t v : chi.ToVector()) {
    const std::string& name = rq.cq.vars[v].name;
    if (rel.schema().IndexOf(name).has_value()) keep.push_back(name);
  }
  return ProjectByName(rel, keep, /*distinct=*/true, ctx);
}

}  // namespace

Result<Relation> EvaluateDecomposition(const ResolvedQuery& rq,
                                       const Catalog& catalog,
                                       const Hypergraph& /*h*/,
                                       const Hypertree& hd, ExecContext* ctx) {
  if (rq.cq.always_false) return EmptyAnswer(rq);

  std::vector<std::optional<Relation>> rel(hd.NumNodes());

  // Adaptive re-planning (DESIGN.md §6h): with a controller on the context,
  // both engines iterate height waves (so trip decisions happen at thread-
  // count-independent barriers), node results are compared against their
  // estimates after each wave, and checkpointed subtree results from an
  // abandoned pass short-circuit matching nodes of the resumed one.
  ReplanController* const rc = ctx->replan;
  std::vector<ReplanController::CheckpointKey> keys;
  // Checkpointed results are taken here, on the coordinating thread, before
  // any pool lane runs (the controller's checkpoint store is not locked);
  // nodes beneath a staged one are skipped entirely.
  std::vector<std::optional<Relation>> staged(hd.NumNodes());
  std::vector<bool> skip(hd.NumNodes(), false);
  // Nodes restored from a checkpoint already tripped (or were paid for) in
  // the abandoned pass; they never re-trigger a trip this pass.
  std::vector<bool> reused(hd.NumNodes(), false);
  if (rc != nullptr) {
    keys.resize(hd.NumNodes());
    std::vector<Bitset> subtree_lambda(hd.NumNodes());
    for (std::size_t p : hd.PostOrder()) {
      subtree_lambda[p] = hd.node(p).lambda;
      for (std::size_t c : hd.node(p).children) {
        subtree_lambda[p] |= subtree_lambda[c];
      }
      keys[p] = {subtree_lambda[p].ToVector(), hd.node(p).chi.ToVector()};
    }
    for (std::size_t p : hd.PreOrder()) {
      const std::size_t parent = hd.node(p).parent;
      if (parent != HypertreeNode::kNoParent &&
          (skip[parent] || staged[parent].has_value())) {
        skip[p] = true;
      } else {
        staged[p] = rc->TakeCheckpoint(keys[p]);
        reused[p] = staged[p].has_value();
      }
    }
  }

  // Sharded evaluation: scan every atom once (fanned across the pool's
  // shard lanes) and pre-reduce the scans with the hash-partitioned
  // exchange program over a spanning forest of the shares-a-variable
  // graph — sound even for cyclic queries, where it only drops rows that
  // cannot match a neighbouring atom on their shared variables. Nodes then
  // fold pre-reduced copies instead of re-scanning. The reduced contents
  // are S-invariant, so the greedy fold (and the final output) is
  // byte-identical at any shard count; vs. the unsharded engine only the
  // row multiset is guaranteed (smaller inputs can reorder the fold).
  // Replan-armed runs keep the scan path: replanning owns the barriers.
  const bool sharded = ctx->shard != nullptr && rc == nullptr;
  std::vector<Relation> reduced_atoms;
  if (sharded) {
    reduced_atoms.resize(rq.cq.atoms.size());
    Status s = ShardParallelMap(ctx, reduced_atoms.size(),
                                [&](std::size_t a) -> Status {
                                  auto scan = ScanAtom(rq, a, catalog, ctx);
                                  if (!scan.ok()) return scan.status();
                                  reduced_atoms[a] = std::move(scan.value());
                                  return Status::Ok();
                                });
    if (!s.ok()) return s;
    SpanningForest sf = BuildSharedColumnForest(reduced_atoms);
    s = ShardedReduceForest(&reduced_atoms, sf.parent, sf.children,
                            sf.postorder, SpanningForest::kNone, ctx);
    if (!s.ok()) return s;
  }

  auto process_node = [&](std::size_t p) -> Status {
    if (rc != nullptr) {
      if (skip[p]) return Status::Ok();
      if (staged[p].has_value()) {
        ScopedSpan node_span(ctx->tracer, "qhd.node", ctx->SpanParent());
        node_span.Attr("node", p);
        node_span.Attr("checkpoint", "reused");
        node_span.Attr("rows", staged[p]->NumRows());
        rel[p] = std::move(*staged[p]);
        staged[p].reset();
        return Status::Ok();
      }
    }
    const HypertreeNode& node = hd.node(p);
    // Explicit parent: under RunWaves this body runs on a pool lane whose
    // TLS stack is empty, so the wave span arrives via ctx->trace_parent.
    ScopedSpan node_span(ctx->tracer, "qhd.node", ctx->SpanParent());
    node_span.Attr("node", p);

    // --- Steps P' and P'', interleaved. ------------------------------------
    // The pool holds the lambda(p) scans and the children's messages. They
    // are folded together greedily, always preferring the smallest relation
    // that shares a column with the accumulated result. This realizes —
    // and generalizes — the paper's topological-order caveat (Section 4.1):
    // a decomposition vertex of a cyclic query typically carries atoms from
    // *remote* parts of the cycle in one lambda label; joining them before
    // the child message that connects them would temporarily materialize
    // their cross product. Priority children (recorded by Procedure
    // Optimize) are natural greedy picks: they are exactly the relations
    // bounding the variables a pruned atom used to bound.
    struct PoolItem {
      Relation rel;
      bool is_priority_child = false;
    };
    std::vector<PoolItem> pool;
    for (std::size_t a : node.lambda.ToVector()) {
      if (sharded) {
        // An atom may label several nodes' lambdas; each takes a copy of
        // the pre-reduced scan (charged as emitted rows, like a scan).
        Relation copy = reduced_atoms[a];
        Status s = ctx->ChargeRows(copy.NumRows());
        if (!s.ok()) return s;
        pool.push_back(PoolItem{std::move(copy), false});
        continue;
      }
      auto scan = ScanAtom(rq, a, catalog, ctx);
      if (!scan.ok()) return scan.status();
      pool.push_back(PoolItem{std::move(scan.value()), false});
    }
    for (std::size_t c : node.children) {
      HTQO_CHECK(rel[c].has_value());
      bool priority =
          std::find(node.priority_children.begin(),
                    node.priority_children.end(),
                    c) != node.priority_children.end();
      pool.push_back(PoolItem{std::move(*rel[c]), priority});
      rel[c].reset();  // free child memory eagerly
    }
    HTQO_CHECK(!pool.empty());

    // After each fold step, project to the chi variables plus everything a
    // remaining pool item still joins on (dropping those would break the
    // pending joins); deduplicate (set semantics) to keep the polynomial
    // bound.
    auto project_needed = [&](const Relation& in,
                              const std::vector<bool>& used) {
      std::vector<std::string> names;
      for (const Column& col : in.schema().columns()) {
        bool needed = false;
        for (std::size_t v : node.chi.ToVector()) {
          if (rq.cq.vars[v].name == col.name) needed = true;
        }
        if (!needed) {
          for (std::size_t i = 0; i < pool.size() && !needed; ++i) {
            if (used[i]) continue;
            needed = pool[i].rel.schema().IndexOf(col.name).has_value();
          }
        }
        if (needed) names.push_back(col.name);
      }
      return ProjectByName(in, names, /*distinct=*/true, ctx);
    };

    std::vector<bool> used(pool.size(), false);
    // Seed with the smallest relation (priority children win ties).
    std::size_t first = 0;
    for (std::size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].rel.NumRows() < pool[first].rel.NumRows() ||
          (pool[i].rel.NumRows() == pool[first].rel.NumRows() &&
           pool[i].is_priority_child && !pool[first].is_priority_child)) {
        first = i;
      }
    }
    used[first] = true;
    std::optional<Relation> current = std::move(pool[first].rel);
    for (std::size_t step = 1; step < pool.size(); ++step) {
      auto connected = [&](std::size_t i) {
        for (const Column& c : pool[i].rel.schema().columns()) {
          if (current->schema().IndexOf(c.name).has_value()) return true;
        }
        return false;
      };
      std::size_t best = pool.size();
      bool best_connected = false;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (used[i]) continue;
        bool conn = connected(i);
        if (best == pool.size() || (conn && !best_connected) ||
            (conn == best_connected &&
             pool[i].rel.NumRows() < pool[best].rel.NumRows())) {
          best = i;
          best_connected = conn;
        }
      }
      used[best] = true;
      auto joined = NaturalHashJoin(*current, pool[best].rel, ctx);
      if (!joined.ok()) return joined.status();
      pool[best].rel = Relation();  // free eagerly
      Status s = ctx->ChargeWork(joined->NumRows());
      if (!s.ok()) return s;
      auto projected = project_needed(*joined, used);
      if (!projected.ok()) return projected.status();
      current = std::move(projected.value());
      ctx->NotePeak(*current);
    }
    // Final projection to chi(p) exactly.
    auto chi_rel = ProjectToChi(rq, node.chi, *current, ctx);
    if (!chi_rel.ok()) return chi_rel.status();
    current = std::move(chi_rel.value());
    ctx->NotePeak(*current);

    HTQO_CHECK(current.has_value());
    // Every chi(p) variable must now be available (guaranteed by condition 3
    // pre-Optimize and by the pruning guard post-Optimize).
    for (std::size_t v : node.chi.ToVector()) {
      HTQO_CHECK(current->schema().IndexOf(rq.cq.vars[v].name).has_value());
    }
    node_span.Attr("rows", current->NumRows());
    rel[p] = std::move(*current);
    return Status::Ok();
  };

  // Between waves — on the coordinating thread, after every node body of
  // the wave has joined — compare each freshly computed node against its
  // installed estimate. A completed wave set is a function of the tree
  // alone, so the trip decision (and the checkpointed node set) is
  // identical at any thread count. On a trip, every live intermediate is
  // checkpointed in node-index order and the evaluator backs out; the
  // optimizer re-plans with the observed cardinalities pinned and resumes.
  auto wave_barrier = [&]() -> Status {
    if (rc == nullptr || !rc->armed()) return Status::Ok();
    std::size_t trip_node = hd.NumNodes();
    for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
      if (reused[p] || !rel[p].has_value()) continue;
      if (rc->ShouldTrip(p, rel[p]->NumRows())) {
        trip_node = p;
        break;
      }
    }
    if (trip_node == hd.NumNodes()) return Status::Ok();
    const std::size_t actual = rel[trip_node]->NumRows();
    const double estimate = rc->NodeEstimate(trip_node);
    for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
      if (!rel[p].has_value()) continue;
      // Reused results are re-stored too: a second pass may need them.
      rc->StoreCheckpoint(keys[p], std::move(*rel[p]));
      rel[p].reset();
    }
    rc->RecordTrip(trip_node, actual);
    return Status::Internal(
        "mid-query replan requested: node " + std::to_string(trip_node) +
        " produced " + std::to_string(actual) + " rows vs estimate " +
        std::to_string(static_cast<std::size_t>(estimate)));
  };

  const std::vector<std::size_t> postorder = hd.PostOrder();
  if (ctx->parallel() || rc != nullptr) {
    // Sibling subtrees evaluate concurrently, height wave by height wave;
    // each node touches only its own slot and its finished children, so the
    // result is identical to the serial postorder sweep. Adaptive runs take
    // this path even on the serial engine: trip decisions must land at the
    // same wave barriers at every thread count.
    std::vector<std::vector<std::size_t>> children(hd.NumNodes());
    for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
      children[p] = hd.node(p).children;
    }
    Status s = RunWaves(ctx, HeightWaves(postorder, children), process_node,
                        rc != nullptr ? wave_barrier
                                      : std::function<Status()>());
    if (!s.ok()) return s;
  } else {
    for (std::size_t p : postorder) {
      Status s = process_node(p);
      if (!s.ok()) return s;
    }
  }

  // --- Step P''': project the root onto out(Q). ----------------------------
  Bitset out_vars = OutputVarsBitset(rq.cq);
  HTQO_CHECK(out_vars.IsSubsetOf(hd.node(hd.root()).chi));
  std::vector<std::string> out_names;
  out_names.reserve(rq.cq.output_vars.size());
  for (VarId v : rq.cq.output_vars) out_names.push_back(rq.cq.vars[v].name);
  return ProjectByName(*rel[hd.root()], out_names, /*distinct=*/true, ctx);
}

Result<QhdEvaluation> EvaluateQhd(const ResolvedQuery& rq,
                                  const Catalog& catalog,
                                  const StatisticsRegistry* stats,
                                  const QhdPlanOptions& options,
                                  ExecContext* ctx) {
  Hypergraph h = BuildHypergraph(rq.cq);
  Bitset out_vars = OutputVarsBitset(rq.cq);

  Result<QhdResult> decomp = Status::Internal("unset");
  if (options.use_statistics) {
    Estimator estimator(stats);
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq.cq, estimator));
    decomp = QHypertreeDecomp(h, out_vars, model, options.decomp);
  } else {
    StructuralCostModel model;
    decomp = QHypertreeDecomp(h, out_vars, model, options.decomp);
  }
  if (!decomp.ok()) return decomp.status();

  QhdEvaluation eval;
  eval.decomposition = std::move(decomp.value());
  auto answer = EvaluateDecomposition(rq, catalog, h, eval.decomposition.hd,
                                      ctx);
  if (!answer.ok()) return answer.status();
  eval.answer = std::move(answer.value());
  return eval;
}

}  // namespace htqo

// Join graph: the quantitative optimizer's view of a CQ. One node per atom
// with estimated cardinality (after atom-local filters) and per-variable
// distinct counts; atoms are adjacent when they share a variable.

#ifndef HTQO_OPT_JOIN_GRAPH_H_
#define HTQO_OPT_JOIN_GRAPH_H_

#include <map>
#include <vector>

#include "cq/isolator.h"
#include "stats/estimator.h"
#include "util/bitset.h"

namespace htqo {

struct JoinGraph {
  std::size_t num_atoms = 0;
  std::size_t num_vars = 0;
  std::vector<double> atom_rows;       // estimated rows per atom
  std::vector<Bitset> atom_vars;       // variables per atom (over CQ vars)
  // distinct-count estimate per (atom, var)
  std::vector<std::map<VarId, double>> distinct;

  // True when the atom sets share at least one variable.
  bool Connected(const Bitset& a, const Bitset& b) const;

  // Variables of an atom set.
  Bitset VarsOf(const Bitset& atoms) const;
};

// Builds the join graph from the CQ using `estimator` (which may be running
// on defaults when no statistics were gathered).
JoinGraph BuildJoinGraph(const ResolvedQuery& rq, const Estimator& estimator);

}  // namespace htqo

#endif  // HTQO_OPT_JOIN_GRAPH_H_

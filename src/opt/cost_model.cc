#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace htqo {

double PlanCostModel::RowsOf(const Bitset& atoms) const {
  auto it = rows_memo_.find(atoms);
  if (it != rows_memo_.end()) return it->second;

  double rows = 1.0;
  for (std::size_t a = atoms.FirstSet(); a < atoms.size();
       a = atoms.NextSet(a)) {
    rows *= std::max(1.0, graph_.atom_rows[a]);
  }
  Bitset vars = graph_.VarsOf(atoms);
  for (std::size_t v = vars.FirstSet(); v < vars.size(); v = vars.NextSet(v)) {
    std::size_t occurrences = 0;
    double max_distinct = 1.0;
    for (std::size_t a = atoms.FirstSet(); a < atoms.size();
         a = atoms.NextSet(a)) {
      if (!graph_.atom_vars[a].Test(v)) continue;
      ++occurrences;
      auto d = graph_.distinct[a].find(v);
      double distinct =
          d != graph_.distinct[a].end() ? d->second : graph_.atom_rows[a];
      max_distinct = std::max(max_distinct, distinct);
    }
    if (occurrences >= 2) {
      rows /= std::pow(std::max(1.0, max_distinct),
                       static_cast<double>(occurrences - 1));
    }
  }
  rows = std::max(1.0, rows);
  rows_memo_.emplace(atoms, rows);
  return rows;
}

double PlanCostModel::JoinRows(const Bitset& left, const Bitset& right) const {
  return RowsOf(left | right);
}

double PlanCostModel::JoinWork(double left_rows, double right_rows,
                               double out_rows, JoinAlgo algo) const {
  switch (algo) {
    case JoinAlgo::kNestedLoop:
      return left_rows * right_rows;
    case JoinAlgo::kSortMerge: {
      auto nlogn = [](double n) {
        return n <= 1 ? n : n * std::log2(n);
      };
      return nlogn(left_rows) + nlogn(right_rows) + out_rows;
    }
    case JoinAlgo::kHash:
      return left_rows + right_rows + out_rows;
  }
  return left_rows + right_rows + out_rows;
}

double PlanCostModel::PlanCost(const JoinPlan& plan) const {
  if (plan.IsLeaf()) {
    return std::max(1.0, graph_.atom_rows[plan.atom]);
  }
  std::vector<std::size_t> latoms, ratoms;
  plan.left->CollectAtoms(&latoms);
  plan.right->CollectAtoms(&ratoms);
  Bitset lset(graph_.num_atoms), rset(graph_.num_atoms);
  for (std::size_t a : latoms) lset.Set(a);
  for (std::size_t a : ratoms) rset.Set(a);
  double lrows = RowsOf(lset);
  double rrows = RowsOf(rset);
  double orows = RowsOf(lset | rset);
  return PlanCost(*plan.left) + PlanCost(*plan.right) +
         JoinWork(lrows, rrows, orows, plan.algo);
}

}  // namespace htqo

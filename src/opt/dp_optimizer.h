// System-R-style dynamic-programming join-order optimizer — the stand-in for
// the commercial comparator ("CommDB") of Section 6. Enumerates bushy or
// left-deep plans over atom subsets, avoiding cross products whenever a
// connected split exists, and picks join algorithms per node.

#ifndef HTQO_OPT_DP_OPTIMIZER_H_
#define HTQO_OPT_DP_OPTIMIZER_H_

#include <memory>

#include "opt/cost_model.h"
#include "opt/join_graph.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

struct DpOptions {
  bool bushy = true;  // false restricts the search to left-deep trees
  // Nested loop is chosen when the estimated rows of the join's inner
  // (right) input are at or below this threshold; hash join otherwise.
  // 0 disables nested loops. Models the index-nestloop preference of
  // optimizers running on default statistics.
  double nested_loop_threshold = 0.0;
  // Optional search budget/deadline (one node charged per examined split);
  // a trip aborts the enumeration with DeadlineExceeded.
  ResourceGovernor* governor = nullptr;
};

// Optimal plan under the cost model. Supports up to 20 atoms.
Result<std::unique_ptr<JoinPlan>> DpOptimize(const JoinGraph& graph,
                                             const PlanCostModel& cost,
                                             const DpOptions& options =
                                                 DpOptions());

}  // namespace htqo

#endif  // HTQO_OPT_DP_OPTIMIZER_H_

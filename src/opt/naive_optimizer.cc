#include "opt/naive_optimizer.h"

namespace htqo {

std::unique_ptr<JoinPlan> NaiveFromOrderPlan(std::size_t num_atoms,
                                             JoinAlgo algo) {
  HTQO_CHECK(num_atoms >= 1);
  std::unique_ptr<JoinPlan> plan = JoinPlan::Leaf(0);
  for (std::size_t i = 1; i < num_atoms; ++i) {
    plan = JoinPlan::Join(std::move(plan), JoinPlan::Leaf(i), algo);
  }
  return plan;
}

}  // namespace htqo

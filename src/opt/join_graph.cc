#include "opt/join_graph.h"

#include <algorithm>

#include "decomp/qhd.h"

namespace htqo {

bool JoinGraph::Connected(const Bitset& a, const Bitset& b) const {
  return VarsOf(a).Intersects(VarsOf(b));
}

Bitset JoinGraph::VarsOf(const Bitset& atoms) const {
  Bitset out(num_vars);
  for (std::size_t a = atoms.FirstSet(); a < atoms.size();
       a = atoms.NextSet(a)) {
    out |= atom_vars[a];
  }
  return out;
}

JoinGraph BuildJoinGraph(const ResolvedQuery& rq, const Estimator& estimator) {
  JoinGraph graph;
  graph.num_atoms = rq.cq.atoms.size();
  graph.num_vars = rq.cq.vars.size();

  auto edge_stats = BuildEdgeStats(rq.cq, estimator);
  graph.atom_rows.reserve(graph.num_atoms);
  graph.distinct.reserve(graph.num_atoms);
  for (std::size_t a = 0; a < graph.num_atoms; ++a) {
    graph.atom_rows.push_back(edge_stats[a].rows);
    graph.distinct.push_back(edge_stats[a].distinct);
    Bitset vars(graph.num_vars);
    for (VarId v : rq.cq.atoms[a].Vars()) vars.Set(v);
    graph.atom_vars.push_back(std::move(vars));
  }
  return graph;
}

}  // namespace htqo

#include "opt/geqo_optimizer.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace htqo {

std::unique_ptr<JoinPlan> LeftDeepPlan(const std::vector<std::size_t>& order,
                                       const JoinGraph& graph,
                                       const PlanCostModel& cost,
                                       double nested_loop_threshold) {
  HTQO_CHECK(!order.empty());
  std::unique_ptr<JoinPlan> plan = JoinPlan::Leaf(order[0]);
  Bitset acc(graph.num_atoms);
  acc.Set(order[0]);
  for (std::size_t i = 1; i < order.size(); ++i) {
    Bitset single(graph.num_atoms);
    single.Set(order[i]);
    double inner_rows = cost.RowsOf(single);
    JoinAlgo algo = inner_rows <= nested_loop_threshold
                        ? JoinAlgo::kNestedLoop
                        : JoinAlgo::kHash;
    plan = JoinPlan::Join(std::move(plan), JoinPlan::Leaf(order[i]), algo);
    acc.Set(order[i]);
  }
  return plan;
}

Result<std::unique_ptr<JoinPlan>> GeqoOptimize(const JoinGraph& graph,
                                               const PlanCostModel& cost,
                                               const GeqoOptions& options) {
  const std::size_t n = graph.num_atoms;
  if (n == 0) return Status::InvalidArgument("empty join graph");

  Rng rng(options.seed);
  ResourceGovernor* governor = options.governor;
  auto fitness = [&](const std::vector<std::size_t>& order) {
    auto plan = LeftDeepPlan(order, graph, cost,
                             options.nested_loop_threshold);
    return cost.PlanCost(*plan);
  };

  // Initial population: random permutations.
  std::vector<std::vector<std::size_t>> population;
  population.reserve(options.population);
  std::vector<std::size_t> base(n);
  std::iota(base.begin(), base.end(), 0);
  for (std::size_t i = 0; i < std::max<std::size_t>(2, options.population);
       ++i) {
    std::vector<std::size_t> p = base;
    for (std::size_t j = n; j > 1; --j) {
      std::swap(p[j - 1], p[rng.Uniform(j)]);
    }
    population.push_back(std::move(p));
  }
  std::vector<double> scores;
  scores.reserve(population.size());
  for (const auto& p : population) {
    if (governor != nullptr) {
      Status s = governor->ChargeNodes(1);
      if (!s.ok()) return s;
    }
    scores.push_back(fitness(p));
  }

  auto tournament = [&]() -> std::size_t {
    std::size_t a = rng.Uniform(population.size());
    std::size_t b = rng.Uniform(population.size());
    return scores[a] <= scores[b] ? a : b;
  };

  // OX1 order crossover.
  auto crossover = [&](const std::vector<std::size_t>& a,
                       const std::vector<std::size_t>& b) {
    std::size_t lo = rng.Uniform(n);
    std::size_t hi = rng.Uniform(n);
    if (lo > hi) std::swap(lo, hi);
    std::vector<std::size_t> child(n, static_cast<std::size_t>(-1));
    std::vector<bool> used(n, false);
    for (std::size_t i = lo; i <= hi; ++i) {
      child[i] = a[i];
      used[a[i]] = true;
    }
    std::size_t pos = (hi + 1) % n;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t gene = b[(hi + 1 + i) % n];
      if (used[gene]) continue;
      child[pos] = gene;
      used[gene] = true;
      pos = (pos + 1) % n;
    }
    return child;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<std::vector<std::size_t>> next;
    std::vector<double> next_scores;
    next.reserve(population.size());
    next_scores.reserve(population.size());
    // Elitism: keep the best individual.
    std::size_t best = 0;
    for (std::size_t i = 1; i < population.size(); ++i) {
      if (scores[i] < scores[best]) best = i;
    }
    next.push_back(population[best]);
    next_scores.push_back(scores[best]);
    while (next.size() < population.size()) {
      if (governor != nullptr) {
        Status s = governor->ChargeNodes(1);
        if (!s.ok()) return s;
      }
      std::vector<std::size_t> child =
          crossover(population[tournament()], population[tournament()]);
      if (n >= 2 && rng.NextDouble() < options.mutation_rate) {
        std::size_t i = rng.Uniform(n);
        std::size_t j = rng.Uniform(n);
        std::swap(child[i], child[j]);
      }
      next_scores.push_back(fitness(child));
      next.push_back(std::move(child));
    }
    population = std::move(next);
    scores = std::move(next_scores);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  return LeftDeepPlan(population[best], graph, cost,
                      options.nested_loop_threshold);
}

}  // namespace htqo

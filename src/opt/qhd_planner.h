// The q-hypertree evaluator of Section 4 and its planner.
//
// Given a q-hypertree decomposition of CQ(Q):
//   P':   at every node, join the relations of lambda(p) (smallest-first,
//         the quantitative optimization inside each vertex of the tight
//         PostgreSQL coupling) and project onto chi(p);
//   P'':  bottom-up along the tree, join every node with its children —
//         children recorded by Procedure Optimize first — projecting back
//         onto chi(p) after each join; projections deduplicate (CQ set
//         semantics), which is what yields the polynomial bound;
//   P''': project the root onto out(Q).

#ifndef HTQO_OPT_QHD_PLANNER_H_
#define HTQO_OPT_QHD_PLANNER_H_

#include "cq/isolator.h"
#include "decomp/qhd.h"
#include "exec/operators.h"
#include "stats/statistics.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace htqo {

struct QhdPlanOptions {
  QhdOptions decomp;
  // true: cost-k-decomp minimizes the statistics cost model (hybrid mode);
  // false: purely structural cost model (the stand-alone regime when no
  // statistics are available).
  bool use_statistics = true;
};

struct QhdEvaluation {
  QhdResult decomposition;
  Relation answer;  // CQ answer: one column per out(Q) variable
};

// Evaluates the CQ of `rq` against `catalog` using the decomposition `hd`
// (steps P', P'', P''' only — no decomposition search). Exposed for the
// Fig. 10 ablation and tests.
Result<Relation> EvaluateDecomposition(const ResolvedQuery& rq,
                                       const Catalog& catalog,
                                       const Hypergraph& h,
                                       const Hypertree& hd, ExecContext* ctx);

// Full q-HD pipeline: build H(Q), run Algorithm q-HypertreeDecomp (Fig. 4)
// with the statistics or structural cost model, then evaluate.
// NotFound = "Failure" (no width-<=k decomposition rooted at out(Q)).
Result<QhdEvaluation> EvaluateQhd(const ResolvedQuery& rq,
                                  const Catalog& catalog,
                                  const StatisticsRegistry* stats,
                                  const QhdPlanOptions& options,
                                  ExecContext* ctx);

}  // namespace htqo

#endif  // HTQO_OPT_QHD_PLANNER_H_

// The no-optimizer baseline: joins the FROM-clause relations in syntactic
// order with a fixed join algorithm — Section 6's "without its standard
// optimizer" / "statistics disabled" regime, where no quantitative
// information steers either the order or the operator choice.

#ifndef HTQO_OPT_NAIVE_OPTIMIZER_H_
#define HTQO_OPT_NAIVE_OPTIMIZER_H_

#include <memory>

#include "exec/plan.h"

namespace htqo {

std::unique_ptr<JoinPlan> NaiveFromOrderPlan(std::size_t num_atoms,
                                             JoinAlgo algo);

}  // namespace htqo

#endif  // HTQO_OPT_NAIVE_OPTIMIZER_H_

// GEQO-style genetic join-order optimizer — the stand-in for PostgreSQL's
// genetic query optimizer (Section 5.1 mentions PostgreSQL's two
// alternative optimizers: exhaustive search and GEQO). Searches left-deep
// orders by evolving permutations: tournament selection, order crossover
// (OX1), swap mutation. Deterministic for a fixed seed.

#ifndef HTQO_OPT_GEQO_OPTIMIZER_H_
#define HTQO_OPT_GEQO_OPTIMIZER_H_

#include <memory>

#include "opt/cost_model.h"
#include "opt/join_graph.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

struct GeqoOptions {
  std::size_t population = 32;
  std::size_t generations = 48;
  uint64_t seed = 1;
  double mutation_rate = 0.15;
  // Same semantics as DpOptions::nested_loop_threshold.
  double nested_loop_threshold = 0.0;
  // Optional search budget/deadline (one node charged per fitness
  // evaluation); a trip aborts the evolution with DeadlineExceeded.
  ResourceGovernor* governor = nullptr;
};

// Best left-deep plan found by the genetic search.
Result<std::unique_ptr<JoinPlan>> GeqoOptimize(const JoinGraph& graph,
                                               const PlanCostModel& cost,
                                               const GeqoOptions& options =
                                                   GeqoOptions());

// Left-deep plan joining atoms in the given order, with join algorithms
// chosen by the nested-loop threshold rule. Shared with the naive optimizer.
std::unique_ptr<JoinPlan> LeftDeepPlan(const std::vector<std::size_t>& order,
                                       const JoinGraph& graph,
                                       const PlanCostModel& cost,
                                       double nested_loop_threshold);

}  // namespace htqo

#endif  // HTQO_OPT_GEQO_OPTIMIZER_H_

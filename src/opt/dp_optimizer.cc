#include "opt/dp_optimizer.h"

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

namespace htqo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct DpEntry {
  double cost = kInf;
  uint32_t left = 0;   // chosen split (0 for leaves)
  uint32_t right = 0;
  JoinAlgo algo = JoinAlgo::kHash;
};

}  // namespace

Result<std::unique_ptr<JoinPlan>> DpOptimize(const JoinGraph& graph,
                                             const PlanCostModel& cost,
                                             const DpOptions& options) {
  const std::size_t n = graph.num_atoms;
  if (n == 0) return Status::InvalidArgument("empty join graph");
  if (n > 20) {
    return Status::InvalidArgument("DP optimizer supports at most 20 atoms");
  }

  auto bitset_of = [&](uint32_t mask) {
    Bitset out(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (uint32_t{1} << i)) out.Set(i);
    }
    return out;
  };

  const uint32_t full = n == 32 ? ~uint32_t{0} : (uint32_t{1} << n) - 1;
  std::vector<DpEntry> dp(full + 1);
  std::vector<double> rows(full + 1, 0);
  std::vector<Bitset> vars(full + 1, Bitset(graph.num_vars));

  for (std::size_t i = 0; i < n; ++i) {
    uint32_t mask = uint32_t{1} << i;
    dp[mask].cost = std::max(1.0, graph.atom_rows[i]);
    rows[mask] = std::max(1.0, graph.atom_rows[i]);
    vars[mask] = graph.atom_vars[i];
  }

  auto pick_algo = [&](double rrows) {
    return rrows <= options.nested_loop_threshold ? JoinAlgo::kNestedLoop
                                                  : JoinAlgo::kHash;
  };

  ResourceGovernor* governor = options.governor;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton
    if (governor != nullptr) {
      Status s = governor->ChargeNodes(1);
      if (!s.ok()) return s;
    }
    rows[mask] = cost.RowsOf(bitset_of(mask));
    vars[mask] = graph.VarsOf(bitset_of(mask));

    auto try_split = [&](uint32_t l, uint32_t r) {
      if (governor != nullptr && !governor->ChargeNodes(1).ok()) return;
      if (dp[l].cost == kInf || dp[r].cost == kInf) return;
      JoinAlgo algo = pick_algo(rows[r]);
      double work = cost.JoinWork(rows[l], rows[r], rows[mask], algo);
      double total = dp[l].cost + dp[r].cost + work;
      if (total < dp[mask].cost) {
        dp[mask] = DpEntry{total, l, r, algo};
      }
    };

    // Pass 1: connected splits only; pass 2 (if none) allows cross products.
    for (int pass = 0; pass < 2 && dp[mask].cost == kInf; ++pass) {
      if (options.bushy) {
        for (uint32_t l = (mask - 1) & mask; l != 0; l = (l - 1) & mask) {
          uint32_t r = mask ^ l;
          if (l < r) continue;  // each unordered split once, as (l > r)
          bool connected = vars[l].Intersects(vars[r]);
          if (pass == 0 && !connected) continue;
          try_split(l, r);
          try_split(r, l);
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          uint32_t r = uint32_t{1} << i;
          if ((mask & r) == 0) continue;
          uint32_t l = mask ^ r;
          if (l == 0) continue;
          bool connected = vars[l].Intersects(vars[r]);
          if (pass == 0 && !connected) continue;
          try_split(l, r);
        }
      }
    }
  }

  if (governor != nullptr && governor->exhausted()) {
    return governor->trip_status();
  }
  if (dp[full].cost == kInf) {
    return Status::Internal("DP found no plan");
  }

  // Rebuild the plan tree.
  std::function<std::unique_ptr<JoinPlan>(uint32_t)> build =
      [&](uint32_t mask) -> std::unique_ptr<JoinPlan> {
    if ((mask & (mask - 1)) == 0) {
      std::size_t atom = 0;
      while ((mask & (uint32_t{1} << atom)) == 0) ++atom;
      return JoinPlan::Leaf(atom);
    }
    const DpEntry& e = dp[mask];
    return JoinPlan::Join(build(e.left), build(e.right), e.algo);
  };
  return build(full);
}

}  // namespace htqo

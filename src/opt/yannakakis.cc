#include "opt/yannakakis.h"

#include <algorithm>
#include <optional>

#include "cq/hypergraph_builder.h"
#include "exec/executor.h"
#include "exec/shard.h"
#include "hypergraph/join_tree.h"
#include "opt/tree_waves.h"

namespace htqo {

namespace {

// Shared three-pass core over an arbitrary forest of var-column relations.
struct Forest {
  std::vector<std::size_t> parent;  // kNone for roots
  std::vector<std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Postorder (children before parents) covering all trees.
  std::vector<std::size_t> PostOrder() const {
    std::vector<std::size_t> order;
    order.reserve(parent.size());
    std::vector<std::size_t> stack;
    for (std::size_t r : roots) {
      stack.push_back(r);
      std::vector<std::size_t> pre;
      while (!stack.empty()) {
        std::size_t p = stack.back();
        stack.pop_back();
        pre.push_back(p);
        for (std::size_t c : children[p]) stack.push_back(c);
      }
      order.insert(order.end(), pre.rbegin(), pre.rend());
    }
    return order;
  }
};

Result<Relation> ThreePass(std::vector<Relation> nodes, const Forest& forest,
                           const std::vector<std::string>& out_names,
                           ExecContext* ctx) {
  const std::vector<std::size_t> postorder = forest.PostOrder();

  // Pass (i): bottom-up semijoin reduction. The body touches only nodes[p]
  // and its (finished) children, so equal-height nodes are independent.
  auto reduce_up = [&](std::size_t p) -> Status {
    for (std::size_t c : forest.children[p]) {
      auto reduced = NaturalSemiJoin(nodes[p], nodes[c], ctx);
      if (!reduced.ok()) return reduced.status();
      nodes[p] = std::move(reduced.value());
    }
    ctx->NotePeak(nodes[p]);
    return Status::Ok();
  };

  // Pass (ii): top-down semijoin reduction (preorder = reverse postorder).
  // The body writes p's children and reads nodes[p], so equal-depth nodes
  // are independent (their child sets are disjoint).
  auto reduce_down = [&](std::size_t p) -> Status {
    for (std::size_t c : forest.children[p]) {
      auto reduced = NaturalSemiJoin(nodes[c], nodes[p], ctx);
      if (!reduced.ok()) return reduced.status();
      nodes[c] = std::move(reduced.value());
    }
    return Status::Ok();
  };

  // Pass (iii): bottom-up joins, projecting onto the output columns found
  // so far plus whatever connects to the parent. Reads the parent's schema,
  // which a later wave has not yet moved from.
  std::vector<std::optional<Relation>> collected(nodes.size());
  auto collect = [&](std::size_t p) -> Status {
    Relation t = std::move(nodes[p]);
    for (std::size_t c : forest.children[p]) {
      HTQO_CHECK(collected[c].has_value());
      auto joined = NaturalHashJoin(t, *collected[c], ctx);
      if (!joined.ok()) return joined.status();
      t = std::move(joined.value());
      collected[c].reset();
      Status s = ctx->ChargeWork(t.NumRows());
      if (!s.ok()) return s;
    }
    // Keep: output columns present, plus columns shared with the parent.
    std::vector<std::string> keep;
    for (const Column& col : t.schema().columns()) {
      bool needed = std::find(out_names.begin(), out_names.end(), col.name) !=
                    out_names.end();
      if (!needed && forest.parent[p] != Forest::kNone) {
        needed = nodes[forest.parent[p]]
                     .schema()
                     .IndexOf(col.name)
                     .has_value();
      }
      if (needed) keep.push_back(col.name);
    }
    auto projected = ProjectByName(t, keep, /*distinct=*/true, ctx);
    if (!projected.ok()) return projected.status();
    collected[p] = std::move(projected.value());
    ctx->NotePeak(*collected[p]);
    return Status::Ok();
  };

  // Sharded evaluation replaces the two semijoin passes with the
  // hash-partitioned exchange reduction (exec/shard.h): same survivor
  // rows in the same order at any shard count, and any Bloom phantom left
  // dangling is eliminated by the collect joins below. Replan-armed runs
  // keep the semijoin passes (replanning owns the wave barriers).
  const bool sharded = ctx->shard != nullptr && ctx->replan == nullptr;
  if (sharded) {
    ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
    pass_span.Attr("phase", "shard_reduce");
    Status s = ShardedReduceForest(&nodes, forest.parent, forest.children,
                                   postorder, Forest::kNone, ctx);
    if (!s.ok()) return s;
  }

  if (ctx->parallel()) {
    // Sibling subtrees run concurrently, wave by wave; node results are
    // order-independent, so the output matches the serial sweeps exactly.
    auto up = HeightWaves(postorder, forest.children);
    if (!sharded) {
      auto down = DepthWaves(postorder, forest.parent, Forest::kNone);
      {
        ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
        pass_span.Attr("phase", "reduce_up");
        Status s = RunWaves(ctx, up, reduce_up);
        if (!s.ok()) return s;
      }
      {
        ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
        pass_span.Attr("phase", "reduce_down");
        Status s = RunWaves(ctx, down, reduce_down);
        if (!s.ok()) return s;
      }
    }
    {
      ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
      pass_span.Attr("phase", "collect");
      Status s = RunWaves(ctx, up, collect);
      if (!s.ok()) return s;
    }
  } else {
    if (!sharded) {
      {
        ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
        pass_span.Attr("phase", "reduce_up");
        for (std::size_t p : postorder) {
          Status s = reduce_up(p);
          if (!s.ok()) return s;
        }
      }
      {
        ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
        pass_span.Attr("phase", "reduce_down");
        for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
          Status s = reduce_down(*it);
          if (!s.ok()) return s;
        }
      }
    }
    {
      ScopedSpan pass_span(ctx->tracer, "yannakakis.pass");
      pass_span.Attr("phase", "collect");
      for (std::size_t p : postorder) {
        Status s = collect(p);
        if (!s.ok()) return s;
      }
    }
  }

  // Combine the trees of the forest (cross products when disconnected).
  std::optional<Relation> result;
  for (std::size_t r : forest.roots) {
    HTQO_CHECK(collected[r].has_value());
    if (!result.has_value()) {
      result = std::move(*collected[r]);
    } else {
      auto joined = NaturalHashJoin(*result, *collected[r], ctx);
      if (!joined.ok()) return joined.status();
      result = std::move(joined.value());
    }
    collected[r].reset();
  }
  HTQO_CHECK(result.has_value());
  return ProjectByName(*result, out_names, /*distinct=*/true, ctx);
}

std::vector<std::string> OutNames(const ResolvedQuery& rq) {
  std::vector<std::string> out;
  out.reserve(rq.cq.output_vars.size());
  for (VarId v : rq.cq.output_vars) out.push_back(rq.cq.vars[v].name);
  return out;
}

}  // namespace

Result<Relation> YannakakisEvaluate(const ResolvedQuery& rq,
                                    const Catalog& catalog,
                                    ExecContext* ctx) {
  if (rq.cq.always_false) return EmptyAnswer(rq);
  Hypergraph h = BuildHypergraph(rq.cq);
  auto join_forest = BuildJoinForest(h);
  if (!join_forest.ok()) {
    return Status::NotFound(
        "Yannakakis's algorithm requires an acyclic query hypergraph");
  }

  Forest forest;
  forest.parent = join_forest->parent;
  forest.roots = join_forest->roots;
  forest.children.resize(h.NumEdges());
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    if (forest.parent[e] != Forest::kNone) {
      forest.children[forest.parent[e]].push_back(e);
    }
  }

  std::vector<Relation> nodes(rq.cq.atoms.size());
  if (ctx->shard != nullptr && ctx->replan == nullptr) {
    // Sharded runs fan the independent per-atom scans across the pool's
    // shard lanes; each task writes only its own slot and ScanAtom output
    // is deterministic at any thread count, so results don't depend on
    // scheduling.
    Status s = ShardParallelMap(ctx, nodes.size(), [&](std::size_t a) {
      auto scan = ScanAtom(rq, a, catalog, ctx);
      if (!scan.ok()) return scan.status();
      nodes[a] = std::move(scan.value());
      return Status::Ok();
    });
    if (!s.ok()) return s;
  } else {
    for (std::size_t a = 0; a < rq.cq.atoms.size(); ++a) {
      auto scan = ScanAtom(rq, a, catalog, ctx);
      if (!scan.ok()) return scan.status();
      nodes[a] = std::move(scan.value());
    }
  }
  return ThreePass(std::move(nodes), forest, OutNames(rq), ctx);
}

Result<Relation> EvaluateDecompositionClassic(const ResolvedQuery& rq,
                                              const Catalog& catalog,
                                              const Hypergraph& h,
                                              const Hypertree& hd,
                                              ExecContext* ctx) {
  if (rq.cq.always_false) return EmptyAnswer(rq);

  // The classic pipeline materializes chi-complete vertex relations, so it
  // requires condition 3 (chi ⊆ var(lambda)) — i.e. a decomposition that
  // has not been through Procedure Optimize.
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    if (!hd.node(p).chi.IsSubsetOf(h.VarsOf(hd.node(p).lambda))) {
      return Status::InvalidArgument(
          "classic evaluation requires chi ⊆ var(lambda) at every vertex "
          "(run q-HypertreeDecomp without Procedure Optimize)");
    }
  }

  Forest forest;
  forest.parent.resize(hd.NumNodes());
  forest.children.resize(hd.NumNodes());
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    forest.parent[p] = hd.node(p).parent == HypertreeNode::kNoParent
                           ? Forest::kNone
                           : hd.node(p).parent;
    forest.children[p] = hd.node(p).children;
  }
  forest.roots.push_back(hd.root());

  // Step S2': one relation per vertex — join of lambda(p) (connected-first
  // greedy fold), projected onto chi(p).
  std::vector<Relation> nodes;
  nodes.reserve(hd.NumNodes());
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    const HypertreeNode& node = hd.node(p);
    std::vector<std::size_t> atoms = node.lambda.ToVector();
    HTQO_CHECK(!atoms.empty());  // complete decompositions only
    std::vector<Relation> scans;
    scans.reserve(atoms.size());
    for (std::size_t a : atoms) {
      auto scan = ScanAtom(rq, a, catalog, ctx);
      if (!scan.ok()) return scan.status();
      scans.push_back(std::move(scan.value()));
    }
    std::vector<bool> used(scans.size(), false);
    std::size_t first = 0;
    for (std::size_t i = 1; i < scans.size(); ++i) {
      if (scans[i].NumRows() < scans[first].NumRows()) first = i;
    }
    used[first] = true;
    Relation current = std::move(scans[first]);
    for (std::size_t step = 1; step < scans.size(); ++step) {
      std::size_t best = scans.size();
      bool best_connected = false;
      auto connected = [&](std::size_t i) {
        for (const Column& c : scans[i].schema().columns()) {
          if (current.schema().IndexOf(c.name).has_value()) return true;
        }
        return false;
      };
      for (std::size_t i = 0; i < scans.size(); ++i) {
        if (used[i]) continue;
        bool conn = connected(i);
        if (best == scans.size() || (conn && !best_connected) ||
            (conn == best_connected &&
             scans[i].NumRows() < scans[best].NumRows())) {
          best = i;
          best_connected = conn;
        }
      }
      used[best] = true;
      auto joined = NaturalHashJoin(current, scans[best], ctx);
      if (!joined.ok()) return joined.status();
      current = std::move(joined.value());
      Status s = ctx->ChargeWork(current.NumRows());
      if (!s.ok()) return s;
    }
    // Project onto chi(p).
    std::vector<std::string> chi_names;
    for (std::size_t v : node.chi.ToVector()) {
      chi_names.push_back(rq.cq.vars[v].name);
    }
    auto chi_rel = ProjectByName(current, chi_names, /*distinct=*/true, ctx);
    if (!chi_rel.ok()) return chi_rel.status();
    nodes.push_back(std::move(chi_rel.value()));
    ctx->NotePeak(nodes.back());
  }

  // Step S2'': Yannakakis over the decomposition tree.
  return ThreePass(std::move(nodes), forest, OutNames(rq), ctx);
}

}  // namespace htqo

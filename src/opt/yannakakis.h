// Yannakakis's algorithm (Section 3.2, paper ref [12]) and the classic
// decomposition-based evaluation pipeline (steps S2'/S2'').
//
// For an acyclic query, Yannakakis evaluates over a join forest in three
// passes: (i) bottom-up semijoins, (ii) top-down semijoins (after which
// every node relation is fully reduced: each tuple participates in some
// answer), and (iii) a bottom-up join pass projecting onto the output
// variables plus whatever connects a subtree to its parent.
//
// For a cyclic query, step S2' first materializes one relation per
// decomposition vertex (the join of lambda(p) projected onto chi(p)),
// forming an equivalent acyclic instance whose join tree is the
// decomposition tree; step S2'' then runs the three passes above.
//
// This is the evaluation the paper's q-hypertree decompositions *replace*
// with a single rooted bottom-up pass; benches compare the two.

#ifndef HTQO_OPT_YANNAKAKIS_H_
#define HTQO_OPT_YANNAKAKIS_H_

#include "cq/isolator.h"
#include "decomp/hypertree.h"
#include "exec/operators.h"
#include "hypergraph/hypergraph.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace htqo {

// Evaluates an *acyclic* CQ by Yannakakis's algorithm over a join forest of
// H(Q). Returns the CQ answer relation (columns = out(Q) variables).
// NotFound when the query hypergraph is cyclic.
Result<Relation> YannakakisEvaluate(const ResolvedQuery& rq,
                                    const Catalog& catalog, ExecContext* ctx);

// Classic decomposition-based evaluation (S2' + S2''): materializes the
// vertex relations of `hd` (which must be a complete decomposition of
// H(Q) — every atom anchored; QHypertreeDecomp output qualifies) and runs
// the three Yannakakis passes over the decomposition tree. Unlike the
// q-hypertree evaluator this needs no rooting at out(Q).
Result<Relation> EvaluateDecompositionClassic(const ResolvedQuery& rq,
                                              const Catalog& catalog,
                                              const Hypergraph& h,
                                              const Hypertree& hd,
                                              ExecContext* ctx);

}  // namespace htqo

#endif  // HTQO_OPT_YANNAKAKIS_H_

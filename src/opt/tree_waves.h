// Wave scheduling for tree-shaped evaluation passes (Yannakakis semijoin
// reduction, q-HD bottom-up evaluation).
//
// A bottom-up pass computes each node from its (already-computed) children
// only, so all nodes of equal height are independent; a top-down pass reads
// the parent only, so all nodes of equal depth are independent. Grouping
// nodes into height (resp. depth) "waves" and running each wave on the
// thread pool parallelizes sibling subtrees while every cross-wave data
// dependency stays a strict barrier.
//
// Determinism contract: node bodies write only their own slots, so results
// are independent of execution order inside a wave. Error selection is the
// failing node earliest in the wave's (postorder-derived) order — the same
// node a serial sweep would report when failures are deterministic — and a
// governor trip mid-wave surfaces as the trip status even when later chunks
// were never claimed.
//
// Memory-adaptive execution composes with waves without extra machinery:
// each node body calls the spill-aware operators, which consult the shared
// (thread-safe) SpillManager through the one ExecContext, so every node of
// a wave decides independently whether its join/semijoin/distinct spills.
// The spill path itself is serial per operator, which keeps per-node output
// byte-identical at any thread count.

#ifndef HTQO_OPT_TREE_WAVES_H_
#define HTQO_OPT_TREE_WAVES_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "exec/operators.h"
#include "util/status.h"

namespace htqo {

// Nodes grouped by height, leaves (height 0) first; within a wave, nodes
// keep their relative postorder. `postorder` must list children before
// parents and cover every node.
inline std::vector<std::vector<std::size_t>> HeightWaves(
    const std::vector<std::size_t>& postorder,
    const std::vector<std::vector<std::size_t>>& children) {
  std::vector<std::size_t> height(children.size(), 0);
  std::size_t max_h = 0;
  for (std::size_t p : postorder) {
    for (std::size_t c : children[p]) {
      height[p] = std::max(height[p], height[c] + 1);
    }
    max_h = std::max(max_h, height[p]);
  }
  std::vector<std::vector<std::size_t>> waves(postorder.empty() ? 0
                                                                : max_h + 1);
  for (std::size_t p : postorder) waves[height[p]].push_back(p);
  return waves;
}

// Nodes grouped by depth, roots (depth 0) first; within a wave, nodes keep
// their relative reverse-postorder (preorder). `none` is the parent value
// marking a root.
inline std::vector<std::vector<std::size_t>> DepthWaves(
    const std::vector<std::size_t>& postorder,
    const std::vector<std::size_t>& parent, std::size_t none) {
  std::vector<std::size_t> depth(parent.size(), 0);
  std::size_t max_d = 0;
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    std::size_t p = *it;
    depth[p] = parent[p] == none ? 0 : depth[parent[p]] + 1;
    max_d = std::max(max_d, depth[p]);
  }
  std::vector<std::vector<std::size_t>> waves(postorder.empty() ? 0
                                                                : max_d + 1);
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    waves[depth[*it]].push_back(*it);
  }
  return waves;
}

// Runs node_body over each wave in order, fanning a wave's nodes out onto
// the context's pool. Callers use this only when ctx->parallel() — the
// serial engine keeps its original single loops so num_threads=1 is the
// exact pre-existing behavior — except adaptive (replan-armed) runs, which
// go through waves in both engines so trip decisions land at the same
// barriers at any thread count.
//
// `wave_barrier`, when set, runs on the calling thread after each wave
// except the last, once every node body of the wave has joined; a non-ok
// status aborts the remaining waves (used for mid-query replan trips).
inline Status RunWaves(ExecContext* ctx,
                       const std::vector<std::vector<std::size_t>>& waves,
                       const std::function<Status(std::size_t)>& node_body,
                       const std::function<Status()>& wave_barrier = {}) {
  // Pool lanes parent their spans through ctx->trace_parent; repointing it
  // at each wave's span is race-free because the write happens on the
  // calling thread between barrier waves (task handoff and join give
  // happens-before both ways).
  const uint64_t saved_parent = ctx->trace_parent;
  std::size_t wave_index = 0;
  Status result = Status::Ok();
  for (const std::vector<std::size_t>& wave : waves) {
    ScopedSpan wave_span(ctx->tracer, "wave");
    wave_span.Attr("index", wave_index++);
    wave_span.Attr("nodes", wave.size());
    const std::size_t batches_before =
        ctx->batches.load(std::memory_order_relaxed);
    ctx->trace_parent = wave_span.id() != 0 ? wave_span.id() : saved_parent;
    if (ctx->parallel() && wave.size() > 1) {
      std::vector<Status> status(wave.size(), Status::Ok());
      ctx->pool->ParallelFor(0, wave.size(), /*grain=*/1, ctx->num_threads,
                             ctx->governor,
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) {
                                 status[i] = node_body(wave[i]);
                               }
                             });
      if (ctx->governor != nullptr && ctx->governor->exhausted()) {
        result = ctx->governor->trip_status();
      } else {
        for (const Status& s : status) {
          if (!s.ok()) {
            result = s;
            break;
          }
        }
      }
    } else {
      for (std::size_t p : wave) {
        Status s = node_body(p);
        if (!s.ok()) {
          result = s;
          break;
        }
      }
    }
    wave_span.Attr("batches", ctx->batches.load(std::memory_order_relaxed) -
                                  batches_before);
    if (!result.ok()) break;
    if (wave_barrier && wave_index < waves.size()) {
      result = wave_barrier();
      if (!result.ok()) break;
    }
  }
  ctx->trace_parent = saved_parent;
  return result;
}

}  // namespace htqo

#endif  // HTQO_OPT_TREE_WAVES_H_

// Plan-cost estimation for join plans (the quantitative side of the hybrid
// optimizer). Join cardinalities use the standard formula over the join
// graph; operator costs charge |L|+|R|+|out| for hash joins and |L|·|R| for
// nested loops — the same units ExecContext meters at run time, so estimated
// and measured work are directly comparable.

#ifndef HTQO_OPT_COST_MODEL_H_
#define HTQO_OPT_COST_MODEL_H_

#include <map>

#include "exec/plan.h"
#include "opt/join_graph.h"

namespace htqo {

class PlanCostModel {
 public:
  explicit PlanCostModel(const JoinGraph& graph) : graph_(graph) {}

  // Estimated rows of the natural join of the given atom set (memoized).
  double RowsOf(const Bitset& atoms) const;

  // Estimated rows of joining two disjoint atom sets.
  double JoinRows(const Bitset& left, const Bitset& right) const;

  // Work of one join operator application.
  double JoinWork(double left_rows, double right_rows, double out_rows,
                  JoinAlgo algo) const;

  // Total estimated work of a plan (scans + all join nodes).
  double PlanCost(const JoinPlan& plan) const;

 private:
  const JoinGraph& graph_;
  mutable std::map<Bitset, double> rows_memo_;
};

}  // namespace htqo

#endif  // HTQO_OPT_COST_MODEL_H_

// det-k-decomp: deterministic search for normal-form hypertree
// decompositions of width at most k (Gottlob–Samer style backtracking with
// memoization over (component, connector) subproblems).
//
// The optional `root_conn` argument forces the root lambda to cover a given
// variable set — with root_conn = out(Q) this yields exactly the rooted
// decompositions required by Condition 2 of Definition 2 (Fig. 4).

#ifndef HTQO_DECOMP_DET_K_DECOMP_H_
#define HTQO_DECOMP_DET_K_DECOMP_H_

#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

// Returns a width-<=k hypertree decomposition of `h`, or NotFound when none
// exists. When `root_conn` is non-null, additionally requires
// *root_conn ⊆ chi(root). A non-null governor bounds the search: one node
// charged per enumerated separator candidate, memoized subproblems charged
// against the memory budget; DeadlineExceeded when a limit trips.
Result<Hypertree> DetKDecomp(const Hypergraph& h, std::size_t k,
                             const Bitset* root_conn = nullptr,
                             ResourceGovernor* governor = nullptr);

// Exact hypertree width of `h`, computed by trying k = 1..max_k; NotFound
// when hw(h) > max_k. Edgeless hypergraphs have width 0. DeadlineExceeded
// when the governor trips at any k.
Result<std::size_t> ComputeHypertreeWidth(const Hypergraph& h,
                                          std::size_t max_k,
                                          ResourceGovernor* governor =
                                              nullptr);

}  // namespace htqo

#endif  // HTQO_DECOMP_DET_K_DECOMP_H_

// Algorithm q-HypertreeDecomp (Fig. 4): computes a good q-hypertree
// decomposition of a conjunctive query.
//
// Pipeline:
//   1. cost-k-decomp over H(Q) with the root forced to cover out(Q)
//      (Condition 2 of Definition 2), minimizing the cost model;
//   2. completion: every atom absorbed during the normal-form search (an
//      edge covered by some chi but present in no lambda) is attached as a
//      width-1 child below a covering node, so the evaluator touches every
//      relation exactly once;
//   3. Procedure Optimize (unless disabled), pruning redundant lambda
//      entries and recording evaluation priorities.

#ifndef HTQO_DECOMP_QHD_H_
#define HTQO_DECOMP_QHD_H_

#include "cq/conjunctive_query.h"
#include "decomp/cost_k_decomp.h"
#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "obs/trace.h"
#include "stats/estimator.h"
#include "util/status.h"

namespace htqo {

struct QhdOptions {
  std::size_t max_width = 4;  // the fixed constant k ("typically k=4")
  bool run_optimize = true;   // feature (b); Fig. 10 ablates this
  // Use the first-feasible det-k-decomp search instead of the min-cost
  // search (the cost model is then ignored). First-feasible normal-form
  // trees carry bounding copies of separator atoms down the tree — the HD1
  // of Fig. 3 — which is precisely what Procedure Optimize prunes; the
  // min-cost search tends to produce guard-free trees directly.
  bool first_feasible = false;
  // Optional budget/deadline for the decomposition search and Procedure
  // Optimize; must outlive the call. A trip surfaces as DeadlineExceeded.
  ResourceGovernor* governor = nullptr;
  // Parallel search: with a pool and num_threads > 1, cost-k-decomp
  // evaluates the root's separator candidates concurrently (results stay
  // bit-identical to serial; see CostKDecomp). Borrowed.
  ThreadPool* pool = nullptr;
  std::size_t num_threads = 1;
  // Tracing: with a tracer set, QHypertreeDecomp emits one span per phase —
  // search.cost-k-decomp / search.det-k-decomp and optimize — under the
  // calling thread's open span. Borrowed; null = off.
  Tracer* tracer = nullptr;
};

struct QhdResult {
  Hypertree hd;
  std::size_t width = 0;   // width before Optimize
  std::size_t pruned = 0;  // lambda entries removed by Optimize
};

// Attaches a child node (chi = edge's vars, lambda = {edge}) under a node
// covering each edge that appears in no lambda label. Returns the number of
// nodes added. Exposed for tests.
std::size_t CompleteDecomposition(const Hypergraph& h, Hypertree* hd);

// Runs the Fig. 4 algorithm on an explicit hypergraph + output set.
// NotFound ("Failure") when no width-<=k decomposition covering `out_vars`
// at the root exists.
Result<QhdResult> QHypertreeDecomp(const Hypergraph& h, const Bitset& out_vars,
                                   const DecompositionCostModel& model,
                                   const QhdOptions& options = QhdOptions());

// Builds the per-edge statistics views for a CQ: estimated rows after
// atom-local filters and per-variable distinct counts. Works with or without
// gathered statistics (the Estimator supplies defaults).
std::vector<StatsDecompositionCostModel::EdgeStats> BuildEdgeStats(
    const ConjunctiveQuery& cq, const Estimator& estimator);

}  // namespace htqo

#endif  // HTQO_DECOMP_QHD_H_

// cost-k-decomp (the fundamental module of the paper's architecture,
// Fig. 5): search for a *minimum-cost* normal-form hypertree decomposition
// of width at most k, following the weighted-decomposition approach of
// Scarcello–Greco–Leone (PODS'04, the paper's ref [11]).
//
// The search space is the same subproblem lattice as det-k-decomp; instead
// of stopping at the first feasible separator, every subproblem keeps the
// separator minimizing
//     VertexCost(sep, chi) + sum_children [ cost(child) +
//                                           JoinCost(rows(p), rows(child)) ]
// under a pluggable DecompositionCostModel. With statistics, the model
// estimates intermediate-result sizes; without, a purely structural model is
// used (the hybrid/structural axis of Section 6).

#ifndef HTQO_DECOMP_COST_K_DECOMP_H_
#define HTQO_DECOMP_COST_K_DECOMP_H_

#include <map>
#include <vector>

#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

// Cost model interface for decomposition search.
class DecompositionCostModel {
 public:
  virtual ~DecompositionCostModel() = default;

  // Estimated rows of the vertex relation after step P' (join of lambda,
  // projected to chi).
  virtual double VertexRows(const Bitset& lambda, const Bitset& chi) const = 0;

  // Estimated work of computing that vertex relation.
  virtual double VertexCost(const Bitset& lambda, const Bitset& chi)
      const = 0;

  // Work of one P''-step join between a parent and child vertex relation.
  virtual double JoinCost(double parent_rows, double child_rows) const {
    return parent_rows + child_rows;
  }
};

// No-statistics model: every edge contributes a default cardinality; the
// cost is dominated by the number of joined edges per vertex, so the search
// degenerates to "prefer narrow lambda labels" — a purely structural method.
class StructuralCostModel : public DecompositionCostModel {
 public:
  explicit StructuralCostModel(double default_rows = 1000.0)
      : default_rows_(default_rows) {}

  double VertexRows(const Bitset& lambda, const Bitset& chi) const override;
  double VertexCost(const Bitset& lambda, const Bitset& chi) const override;

 private:
  double default_rows_;
};

// Statistics-driven model. Per hyperedge: estimated rows (after atom-local
// filters) and per-variable distinct counts. Join size estimation follows
// the textbook formula: product of edge cardinalities divided, per shared
// variable, by max(V)^(occurrences-1); projection onto chi caps the result
// by the product of the chi variables' distinct counts.
class StatsDecompositionCostModel : public DecompositionCostModel {
 public:
  struct EdgeStats {
    double rows = 1000.0;
    // distinct value estimate per hypergraph vertex bound by this edge
    std::map<std::size_t, double> distinct;
  };

  StatsDecompositionCostModel(const Hypergraph& h,
                              std::vector<EdgeStats> edges)
      : h_(h), edges_(std::move(edges)) {
    HTQO_CHECK(edges_.size() == h.NumEdges());
  }

  double VertexRows(const Bitset& lambda, const Bitset& chi) const override;
  double VertexCost(const Bitset& lambda, const Bitset& chi) const override;

  // Estimated join size of the edges in `lambda` (before projection).
  double JoinRows(const Bitset& lambda) const;

  // Largest distinct-count estimate for vertex `v` among edges of `lambda`
  // containing it (falls back to 1000 when unknown).
  double DistinctOf(std::size_t v, const Bitset& lambda) const;

 private:
  const Hypergraph& h_;
  std::vector<EdgeStats> edges_;
};

class ThreadPool;

// Runs the min-cost search. Returns NotFound when no decomposition of width
// <= k exists (with *root_conn ⊆ chi(root) when root_conn is non-null), or
// DeadlineExceeded when the optional governor trips (one node per enumerated
// separator candidate, memo growth charged against the memory budget).
//
// With a pool and num_threads > 1, the root's separator candidates are
// evaluated in parallel over a shared memo table. The result is
// bit-identical to the serial search: candidates are collected in the
// serial enumeration order, the min-cost reduction keeps the first strict
// minimum in that order, and the memo computes every subproblem exactly
// once so governor charges (and therefore budget trips) are unchanged.
Result<Hypertree> CostKDecomp(const Hypergraph& h, std::size_t k,
                              const DecompositionCostModel& model,
                              const Bitset* root_conn = nullptr,
                              ResourceGovernor* governor = nullptr,
                              ThreadPool* pool = nullptr,
                              std::size_t num_threads = 1);

}  // namespace htqo

#endif  // HTQO_DECOMP_COST_K_DECOMP_H_

#include "decomp/optimize.h"

#include <algorithm>

namespace htqo {

std::size_t OptimizeDecomposition(const Hypergraph& h, Hypertree* hd,
                                  ResourceGovernor* governor) {
  // Anchor counts: nodes where the atom is applied in full (e ∈ lambda(p),
  // e ⊆ chi(p)). The Fig. 4 rule is applied with one safety guard: never
  // remove an atom's last anchor — the removed occurrence's bounding effect
  // is replaced by the child's atom, but the atom's own tuples must still be
  // enforced somewhere (see DESIGN.md).
  std::vector<std::size_t> anchors(h.NumEdges(), 0);
  for (std::size_t p = 0; p < hd->NumNodes(); ++p) {
    const HypertreeNode& node = hd->node(p);
    for (std::size_t e = node.lambda.FirstSet(); e < node.lambda.size();
         e = node.lambda.NextSet(e)) {
      if (h.edge(e).IsSubsetOf(node.chi)) ++anchors[e];
    }
  }

  std::size_t removed = 0;
  for (std::size_t p : hd->PreOrder()) {
    HypertreeNode& node = hd->mutable_node(p);
    for (std::size_t a : node.lambda.ToVector()) {
      if (governor != nullptr && !governor->ChargeNodes(1).ok()) {
        return removed;  // partial pruning is still a valid decomposition
      }
      const bool is_anchor = h.edge(a).IsSubsetOf(node.chi);
      if (is_anchor && anchors[a] <= 1) continue;  // last full application
      Bitset bound = h.edge(a) & node.chi;  // variables a bounds at p
      bool dropped = false;
      for (std::size_t q : node.children) {
        const HypertreeNode& child = hd->node(q);
        for (std::size_t b = child.lambda.FirstSet();
             b < child.lambda.size() && !dropped;
             b = child.lambda.NextSet(b)) {
          if (bound.IsSubsetOf(h.edge(b) & child.chi)) {
            node.lambda.Reset(a);
            if (is_anchor) --anchors[a];
            ++removed;
            if (std::find(node.priority_children.begin(),
                          node.priority_children.end(),
                          q) == node.priority_children.end()) {
              node.priority_children.push_back(q);
            }
            dropped = true;
          }
        }
        if (dropped) break;
      }
    }
  }
  return removed;
}

}  // namespace htqo

// Procedure Optimize (Fig. 4): prunes hyperedges from lambda labels.
//
// An atom a may be dropped from lambda(p) whenever some child q carries an
// atom b with a ∩ chi(p) ⊆ b ∩ chi(q): the bounding effect of a on the
// variables it shares with chi(p) is then guaranteed by b arriving from q
// during the bottom-up evaluation. This realizes feature (b) of q-hypertree
// decompositions — condition 3 of Definition 1 may be violated afterwards,
// saving join work at p.

#ifndef HTQO_DECOMP_OPTIMIZE_H_
#define HTQO_DECOMP_OPTIMIZE_H_

#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "util/governor.h"

namespace htqo {

// Runs Optimize(HD, root) in place. Records, per node, the children that
// justified a removal in `priority_children` — the evaluator must join these
// before the other siblings (Section 4.1), otherwise intermediate relations
// may grow exponentially.
//
// Returns the number of hyperedge occurrences removed from lambda labels.
// When the optional governor trips mid-pass the pruning stops early — the
// partially optimized tree is still a valid decomposition, and the sticky
// trip surfaces at the caller's next checkpoint.
std::size_t OptimizeDecomposition(const Hypergraph& h, Hypertree* hd,
                                  ResourceGovernor* governor = nullptr);

}  // namespace htqo

#endif  // HTQO_DECOMP_OPTIMIZE_H_

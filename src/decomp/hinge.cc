#include "decomp/hinge.h"

#include <functional>

namespace htqo {

std::size_t HingeTree::Width() const {
  std::size_t w = 0;
  for (const Node& n : nodes) w = std::max(w, n.edges.Count());
  return w;
}

bool IsHinge(const Hypergraph& h, const Bitset& universe,
             const Bitset& candidate) {
  HTQO_DCHECK(candidate.IsSubsetOf(universe));
  Bitset rest = universe - candidate;
  if (rest.None()) return true;  // F = universe is trivially a hinge
  Bitset hinge_vars = h.VarsOf(candidate);
  for (const Bitset& component :
       h.ComponentsOf(rest, h.EmptyVertexSet())) {
    Bitset shared = h.VarsOf(component) & hinge_vars;
    bool covered = false;
    for (std::size_t e = candidate.FirstSet(); e < candidate.size();
         e = candidate.NextSet(e)) {
      if (shared.IsSubsetOf(h.edge(e))) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

namespace {

// The F-edge a component hangs on (precondition: IsHinge held).
std::size_t HangingEdge(const Hypergraph& h, const Bitset& hinge,
                        const Bitset& component) {
  Bitset shared = h.VarsOf(component) & h.VarsOf(hinge);
  for (std::size_t e = hinge.FirstSet(); e < hinge.size();
       e = hinge.NextSet(e)) {
    if (shared.IsSubsetOf(h.edge(e))) return e;
  }
  HTQO_CHECK(false);
  return 0;
}

// Smallest proper hinge (>= 2 edges) of the sub-hypergraph `scope`
// containing `required` (pass scope.size() for "no requirement"), or an
// empty bitset when none exists (scope itself is a minimal hinge). In the
// GJC construction a child node's hinge must contain the edge it hangs on,
// so adjacent tree nodes share exactly that edge.
Bitset SmallestProperHinge(const Hypergraph& h, const Bitset& scope,
                           std::size_t required) {
  std::vector<std::size_t> edges;
  for (std::size_t e : scope.ToVector()) {
    if (e != required) edges.push_back(e);
  }
  const bool has_required = required < scope.size();
  const std::size_t free_budget_offset = has_required ? 1 : 0;
  const std::size_t n = edges.size();
  for (std::size_t size = 2; size < scope.Count(); ++size) {
    if (size < free_budget_offset) continue;
    const std::size_t free_picks = size - free_budget_offset;
    if (free_picks > n) continue;
    std::vector<std::size_t> pick(free_picks);
    std::function<bool(std::size_t, std::size_t)> recurse =
        [&](std::size_t start, std::size_t chosen) -> bool {
      if (chosen == free_picks) {
        Bitset candidate(scope.size());
        if (has_required) candidate.Set(required);
        for (std::size_t i : pick) candidate.Set(i);
        return IsHinge(h, scope, candidate);
      }
      for (std::size_t i = start; i < n; ++i) {
        pick[chosen] = edges[i];
        if (recurse(i + 1, chosen + 1)) return true;
      }
      return false;
    };
    if (recurse(0, 0)) {
      Bitset out(scope.size());
      if (has_required) out.Set(required);
      for (std::size_t i : pick) out.Set(i);
      return out;
    }
  }
  return Bitset(scope.size());  // none: scope is a minimal hinge
}

}  // namespace

Result<HingeTree> BuildHingeTree(const Hypergraph& h, const Bitset& universe) {
  if (universe.None()) {
    return Status::InvalidArgument("empty edge set has no hinge tree");
  }
  if (h.ComponentsOf(universe, h.EmptyVertexSet()).size() != 1) {
    return Status::InvalidArgument(
        "hinge trees are defined for connected hypergraphs; decompose per "
        "component (DegreeOfCyclicity does)");
  }

  HingeTree tree;
  // Recursive splitting: each call owns one node's scope (which must
  // contain `required`, the edge shared with the parent) and returns its id.
  std::function<std::size_t(const Bitset&, std::size_t, std::size_t)> build =
      [&](const Bitset& scope, std::size_t required,
          std::size_t parent) -> std::size_t {
    Bitset hinge = scope.Count() >= 3
                       ? SmallestProperHinge(h, scope, required)
                       : Bitset(scope.size());
    if (hinge.None()) hinge = scope;  // scope itself is minimal

    std::size_t id = tree.nodes.size();
    HingeTree::Node node;
    node.edges = hinge;
    node.parent = parent;
    tree.nodes.push_back(std::move(node));
    if (parent != static_cast<std::size_t>(-1)) {
      tree.nodes[parent].children.push_back(id);
    }

    if (hinge != scope) {
      Bitset rest = scope - hinge;
      for (const Bitset& component :
           h.ComponentsOf(rest, h.EmptyVertexSet())) {
        Bitset child_scope = component;
        std::size_t hanging = HangingEdge(h, hinge, component);
        child_scope.Set(hanging);
        build(child_scope, hanging, id);
      }
    }
    return id;
  };
  build(universe, /*required=*/h.NumEdges(), static_cast<std::size_t>(-1));
  return tree;
}

Result<std::size_t> DegreeOfCyclicity(const Hypergraph& h) {
  if (h.NumEdges() == 0) return std::size_t{0};
  std::size_t degree = 0;
  for (const Bitset& component :
       h.ComponentsOf(h.AllEdges(), h.EmptyVertexSet())) {
    auto tree = BuildHingeTree(h, component);
    if (!tree.ok()) return tree.status();
    degree = std::max(degree, tree->Width());
  }
  return degree;
}

}  // namespace htqo

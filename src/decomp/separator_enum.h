// Internal helper shared by det_k_decomp and cost_k_decomp: enumeration of
// candidate separators (lambda labels) for a subproblem.
//
// A subproblem is a pair (comp, conn): `comp` is an edge set to decompose,
// `conn` the variables connecting it to the parent node. Candidate
// separators are subsets of at most k hyperedges, each intersecting
// var(comp) ∪ conn, whose variables cover conn — the det-k-decomp guess
// space, complete for normal-form decompositions.

#ifndef HTQO_DECOMP_SEPARATOR_ENUM_H_
#define HTQO_DECOMP_SEPARATOR_ENUM_H_

#include <functional>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/governor.h"

namespace htqo {
namespace decomp_internal {

// Invokes `cb` once per candidate separator. `cb` returns true to stop the
// enumeration early (used by the first-feasible det variant). The optional
// governor is charged one search node per enumeration step; when it trips,
// the enumeration aborts — the caller must then check governor->exhausted()
// to distinguish "no separator worked" from "the budget ran out".
inline void ForEachSeparator(const Hypergraph& h, const Bitset& comp,
                             const Bitset& conn, std::size_t k,
                             const std::function<bool(const Bitset&)>& cb,
                             ResourceGovernor* governor = nullptr) {
  Bitset comp_vars = h.VarsOf(comp);
  Bitset relevant = comp_vars | conn;
  std::vector<std::size_t> candidates;
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    if (h.edge(e).Intersects(relevant)) candidates.push_back(e);
  }

  Bitset sep = h.EmptyEdgeSet();
  bool stop = false;
  // Depth-first subset enumeration with a coverage check at emission.
  std::function<void(std::size_t, std::size_t, const Bitset&)> recurse =
      [&](std::size_t start, std::size_t chosen, const Bitset& covered) {
        if (stop) return;
        if (governor != nullptr && !governor->ChargeNodes(1).ok()) {
          stop = true;
          return;
        }
        if (chosen > 0 && conn.IsSubsetOf(covered)) {
          if (cb(sep)) {
            stop = true;
            return;
          }
        }
        if (chosen == k) return;
        for (std::size_t i = start; i < candidates.size() && !stop; ++i) {
          std::size_t e = candidates[i];
          sep.Set(e);
          recurse(i + 1, chosen + 1, covered | h.edge(e));
          sep.Reset(e);
        }
      };
  recurse(0, 0, h.EmptyVertexSet());
}

// Rough live-memory footprint of one memoized (component, connector)
// subproblem, charged against the governor's memory budget by the searches.
inline std::size_t ApproxSubproblemBytes(const Hypergraph& h) {
  std::size_t edge_words = (h.NumEdges() + 63) / 64;
  std::size_t var_words = (h.NumVertices() + 63) / 64;
  // key (2 bitsets) + solution (2 bitsets + child keys, amortized) + map node
  return (edge_words + var_words) * 8 * 4 + 96;
}

}  // namespace decomp_internal
}  // namespace htqo

#endif  // HTQO_DECOMP_SEPARATOR_ENUM_H_

// Hypertrees <T, chi, lambda> (Section 3.1): a rooted tree whose nodes carry
// a variable label chi(p) (vertex bitset) and an edge label lambda(p)
// (hyperedge bitset). Used for hypertree decompositions, generalized
// hypertree decompositions, and the paper's q-hypertree decompositions.

#ifndef HTQO_DECOMP_HYPERTREE_H_
#define HTQO_DECOMP_HYPERTREE_H_

#include <functional>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace htqo {

struct HypertreeNode {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  Bitset chi;     // variables (over hypergraph vertices)
  Bitset lambda;  // hyperedges (over hypergraph edge indices)
  std::size_t parent = kNoParent;
  std::vector<std::size_t> children;

  // Filled by Procedure Optimize: children that justified a lambda removal,
  // in removal order. The q-hypertree evaluator joins these children into
  // their parent before the other siblings (Section 4.1's topological-order
  // caveat).
  std::vector<std::size_t> priority_children;
};

class Hypertree {
 public:
  Hypertree() = default;

  // Adds a node; `parent` is kNoParent for the root (must be added first).
  std::size_t AddNode(Bitset chi, Bitset lambda,
                      std::size_t parent = HypertreeNode::kNoParent);

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t root() const { return 0; }
  const HypertreeNode& node(std::size_t i) const { return nodes_[i]; }
  HypertreeNode& mutable_node(std::size_t i) { return nodes_[i]; }

  // Width = max |lambda(p)| (Section 3.1).
  std::size_t Width() const;

  // Node ids with parents before children (root first).
  std::vector<std::size_t> PreOrder() const;
  // Node ids with children before parents (root last).
  std::vector<std::size_t> PostOrder() const;

  // chi(T_p): union of chi over the subtree rooted at p.
  Bitset SubtreeChi(std::size_t p) const;

  // Pretty-print against the hypergraph's vertex/edge names.
  std::string ToString(const Hypergraph& h) const;
  // As above with a per-node suffix (EXPLAIN ANALYZE actuals): `annotate`
  // receives the node id and its return value — empty for none — is
  // appended to that node's line.
  std::string ToString(
      const Hypergraph& h,
      const std::function<std::string(std::size_t)>& annotate) const;

  // Graphviz rendering: one box per node showing chi and lambda.
  std::string ToDot(const Hypergraph& h) const;

 private:
  std::vector<HypertreeNode> nodes_;
};

}  // namespace htqo

#endif  // HTQO_DECOMP_HYPERTREE_H_

// Biconnected components of the primal graph — the oldest structural
// decomposition method the paper cites (Freuder, ref [2]). The method's
// width is the size of the largest block; queries whose primal graph has
// small blocks admit backtrack-bounded evaluation. Included as an analysis
// baseline: tests compare its width against hypertree width (hw is never
// larger on the same query).

#ifndef HTQO_DECOMP_BICONNECTED_H_
#define HTQO_DECOMP_BICONNECTED_H_

#include <vector>

#include "hypergraph/hypergraph.h"

namespace htqo {

struct BiconnectedDecomposition {
  // Vertex sets of the biconnected components (blocks) of the primal graph.
  std::vector<Bitset> blocks;
  // Articulation (cut) vertices.
  std::vector<std::size_t> cut_vertices;

  // max |block| — the BICOMP width.
  std::size_t Width() const;
};

BiconnectedDecomposition BiconnectedComponents(const Hypergraph& h);

}  // namespace htqo

#endif  // HTQO_DECOMP_BICONNECTED_H_

#include "decomp/qhd.h"

#include <algorithm>

#include "decomp/det_k_decomp.h"
#include "decomp/optimize.h"

namespace htqo {

std::size_t CompleteDecomposition(const Hypergraph& h, Hypertree* hd) {
  // An atom is *anchored* at p when e ∈ lambda(p) and e ⊆ chi(p): only there
  // is its constraint applied in full (lambda joins are projected to chi, so
  // an occurrence with variables outside chi is a partial, bounding-only
  // application). Every atom needs at least one anchor or the rewritten
  // query is weaker than Q.
  std::size_t added = 0;
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    bool anchored = false;
    for (std::size_t p = 0; p < hd->NumNodes() && !anchored; ++p) {
      anchored = hd->node(p).lambda.Test(e) &&
                 h.edge(e).IsSubsetOf(hd->node(p).chi);
    }
    if (anchored) continue;
    // Find a node whose chi covers the edge (exists by condition 1) and
    // attach a width-1 anchor child below it.
    std::size_t cover = HypertreeNode::kNoParent;
    for (std::size_t p = 0; p < hd->NumNodes(); ++p) {
      if (h.edge(e).IsSubsetOf(hd->node(p).chi)) {
        cover = p;
        break;
      }
    }
    HTQO_CHECK(cover != HypertreeNode::kNoParent);
    Bitset lambda = h.EmptyEdgeSet();
    lambda.Set(e);
    hd->AddNode(h.edge(e), lambda, cover);
    ++added;
  }
  return added;
}

Result<QhdResult> QHypertreeDecomp(const Hypergraph& h, const Bitset& out_vars,
                                   const DecompositionCostModel& model,
                                   const QhdOptions& options) {
  Result<Hypertree> hd = Status::Internal("unset");
  {
    ScopedSpan search_span(options.tracer,
                           options.first_feasible ? "search.det-k-decomp"
                                                  : "search.cost-k-decomp");
    search_span.Attr("max_width", options.max_width);
    const std::size_t nodes_before =
        options.governor != nullptr ? options.governor->stats().search_nodes
                                    : 0;
    hd = options.first_feasible
             ? DetKDecomp(h, options.max_width, &out_vars, options.governor)
             : CostKDecomp(h, options.max_width, model, &out_vars,
                           options.governor, options.pool,
                           options.num_threads);
    if (options.governor != nullptr) {
      search_span.Attr(
          "nodes_visited",
          options.governor->stats().search_nodes - nodes_before);
    }
    search_span.Attr(
        "outcome",
        hd.ok() ? "ok"
                : (hd.status().code() == StatusCode::kDeadlineExceeded
                       ? "budget-exceeded"
                       : "failure"));
  }
  if (!hd.ok()) {
    // A governor trip is not a structural "Failure": surface it verbatim so
    // callers can degrade (retry at lower width, fall back) instead of
    // concluding that no decomposition exists.
    if (hd.status().code() == StatusCode::kDeadlineExceeded) {
      return hd.status();
    }
    return Status::NotFound(
        "Failure: no hypertree decomposition of width <= " +
        std::to_string(options.max_width) +
        " whose root covers the output variables");
  }
  QhdResult result;
  result.hd = std::move(hd.value());
  CompleteDecomposition(h, &result.hd);
  result.width = result.hd.Width();
  if (options.run_optimize) {
    ScopedSpan optimize_span(options.tracer, "optimize");
    result.pruned = OptimizeDecomposition(h, &result.hd, options.governor);
    optimize_span.Attr("pruned", result.pruned);
    if (options.governor != nullptr && options.governor->exhausted()) {
      return options.governor->trip_status();
    }
  }
  return result;
}

std::vector<StatsDecompositionCostModel::EdgeStats> BuildEdgeStats(
    const ConjunctiveQuery& cq, const Estimator& estimator) {
  std::vector<StatsDecompositionCostModel::EdgeStats> out;
  out.reserve(cq.atoms.size());
  for (const Atom& atom : cq.atoms) {
    StatsDecompositionCostModel::EdgeStats stats;
    double rows = estimator.Rows(atom.relation);
    for (const AtomFilter& f : atom.filters) {
      if (!f.in_values.empty() || f.negated) {
        // IN list: sum of per-value equality selectivities, capped;
        // NOT IN keeps the complement.
        double sel = 0;
        for (const Value& v : f.in_values) {
          sel += estimator.ConstantSelectivity(atom.relation, f.column, "=",
                                               v);
        }
        sel = std::min(1.0, sel);
        rows *= f.negated ? std::max(0.0, 1.0 - sel) : sel;
      } else {
        rows *= estimator.ConstantSelectivity(atom.relation, f.column,
                                              CompareOpSymbol(f.op), f.value);
      }
    }
    rows = std::max(1.0, rows);
    stats.rows = rows;
    for (const AtomBinding& b : atom.bindings) {
      double distinct =
          std::min(estimator.DistinctCount(atom.relation, b.column), rows);
      auto it = stats.distinct.find(b.var);
      if (it == stats.distinct.end()) {
        stats.distinct[b.var] = std::max(1.0, distinct);
      } else {
        // A variable bound to several columns of the same atom: keep the
        // tighter bound.
        it->second = std::max(1.0, std::min(it->second, distinct));
      }
    }
    if (atom.has_tid) {
      stats.distinct[atom.tid_var] = rows;  // tuple ids are unique
    }
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace htqo

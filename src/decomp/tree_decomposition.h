// Tree decompositions of the primal graph (the paper's related work [9, 7,
// 1]) and their conversion into generalized hypertree decompositions.
//
// The min-fill elimination heuristic produces a tree decomposition whose
// bags can be covered greedily by hyperedges, yielding a hypertree usable
// by the classic evaluator — the "tree-decomposition method" baseline the
// structural-decomposition literature offered before hypertree
// decompositions. Since every hyperedge induces a clique of the primal
// graph, every atom is contained in some bag (the clique-containment
// property), so the conversion always yields a valid complete GHD.

#ifndef HTQO_DECOMP_TREE_DECOMPOSITION_H_
#define HTQO_DECOMP_TREE_DECOMPOSITION_H_

#include <vector>

#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htqo {

struct TreeDecomposition {
  struct Node {
    Bitset bag;  // vertex set
    std::size_t parent = static_cast<std::size_t>(-1);
    std::vector<std::size_t> children;
  };
  std::vector<Node> nodes;
  std::size_t root = 0;

  // Treewidth convention: max bag size minus one.
  std::size_t Width() const;
};

// Adjacency sets of the primal graph of `h`: vertices are the hypergraph's
// vertices, with an edge whenever two vertices co-occur in a hyperedge.
std::vector<Bitset> PrimalGraph(const Hypergraph& h);

// Min-fill elimination-order heuristic. Deterministic (ties by index).
TreeDecomposition MinFillTreeDecomposition(const Hypergraph& h);

// Checks vertex cover (every hypergraph vertex in some bag), edge
// containment (every hyperedge inside some bag) and connectedness.
bool ValidateTreeDecomposition(const Hypergraph& h,
                               const TreeDecomposition& td);

// Converts a tree decomposition into a hypertree: chi = bag, lambda =
// greedy edge cover of the bag. The result is a generalized hypertree
// decomposition (condition 4 may fail; conditions 1-3 hold).
Hypertree TreeDecompositionToHypertree(const Hypergraph& h,
                                       const TreeDecomposition& td);

// Re-roots `hd` at node `new_root`, reversing parent/child links on the
// path to the old root. Used to satisfy Condition 2 of Definition 2 when
// some chi already covers out(Q).
Hypertree RerootHypertree(const Hypertree& hd, std::size_t new_root);

// Node whose chi covers `vars`, if any.
Result<std::size_t> FindCoveringNode(const Hypertree& hd, const Bitset& vars);

}  // namespace htqo

#endif  // HTQO_DECOMP_TREE_DECOMPOSITION_H_

#include "decomp/biconnected.h"

#include <algorithm>

#include "decomp/tree_decomposition.h"

namespace htqo {

std::size_t BiconnectedDecomposition::Width() const {
  std::size_t w = 0;
  for (const Bitset& b : blocks) w = std::max(w, b.Count());
  return w;
}

BiconnectedDecomposition BiconnectedComponents(const Hypergraph& h) {
  const std::size_t n = h.NumVertices();
  BiconnectedDecomposition out;
  if (n == 0) return out;

  std::vector<Bitset> adjacency = PrimalGraph(h);

  // Iterative Hopcroft–Tarjan with an explicit edge stack.
  std::vector<int> depth(n, -1);
  std::vector<int> low(n, 0);
  std::vector<std::size_t> parent(n, n);
  std::vector<bool> is_cut(n, false);
  std::vector<std::pair<std::size_t, std::size_t>> edge_stack;

  for (std::size_t start = 0; start < n; ++start) {
    if (depth[start] != -1) continue;

    struct Frame {
      std::size_t v;
      std::vector<std::size_t> nbrs;
      std::size_t next = 0;
      std::size_t tree_children = 0;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{start, adjacency[start].ToVector(), 0, 0});
    depth[start] = 0;
    low[start] = 0;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      std::size_t v = frame.v;
      if (frame.next < frame.nbrs.size()) {
        std::size_t u = frame.nbrs[frame.next++];
        if (depth[u] == -1) {
          // Tree edge.
          parent[u] = v;
          depth[u] = depth[v] + 1;
          low[u] = depth[u];
          edge_stack.emplace_back(v, u);
          ++frame.tree_children;
          stack.push_back(Frame{u, adjacency[u].ToVector(), 0, 0});
        } else if (u != parent[v] && depth[u] < depth[v]) {
          // Back edge.
          edge_stack.emplace_back(v, u);
          low[v] = std::min(low[v], depth[u]);
        }
      } else {
        stack.pop_back();
        if (stack.empty()) {
          // Root of this DFS tree: cut vertex iff >= 2 tree children.
          if (frame.tree_children >= 2) is_cut[v] = true;
          continue;
        }
        std::size_t p = stack.back().v;
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= depth[p]) {
          // p separates v's subtree: pop one block off the edge stack.
          // (Non-root articulation rule; the root's >=2-children rule is
          // applied when the root frame pops.)
          if (depth[p] > 0) is_cut[p] = true;
          Bitset block = h.EmptyVertexSet();
          while (!edge_stack.empty()) {
            auto [a, b] = edge_stack.back();
            // Stop after popping the tree edge (p, v).
            edge_stack.pop_back();
            block.Set(a);
            block.Set(b);
            if (a == p && b == v) break;
          }
          if (block.Any()) out.blocks.push_back(std::move(block));
        }
      }
    }
    // Isolated vertex: its own singleton block.
    if (adjacency[start].None()) {
      Bitset block = h.EmptyVertexSet();
      block.Set(start);
      out.blocks.push_back(std::move(block));
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (is_cut[v]) out.cut_vertices.push_back(v);
  }
  return out;
}

}  // namespace htqo

#include "decomp/hypertree.h"

#include "util/strings.h"

namespace htqo {

std::size_t Hypertree::AddNode(Bitset chi, Bitset lambda, std::size_t parent) {
  std::size_t id = nodes_.size();
  if (parent == HypertreeNode::kNoParent) {
    HTQO_CHECK(nodes_.empty());  // only the first node is a root
  } else {
    HTQO_CHECK(parent < nodes_.size());
    nodes_[parent].children.push_back(id);
  }
  HypertreeNode node;
  node.chi = std::move(chi);
  node.lambda = std::move(lambda);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  return id;
}

std::size_t Hypertree::Width() const {
  std::size_t w = 0;
  for (const HypertreeNode& n : nodes_) {
    w = std::max(w, n.lambda.Count());
  }
  return w;
}

std::vector<std::size_t> Hypertree::PreOrder() const {
  std::vector<std::size_t> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<std::size_t> stack{root()};
  while (!stack.empty()) {
    std::size_t p = stack.back();
    stack.pop_back();
    order.push_back(p);
    const auto& ch = nodes_[p].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<std::size_t> Hypertree::PostOrder() const {
  std::vector<std::size_t> order = PreOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

Bitset Hypertree::SubtreeChi(std::size_t p) const {
  Bitset out = nodes_[p].chi;
  for (std::size_t c : nodes_[p].children) {
    out |= SubtreeChi(c);
  }
  return out;
}

std::string Hypertree::ToString(const Hypergraph& h) const {
  return ToString(h, nullptr);
}

std::string Hypertree::ToString(
    const Hypergraph& h,
    const std::function<std::string(std::size_t)>& annotate) const {
  std::string out;
  std::vector<std::pair<std::size_t, int>> stack{{root(), 0}};
  while (!stack.empty()) {
    auto [p, depth] = stack.back();
    stack.pop_back();
    const HypertreeNode& n = nodes_[p];
    std::vector<std::string> chi_names;
    for (std::size_t v : n.chi.ToVector()) chi_names.push_back(h.vertex_name(v));
    std::vector<std::string> lambda_names;
    for (std::size_t e : n.lambda.ToVector()) {
      lambda_names.push_back(h.edge_name(e));
    }
    out += std::string(static_cast<std::size_t>(depth) * 2, ' ') + "[" +
           std::to_string(p) + "] chi={" + Join(chi_names, ",") +
           "} lambda={" + Join(lambda_names, ",") + "}";
    if (annotate) out += annotate(p);
    out += "\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

std::string Hypertree::ToDot(const Hypergraph& h) const {
  std::string out = "digraph hypertree {\n  node [shape=box];\n";
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    std::vector<std::string> chi_names;
    for (std::size_t v : nodes_[p].chi.ToVector()) {
      chi_names.push_back(h.vertex_name(v));
    }
    std::vector<std::string> lambda_names;
    for (std::size_t e : nodes_[p].lambda.ToVector()) {
      lambda_names.push_back(h.edge_name(e));
    }
    out += "  n" + std::to_string(p) + " [label=\"chi: {" +
           Join(chi_names, ",") + "}\\nlambda: {" + Join(lambda_names, ",") +
           "}\"];\n";
  }
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    for (std::size_t c : nodes_[p].children) {
      out += "  n" + std::to_string(p) + " -> n" + std::to_string(c) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace htqo

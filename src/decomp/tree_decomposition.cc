#include "decomp/tree_decomposition.h"

#include <algorithm>
#include <deque>

namespace htqo {

std::size_t TreeDecomposition::Width() const {
  std::size_t max_bag = 0;
  for (const Node& n : nodes) max_bag = std::max(max_bag, n.bag.Count());
  return max_bag == 0 ? 0 : max_bag - 1;
}

std::vector<Bitset> PrimalGraph(const Hypergraph& h) {
  std::vector<Bitset> adjacency(h.NumVertices(), h.EmptyVertexSet());
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    for (std::size_t v : h.edge(e).ToVector()) {
      adjacency[v] |= h.edge(e);
    }
  }
  for (std::size_t v = 0; v < h.NumVertices(); ++v) {
    adjacency[v].Reset(v);  // no self loops
  }
  return adjacency;
}

TreeDecomposition MinFillTreeDecomposition(const Hypergraph& h) {
  const std::size_t n = h.NumVertices();
  TreeDecomposition td;
  if (n == 0) {
    TreeDecomposition::Node node;
    node.bag = h.EmptyVertexSet();
    td.nodes.push_back(std::move(node));
    return td;
  }

  std::vector<Bitset> adjacency = PrimalGraph(h);
  std::vector<bool> eliminated(n, false);
  std::vector<Bitset> bags;                 // bag per elimination step
  std::vector<std::size_t> elim_vertex;     // vertex eliminated at step i
  std::vector<std::size_t> step_of(n, 0);   // elimination step per vertex
  bags.reserve(n);

  auto fill_cost = [&](std::size_t v) {
    // Number of missing edges among v's non-eliminated neighbours.
    std::vector<std::size_t> nbrs;
    for (std::size_t u : adjacency[v].ToVector()) {
      if (!eliminated[u]) nbrs.push_back(u);
    }
    std::size_t missing = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!adjacency[nbrs[i]].Test(nbrs[j])) ++missing;
      }
    }
    return missing;
  };

  for (std::size_t step = 0; step < n; ++step) {
    // Pick the non-eliminated vertex with minimal fill.
    std::size_t best = n;
    std::size_t best_cost = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::size_t cost = fill_cost(v);
      if (best == n || cost < best_cost) {
        best = v;
        best_cost = cost;
      }
    }
    // Bag: v plus its remaining neighbours; then connect the neighbours.
    Bitset bag = h.EmptyVertexSet();
    bag.Set(best);
    std::vector<std::size_t> nbrs;
    for (std::size_t u : adjacency[best].ToVector()) {
      if (!eliminated[u]) {
        bag.Set(u);
        nbrs.push_back(u);
      }
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adjacency[nbrs[i]].Set(nbrs[j]);
        adjacency[nbrs[j]].Set(nbrs[i]);
      }
    }
    eliminated[best] = true;
    step_of[best] = step;
    elim_vertex.push_back(best);
    bags.push_back(std::move(bag));
  }

  // Tree construction: the node of step i attaches to the node of the
  // earliest-eliminated vertex among bag \ {v} — but parents must come
  // later in the elimination order, so attach to the *next* eliminated bag
  // member. The last bag is the root.
  td.nodes.resize(n);
  std::size_t root = n - 1;
  for (std::size_t i = 0; i < n; ++i) {
    td.nodes[i].bag = bags[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    Bitset rest = bags[i];
    rest.Reset(elim_vertex[i]);
    if (rest.None()) {
      // Isolated component root: attach under the global root later.
      continue;
    }
    // Parent: node of the bag member eliminated soonest after step i.
    std::size_t parent_step = n;
    for (std::size_t u : rest.ToVector()) {
      parent_step = std::min(parent_step, step_of[u]);
    }
    HTQO_DCHECK(parent_step > i && parent_step < n);
    td.nodes[i].parent = parent_step;
    td.nodes[parent_step].children.push_back(i);
  }
  // Attach parentless non-root nodes (other connected components) under the
  // root so the structure is a single tree.
  for (std::size_t i = 0; i < n; ++i) {
    if (i != root && td.nodes[i].parent == static_cast<std::size_t>(-1)) {
      td.nodes[i].parent = root;
      td.nodes[root].children.push_back(i);
    }
  }
  td.root = root;
  return td;
}

bool ValidateTreeDecomposition(const Hypergraph& h,
                               const TreeDecomposition& td) {
  // Every hyperedge inside some bag (subsumes vertex cover for non-isolated
  // vertices).
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    bool covered = false;
    for (const auto& node : td.nodes) {
      if (h.edge(e).IsSubsetOf(node.bag)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  // Connectedness per vertex.
  for (std::size_t v = 0; v < h.NumVertices(); ++v) {
    std::size_t count = 0;
    std::size_t links = 0;
    for (std::size_t i = 0; i < td.nodes.size(); ++i) {
      if (!td.nodes[i].bag.Test(v)) continue;
      ++count;
      std::size_t p = td.nodes[i].parent;
      if (p != static_cast<std::size_t>(-1) && td.nodes[p].bag.Test(v)) {
        ++links;
      }
    }
    if (count > 0 && links != count - 1) return false;
  }
  return true;
}

Hypertree TreeDecompositionToHypertree(const Hypergraph& h,
                                       const TreeDecomposition& td) {
  Hypertree hd;
  // Add nodes in a pre-order of the td so parents precede children.
  std::vector<std::size_t> order;
  std::vector<std::size_t> stack{td.root};
  while (!stack.empty()) {
    std::size_t p = stack.back();
    stack.pop_back();
    order.push_back(p);
    for (std::size_t c : td.nodes[p].children) stack.push_back(c);
  }
  std::vector<std::size_t> new_id(td.nodes.size());

  // Vertices that occur in some hyperedge; isolated primal vertices cannot
  // be covered by any lambda and carry no query meaning, so they are
  // stripped from the chi labels.
  Bitset in_some_edge = h.VarsOf(h.AllEdges());

  for (std::size_t p : order) {
    Bitset bag = td.nodes[p].bag & in_some_edge;
    // Greedy set cover of the bag by hyperedges.
    Bitset lambda = h.EmptyEdgeSet();
    Bitset uncovered = bag;
    while (uncovered.Any()) {
      std::size_t best_edge = h.NumEdges();
      std::size_t best_gain = 0;
      for (std::size_t e = 0; e < h.NumEdges(); ++e) {
        if (lambda.Test(e)) continue;
        std::size_t gain = (h.edge(e) & uncovered).Count();
        if (gain > best_gain) {
          best_gain = gain;
          best_edge = e;
        }
      }
      HTQO_CHECK(best_edge < h.NumEdges());  // every vertex is in some edge
      lambda.Set(best_edge);
      uncovered -= h.edge(best_edge);
    }
    // Degenerate empty bag (all vertices were isolated): give the node a
    // harmless non-empty label so evaluators have something to scan.
    if (lambda.None() && h.NumEdges() > 0) lambda.Set(0);
    std::size_t parent = td.nodes[p].parent == static_cast<std::size_t>(-1)
                             ? HypertreeNode::kNoParent
                             : new_id[td.nodes[p].parent];
    new_id[p] = hd.AddNode(bag, lambda, parent);
  }
  return hd;
}

Hypertree RerootHypertree(const Hypertree& hd, std::size_t new_root) {
  HTQO_CHECK(new_root < hd.NumNodes());
  // Undirected adjacency, then rebuild parents by BFS from the new root.
  std::vector<std::vector<std::size_t>> adjacency(hd.NumNodes());
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    for (std::size_t c : hd.node(p).children) {
      adjacency[p].push_back(c);
      adjacency[c].push_back(p);
    }
  }
  Hypertree out;
  std::vector<bool> visited(hd.NumNodes(), false);
  std::deque<std::pair<std::size_t, std::size_t>> queue;
  queue.emplace_back(new_root, HypertreeNode::kNoParent);
  visited[new_root] = true;
  while (!queue.empty()) {
    auto [p, parent] = queue.front();
    queue.pop_front();
    std::size_t id = out.AddNode(hd.node(p).chi, hd.node(p).lambda, parent);
    for (std::size_t next : adjacency[p]) {
      if (!visited[next]) {
        visited[next] = true;
        queue.emplace_back(next, id);
      }
    }
  }
  HTQO_CHECK(out.NumNodes() == hd.NumNodes());
  return out;
}

Result<std::size_t> FindCoveringNode(const Hypertree& hd,
                                     const Bitset& vars) {
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    if (vars.IsSubsetOf(hd.node(p).chi)) return p;
  }
  return Status::NotFound("no chi label covers the given variable set");
}

}  // namespace htqo

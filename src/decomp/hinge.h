// Hinge decompositions (Gyssens–Jeavons–Cohen, the paper's related work
// [8]). A hinge of a connected hypergraph is a set F of at least two edges
// such that every connected component of the remaining edges "hangs" on a
// single edge of F: the vertices the component shares with F are all inside
// one edge of F. A hinge tree recursively splits the hypergraph at minimal
// hinges; its width — the size of the largest node — is the *degree of
// cyclicity*. Hypertree width never exceeds it (hypertree decompositions
// strongly generalize hinge trees), which the tests verify.
//
// The construction here is definition-faithful and exponential in the
// number of edges (it enumerates candidate hinges by increasing size);
// queries have few atoms, so this is perfectly fine at query-optimization
// scale — the same trade-off det-k-decomp makes.

#ifndef HTQO_DECOMP_HINGE_H_
#define HTQO_DECOMP_HINGE_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htqo {

struct HingeTree {
  struct Node {
    Bitset edges;  // the hinge (a set of hyperedge indices)
    std::size_t parent = static_cast<std::size_t>(-1);
    std::vector<std::size_t> children;
  };
  std::vector<Node> nodes;

  // Degree of cyclicity: max |node| over the tree.
  std::size_t Width() const;
};

// True when `candidate` (>= 2 edges, or all edges) is a hinge of the edge
// set `universe` of `h`: every connected component of universe \ candidate
// shares vertices with var(candidate) only inside a single candidate edge.
bool IsHinge(const Hypergraph& h, const Bitset& universe,
             const Bitset& candidate);

// Builds a hinge tree of the (connected) subhypergraph `universe`;
// InvalidArgument when `universe` is not connected or empty. For the full
// hypergraph use h.AllEdges().
Result<HingeTree> BuildHingeTree(const Hypergraph& h, const Bitset& universe);

// Degree of cyclicity of `h` (per connected component, the max).
Result<std::size_t> DegreeOfCyclicity(const Hypergraph& h);

}  // namespace htqo

#endif  // HTQO_DECOMP_HINGE_H_

// Validators for the decomposition conditions of Definition 1 (hypertree
// decompositions), generalized hypertree decompositions, and Definition 2
// (q-hypertree decompositions). Used by tests and by debug checks.

#ifndef HTQO_DECOMP_VALIDATE_H_
#define HTQO_DECOMP_VALIDATE_H_

#include <string>

#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"

namespace htqo {

struct DecompositionCheck {
  bool edge_cover = false;          // Def.1 cond 1 / Def.2 cond 1
  bool connectedness = false;       // Def.1 cond 2 / Def.2 cond 3
  bool chi_covered_by_lambda = false;  // Def.1 cond 3 (dropped in Def.2)
  bool special_descendant = false;  // Def.1 cond 4 (dropped in GHD/Def.2)
  bool output_covered = false;      // Def.2 cond 2 (some chi covers out(Q))
  bool root_covers_output = false;  // the stronger rooting used by Fig. 4

  // Definition 1: hypertree decomposition.
  bool IsHypertreeDecomposition() const {
    return edge_cover && connectedness && chi_covered_by_lambda &&
           special_descendant;
  }
  // Generalized hypertree decomposition (Def. 1 minus condition 4).
  bool IsGeneralizedHD() const {
    return edge_cover && connectedness && chi_covered_by_lambda;
  }
  // Definition 2: q-hypertree decomposition.
  bool IsQHypertreeDecomposition() const {
    return edge_cover && connectedness && output_covered;
  }

  std::string ToString() const;
};

// Checks every condition of `hd` against `h`. `output_vars` may be empty
// (then output_covered/root_covers_output are trivially true).
DecompositionCheck ValidateDecomposition(const Hypergraph& h,
                                         const Hypertree& hd,
                                         const Bitset& output_vars);

}  // namespace htqo

#endif  // HTQO_DECOMP_VALIDATE_H_

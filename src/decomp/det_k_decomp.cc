#include "decomp/det_k_decomp.h"

#include <map>
#include <optional>
#include <utility>

#include "decomp/separator_enum.h"

namespace htqo {

namespace {

using SubproblemKey = std::pair<Bitset, Bitset>;  // (component, connector)

struct Solution {
  Bitset sep;
  Bitset chi;
  std::vector<SubproblemKey> children;
};

class DetSearch {
 public:
  DetSearch(const Hypergraph& h, std::size_t k, ResourceGovernor* governor)
      : h_(h), k_(k), governor_(governor) {}

  bool Decompose(const Bitset& comp, const Bitset& conn) {
    if (governor_ != nullptr && governor_->exhausted()) return false;
    SubproblemKey key{comp, conn};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.has_value();

    std::optional<Solution> found;
    decomp_internal::ForEachSeparator(
        h_, comp, conn, k_,
        [&](const Bitset& sep) {
          Bitset chi = h_.VarsOf(sep) & (conn | h_.VarsOf(comp));
          std::vector<Bitset> components = h_.ComponentsOf(comp, chi);
          Solution sol;
          sol.sep = sep;
          sol.chi = chi;
          for (const Bitset& child : components) {
            if (child == comp) return false;  // no progress, next separator
            Bitset child_conn = h_.VarsOf(child) & chi;
            if (!Decompose(child, child_conn)) return false;
            sol.children.emplace_back(child, child_conn);
          }
          found = std::move(sol);
          return true;  // stop enumeration
        },
        governor_);
    // A budget trip aborts the enumeration mid-way; do not memoize the
    // subproblem as infeasible — the caller surfaces the trip status and the
    // search object is discarded.
    if (governor_ != nullptr && governor_->exhausted()) return false;
    if (governor_ != nullptr) {
      // Ignore the trip here (checked by the caller); keep accounting exact.
      (void)governor_->ChargeMemory(decomp_internal::ApproxSubproblemBytes(h_));
    }
    memo_.emplace(std::move(key), std::move(found));
    return memo_.at({comp, conn}).has_value();
  }

  // Rebuilds the hypertree from the memoized solutions.
  void Build(const Bitset& comp, const Bitset& conn, std::size_t parent,
             Hypertree* out) const {
    const std::optional<Solution>& sol = memo_.at({comp, conn});
    HTQO_CHECK(sol.has_value());
    std::size_t node = out->AddNode(sol->chi, sol->sep, parent);
    for (const SubproblemKey& child : sol->children) {
      Build(child.first, child.second, node, out);
    }
  }

 private:
  const Hypergraph& h_;
  std::size_t k_;
  ResourceGovernor* governor_;
  std::map<SubproblemKey, std::optional<Solution>> memo_;
};

}  // namespace

Result<Hypertree> DetKDecomp(const Hypergraph& h, std::size_t k,
                             const Bitset* root_conn,
                             ResourceGovernor* governor) {
  HTQO_CHECK(k >= 1);
  Bitset all = h.AllEdges();
  Bitset conn = root_conn != nullptr ? *root_conn : h.EmptyVertexSet();
  if (h.NumEdges() == 0) {
    Hypertree empty;
    empty.AddNode(h.EmptyVertexSet(), h.EmptyEdgeSet());
    return empty;
  }
  DetSearch search(h, k, governor);
  bool found = search.Decompose(all, conn);
  if (governor != nullptr && governor->exhausted()) {
    return governor->trip_status();
  }
  if (!found) {
    return Status::NotFound("no hypertree decomposition of width <= " +
                            std::to_string(k));
  }
  Hypertree out;
  search.Build(all, conn, HypertreeNode::kNoParent, &out);
  return out;
}

Result<std::size_t> ComputeHypertreeWidth(const Hypergraph& h,
                                          std::size_t max_k,
                                          ResourceGovernor* governor) {
  if (h.NumEdges() == 0) return std::size_t{0};
  for (std::size_t k = 1; k <= max_k; ++k) {
    auto hd = DetKDecomp(h, k, nullptr, governor);
    if (hd.ok()) return k;
    if (hd.status().code() == StatusCode::kDeadlineExceeded) {
      return hd.status();
    }
  }
  return Status::NotFound("hypertree width exceeds " + std::to_string(max_k));
}

}  // namespace htqo

#include "decomp/det_k_decomp.h"

#include <map>
#include <optional>
#include <utility>

#include "decomp/separator_enum.h"

namespace htqo {

namespace {

using SubproblemKey = std::pair<Bitset, Bitset>;  // (component, connector)

struct Solution {
  Bitset sep;
  Bitset chi;
  std::vector<SubproblemKey> children;
};

class DetSearch {
 public:
  DetSearch(const Hypergraph& h, std::size_t k) : h_(h), k_(k) {}

  bool Decompose(const Bitset& comp, const Bitset& conn) {
    SubproblemKey key{comp, conn};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.has_value();

    std::optional<Solution> found;
    decomp_internal::ForEachSeparator(
        h_, comp, conn, k_, [&](const Bitset& sep) {
          Bitset chi = h_.VarsOf(sep) & (conn | h_.VarsOf(comp));
          std::vector<Bitset> components = h_.ComponentsOf(comp, chi);
          Solution sol;
          sol.sep = sep;
          sol.chi = chi;
          for (const Bitset& child : components) {
            if (child == comp) return false;  // no progress, next separator
            Bitset child_conn = h_.VarsOf(child) & chi;
            if (!Decompose(child, child_conn)) return false;
            sol.children.emplace_back(child, child_conn);
          }
          found = std::move(sol);
          return true;  // stop enumeration
        });
    memo_.emplace(std::move(key), std::move(found));
    return memo_.at({comp, conn}).has_value();
  }

  // Rebuilds the hypertree from the memoized solutions.
  void Build(const Bitset& comp, const Bitset& conn, std::size_t parent,
             Hypertree* out) const {
    const std::optional<Solution>& sol = memo_.at({comp, conn});
    HTQO_CHECK(sol.has_value());
    std::size_t node = out->AddNode(sol->chi, sol->sep, parent);
    for (const SubproblemKey& child : sol->children) {
      Build(child.first, child.second, node, out);
    }
  }

 private:
  const Hypergraph& h_;
  std::size_t k_;
  std::map<SubproblemKey, std::optional<Solution>> memo_;
};

}  // namespace

Result<Hypertree> DetKDecomp(const Hypergraph& h, std::size_t k,
                             const Bitset* root_conn) {
  HTQO_CHECK(k >= 1);
  Bitset all = h.AllEdges();
  Bitset conn = root_conn != nullptr ? *root_conn : h.EmptyVertexSet();
  if (h.NumEdges() == 0) {
    Hypertree empty;
    empty.AddNode(h.EmptyVertexSet(), h.EmptyEdgeSet());
    return empty;
  }
  DetSearch search(h, k);
  if (!search.Decompose(all, conn)) {
    return Status::NotFound("no hypertree decomposition of width <= " +
                            std::to_string(k));
  }
  Hypertree out;
  search.Build(all, conn, HypertreeNode::kNoParent, &out);
  return out;
}

Result<std::size_t> ComputeHypertreeWidth(const Hypergraph& h,
                                          std::size_t max_k) {
  if (h.NumEdges() == 0) return std::size_t{0};
  for (std::size_t k = 1; k <= max_k; ++k) {
    auto hd = DetKDecomp(h, k);
    if (hd.ok()) return k;
  }
  return Status::NotFound("hypertree width exceeds " + std::to_string(max_k));
}

}  // namespace htqo

#include "decomp/cost_k_decomp.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include "decomp/separator_enum.h"
#include "util/thread_pool.h"

namespace htqo {

double StructuralCostModel::VertexRows(const Bitset& lambda,
                                       const Bitset& chi) const {
  (void)chi;
  return std::pow(default_rows_, static_cast<double>(lambda.Count()));
}

double StructuralCostModel::VertexCost(const Bitset& lambda,
                                       const Bitset& chi) const {
  return VertexRows(lambda, chi);
}

double StatsDecompositionCostModel::DistinctOf(std::size_t v,
                                               const Bitset& lambda) const {
  double best = 0;
  for (std::size_t e = lambda.FirstSet(); e < lambda.size();
       e = lambda.NextSet(e)) {
    if (!h_.edge(e).Test(v)) continue;
    auto it = edges_[e].distinct.find(v);
    double d = it != edges_[e].distinct.end() ? it->second : edges_[e].rows;
    best = std::max(best, d);
  }
  return best > 0 ? best : 1000.0;
}

double StatsDecompositionCostModel::JoinRows(const Bitset& lambda) const {
  double rows = 1.0;
  for (std::size_t e = lambda.FirstSet(); e < lambda.size();
       e = lambda.NextSet(e)) {
    rows *= std::max(1.0, edges_[e].rows);
  }
  Bitset vars = h_.VarsOf(lambda);
  for (std::size_t v = vars.FirstSet(); v < vars.size(); v = vars.NextSet(v)) {
    std::size_t occurrences = 0;
    for (std::size_t e = lambda.FirstSet(); e < lambda.size();
         e = lambda.NextSet(e)) {
      if (h_.edge(e).Test(v)) ++occurrences;
    }
    if (occurrences >= 2) {
      double d = DistinctOf(v, lambda);
      rows /= std::pow(std::max(1.0, d),
                       static_cast<double>(occurrences - 1));
    }
  }
  return std::max(1.0, rows);
}

double StatsDecompositionCostModel::VertexRows(const Bitset& lambda,
                                               const Bitset& chi) const {
  double join_rows = JoinRows(lambda);
  // Projection onto chi: cannot exceed the product of distinct counts.
  double cap = 1.0;
  for (std::size_t v = chi.FirstSet(); v < chi.size(); v = chi.NextSet(v)) {
    cap *= DistinctOf(v, lambda);
    if (cap >= join_rows) return join_rows;  // early out, cap not binding
  }
  return std::max(1.0, std::min(join_rows, cap));
}

double StatsDecompositionCostModel::VertexCost(const Bitset& lambda,
                                               const Bitset& chi) const {
  (void)chi;
  // Work of materializing the lambda join: simulate the evaluator's
  // connected-first greedy fold and charge every intermediate join size —
  // a separator of mutually disconnected edges is thereby charged its cross
  // products.
  std::vector<std::size_t> edges = lambda.ToVector();
  if (edges.empty()) return 0.0;
  std::sort(edges.begin(), edges.end(), [&](std::size_t a, std::size_t b) {
    return edges_[a].rows < edges_[b].rows;
  });
  Bitset subset(lambda.size());
  subset.Set(edges[0]);
  Bitset covered = h_.edge(edges[0]);
  double cost = std::max(1.0, edges_[edges[0]].rows);
  std::vector<bool> used(edges.size(), false);
  used[0] = true;
  for (std::size_t step = 1; step < edges.size(); ++step) {
    std::size_t best = edges.size();
    bool best_connected = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (used[i]) continue;
      bool conn = h_.edge(edges[i]).Intersects(covered);
      if (best == edges.size() || (conn && !best_connected)) {
        best = i;
        best_connected = conn;
      }
    }
    used[best] = true;
    subset.Set(edges[best]);
    covered |= h_.edge(edges[best]);
    cost += JoinRows(subset) + std::max(1.0, edges_[edges[best]].rows);
  }
  return cost;
}

namespace {

using SubproblemKey = std::pair<Bitset, Bitset>;

struct Solution {
  Bitset sep;
  Bitset chi;
  double rows = 0;   // estimated rows of this vertex relation
  double cost = 0;   // total cost of the subtree rooted here
  std::vector<SubproblemKey> children;
};

class CostSearch {
 public:
  CostSearch(const Hypergraph& h, std::size_t k,
             const DecompositionCostModel& model, ResourceGovernor* governor,
             ThreadPool* pool, std::size_t num_threads)
      : h_(h),
        k_(k),
        model_(model),
        governor_(governor),
        pool_(pool),
        parallel_(pool != nullptr && num_threads > 1) {}

  // Minimum subtree cost for the subproblem, or nullopt when infeasible.
  // In parallel mode the memo doubles as a claim table: the first thread to
  // reach a key computes it, later threads block until it is published, so
  // every subproblem is evaluated exactly once — the governor's node total
  // is therefore identical to the serial search at any thread count.
  const std::optional<Solution>& Decompose(const Bitset& comp,
                                           const Bitset& conn) {
    SubproblemKey key{comp, conn};
    if (!parallel_) {
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second.sol;
      // Recursive calls only see strictly smaller components, so no cycle
      // can reach this key before it is memoized below.
      std::optional<Solution> best = Compute(comp, conn);
      if (governor_ != nullptr && governor_->exhausted()) {
        // Aborted mid-enumeration: memoizing would record an answer derived
        // from a truncated search space. The caller returns the trip status
        // and this search object is never reused.
        static const std::optional<Solution> kAborted;
        return kAborted;
      }
      ChargeMemo();
      auto [pos, inserted] = memo_.try_emplace(std::move(key));
      HTQO_CHECK(inserted);
      pos->second.sol = std::move(best);
      pos->second.done = true;
      return pos->second.sol;
    }

    MemoEntry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto [it, inserted] = memo_.try_emplace(key);
      if (!inserted) {
        // std::map references are stable across inserts, so waiting on and
        // returning this entry is safe without re-lookup.
        cv_.wait(lock, [&] { return it->second.done; });
        return it->second.sol;
      }
      entry = &it->second;
    }
    std::optional<Solution> best = Compute(comp, conn);
    const bool aborted = governor_ != nullptr && governor_->exhausted();
    if (aborted) {
      // Still publish (as infeasible) so waiters wake; the whole search is
      // discarded after a trip, so the bogus entry is never consumed.
      best.reset();
    } else {
      ChargeMemo();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->sol = std::move(best);
      entry->done = true;
    }
    cv_.notify_all();
    if (aborted) {
      static const std::optional<Solution> kAborted;
      return kAborted;
    }
    return entry->sol;
  }

  // Root fan-out: enumerate the root's separator candidates first (in the
  // exact order — and with the exact governor charges — of the serial
  // enumeration), evaluate them on the pool, then min-reduce serially in
  // candidate order with a strict `<`, which reproduces the serial
  // first-strict-minimum tie-break bit for bit.
  bool DecomposeRootParallel(const Bitset& comp, const Bitset& conn,
                             std::size_t lanes) {
    std::vector<Bitset> candidates;
    decomp_internal::ForEachSeparator(
        h_, comp, conn, k_,
        [&](const Bitset& sep) {
          candidates.push_back(sep);
          return false;
        },
        governor_);
    if (governor_ != nullptr && governor_->exhausted()) return false;
    std::vector<std::optional<Solution>> sols(candidates.size());
    pool_->ParallelFor(0, candidates.size(), /*grain=*/1, lanes, governor_,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           sols[i] =
                               EvaluateCandidate(comp, conn, candidates[i]);
                         }
                       });
    if (governor_ != nullptr && governor_->exhausted()) return false;
    std::optional<Solution> best;
    for (std::optional<Solution>& sol : sols) {
      if (sol.has_value() && (!best.has_value() || sol->cost < best->cost)) {
        best = std::move(*sol);
      }
    }
    ChargeMemo();
    const bool found = best.has_value();
    MemoEntry& entry = memo_[SubproblemKey{comp, conn}];
    entry.sol = std::move(best);
    entry.done = true;
    return found;
  }

  void Build(const Bitset& comp, const Bitset& conn, std::size_t parent,
             Hypertree* out) const {
    const std::optional<Solution>& sol = memo_.at({comp, conn}).sol;
    HTQO_CHECK(sol.has_value());
    std::size_t node = out->AddNode(sol->chi, sol->sep, parent);
    for (const SubproblemKey& child : sol->children) {
      Build(child.first, child.second, node, out);
    }
  }

 private:
  struct MemoEntry {
    bool done = false;
    std::optional<Solution> sol;
  };

  // Cost of one candidate separator for (comp, conn): vertex cost plus the
  // recursively decomposed children. nullopt when infeasible (or aborted —
  // the callers re-check the governor).
  std::optional<Solution> EvaluateCandidate(const Bitset& comp,
                                            const Bitset& conn,
                                            const Bitset& sep) {
    Bitset chi = h_.VarsOf(sep) & (conn | h_.VarsOf(comp));
    std::vector<Bitset> components = h_.ComponentsOf(comp, chi);
    Solution sol;
    sol.sep = sep;
    sol.chi = chi;
    sol.rows = model_.VertexRows(sep, chi);
    sol.cost = model_.VertexCost(sep, chi);
    for (const Bitset& child : components) {
      if (child == comp) return std::nullopt;  // no progress
      Bitset child_conn = h_.VarsOf(child) & chi;
      const std::optional<Solution>& sub = Decompose(child, child_conn);
      if (!sub.has_value()) return std::nullopt;
      sol.cost += sub->cost + model_.JoinCost(sol.rows, sub->rows);
      sol.children.emplace_back(child, child_conn);
    }
    return sol;
  }

  std::optional<Solution> Compute(const Bitset& comp, const Bitset& conn) {
    std::optional<Solution> best;
    if (governor_ == nullptr || !governor_->exhausted()) {
      decomp_internal::ForEachSeparator(
          h_, comp, conn, k_,
          [&](const Bitset& sep) {
            std::optional<Solution> sol = EvaluateCandidate(comp, conn, sep);
            if (sol.has_value() &&
                (!best.has_value() || sol->cost < best->cost)) {
              best = std::move(*sol);
            }
            return false;  // keep enumerating: we want the minimum
          },
          governor_);
    }
    return best;
  }

  void ChargeMemo() {
    if (governor_ != nullptr) {
      (void)governor_->ChargeMemory(
          decomp_internal::ApproxSubproblemBytes(h_));
    }
  }

  const Hypergraph& h_;
  std::size_t k_;
  const DecompositionCostModel& model_;
  ResourceGovernor* governor_;
  ThreadPool* pool_;
  const bool parallel_;
  std::mutex mu_;                // guards memo_ when parallel_
  std::condition_variable cv_;   // signals entry->done transitions
  std::map<SubproblemKey, MemoEntry> memo_;
};

}  // namespace

Result<Hypertree> CostKDecomp(const Hypergraph& h, std::size_t k,
                              const DecompositionCostModel& model,
                              const Bitset* root_conn,
                              ResourceGovernor* governor, ThreadPool* pool,
                              std::size_t num_threads) {
  HTQO_CHECK(k >= 1);
  if (h.NumEdges() == 0) {
    Hypertree empty;
    empty.AddNode(h.EmptyVertexSet(), h.EmptyEdgeSet());
    return empty;
  }
  Bitset all = h.AllEdges();
  Bitset conn = root_conn != nullptr ? *root_conn : h.EmptyVertexSet();
  CostSearch search(h, k, model, governor, pool, num_threads);
  const bool parallel = pool != nullptr && num_threads > 1;
  bool found = parallel ? search.DecomposeRootParallel(all, conn, num_threads)
                        : search.Decompose(all, conn).has_value();
  if (governor != nullptr && governor->exhausted()) {
    return governor->trip_status();
  }
  if (!found) {
    return Status::NotFound("no hypertree decomposition of width <= " +
                            std::to_string(k));
  }
  Hypertree out;
  search.Build(all, conn, HypertreeNode::kNoParent, &out);
  return out;
}

}  // namespace htqo

#include "decomp/validate.h"

namespace htqo {

std::string DecompositionCheck::ToString() const {
  auto b = [](bool v) { return v ? "yes" : "NO"; };
  std::string out;
  out += std::string("edge_cover=") + b(edge_cover);
  out += std::string(" connectedness=") + b(connectedness);
  out += std::string(" chi_covered=") + b(chi_covered_by_lambda);
  out += std::string(" special_descendant=") + b(special_descendant);
  out += std::string(" output_covered=") + b(output_covered);
  out += std::string(" root_covers_output=") + b(root_covers_output);
  return out;
}

DecompositionCheck ValidateDecomposition(const Hypergraph& h,
                                         const Hypertree& hd,
                                         const Bitset& output_vars) {
  DecompositionCheck check;
  const std::size_t n = hd.NumNodes();
  if (n == 0) return check;

  // Condition 1: every hyperedge covered by some chi.
  check.edge_cover = true;
  for (std::size_t e = 0; e < h.NumEdges(); ++e) {
    bool covered = false;
    for (std::size_t p = 0; p < n && !covered; ++p) {
      covered = h.edge(e).IsSubsetOf(hd.node(p).chi);
    }
    if (!covered) {
      check.edge_cover = false;
      break;
    }
  }

  // Connectedness: for each variable, nodes containing it induce a subtree.
  check.connectedness = true;
  for (std::size_t v = 0; v < h.NumVertices() && check.connectedness; ++v) {
    std::size_t count = 0;
    std::size_t links = 0;
    for (std::size_t p = 0; p < n; ++p) {
      if (!hd.node(p).chi.Test(v)) continue;
      ++count;
      std::size_t parent = hd.node(p).parent;
      if (parent != HypertreeNode::kNoParent && hd.node(parent).chi.Test(v)) {
        ++links;
      }
    }
    if (count > 0 && links != count - 1) check.connectedness = false;
  }

  // Condition 3: chi(p) subset of var(lambda(p)).
  check.chi_covered_by_lambda = true;
  for (std::size_t p = 0; p < n; ++p) {
    if (!hd.node(p).chi.IsSubsetOf(h.VarsOf(hd.node(p).lambda))) {
      check.chi_covered_by_lambda = false;
      break;
    }
  }

  // Condition 4: var(lambda(p)) ∩ chi(T_p) ⊆ chi(p).
  check.special_descendant = true;
  for (std::size_t p = 0; p < n; ++p) {
    Bitset intersection = h.VarsOf(hd.node(p).lambda) & hd.SubtreeChi(p);
    if (!intersection.IsSubsetOf(hd.node(p).chi)) {
      check.special_descendant = false;
      break;
    }
  }

  // Definition 2 condition 2: out(Q) inside some chi; and root-rooting.
  if (output_vars.None()) {
    check.output_covered = true;
    check.root_covers_output = true;
  } else {
    for (std::size_t p = 0; p < n; ++p) {
      if (output_vars.IsSubsetOf(hd.node(p).chi)) {
        check.output_covered = true;
        break;
      }
    }
    check.root_covers_output =
        output_vars.IsSubsetOf(hd.node(hd.root()).chi);
  }

  return check;
}

}  // namespace htqo

#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <memory>

#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/spill.h"
#include "util/strings.h"

namespace htqo {

namespace {

// Output column type inference (used so empty results still get a schema).
ValueType InferType(const Expr& e, const ResolvedQuery& rq,
                    const Relation& answer) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.type();
    case ExprKind::kColumnRef: {
      auto var = rq.ResolveRef(e);
      if (var.ok()) {
        auto idx = answer.schema().IndexOf(rq.cq.vars[*var].name);
        if (idx) return answer.schema().column(*idx).type;
      }
      return ValueType::kInt64;
    }
    case ExprKind::kBinary: {
      if (e.op == '/') return ValueType::kDouble;
      ValueType l = InferType(*e.lhs, rq, answer);
      ValueType r = InferType(*e.rhs, rq, answer);
      if (l == ValueType::kInt64 && r == ValueType::kInt64) {
        return ValueType::kInt64;
      }
      return ValueType::kDouble;
    }
    case ExprKind::kAggregate:
      switch (e.agg) {
        case AggFunc::kCount:
          return ValueType::kInt64;
        case AggFunc::kAvg:
          return ValueType::kDouble;
        case AggFunc::kSum:
          return e.lhs ? InferType(*e.lhs, rq, answer) : ValueType::kInt64;
        case AggFunc::kMin:
        case AggFunc::kMax:
          return e.lhs ? InferType(*e.lhs, rq, answer) : ValueType::kInt64;
      }
      return ValueType::kInt64;
    case ExprKind::kScalarSubquery:
      return ValueType::kDouble;  // placeholder; rewritten before execution
  }
  return ValueType::kInt64;
}

std::string ItemName(const SelectItem& item, std::size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr.kind == ExprKind::kColumnRef) return item.expr.column;
  return "col" + std::to_string(index);
}

Schema OutputSchema(const ResolvedQuery& rq, const Relation& answer) {
  std::vector<Column> cols;
  std::vector<std::string> used;
  for (std::size_t i = 0; i < rq.stmt.items.size(); ++i) {
    std::string name = ItemName(rq.stmt.items[i], i);
    std::string unique = name;
    int suffix = 2;
    auto taken = [&](const std::string& n) {
      for (const std::string& u : used) {
        if (EqualsIgnoreCase(u, n)) return true;
      }
      return false;
    };
    while (taken(unique)) unique = name + "_" + std::to_string(suffix++);
    used.push_back(unique);
    cols.push_back(Column{unique, InferType(rq.stmt.items[i].expr, rq, answer)});
  }
  return Schema(std::move(cols));
}

// Column index in `answer` for a column-ref expression.
Result<std::size_t> AnswerColumnOf(const ResolvedQuery& rq,
                                   const Relation& answer, const Expr& ref) {
  auto var = rq.ResolveRef(ref);
  if (!var.ok()) return var.status();
  auto idx = answer.schema().IndexOf(rq.cq.vars[*var].name);
  if (!idx) {
    return Status::Internal("output variable " + rq.cq.vars[*var].name +
                            " missing from answer relation");
  }
  return *idx;
}

Status ApplyOrderBy(const ResolvedQuery& rq, Relation* output) {
  if (rq.stmt.order_by.empty()) return Status::Ok();
  std::vector<std::size_t> cols;
  std::vector<bool> desc;
  for (const OrderItem& item : rq.stmt.order_by) {
    auto idx = output->schema().IndexOf(item.name);
    if (!idx) {
      return Status::InvalidArgument("ORDER BY references unknown column: " +
                                     item.name);
    }
    cols.push_back(*idx);
    desc.push_back(item.descending);
  }
  output->SortBy(cols, desc);
  return Status::Ok();
}

}  // namespace

Result<Relation> ProjectToOutputVars(const ResolvedQuery& rq,
                                     const Relation& join_result,
                                     ExecContext* ctx) {
  std::vector<std::string> names;
  names.reserve(rq.cq.output_vars.size());
  for (VarId v : rq.cq.output_vars) names.push_back(rq.cq.vars[v].name);
  Status s = ctx->ChargeWork(join_result.NumRows());
  if (!s.ok()) return s;
  auto out = ProjectByName(join_result, names, /*distinct=*/true, ctx);
  if (!out.ok()) return out.status();
  ctx->NotePeak(*out);
  return out;
}

Relation EmptyAnswer(const ResolvedQuery& rq) {
  std::vector<Column> cols;
  for (VarId v : rq.cq.output_vars) {
    cols.push_back(Column{rq.cq.vars[v].name, ValueType::kInt64});
  }
  return Relation{Schema(std::move(cols))};
}

Result<Relation> EvaluateSelectOutput(const ResolvedQuery& rq,
                                      const Relation& answer,
                                      ExecContext* ctx) {
  ScopedSpan out_span(ctx->tracer, "select.output", ctx->SpanParent());
  out_span.Attr("rows_in", answer.NumRows());
  const SelectStatement& stmt = rq.stmt;
  Relation output{OutputSchema(rq, answer)};

  // GROUP BY without aggregates and HAVING both route through the
  // aggregation machinery (one output row per group).
  const bool aggregate_query = stmt.HasAggregates() ||
                               !stmt.group_by.empty() ||
                               !stmt.having.empty();

  if (!aggregate_query) {
    if (ctx->vectorized) {
      // Batch path: each select item evaluates over a whole batch with
      // column refs resolved once per node per batch (the row loop below
      // re-resolves per cell through a std::function), then the item
      // vectors transpose into row-major output.
      ColumnIndexLookup col_index = [&](const Expr& ref) {
        auto idx = AnswerColumnOf(rq, answer, ref);
        HTQO_CHECK(idx.ok());
        return *idx;
      };
      const std::size_t n_items = stmt.items.size();
      std::vector<std::vector<Value>> item_vals(n_items);
      for (std::size_t lo = 0; lo < answer.NumRows(); lo += kBatchRows) {
        const std::size_t hi = std::min(lo + kBatchRows, answer.NumRows());
        Status s = ctx->ChargeWork(hi - lo);
        if (!s.ok()) return s;
        for (std::size_t i = 0; i < n_items; ++i) {
          EvalScalarBatch(stmt.items[i].expr, answer, lo, hi, col_index,
                          &item_vals[i]);
        }
        Status st = ctx->ChargeRows(hi - lo);
        if (!st.ok()) return st;
        Value* base = output.AppendRaw(hi - lo);
        for (std::size_t i = 0; i < n_items; ++i) {
          for (std::size_t k = 0; k < hi - lo; ++k) {
            base[k * n_items + i] = item_vals[i][k];
          }
        }
        ctx->batches.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      std::vector<Value> row(stmt.items.size());
      for (std::size_t r = 0; r < answer.NumRows(); ++r) {
        Status s = ctx->ChargeWork(1);
        if (!s.ok()) return s;
        auto src = answer.Row(r);
        ColumnLookup lookup = [&](const Expr& ref) {
          auto idx = AnswerColumnOf(rq, answer, ref);
          HTQO_CHECK(idx.ok());
          return src[*idx];
        };
        for (std::size_t i = 0; i < stmt.items.size(); ++i) {
          row[i] = EvalScalar(stmt.items[i].expr, lookup);
        }
        Status st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        output.AddRow(row);
      }
    }
    if (stmt.distinct) {
      auto distinct = SpillableDistinct(output, ctx);
      if (!distinct.ok()) return distinct.status();
      output = std::move(distinct.value());
    }
    Status s = ApplyOrderBy(rq, &output);
    if (!s.ok()) return s;
    if (stmt.limit) output.Truncate(*stmt.limit);
    return output;
  }

  // --- Aggregation path. ----------------------------------------------------
  // Canonicalize the input order so floating-point accumulation is
  // plan-independent: every optimizer mode then produces bit-identical
  // aggregate results for the same CQ answer set.
  Relation sorted_answer = answer;
  sorted_answer.SortBy({});

  // Group key columns in the answer relation.
  std::vector<std::size_t> group_cols;
  for (const Expr& g : stmt.group_by) {
    auto idx = AnswerColumnOf(rq, answer, g);
    if (!idx.ok()) return idx.status();
    group_cols.push_back(*idx);
  }

  // All aggregate nodes across the select list and HAVING conjuncts, in
  // appearance order.
  std::vector<const Expr*> agg_nodes;
  std::function<void(const Expr&)> collect_aggs = [&](const Expr& e) {
    if (e.kind == ExprKind::kAggregate) {
      agg_nodes.push_back(&e);
      return;
    }
    if (e.lhs) collect_aggs(*e.lhs);
    if (e.rhs) collect_aggs(*e.rhs);
  };
  for (const SelectItem& item : stmt.items) collect_aggs(item.expr);
  for (const Comparison& hv : stmt.having) {
    collect_aggs(hv.lhs);
    collect_aggs(hv.rhs);
  }

  struct Group {
    std::vector<Value> key;
    std::vector<AggAccumulator> accumulators;
    uint64_t first_tag = 0;  // original row index of the group's first row
  };
  std::vector<Group> groups;
  std::unordered_multimap<std::size_t, std::size_t> group_index;

  // `h` is the group-key hash of `row` (HashRowKey over group_cols); the
  // row path computes it per row, the batch path reads it from a KeyBlock.
  auto find_or_create_group = [&](std::span<const Value> row, uint64_t tag,
                                  std::size_t h) -> Group& {
    auto [lo, hi] = group_index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      Group& g = groups[it->second];
      bool match = true;
      for (std::size_t i = 0; i < group_cols.size(); ++i) {
        if (g.key[i].Compare(row[group_cols[i]]) != 0) {
          match = false;
          break;
        }
      }
      if (match) return g;
    }
    Group g;
    for (std::size_t c : group_cols) g.key.push_back(row[c]);
    g.accumulators.reserve(agg_nodes.size());
    for (const Expr* a : agg_nodes) g.accumulators.emplace_back(a->agg);
    g.first_tag = tag;
    groups.push_back(std::move(g));
    group_index.emplace(h, groups.size() - 1);
    return groups.back();
  };

  auto accumulate = [&](std::span<const Value> src, uint64_t tag) {
    Group& g = find_or_create_group(src, tag, HashRowKey(src, group_cols));
    ColumnLookup lookup = [&](const Expr& ref) {
      auto idx = AnswerColumnOf(rq, answer, ref);
      HTQO_CHECK(idx.ok());
      return src[*idx];
    };
    for (std::size_t a = 0; a < agg_nodes.size(); ++a) {
      if (agg_nodes[a]->lhs == nullptr) {
        g.accumulators[a].AddCountStar();
      } else {
        g.accumulators[a].Add(EvalScalar(*agg_nodes[a]->lhs, lookup));
      }
    }
  };

  // Grouping working set: keys plus hash index, bounded by one entry per
  // input row.
  const std::size_t group_working_bytes =
      sorted_answer.NumRows() *
      (group_cols.size() * sizeof(Value) + 4 * sizeof(std::size_t));

  if (!group_cols.empty() && ctx->ShouldSpill(group_working_bytes)) {
    // Spill path: hash-partition the canonicalized answer on the group key
    // (rows tagged with their input index), then aggregate one partition at
    // a time. A group's rows always share a partition and arrive in input
    // order, so every accumulator sees the same value sequence as the
    // in-memory loop; sorting the groups by first_tag afterwards restores
    // the in-memory first-appearance order exactly.
    ctx->spill->NoteSpillEvent();
    const std::size_t fanout = ctx->spill->options().fanout;
    std::vector<std::unique_ptr<SpillFile>> parts;
    parts.reserve(fanout);
    for (std::size_t i = 0; i < fanout; ++i) {
      auto file = ctx->spill->Create();
      if (!file.ok()) return file.status();
      parts.push_back(std::move(file.value()));
    }
    for (std::size_t r = 0; r < sorted_answer.NumRows(); ++r) {
      Status s = ctx->ChargeWork(1);
      if (!s.ok()) return s;
      auto src = sorted_answer.Row(r);
      std::size_t h = HashRowKey(src, group_cols);
      Status a = parts[h % fanout]->Append(r, src);
      if (!a.ok()) return a;
    }
    for (auto& p : parts) {
      Status s = p->Finish();
      if (!s.ok()) return s;
    }
    for (auto& p : parts) {
      Relation part{sorted_answer.schema()};
      std::vector<uint64_t> tags;
      Status s = p->ReadBack(&part, &tags);
      if (!s.ok()) return s;
      p.reset();  // unlink before loading the next partition
      ScopedTableMemory loaded(
          ctx, part.NumRows() * (part.arity() * sizeof(Value) + 8));
      if (!loaded.status().ok()) return loaded.status();
      for (std::size_t r = 0; r < part.NumRows(); ++r) {
        Status w = ctx->ChargeWork(1);
        if (!w.ok()) return w;
        accumulate(part.Row(r), tags[r]);
      }
    }
    std::stable_sort(groups.begin(), groups.end(),
                     [](const Group& a, const Group& b) {
                       return a.first_tag < b.first_tag;
                     });
    group_index.clear();
  } else if (ctx->vectorized) {
    // Batch aggregation: group-key hashes for the whole canonicalized input
    // come from one KeyBlock (bit-identical to HashRowKey, so group
    // discovery order — and with it output order — matches the row loop),
    // and each aggregate argument evaluates per batch. Accumulation itself
    // stays per row in input order: float sums must add in the exact same
    // sequence to stay bit-identical.
    ScopedTableMemory working(
        ctx, group_cols.empty() ? 0 : group_working_bytes);
    if (!working.status().ok()) return working.status();
    ColumnIndexLookup col_index = [&](const Expr& ref) {
      auto idx = AnswerColumnOf(rq, answer, ref);
      HTQO_CHECK(idx.ok());
      return *idx;
    };
    KeyBlock gkeys = BuildKeyBlock(sorted_answer, group_cols);
    std::vector<std::vector<Value>> arg_vals(agg_nodes.size());
    for (std::size_t lo = 0; lo < sorted_answer.NumRows(); lo += kBatchRows) {
      const std::size_t hi = std::min(lo + kBatchRows, sorted_answer.NumRows());
      Status s = ctx->ChargeWork(hi - lo);
      if (!s.ok()) return s;
      for (std::size_t a = 0; a < agg_nodes.size(); ++a) {
        if (agg_nodes[a]->lhs != nullptr) {
          EvalScalarBatch(*agg_nodes[a]->lhs, sorted_answer, lo, hi,
                          col_index, &arg_vals[a]);
        }
      }
      for (std::size_t r = lo; r < hi; ++r) {
        Group& g =
            find_or_create_group(sorted_answer.Row(r), r, gkeys.hashes[r]);
        for (std::size_t a = 0; a < agg_nodes.size(); ++a) {
          if (agg_nodes[a]->lhs == nullptr) {
            g.accumulators[a].AddCountStar();
          } else {
            g.accumulators[a].Add(arg_vals[a][r - lo]);
          }
        }
      }
      ctx->batches.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ScopedTableMemory working(
        ctx, group_cols.empty() ? 0 : group_working_bytes);
    if (!working.status().ok()) return working.status();
    for (std::size_t r = 0; r < sorted_answer.NumRows(); ++r) {
      Status s = ctx->ChargeWork(1);
      if (!s.ok()) return s;
      accumulate(sorted_answer.Row(r), r);
    }
  }

  // A query with aggregates but no GROUP BY emits one row even on empty
  // input.
  if (groups.empty() && stmt.group_by.empty()) {
    Group g;
    for (const Expr* a : agg_nodes) g.accumulators.emplace_back(a->agg);
    groups.push_back(std::move(g));
  }

  for (const Group& g : groups) {
    std::map<const Expr*, Value> agg_values;
    for (std::size_t a = 0; a < agg_nodes.size(); ++a) {
      agg_values[agg_nodes[a]] = g.accumulators[a].Finish();
    }
    ColumnLookup col_lookup = [&](const Expr& ref) {
      // Bare columns in an aggregate query are grouped (validated by the
      // isolator): locate the group-by entry with the same variable.
      auto var = rq.ResolveRef(ref);
      HTQO_CHECK(var.ok());
      for (std::size_t i = 0; i < stmt.group_by.size(); ++i) {
        auto gvar = rq.ResolveRef(stmt.group_by[i]);
        HTQO_CHECK(gvar.ok());
        if (*gvar == *var) return g.key[i];
      }
      HTQO_CHECK(false);
      return Value();
    };
    AggregateLookup agg_lookup = [&](const Expr& agg) {
      auto it = agg_values.find(&agg);
      HTQO_CHECK(it != agg_values.end());
      return it->second;
    };
    // HAVING: every conjunct must hold for the group.
    bool keep = true;
    for (const Comparison& hv : stmt.having) {
      Value lhs = EvalScalar(hv.lhs, col_lookup, &agg_lookup);
      Value rhs = EvalScalar(hv.rhs, col_lookup, &agg_lookup);
      if (!EvalCompare(hv.op, lhs, rhs)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    std::vector<Value> row(stmt.items.size());
    for (std::size_t i = 0; i < stmt.items.size(); ++i) {
      row[i] = EvalScalar(stmt.items[i].expr, col_lookup, &agg_lookup);
    }
    Status st = ctx->ChargeRows(1);
    if (!st.ok()) return st;
    output.AddRow(row);
  }

  Status s = ApplyOrderBy(rq, &output);
  if (!s.ok()) return s;
  if (stmt.limit) output.Truncate(*stmt.limit);
  return output;
}

}  // namespace htqo

#include "exec/plan.h"

namespace htqo {

std::unique_ptr<JoinPlan> JoinPlan::Leaf(std::size_t atom) {
  auto node = std::make_unique<JoinPlan>();
  node->atom = atom;
  return node;
}

std::unique_ptr<JoinPlan> JoinPlan::Join(std::unique_ptr<JoinPlan> l,
                                         std::unique_ptr<JoinPlan> r,
                                         JoinAlgo algo) {
  auto node = std::make_unique<JoinPlan>();
  node->left = std::move(l);
  node->right = std::move(r);
  node->algo = algo;
  return node;
}

void JoinPlan::CollectAtoms(std::vector<std::size_t>* out) const {
  if (IsLeaf()) {
    out->push_back(atom);
    return;
  }
  left->CollectAtoms(out);
  right->CollectAtoms(out);
}

std::string JoinPlan::ToString(const ResolvedQuery& rq) const {
  if (IsLeaf()) return rq.cq.atoms[atom].alias;
  const char* op = algo == JoinAlgo::kHash
                       ? " HJ "
                       : (algo == JoinAlgo::kNestedLoop ? " NL " : " SM ");
  return "(" + left->ToString(rq) + op + right->ToString(rq) + ")";
}

Result<Relation> ExecuteJoinPlan(const JoinPlan& plan, const ResolvedQuery& rq,
                                 const Catalog& catalog, ExecContext* ctx) {
  ScopedSpan node_span(ctx->tracer, "plan.node", ctx->SpanParent());
  if (plan.IsLeaf()) {
    node_span.Attr("op", "scan");
    node_span.Attr("atom", rq.cq.atoms[plan.atom].alias);
    auto scan = ScanAtom(rq, plan.atom, catalog, ctx);
    if (scan.ok()) node_span.Attr("rows_out", scan->NumRows());
    return scan;
  }
  node_span.Attr("op", plan.algo == JoinAlgo::kHash
                           ? "hash_join"
                           : (plan.algo == JoinAlgo::kNestedLoop
                                  ? "nl_join"
                                  : "merge_join"));
  auto left = ExecuteJoinPlan(*plan.left, rq, catalog, ctx);
  if (!left.ok()) return left.status();
  auto right = ExecuteJoinPlan(*plan.right, rq, catalog, ctx);
  if (!right.ok()) return right.status();
  Result<Relation> joined = Status::Internal("unknown join algorithm");
  switch (plan.algo) {
    case JoinAlgo::kHash:
      joined = NaturalHashJoin(*left, *right, ctx);
      break;
    case JoinAlgo::kNestedLoop:
      joined = NaturalNestedLoopJoin(*left, *right, ctx);
      break;
    case JoinAlgo::kSortMerge:
      joined = NaturalSortMergeJoin(*left, *right, ctx);
      break;
  }
  if (joined.ok()) node_span.Attr("rows_out", joined->NumRows());
  return joined;
}

}  // namespace htqo

#include "exec/plan.h"

namespace htqo {

std::unique_ptr<JoinPlan> JoinPlan::Leaf(std::size_t atom) {
  auto node = std::make_unique<JoinPlan>();
  node->atom = atom;
  return node;
}

std::unique_ptr<JoinPlan> JoinPlan::Join(std::unique_ptr<JoinPlan> l,
                                         std::unique_ptr<JoinPlan> r,
                                         JoinAlgo algo) {
  auto node = std::make_unique<JoinPlan>();
  node->left = std::move(l);
  node->right = std::move(r);
  node->algo = algo;
  return node;
}

void JoinPlan::CollectAtoms(std::vector<std::size_t>* out) const {
  if (IsLeaf()) {
    out->push_back(atom);
    return;
  }
  left->CollectAtoms(out);
  right->CollectAtoms(out);
}

std::string JoinPlan::ToString(const ResolvedQuery& rq) const {
  if (IsLeaf()) return rq.cq.atoms[atom].alias;
  const char* op = algo == JoinAlgo::kHash
                       ? " HJ "
                       : (algo == JoinAlgo::kNestedLoop ? " NL " : " SM ");
  return "(" + left->ToString(rq) + op + right->ToString(rq) + ")";
}

Result<Relation> ExecuteJoinPlan(const JoinPlan& plan, const ResolvedQuery& rq,
                                 const Catalog& catalog, ExecContext* ctx) {
  if (plan.IsLeaf()) {
    return ScanAtom(rq, plan.atom, catalog, ctx);
  }
  auto left = ExecuteJoinPlan(*plan.left, rq, catalog, ctx);
  if (!left.ok()) return left.status();
  auto right = ExecuteJoinPlan(*plan.right, rq, catalog, ctx);
  if (!right.ok()) return right.status();
  switch (plan.algo) {
    case JoinAlgo::kHash:
      return NaturalHashJoin(*left, *right, ctx);
    case JoinAlgo::kNestedLoop:
      return NaturalNestedLoopJoin(*left, *right, ctx);
    case JoinAlgo::kSortMerge:
      return NaturalSortMergeJoin(*left, *right, ctx);
  }
  return Status::Internal("unknown join algorithm");
}

}  // namespace htqo

// In-process sharded evaluation: hash-partitioned shard pieces running the
// Yannakakis semijoin program as a distributed data-reduction plan with
// Bloom-filter exchange.
//
// The decomposition search stays central; only the semijoin *reduction* of
// the tree-wave schedule distributes. Each forest node's relation is
// hash-partitioned into S shard pieces on the node's parent-link join
// columns (relations that are small, or that share no columns with their
// parent, fall back to replicate-small: one piece semantically present on
// every shard). The upward and downward reduction passes then never move
// rows between shards — a link ships an ExchangeMessage instead: a
// fixed-geometry blocked Bloom filter over the source side's join-key
// hashes, OR-merged across pieces by the coordinator, plus the exact
// distinct key set when it is small enough to be cheaper than the filter.
// Target pieces filter locally against the merged message.
//
// Determinism contract (what the equivalence sweeps assert):
//  * The merged exchange for a link is independent of S: the filter's
//    geometry is sized from the link's total row count (a partition-sum,
//    the same at any S), so OR-ing per-piece filters of identical geometry
//    reproduces exactly the filter a single shard would build; the exact
//    key-set decision compares S-invariant quantities (the distinct-key
//    union and the filter size). Surviving rows are therefore the same set
//    at any shard count, and the tag-stable gather puts them back in
//    original row order — evaluation downstream of the reduction sees
//    byte-identical inputs at any S and any thread count.
//  * Bloom reduction is approximate but sound: a false positive leaves a
//    dangling row in place (a phantom), it never drops a joining row. The
//    collect/evaluation joins that follow eliminate phantoms, so final
//    query output matches the unsharded engine exactly for the
//    forest-reduction modes; only meters may differ vs. unsharded (the
//    sharded reduction charges filter probes, not semijoin hash probes).
//    Across shard counts all charge totals are partition-sums over
//    S-invariant survivor sets, so meters are equal at any S.
//
// This layer is the seam where a process-split version later slots in:
// ExchangeMessage is the only payload that crosses shard boundaries, and
// ShardStats::filter_bytes / key_bytes vs. row_ship_bytes measure what the
// wire would carry against shipping the rows themselves.

#ifndef HTQO_EXEC_SHARD_H_
#define HTQO_EXEC_SHARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "exec/operators.h"
#include "storage/relation.h"
#include "util/bloom.h"
#include "util/status.h"

namespace htqo {

// Ceiling on the num_threads x num_shards lane product a query may request
// from the shared pool. RunResolved clamps its pool fetch to this, and
// QueryServer pre-grows to the same clamp before any session exists — the
// two must agree, because growing ThreadPool::Shared rebuilds the pool and
// must never race an in-flight query. Also the oversubscription guard: a
// misconfigured S x T cannot stall the host under hundreds of workers.
inline constexpr std::size_t kMaxShardLanes = 64;

struct ShardOptions {
  // Number of hash partitions per relation. 0 disables sharding (the
  // runtime is simply not attached); 1 runs the full sharded code path
  // with a single piece per node — the baseline the scale-out bench
  // compares against, and the cheapest way to keep one uniform path.
  std::size_t num_shards = 0;
  // Relations below this many rows are not partitioned but replicated
  // (one piece visible to every shard) — partitioning tiny relations
  // costs more in exchange rounds than it saves in per-shard work.
  std::size_t replicate_threshold = 64;
  // A link whose distinct-key union stays at or under this many keys may
  // ship the exact key set instead of (or in addition to) the Bloom
  // filter, making the reduction exact for that link.
  std::size_t exact_key_threshold = 4096;
  // Bounded retries for the shard.partition / shard.exchange fault sites,
  // mirroring the spill sites' semantics.
  std::size_t retry_limit = 2;
};

// Plain counters snapshot, reported on QueryRun::shard. All byte figures
// describe what a process-split exchange would put on the wire.
struct ShardStats {
  std::size_t num_shards = 0;     // S of the run (0 = sharding off)
  std::size_t partitions = 0;     // relations hash-partitioned
  std::size_t replicated = 0;     // relations kept whole (replicate-small)
  std::size_t exchanges = 0;      // link exchanges built (both passes)
  std::size_t exact_exchanges = 0;  // exchanges that shipped exact key sets
  std::size_t filter_bytes = 0;   // Bloom filter bytes exchanged
  std::size_t key_bytes = 0;      // exact key-set bytes exchanged
  std::size_t row_ship_bytes = 0;  // what broadcasting the rows would cost
  std::size_t rows_pruned = 0;    // rows dropped by exchange probes
  std::size_t retries = 0;        // injected-fault retries at shard sites
  std::size_t skew_max_rows = 0;  // largest hash-partitioned piece
  std::size_t skew_min_rows = 0;  // smallest hash-partitioned piece

  void Merge(const ShardStats& other) {
    num_shards = num_shards > other.num_shards ? num_shards
                                               : other.num_shards;
    partitions += other.partitions;
    replicated += other.replicated;
    exchanges += other.exchanges;
    exact_exchanges += other.exact_exchanges;
    filter_bytes += other.filter_bytes;
    key_bytes += other.key_bytes;
    row_ship_bytes += other.row_ship_bytes;
    rows_pruned += other.rows_pruned;
    retries += other.retries;
    if (other.skew_max_rows > skew_max_rows) {
      skew_max_rows = other.skew_max_rows;
    }
    if (skew_min_rows == 0 ||
        (other.skew_min_rows != 0 && other.skew_min_rows < skew_min_rows)) {
      skew_min_rows = other.skew_min_rows;
    }
  }
};

// Per-query sharding state hung on ExecContext::shard (borrowed, owned by
// HybridOptimizer::RunResolved alongside the governor). Attached iff
// RunOptions::num_shards >= 1; evaluators treat a null pointer as
// "sharding off". Counters are atomic because partition/exchange/probe
// work runs from pool lanes.
struct ShardRuntime {
  ShardOptions options;

  std::atomic<std::size_t> partitions{0};
  std::atomic<std::size_t> replicated{0};
  std::atomic<std::size_t> exchanges{0};
  std::atomic<std::size_t> exact_exchanges{0};
  std::atomic<std::size_t> filter_bytes{0};
  std::atomic<std::size_t> key_bytes{0};
  std::atomic<std::size_t> row_ship_bytes{0};
  std::atomic<std::size_t> rows_pruned{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> skew_max_rows{0};
  std::atomic<std::size_t> skew_min_rows{
      std::numeric_limits<std::size_t>::max()};

  ShardStats Snapshot() const {
    ShardStats s;
    s.num_shards = options.num_shards;
    s.partitions = partitions.load(std::memory_order_relaxed);
    s.replicated = replicated.load(std::memory_order_relaxed);
    s.exchanges = exchanges.load(std::memory_order_relaxed);
    s.exact_exchanges = exact_exchanges.load(std::memory_order_relaxed);
    s.filter_bytes = filter_bytes.load(std::memory_order_relaxed);
    s.key_bytes = key_bytes.load(std::memory_order_relaxed);
    s.row_ship_bytes = row_ship_bytes.load(std::memory_order_relaxed);
    s.rows_pruned = rows_pruned.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.skew_max_rows = skew_max_rows.load(std::memory_order_relaxed);
    std::size_t mn = skew_min_rows.load(std::memory_order_relaxed);
    s.skew_min_rows =
        mn == std::numeric_limits<std::size_t>::max() ? 0 : mn;
    return s;
  }
};

// One relation hash-partitioned into shard pieces. tags[s][i] is the row's
// index in the original relation; within a piece tags ascend, so the
// gather step is an S-way merge that restores original row order exactly.
struct ShardedRelation {
  bool replicated = false;  // single piece, semantically on every shard
  std::vector<Relation> pieces;
  std::vector<std::vector<uint64_t>> tags;

  std::size_t TotalRows() const {
    std::size_t n = 0;
    for (const Relation& p : pieces) n += p.NumRows();
    return n;
  }
};

// The payload a reduction link ships between shards. `filter` geometry is
// sized from the link's S-invariant total row count so per-piece filters
// OR-merge into exactly the filter one shard would build. For a link with
// no shared columns (pure existence check) only `nonempty` is meaningful.
struct ExchangeMessage {
  bool empty_key = false;
  bool nonempty = false;
  BlockedBloomFilter filter{0};
  // Distinct key tuples of this piece (schema = the key columns), tracked
  // until the count passes the exact-key threshold.
  bool exact_overflow = false;
  Relation exact_keys;
  // Set on the merged message when the union qualified and is cheaper to
  // ship than the filter; probes then use it for an exact reduction.
  bool use_exact = false;
};

// Parallel map over [0, n) on the shared pool with shard-fan-out lanes
// (num_shards x num_threads), used by the sharded reduction phases and the
// evaluators' scan fan-out. Serial (and allocation-free) without a pool.
// Error selection is deterministic: the first failing index wins, and a
// governor trip mid-sweep surfaces as the trip status.
Status ShardParallelMap(ExecContext* ctx, std::size_t n,
                        const std::function<Status(std::size_t)>& body);

// Hash-partitions `rel` into `out` (consuming it), keying on `key_cols`.
// Falls back to replicate-small when key_cols is empty or the relation is
// under the replicate threshold. The shard.partition fault site fires here
// with bounded retries -> kResourceExhausted.
Status PartitionRelation(Relation&& rel,
                         const std::vector<std::size_t>& key_cols,
                         ExecContext* ctx, ShardedRelation* out);

// Runs the sharded up+down exchange reduction over the forest described by
// parent/children/postorder (`none` marks roots), replacing the two
// semijoin passes of the Yannakakis schedule. Relations in `nodes` are
// partitioned, reduced in place, and gathered back in original row order.
// Requires ctx->shard != nullptr.
Status ShardedReduceForest(std::vector<Relation>* nodes,
                           const std::vector<std::size_t>& parent,
                           const std::vector<std::vector<std::size_t>>& children,
                           const std::vector<std::size_t>& postorder,
                           std::size_t none, ExecContext* ctx);

// Spanning forest of the "shares a column name" graph over `rels`, for
// pre-reducing q-HD atom scans: semijoin reduction over *any* spanning
// forest is sound (it only removes rows that cannot match a neighbouring
// atom on their shared variables), even for cyclic queries where a join
// forest proper does not exist.
struct SpanningForest {
  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> parent;
  std::vector<std::vector<std::size_t>> children;
  std::vector<std::size_t> postorder;  // children before parents
};
SpanningForest BuildSharedColumnForest(const std::vector<Relation>& rels);

}  // namespace htqo

#endif  // HTQO_EXEC_SHARD_H_

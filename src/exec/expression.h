// Scalar expression evaluation and aggregate accumulation.

#ifndef HTQO_EXEC_EXPRESSION_H_
#define HTQO_EXEC_EXPRESSION_H_

#include <functional>
#include <optional>

#include "sql/ast.h"
#include "storage/value.h"

namespace htqo {

// Resolves a kColumnRef node to its runtime value.
using ColumnLookup = std::function<Value(const Expr& column_ref)>;
// Resolves a kAggregate node to its (already accumulated) value.
using AggregateLookup = std::function<Value(const Expr& aggregate)>;

// Evaluates `e` bottom-up. Aggregate nodes require `agg_lookup`; evaluating
// one without it is a checked failure (aggregates never appear in WHERE in
// the supported fragment).
Value EvalScalar(const Expr& e, const ColumnLookup& col_lookup,
                 const AggregateLookup* agg_lookup = nullptr);

// Streaming accumulator for one aggregate call.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}

  void Add(const Value& v);
  void AddCountStar() { ++count_; }

  // Final value. Empty groups yield 0 for every function (the engine has no
  // NULL; documented in DESIGN.md).
  Value Finish() const;

 private:
  AggFunc func_;
  std::size_t count_ = 0;
  double sum_ = 0;
  bool sum_is_integral_ = true;
  std::optional<Value> min_;
  std::optional<Value> max_;
};

}  // namespace htqo

#endif  // HTQO_EXEC_EXPRESSION_H_

// Scalar expression evaluation and aggregate accumulation.

#ifndef HTQO_EXEC_EXPRESSION_H_
#define HTQO_EXEC_EXPRESSION_H_

#include <functional>
#include <optional>
#include <vector>

#include "sql/ast.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace htqo {

// Resolves a kColumnRef node to its runtime value.
using ColumnLookup = std::function<Value(const Expr& column_ref)>;
// Resolves a kAggregate node to its (already accumulated) value.
using AggregateLookup = std::function<Value(const Expr& aggregate)>;
// Resolves a kColumnRef node to its column index in the input relation.
// The batch evaluator calls it once per node per batch, where the per-row
// ColumnLookup re-resolves per cell.
using ColumnIndexLookup = std::function<std::size_t(const Expr& column_ref)>;

// Evaluates `e` bottom-up. Aggregate nodes require `agg_lookup`; evaluating
// one without it is a checked failure (aggregates never appear in WHERE in
// the supported fragment).
Value EvalScalar(const Expr& e, const ColumnLookup& col_lookup,
                 const AggregateLookup* agg_lookup = nullptr);

// Batch evaluation of `e` over rows [lo, hi) of `rel` into `out` (resized
// to hi - lo; out[k] is row lo + k's value). Bit-identical to EvalScalar on
// each row — same integral/division rules, same checked failures — with
// column refs resolved once per node per batch instead of once per cell.
// Aggregate and scalar-subquery nodes are checked failures: the vectorized
// executor evaluates select items (post-rewrite) and aggregate arguments,
// where neither can appear.
void EvalScalarBatch(const Expr& e, const Relation& rel, std::size_t lo,
                     std::size_t hi, const ColumnIndexLookup& col_index,
                     std::vector<Value>* out);

// Streaming accumulator for one aggregate call.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}

  void Add(const Value& v);
  void AddCountStar() { ++count_; }

  // Final value. Empty groups yield 0 for every function (the engine has no
  // NULL; documented in DESIGN.md).
  Value Finish() const;

 private:
  AggFunc func_;
  std::size_t count_ = 0;
  double sum_ = 0;
  bool sum_is_integral_ = true;
  std::optional<Value> min_;
  std::optional<Value> max_;
};

}  // namespace htqo

#endif  // HTQO_EXEC_EXPRESSION_H_

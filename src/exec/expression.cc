#include "exec/expression.h"

#include <cmath>

namespace htqo {

Value EvalScalar(const Expr& e, const ColumnLookup& col_lookup,
                 const AggregateLookup* agg_lookup) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return col_lookup(e);
    case ExprKind::kAggregate: {
      HTQO_CHECK(agg_lookup != nullptr);
      return (*agg_lookup)(e);
    }
    case ExprKind::kScalarSubquery:
      // Rewritten into a literal by HybridOptimizer::Run before evaluation.
      HTQO_CHECK(false);
      return Value();
    case ExprKind::kBinary: {
      Value l = EvalScalar(*e.lhs, col_lookup, agg_lookup);
      Value r = EvalScalar(*e.rhs, col_lookup, agg_lookup);
      HTQO_CHECK(l.type() != ValueType::kString &&
                 r.type() != ValueType::kString);
      const bool integral = l.type() == ValueType::kInt64 &&
                            r.type() == ValueType::kInt64 && e.op != '/';
      double a = l.AsDouble();
      double b = r.AsDouble();
      double out = 0;
      switch (e.op) {
        case '+':
          out = a + b;
          break;
        case '-':
          out = a - b;
          break;
        case '*':
          out = a * b;
          break;
        case '/':
          out = b == 0 ? 0 : a / b;
          break;
        default:
          HTQO_CHECK(false);
      }
      if (integral) return Value::Int64(static_cast<int64_t>(out));
      return Value::Double(out);
    }
  }
  HTQO_CHECK(false);
  return Value();
}

void EvalScalarBatch(const Expr& e, const Relation& rel, std::size_t lo,
                     std::size_t hi, const ColumnIndexLookup& col_index,
                     std::vector<Value>* out) {
  const std::size_t n = hi - lo;
  out->resize(n);
  switch (e.kind) {
    case ExprKind::kLiteral:
      for (std::size_t k = 0; k < n; ++k) (*out)[k] = e.literal;
      return;
    case ExprKind::kColumnRef: {
      const std::size_t idx = col_index(e);
      for (std::size_t k = 0; k < n; ++k) (*out)[k] = rel.At(lo + k, idx);
      return;
    }
    case ExprKind::kAggregate:
    case ExprKind::kScalarSubquery:
      HTQO_CHECK(false);
      return;
    case ExprKind::kBinary: {
      std::vector<Value> lv, rv;
      EvalScalarBatch(*e.lhs, rel, lo, hi, col_index, &lv);
      EvalScalarBatch(*e.rhs, rel, lo, hi, col_index, &rv);
      // Per-element type rules match EvalScalar exactly (operand types can
      // vary across rows of an untyped column).
      for (std::size_t k = 0; k < n; ++k) {
        const Value& l = lv[k];
        const Value& r = rv[k];
        HTQO_CHECK(l.type() != ValueType::kString &&
                   r.type() != ValueType::kString);
        const bool integral = l.type() == ValueType::kInt64 &&
                              r.type() == ValueType::kInt64 && e.op != '/';
        double a = l.AsDouble();
        double b = r.AsDouble();
        double v = 0;
        switch (e.op) {
          case '+':
            v = a + b;
            break;
          case '-':
            v = a - b;
            break;
          case '*':
            v = a * b;
            break;
          case '/':
            v = b == 0 ? 0 : a / b;
            break;
          default:
            HTQO_CHECK(false);
        }
        (*out)[k] = integral ? Value::Int64(static_cast<int64_t>(v))
                             : Value::Double(v);
      }
      return;
    }
  }
  HTQO_CHECK(false);
}

void AggAccumulator::Add(const Value& v) {
  ++count_;
  switch (func_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      sum_ += v.AsDouble();
      if (v.type() != ValueType::kInt64) sum_is_integral_ = false;
      break;
    case AggFunc::kMin:
      if (!min_ || v < *min_) min_ = v;
      break;
    case AggFunc::kMax:
      if (!max_ || v > *max_) max_ = v;
      break;
  }
}

Value AggAccumulator::Finish() const {
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFunc::kSum:
      if (count_ == 0) return Value::Int64(0);
      if (sum_is_integral_) {
        return Value::Int64(static_cast<int64_t>(std::llround(sum_)));
      }
      return Value::Double(sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Double(0);
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_ ? *min_ : Value::Int64(0);
    case AggFunc::kMax:
      return max_ ? *max_ : Value::Int64(0);
  }
  return Value();
}

}  // namespace htqo

// Sharded semijoin reduction: partition, Bloom/exact exchange, probe,
// tag-stable gather. See shard.h for the determinism contract.

#include "exec/shard.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <span>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "opt/tree_waves.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace htqo {

namespace {

// Shard fan-out lanes: the shard plan multiplies the per-query thread
// budget, which is why RunResolved grows the shared pool by
// num_threads x num_shards before attaching the runtime.
std::size_t ShardLanes(const ExecContext* ctx) {
  const std::size_t s =
      ctx->shard != nullptr ? ctx->shard->options.num_shards : 1;
  return std::max<std::size_t>(1, s) *
         std::max<std::size_t>(1, ctx->num_threads);
}

}  // namespace

// Parallel map with per-item status slots; first failing index wins, and a
// governor trip mid-sweep surfaces as the trip status even when later
// chunks were never claimed (same error selection as RunWaves).
Status ShardParallelMap(ExecContext* ctx, std::size_t n,
                        const std::function<Status(std::size_t)>& body) {
  const std::size_t lanes = ShardLanes(ctx);
  if (ctx->pool != nullptr && lanes > 1 && n > 1) {
    std::vector<Status> status(n, Status::Ok());
    ctx->pool->ParallelFor(0, n, /*grain=*/1, lanes, ctx->governor,
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               status[i] = body(i);
                             }
                           });
    if (ctx->governor != nullptr && ctx->governor->exhausted()) {
      return ctx->governor->trip_status();
    }
    for (const Status& s : status) {
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Status s = body(i);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

namespace {

void AtomicMinSize(std::atomic<std::size_t>* target, std::size_t value) {
  std::size_t cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

// Column indices of the names `a` and `b` share, aligned pairwise in `a`'s
// schema order — both sides must project key tuples in the same value
// order for their hashes to agree.
void SharedKeyColumns(const Schema& a, const Schema& b,
                      std::vector<std::size_t>* a_cols,
                      std::vector<std::size_t>* b_cols) {
  a_cols->clear();
  b_cols->clear();
  for (std::size_t i = 0; i < a.arity(); ++i) {
    if (auto j = b.IndexOf(a.column(i).name)) {
      a_cols->push_back(i);
      b_cols->push_back(*j);
    }
  }
}

// One reduction link: `source`'s pieces summarize their keys, the merged
// message filters `target`'s pieces. src_cols / dst_cols are aligned.
struct LinkPlan {
  std::size_t source = 0;
  std::size_t target = 0;
  std::vector<std::size_t> src_cols;
  std::vector<std::size_t> dst_cols;
  std::size_t expected_keys = 1;
  std::vector<ExchangeMessage> piece_msgs;
  ExchangeMessage merged;
  // hash -> rows of merged.exact_keys, for exact probes.
  std::unordered_map<std::size_t, std::vector<std::size_t>> exact_index;
};

// Summarizes one source piece: Bloom filter over every key hash (geometry
// fixed by the link's S-invariant total row count) plus the piece's
// distinct key tuples until they pass the exact-key threshold. A piece
// that overflows alone implies the union overflows, so the merged
// use-exact decision stays independent of how rows were partitioned.
ExchangeMessage BuildPieceMessage(const Relation& piece,
                                  const std::vector<std::size_t>& cols,
                                  std::size_t expected_keys,
                                  std::size_t exact_threshold) {
  ExchangeMessage msg;
  msg.nonempty = piece.NumRows() > 0;
  if (cols.empty()) {
    msg.empty_key = true;
    return msg;
  }
  msg.filter = BlockedBloomFilter(expected_keys);
  msg.exact_keys = Relation(piece.schema().Project(cols));
  std::vector<std::size_t> id_cols(cols.size());
  std::iota(id_cols.begin(), id_cols.end(), 0);
  std::unordered_map<std::size_t, std::vector<std::size_t>> index;
  std::vector<Value> key(cols.size());
  for (std::size_t i = 0; i < piece.NumRows(); ++i) {
    std::span<const Value> row = piece.Row(i);
    const std::size_t h = HashRowKey(row, cols);
    msg.filter.Add(h);
    if (msg.exact_overflow) continue;
    std::vector<std::size_t>& bucket = index[h];
    bool seen = false;
    for (std::size_t k : bucket) {
      if (RowKeysEqual(msg.exact_keys.Row(k), id_cols, row, cols)) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (msg.exact_keys.NumRows() >= exact_threshold) {
      msg.exact_overflow = true;
      msg.exact_keys = Relation(msg.exact_keys.schema());
      index.clear();
      continue;
    }
    for (std::size_t c = 0; c < cols.size(); ++c) key[c] = row[cols[c]];
    msg.exact_keys.AddRow(key);
    bucket.push_back(msg.exact_keys.NumRows() - 1);
  }
  return msg;
}

// Coordinator step: OR-merges the piece filters (identical geometry), forms
// the distinct-key union, decides filter-vs-exact shipment, and books the
// exchange volume against the row-shipping baseline. The shard.exchange
// fault site fires here with bounded retries.
Status MergeLinkExchange(LinkPlan* link, std::size_t source_rows,
                         std::size_t source_arity,
                         std::size_t target_pieces, ExecContext* ctx) {
  ShardRuntime* rt = ctx->shard;
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = rt->options.retry_limit;
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteShardExchange)) {
      rt->retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ExchangeMessage merged;
    merged.empty_key = link->src_cols.empty();
    link->exact_index.clear();
    std::size_t gathered_filter = 0;
    std::size_t gathered_keys = 0;
    if (merged.empty_key) {
      for (const ExchangeMessage& m : link->piece_msgs) {
        merged.nonempty |= m.nonempty;
      }
    } else {
      merged.filter = BlockedBloomFilter(link->expected_keys);
      merged.exact_keys = Relation(link->piece_msgs[0].exact_keys.schema());
      std::vector<std::size_t> id_cols(link->src_cols.size());
      std::iota(id_cols.begin(), id_cols.end(), 0);
      bool overflow = false;
      for (const ExchangeMessage& m : link->piece_msgs) {
        overflow |= m.exact_overflow;
      }
      for (const ExchangeMessage& m : link->piece_msgs) {
        merged.nonempty |= m.nonempty;
        merged.filter.MergeFrom(m.filter);
        gathered_filter += m.filter.SizeBytes();
        if (overflow) continue;
        gathered_keys +=
            m.exact_keys.NumRows() * m.exact_keys.arity() * sizeof(Value);
        for (std::size_t i = 0; i < m.exact_keys.NumRows(); ++i) {
          std::span<const Value> row = m.exact_keys.Row(i);
          const std::size_t h = HashRowKey(row, id_cols);
          std::vector<std::size_t>& bucket = link->exact_index[h];
          bool seen = false;
          for (std::size_t k : bucket) {
            if (RowKeysEqual(merged.exact_keys.Row(k), id_cols, row,
                             id_cols)) {
              seen = true;
              break;
            }
          }
          if (seen) continue;
          if (merged.exact_keys.NumRows() >= rt->options.exact_key_threshold) {
            overflow = true;
            break;
          }
          merged.exact_keys.AddRow(row);
          bucket.push_back(merged.exact_keys.NumRows() - 1);
        }
      }
      const std::size_t union_bytes = merged.exact_keys.NumRows() *
                                      merged.exact_keys.arity() *
                                      sizeof(Value);
      merged.use_exact = !overflow && union_bytes <= merged.filter.SizeBytes();
      rt->filter_bytes.fetch_add(gathered_filter, std::memory_order_relaxed);
      if (merged.use_exact) {
        rt->exact_exchanges.fetch_add(1, std::memory_order_relaxed);
        rt->key_bytes.fetch_add(gathered_keys + union_bytes * target_pieces,
                                std::memory_order_relaxed);
      } else {
        rt->filter_bytes.fetch_add(merged.filter.SizeBytes() * target_pieces,
                                   std::memory_order_relaxed);
        merged.exact_keys = Relation(merged.exact_keys.schema());
        link->exact_index.clear();
      }
    }
    rt->exchanges.fetch_add(1, std::memory_order_relaxed);
    rt->row_ship_bytes.fetch_add(
        source_rows * std::max<std::size_t>(1, source_arity) * sizeof(Value) *
            target_pieces,
        std::memory_order_relaxed);
    link->merged = std::move(merged);
    link->piece_msgs.clear();
    return Status::Ok();
  }
  return Status::ResourceExhausted(
      "shard: exchange merge failed after " +
      std::to_string(retry_limit + 1) + " attempts (site shard.exchange)");
}

// Filters one target piece against a link's merged message, preserving row
// order (and the ascending tag order the gather relies on). Work is
// charged per row probed, rows per survivor — both partition-sums over
// S-invariant survivor sets, so charge totals match at any shard count.
Status ProbePiece(const LinkPlan& link, Relation* piece,
                  std::vector<uint64_t>* tags, ExecContext* ctx) {
  const std::size_t n = piece->NumRows();
  Status work = ctx->ChargeWork(n);
  if (!work.ok()) return work;
  ShardRuntime* rt = ctx->shard;
  const ExchangeMessage& msg = link.merged;
  if (msg.empty_key) {
    if (msg.nonempty) return ctx->ChargeRows(n);
    rt->rows_pruned.fetch_add(n, std::memory_order_relaxed);
    *piece = Relation(piece->schema());
    tags->clear();
    return Status::Ok();
  }
  std::vector<std::size_t> id_cols(link.dst_cols.size());
  std::iota(id_cols.begin(), id_cols.end(), 0);
  Relation out(piece->schema());
  std::vector<uint64_t> out_tags;
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const Value> row = piece->Row(i);
    const std::size_t h = HashRowKey(row, link.dst_cols);
    bool keep;
    if (msg.use_exact) {
      keep = false;
      auto it = link.exact_index.find(h);
      if (it != link.exact_index.end()) {
        for (std::size_t k : it->second) {
          if (RowKeysEqual(msg.exact_keys.Row(k), id_cols, row,
                           link.dst_cols)) {
            keep = true;
            break;
          }
        }
      }
    } else {
      keep = msg.filter.MayContain(h);
    }
    if (keep) {
      out.AddRow(row);
      out_tags.push_back((*tags)[i]);
    }
  }
  rt->rows_pruned.fetch_add(n - out.NumRows(), std::memory_order_relaxed);
  Status rows = ctx->ChargeRows(out.NumRows());
  *piece = std::move(out);
  *tags = std::move(out_tags);
  return rows;
}

// One barrier wave of the reduction: build per-piece summaries in
// parallel, merge per link on the coordinator, probe target pieces in
// parallel (a target with several incoming links is probed in link order
// inside one task, keeping per-piece work deterministic).
Status RunReductionWave(std::vector<LinkPlan>* links,
                        std::vector<ShardedRelation>* sharded,
                        ExecContext* ctx, const char* phase,
                        std::size_t wave_index) {
  ScopedSpan wave_span(ctx->tracer, "shard.wave", ctx->SpanParent());
  wave_span.Attr("phase", phase);
  wave_span.Attr("index", wave_index);
  wave_span.Attr("links", links->size());
  std::vector<std::pair<std::size_t, std::size_t>> build_items;
  for (std::size_t li = 0; li < links->size(); ++li) {
    LinkPlan& link = (*links)[li];
    const ShardedRelation& src = (*sharded)[link.source];
    link.expected_keys = std::max<std::size_t>(1, src.TotalRows());
    link.piece_msgs.resize(src.pieces.size());
    for (std::size_t s = 0; s < src.pieces.size(); ++s) {
      build_items.emplace_back(li, s);
    }
  }
  Status built = ShardParallelMap(ctx, build_items.size(), [&](std::size_t k) {
    const auto [li, s] = build_items[k];
    LinkPlan& link = (*links)[li];
    const Relation& piece = (*sharded)[link.source].pieces[s];
    Status work = ctx->ChargeWork(piece.NumRows());
    if (!work.ok()) return work;
    link.piece_msgs[s] =
        BuildPieceMessage(piece, link.src_cols, link.expected_keys,
                          ctx->shard->options.exact_key_threshold);
    return Status::Ok();
  });
  if (!built.ok()) return built;
  for (LinkPlan& link : *links) {
    ScopedSpan ex_span(ctx->tracer, "shard.exchange", ctx->SpanParent());
    ex_span.Attr("source", link.source);
    ex_span.Attr("target", link.target);
    const ShardedRelation& src = (*sharded)[link.source];
    Status merged = MergeLinkExchange(
        &link, src.TotalRows(),
        src.pieces.empty() ? 0 : src.pieces[0].arity(),
        (*sharded)[link.target].pieces.size(), ctx);
    if (!merged.ok()) return merged;
    ex_span.Attr("exact", link.merged.use_exact ? 1 : 0);
  }
  // Group incoming links per target, preserving link (= child index) order.
  std::vector<std::size_t> targets;
  std::unordered_map<std::size_t, std::vector<std::size_t>> links_of;
  for (std::size_t li = 0; li < links->size(); ++li) {
    std::vector<std::size_t>& bucket = links_of[(*links)[li].target];
    if (bucket.empty()) targets.push_back((*links)[li].target);
    bucket.push_back(li);
  }
  std::vector<std::pair<std::size_t, std::size_t>> probe_items;
  for (std::size_t t : targets) {
    for (std::size_t s = 0; s < (*sharded)[t].pieces.size(); ++s) {
      probe_items.emplace_back(t, s);
    }
  }
  return ShardParallelMap(ctx, probe_items.size(), [&](std::size_t k) {
    const auto [t, s] = probe_items[k];
    for (std::size_t li : links_of[t]) {
      Status probed = ProbePiece((*links)[li], &(*sharded)[t].pieces[s],
                                 &(*sharded)[t].tags[s], ctx);
      if (!probed.ok()) return probed;
    }
    return Status::Ok();
  });
}

// S-way merge of a node's surviving pieces by ascending original-row tag,
// restoring exactly the row order the unpartitioned reduction would have
// produced. No charges: the gather is bookkeeping, not operator work, and
// skipping it for single-piece nodes must not skew meters across S.
Status GatherSharded(ShardedRelation&& sr, Relation* out) {
  if (sr.pieces.size() == 1) {
    *out = std::move(sr.pieces[0]);
    return Status::Ok();
  }
  Relation merged(sr.pieces[0].schema());
  std::size_t total = sr.TotalRows();
  merged.Reserve(total);
  std::vector<std::size_t> pos(sr.pieces.size(), 0);
  for (; total > 0; --total) {
    std::size_t best = sr.pieces.size();
    uint64_t best_tag = 0;
    for (std::size_t s = 0; s < sr.pieces.size(); ++s) {
      if (pos[s] >= sr.pieces[s].NumRows()) continue;
      const uint64_t tag = sr.tags[s][pos[s]];
      if (best == sr.pieces.size() || tag < best_tag) {
        best = s;
        best_tag = tag;
      }
    }
    merged.AddRow(sr.pieces[best].Row(pos[best]));
    ++pos[best];
  }
  *out = std::move(merged);
  return Status::Ok();
}

}  // namespace

Status PartitionRelation(Relation&& rel,
                         const std::vector<std::size_t>& key_cols,
                         ExecContext* ctx, ShardedRelation* out) {
  ShardRuntime* rt = ctx->shard;
  HTQO_CHECK(rt != nullptr && rt->options.num_shards >= 1);
  const std::size_t num_shards = rt->options.num_shards;
  const std::size_t n = rel.NumRows();
  ScopedSpan span(ctx->tracer, "shard.partition", ctx->SpanParent());
  span.Attr("rows", n);
  Status work = ctx->ChargeWork(n);
  if (!work.ok()) return work;
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = rt->options.retry_limit;
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteShardPartition)) {
      rt->retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out->pieces.clear();
    out->tags.clear();
    if (num_shards == 1 || key_cols.empty() ||
        n < rt->options.replicate_threshold) {
      // Replicate-small / broadcast fallback: one piece, semantically
      // present on every shard. At S=1 the single shard simply owns it.
      out->replicated = num_shards > 1;
      out->tags.emplace_back(n);
      std::iota(out->tags[0].begin(), out->tags[0].end(), uint64_t{0});
      out->pieces.push_back(std::move(rel));
      if (out->replicated) {
        rt->replicated.fetch_add(1, std::memory_order_relaxed);
      } else {
        rt->partitions.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      out->replicated = false;
      out->pieces.assign(num_shards, Relation(rel.schema()));
      out->tags.assign(num_shards, {});
      for (Relation& p : out->pieces) p.Reserve(n / num_shards + 1);
      for (std::size_t i = 0; i < n; ++i) {
        std::span<const Value> row = rel.Row(i);
        const std::size_t s = HashRowKey(row, key_cols) % num_shards;
        out->pieces[s].AddRow(row);
        out->tags[s].push_back(i);
      }
      rt->partitions.fetch_add(1, std::memory_order_relaxed);
      std::size_t mx = 0;
      std::size_t mn = std::numeric_limits<std::size_t>::max();
      for (const Relation& p : out->pieces) {
        mx = std::max(mx, p.NumRows());
        mn = std::min(mn, p.NumRows());
      }
      AtomicMax(&rt->skew_max_rows, mx);
      AtomicMinSize(&rt->skew_min_rows, mn);
    }
    span.Attr("pieces", out->pieces.size());
    span.Attr("replicated", out->replicated ? 1 : 0);
    return Status::Ok();
  }
  return Status::ResourceExhausted(
      "shard: partition failed after " + std::to_string(retry_limit + 1) +
      " attempts (site shard.partition)");
}

Status ShardedReduceForest(std::vector<Relation>* nodes,
                           const std::vector<std::size_t>& parent,
                           const std::vector<std::vector<std::size_t>>& children,
                           const std::vector<std::size_t>& postorder,
                           std::size_t none, ExecContext* ctx) {
  ShardRuntime* rt = ctx->shard;
  HTQO_CHECK(rt != nullptr);
  const std::size_t n = nodes->size();
  ScopedSpan span(ctx->tracer, "shard.reduce", ctx->SpanParent());
  span.Attr("nodes", n);
  span.Attr("shards", rt->options.num_shards);
  const uint64_t saved_parent = ctx->trace_parent;
  if (span.id() != 0) ctx->trace_parent = span.id();
  Status result = [&]() -> Status {
    // Partition keys: the columns shared with the parent link (roots
    // anchor on their first child); no shared columns means broadcast.
    std::vector<std::vector<std::size_t>> part_cols(n);
    std::vector<std::size_t> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t anchor = parent[i];
      if (anchor == none) {
        anchor = children[i].empty() ? none : children[i][0];
      }
      if (anchor != none) {
        SharedKeyColumns((*nodes)[i].schema(), (*nodes)[anchor].schema(),
                         &part_cols[i], &scratch);
      }
    }
    std::vector<ShardedRelation> sharded(n);
    Status st = ShardParallelMap(ctx, n, [&](std::size_t i) {
      return PartitionRelation(std::move((*nodes)[i]), part_cols[i], ctx,
                               &sharded[i]);
    });
    if (!st.ok()) return st;

    // Upward reduction: every parent filtered by its children's merged
    // exchanges, one height wave at a time (children are final before
    // their parent's wave, exactly like the serial semijoin sweep).
    const auto up = HeightWaves(postorder, children);
    for (std::size_t w = 0; w < up.size(); ++w) {
      std::vector<LinkPlan> links;
      for (std::size_t p : up[w]) {
        for (std::size_t c : children[p]) {
          LinkPlan link;
          link.source = c;
          link.target = p;
          SharedKeyColumns(sharded[c].pieces[0].schema(),
                           sharded[p].pieces[0].schema(), &link.src_cols,
                           &link.dst_cols);
          links.push_back(std::move(link));
        }
      }
      if (links.empty()) continue;
      st = RunReductionWave(&links, &sharded, ctx, "up", w);
      if (!st.ok()) return st;
    }

    // Downward reduction: every child filtered by its (already final)
    // parent, one depth wave at a time.
    const auto down = DepthWaves(postorder, parent, none);
    for (std::size_t w = 0; w < down.size(); ++w) {
      std::vector<LinkPlan> links;
      for (std::size_t c : down[w]) {
        if (parent[c] == none) continue;
        LinkPlan link;
        link.source = parent[c];
        link.target = c;
        SharedKeyColumns(sharded[link.source].pieces[0].schema(),
                         sharded[c].pieces[0].schema(), &link.src_cols,
                         &link.dst_cols);
        links.push_back(std::move(link));
      }
      if (links.empty()) continue;
      st = RunReductionWave(&links, &sharded, ctx, "down", w);
      if (!st.ok()) return st;
    }

    return ShardParallelMap(ctx, n, [&](std::size_t i) {
      return GatherSharded(std::move(sharded[i]), &(*nodes)[i]);
    });
  }();
  ctx->trace_parent = saved_parent;
  return result;
}

SpanningForest BuildSharedColumnForest(const std::vector<Relation>& rels) {
  const std::size_t n = rels.size();
  SpanningForest forest;
  forest.parent.assign(n, SpanningForest::kNone);
  forest.children.assign(n, {});
  auto shares = [&](std::size_t a, std::size_t b) {
    const Schema& sa = rels[a].schema();
    for (std::size_t i = 0; i < sa.arity(); ++i) {
      if (rels[b].schema().IndexOf(sa.column(i).name)) return true;
    }
    return false;
  };
  std::vector<char> visited(n, 0);
  std::vector<std::size_t> order;  // preorder, roots first
  order.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    if (visited[r]) continue;
    visited[r] = 1;
    std::vector<std::size_t> queue{r};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t u = queue[head];
      order.push_back(u);
      for (std::size_t v = 0; v < n; ++v) {
        if (visited[v] || !shares(u, v)) continue;
        visited[v] = 1;
        forest.parent[v] = u;
        forest.children[u].push_back(v);
        queue.push_back(v);
      }
    }
  }
  // BFS order visits parents before children; its reverse lists children
  // before parents, which is all HeightWaves/DepthWaves need.
  forest.postorder.assign(order.rbegin(), order.rend());
  return forest;
}

}  // namespace htqo

// Join plans over CQ atoms: the plan shape produced by the quantitative
// optimizers (DP, GEQO, naive). A plan is a binary tree whose leaves are
// atom scans and whose internal nodes are natural joins on shared variables,
// each annotated with the join algorithm to use.

#ifndef HTQO_EXEC_PLAN_H_
#define HTQO_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "cq/isolator.h"
#include "exec/operators.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace htqo {

enum class JoinAlgo { kHash, kNestedLoop, kSortMerge };

struct JoinPlan {
  // Leaf when left == nullptr: scans `atom`.
  std::size_t atom = 0;
  std::unique_ptr<JoinPlan> left;
  std::unique_ptr<JoinPlan> right;
  JoinAlgo algo = JoinAlgo::kHash;

  bool IsLeaf() const { return left == nullptr; }

  static std::unique_ptr<JoinPlan> Leaf(std::size_t atom);
  static std::unique_ptr<JoinPlan> Join(std::unique_ptr<JoinPlan> l,
                                        std::unique_ptr<JoinPlan> r,
                                        JoinAlgo algo);

  // Atoms of this subtree, left to right.
  void CollectAtoms(std::vector<std::size_t>* out) const;

  // "((a HJ b) NL c)" style rendering with atom aliases.
  std::string ToString(const ResolvedQuery& rq) const;
};

// Executes the plan: scans apply filters, joins are natural joins on shared
// variable columns. Bag semantics throughout (no deduplication) — the
// regime of a standard DBMS executor.
Result<Relation> ExecuteJoinPlan(const JoinPlan& plan, const ResolvedQuery& rq,
                                 const Catalog& catalog, ExecContext* ctx);

}  // namespace htqo

#endif  // HTQO_EXEC_PLAN_H_

#include "exec/spill.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/fault_injector.h"
#include "util/governor.h"

namespace htqo {

namespace fs = std::filesystem;

namespace {

// Per-page layout: [payload bytes u64][FNV-1a checksum u64][payload].
constexpr std::size_t kPageHeaderBytes = 2 * sizeof(uint64_t);

uint64_t PageChecksum(const char* data, std::size_t n) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// Walks the page stream in `raw`, verifying each page's checksum, and
// appends the concatenated payloads to `payload`. Any structural damage or
// checksum mismatch is kDataLoss (the caller re-reads a bounded number of
// times before surfacing it: a torn in-flight read heals, real on-disk
// corruption does not).
Status VerifyPages(const std::string& raw, const std::string& path,
                   std::string* payload) {
  payload->clear();
  const char* cursor = raw.data();
  const char* end = raw.data() + raw.size();
  while (cursor < end) {
    if (end - cursor < static_cast<std::ptrdiff_t>(kPageHeaderBytes)) {
      return Status::DataLoss("spill: truncated page header in " + path);
    }
    uint64_t payload_size = 0;
    uint64_t checksum = 0;
    std::memcpy(&payload_size, cursor, sizeof(payload_size));
    std::memcpy(&checksum, cursor + sizeof(payload_size), sizeof(checksum));
    cursor += kPageHeaderBytes;
    if (payload_size > static_cast<uint64_t>(end - cursor)) {
      return Status::DataLoss("spill: truncated page payload in " + path);
    }
    if (PageChecksum(cursor, payload_size) != checksum) {
      return Status::DataLoss("spill: page checksum mismatch in " + path);
    }
    payload->append(cursor, payload_size);
    cursor += payload_size;
  }
  return Status::Ok();
}

}  // namespace

SpillManager::SpillManager(SpillOptions options)
    : options_(std::move(options)) {
  if (options_.fanout < 2) options_.fanout = 2;
}

SpillManager::~SpillManager() {
  // SpillFiles unlink themselves; whatever survives (files abandoned by an
  // error path, the run directory itself) goes here. error_code overloads:
  // teardown never throws.
  if (run_dir_ready_) {
    std::error_code ec;
    fs::remove_all(run_dir_, ec);
  }
}

SpillCounters SpillManager::counters() const {
  SpillCounters out;
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.partitions = partitions_.load(std::memory_order_relaxed);
  out.spill_events = spill_events_.load(std::memory_order_relaxed);
  out.max_recursion_depth = max_depth_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  return out;
}

void SpillManager::NoteRecursionDepth(std::size_t depth) {
  AtomicMax(&max_depth_, depth);
}

Status SpillManager::ChargeDisk(std::size_t bytes) {
  std::size_t total = AtomicSaturatingAdd(&bytes_written_, bytes);
  if (total > options_.disk_budget_bytes) {
    return Status::ResourceExhausted(
        "spill disk budget exceeded (" + std::to_string(total) + " > " +
        std::to_string(options_.disk_budget_bytes) + " bytes)");
  }
  return Status::Ok();
}

Result<std::unique_ptr<SpillFile>> SpillManager::Create() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!run_dir_ready_) {
      std::error_code ec;
      fs::path base = options_.dir.empty() ? fs::temp_directory_path(ec)
                                           : fs::path(options_.dir);
      if (ec) {
        return Status::ResourceExhausted("spill: no temp directory: " +
                                         ec.message());
      }
      fs::path dir = base / ("htqo-spill-" + std::to_string(::getpid()) +
                             "-" + std::to_string(
                                       reinterpret_cast<uintptr_t>(this)));
      fs::create_directories(dir, ec);
      if (ec) {
        return Status::ResourceExhausted(
            "spill: cannot create spill directory " + dir.string() + ": " +
            ec.message());
      }
      run_dir_ = dir.string();
      run_dir_ready_ = true;
    }
    path = run_dir_ + "/part-" + std::to_string(next_file_id_++) + ".spill";
  }

  FaultInjector& injector = FaultInjector::Instance();
  for (std::size_t attempt = 0; attempt <= options_.retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillOpen)) {
      NoteRetry();
      continue;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb+");
    if (f == nullptr) {
      NoteRetry();
      continue;
    }
    partitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_ptr<SpillFile>(new SpillFile(this, std::move(path), f));
  }
  return Status::ResourceExhausted(
      "spill: cannot open partition file after " +
      std::to_string(options_.retry_limit + 1) + " attempts (site spill.open)");
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
}

Status SpillFile::Append(uint64_t tag, std::span<const Value> row) {
  HTQO_DCHECK(!finished_);
  buffer_.append(reinterpret_cast<const char*>(&tag), sizeof(tag));
  for (const Value& v : row) EncodeValue(v, &buffer_);
  ++rows_;
  if (buffer_.size() >= manager_->options().write_buffer_bytes) {
    return Flush();
  }
  return Status::Ok();
}

Status SpillFile::Flush() {
  if (buffer_.empty()) return Status::Ok();
  // Each flush lands as one self-verifying page — size, FNV-1a checksum,
  // payload — so ReadBack can tell a torn or bit-flipped partition from a
  // clean one instead of decoding garbage.
  const uint64_t payload_size = buffer_.size();
  const uint64_t checksum = PageChecksum(buffer_.data(), buffer_.size());
  std::string page;
  page.reserve(kPageHeaderBytes + buffer_.size());
  page.append(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
  page.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  page.append(buffer_);
  // The disk budget is charged before the bytes land so a run can never
  // overshoot it by a whole buffer unobserved; this is the spill path's
  // hard kill and is not retried.
  Status budget = manager_->ChargeDisk(page.size());
  if (!budget.ok()) return budget;
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = manager_->options().retry_limit;
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillWrite)) {
      manager_->NoteRetry();
      continue;
    }
    std::clearerr(file_);
    if (std::fseek(file_, static_cast<long>(bytes_), SEEK_SET) != 0) {
      manager_->NoteRetry();
      continue;
    }
    if (std::fwrite(page.data(), 1, page.size(), file_) != page.size()) {
      manager_->NoteRetry();
      continue;
    }
    bytes_ += page.size();
    buffer_.clear();
    return Status::Ok();
  }
  return Status::ResourceExhausted(
      "spill: write failed after " + std::to_string(retry_limit + 1) +
      " attempts (site spill.write)");
}

Status SpillFile::Finish() {
  Status s = Flush();
  if (!s.ok()) return s;
  // Push the stdio buffer to the kernel: a finished partition is readable
  // through any handle, and the page checksums guard bytes on disk, not
  // bytes parked in a userspace buffer.
  if (std::fflush(file_) != 0) {
    return Status::ResourceExhausted("spill: flush failed for " + path_);
  }
  finished_ = true;
  return Status::Ok();
}

Status SpillFile::ReadBack(Relation* out, std::vector<uint64_t>* tags) {
  HTQO_DCHECK(finished_);
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = manager_->options().retry_limit;
  std::string raw;
  std::string payload;
  bool read_ok = false;
  Status corruption = Status::Ok();
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillRead)) {
      manager_->NoteRetry();
      continue;
    }
    std::clearerr(file_);
    if (std::fseek(file_, 0, SEEK_SET) != 0) {
      manager_->NoteRetry();
      continue;
    }
    raw.resize(bytes_);
    if (std::fread(raw.data(), 1, bytes_, file_) != bytes_) {
      manager_->NoteRetry();
      continue;
    }
    // Verify every page before trusting a byte of it; a mismatch burns a
    // retry (it may be a torn concurrent read) before surfacing as the
    // persistent-corruption status.
    corruption = VerifyPages(raw, path_, &payload);
    if (!corruption.ok()) {
      manager_->NoteRetry();
      continue;
    }
    read_ok = true;
    break;
  }
  if (!read_ok) {
    if (!corruption.ok()) {
      return Status::DataLoss(corruption.message() + " after " +
                              std::to_string(retry_limit + 1) +
                              " attempts (site spill.read)");
    }
    return Status::ResourceExhausted(
        "spill: read failed after " + std::to_string(retry_limit + 1) +
        " attempts (site spill.read)");
  }
  manager_->NoteBytesRead(bytes_);

  const std::size_t arity = out->arity();
  Status alloc = out->TryReserve(rows_);
  if (!alloc.ok()) return alloc;
  tags->reserve(tags->size() + rows_);
  const char* cursor = payload.data();
  const char* end = payload.data() + payload.size();
  std::vector<Value> row(arity);
  for (std::size_t r = 0; r < rows_; ++r) {
    uint64_t tag;
    if (end - cursor < static_cast<std::ptrdiff_t>(sizeof(tag))) {
      return Status::Internal("spill: truncated partition file " + path_);
    }
    std::memcpy(&tag, cursor, sizeof(tag));
    cursor += sizeof(tag);
    for (std::size_t c = 0; c < arity; ++c) {
      if (!DecodeValue(&cursor, end, &row[c])) {
        return Status::Internal("spill: corrupt partition file " + path_);
      }
    }
    tags->push_back(tag);
    out->AddRow(row);
  }
  return Status::Ok();
}

}  // namespace htqo

#include "exec/spill.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/fault_injector.h"
#include "util/governor.h"

namespace htqo {

namespace fs = std::filesystem;

SpillManager::SpillManager(SpillOptions options)
    : options_(std::move(options)) {
  if (options_.fanout < 2) options_.fanout = 2;
}

SpillManager::~SpillManager() {
  // SpillFiles unlink themselves; whatever survives (files abandoned by an
  // error path, the run directory itself) goes here. error_code overloads:
  // teardown never throws.
  if (run_dir_ready_) {
    std::error_code ec;
    fs::remove_all(run_dir_, ec);
  }
}

SpillCounters SpillManager::counters() const {
  SpillCounters out;
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.partitions = partitions_.load(std::memory_order_relaxed);
  out.spill_events = spill_events_.load(std::memory_order_relaxed);
  out.max_recursion_depth = max_depth_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  return out;
}

void SpillManager::NoteRecursionDepth(std::size_t depth) {
  AtomicMax(&max_depth_, depth);
}

Status SpillManager::ChargeDisk(std::size_t bytes) {
  std::size_t total = AtomicSaturatingAdd(&bytes_written_, bytes);
  if (total > options_.disk_budget_bytes) {
    return Status::ResourceExhausted(
        "spill disk budget exceeded (" + std::to_string(total) + " > " +
        std::to_string(options_.disk_budget_bytes) + " bytes)");
  }
  return Status::Ok();
}

Result<std::unique_ptr<SpillFile>> SpillManager::Create() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!run_dir_ready_) {
      std::error_code ec;
      fs::path base = options_.dir.empty() ? fs::temp_directory_path(ec)
                                           : fs::path(options_.dir);
      if (ec) {
        return Status::ResourceExhausted("spill: no temp directory: " +
                                         ec.message());
      }
      fs::path dir = base / ("htqo-spill-" + std::to_string(::getpid()) +
                             "-" + std::to_string(
                                       reinterpret_cast<uintptr_t>(this)));
      fs::create_directories(dir, ec);
      if (ec) {
        return Status::ResourceExhausted(
            "spill: cannot create spill directory " + dir.string() + ": " +
            ec.message());
      }
      run_dir_ = dir.string();
      run_dir_ready_ = true;
    }
    path = run_dir_ + "/part-" + std::to_string(next_file_id_++) + ".spill";
  }

  FaultInjector& injector = FaultInjector::Instance();
  for (std::size_t attempt = 0; attempt <= options_.retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillOpen)) {
      NoteRetry();
      continue;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb+");
    if (f == nullptr) {
      NoteRetry();
      continue;
    }
    partitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_ptr<SpillFile>(new SpillFile(this, std::move(path), f));
  }
  return Status::ResourceExhausted(
      "spill: cannot open partition file after " +
      std::to_string(options_.retry_limit + 1) + " attempts (site spill.open)");
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
}

Status SpillFile::Append(uint64_t tag, std::span<const Value> row) {
  HTQO_DCHECK(!finished_);
  buffer_.append(reinterpret_cast<const char*>(&tag), sizeof(tag));
  for (const Value& v : row) EncodeValue(v, &buffer_);
  ++rows_;
  if (buffer_.size() >= manager_->options().write_buffer_bytes) {
    return Flush();
  }
  return Status::Ok();
}

Status SpillFile::Flush() {
  if (buffer_.empty()) return Status::Ok();
  // The disk budget is charged before the bytes land so a run can never
  // overshoot it by a whole buffer unobserved; this is the spill path's
  // hard kill and is not retried.
  Status budget = manager_->ChargeDisk(buffer_.size());
  if (!budget.ok()) return budget;
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = manager_->options().retry_limit;
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillWrite)) {
      manager_->NoteRetry();
      continue;
    }
    std::clearerr(file_);
    if (std::fseek(file_, static_cast<long>(bytes_), SEEK_SET) != 0) {
      manager_->NoteRetry();
      continue;
    }
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      manager_->NoteRetry();
      continue;
    }
    bytes_ += buffer_.size();
    buffer_.clear();
    return Status::Ok();
  }
  return Status::ResourceExhausted(
      "spill: write failed after " + std::to_string(retry_limit + 1) +
      " attempts (site spill.write)");
}

Status SpillFile::Finish() {
  Status s = Flush();
  if (!s.ok()) return s;
  finished_ = true;
  return Status::Ok();
}

Status SpillFile::ReadBack(Relation* out, std::vector<uint64_t>* tags) {
  HTQO_DCHECK(finished_);
  FaultInjector& injector = FaultInjector::Instance();
  const std::size_t retry_limit = manager_->options().retry_limit;
  std::string raw;
  bool read_ok = false;
  for (std::size_t attempt = 0; attempt <= retry_limit; ++attempt) {
    if (injector.ShouldFail(kFaultSiteSpillRead)) {
      manager_->NoteRetry();
      continue;
    }
    std::clearerr(file_);
    if (std::fseek(file_, 0, SEEK_SET) != 0) {
      manager_->NoteRetry();
      continue;
    }
    raw.resize(bytes_);
    if (std::fread(raw.data(), 1, bytes_, file_) != bytes_) {
      manager_->NoteRetry();
      continue;
    }
    read_ok = true;
    break;
  }
  if (!read_ok) {
    return Status::ResourceExhausted(
        "spill: read failed after " + std::to_string(retry_limit + 1) +
        " attempts (site spill.read)");
  }
  manager_->NoteBytesRead(bytes_);

  const std::size_t arity = out->arity();
  Status alloc = out->TryReserve(rows_);
  if (!alloc.ok()) return alloc;
  tags->reserve(tags->size() + rows_);
  const char* cursor = raw.data();
  const char* end = raw.data() + raw.size();
  std::vector<Value> row(arity);
  for (std::size_t r = 0; r < rows_; ++r) {
    uint64_t tag;
    if (end - cursor < static_cast<std::ptrdiff_t>(sizeof(tag))) {
      return Status::Internal("spill: truncated partition file " + path_);
    }
    std::memcpy(&tag, cursor, sizeof(tag));
    cursor += sizeof(tag);
    for (std::size_t c = 0; c < arity; ++c) {
      if (!DecodeValue(&cursor, end, &row[c])) {
        return Status::Internal("spill: corrupt partition file " + path_);
      }
    }
    tags->push_back(tag);
    out->AddRow(row);
  }
  return Status::Ok();
}

}  // namespace htqo

// Columnar batch layer for the vectorized execution engine.
//
// The row engine moves 16-byte tagged Values one at a time through
// std::function lookups, per-row Status charges and per-candidate atomic
// adds. This layer extracts relation columns into typed vectors — int64/date
// payloads, doubles, interned-string pointers with dictionary codes — plus a
// null bitmap per column and a selection vector per chunk, so the hot
// operators can run tight per-batch loops and charge the ExecContext once
// per batch instead of once per row.
//
// Equivalence contract: everything here reproduces the row engine bit for
// bit. ElemHash/KeyBlock hashes equal Value::Hash/HashRowKey exactly (same
// mixing constants, same integral-double folding, same std::hash for string
// content), so the Bloom filters, bucket layouts, chain candidate counts and
// bloom-skip meters of a vectorized join are identical to the row join's.
// ColumnElemsEqual reproduces Value::Compare()==0 exactly, including the
// int/double numeric mix and the interned-pointer fast path. A column whose
// values do not share one type tag degrades to ColumnClass::kGeneric, which
// falls back to Value::Hash/Value::Compare per element — never wrong, just
// slower.
//
// Null bitmaps: the SQL fragment has no NULL (see expression.h), so columns
// extracted from relations are always all-valid — the bitmap's AllValid fast
// path is one branch per batch. The bitmap is structural: batch-level
// consumers (and future NULL support) mark validity per element, and the
// chunk gather APIs honor it.

#ifndef HTQO_EXEC_BATCH_H_
#define HTQO_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace htqo {

// Rows per execution batch. Equals the parallel kernels' chunk grain, so a
// serial vectorized operator and every lane of a parallel one see identical
// batch boundaries — identical per-batch charges and batch counts at any
// thread count.
constexpr std::size_t kBatchRows = 1024;

// Distinct interned strings a column dictionary caches hashes for before
// falling back to plain per-row hashing of the interned strings.
constexpr std::size_t kDictMaxEntries = 4096;

// Selection vector: row offsets (chunk-local or relation-global, per the
// kernel's contract) that survive the filters applied so far, in row order.
using Selection = std::vector<uint32_t>;

// Bit-packed per-column validity. Starts all-valid without allocating;
// words materialize on the first SetNull, so the no-NULL engine pays one
// empty() branch per batch.
class NullBitmap {
 public:
  // (Re)starts all-valid over `n` rows.
  void Reset(std::size_t n) {
    n_ = n;
    words_.clear();
  }

  std::size_t size() const { return n_; }
  bool AllValid() const { return words_.empty(); }

  void SetNull(std::size_t i) {
    HTQO_DCHECK(i < n_);
    if (words_.empty()) words_.assign((n_ + 63) / 64, ~uint64_t{0});
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void SetValid(std::size_t i) {
    HTQO_DCHECK(i < n_);
    if (!words_.empty()) words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  bool IsValid(std::size_t i) const {
    HTQO_DCHECK(i < n_);
    return words_.empty() || ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  std::size_t CountValid() const;

 private:
  std::size_t n_ = 0;
  std::vector<uint64_t> words_;  // empty = all valid
};

// Physical class of an extracted column. kI64 covers kInt64 and kDate
// (identical payload, hash and ordering); kGeneric is the heterogeneous
// fallback holding whole Values.
enum class ColumnClass : uint8_t { kI64, kF64, kStr, kGeneric };

// One extracted column: `size` elements of exactly one physical class.
// String columns carry interned pointers (pointer equality == content
// equality) plus, while the dictionary holds, per-element codes and a
// code-indexed cache of content hashes — Value::Hash for a low-cardinality
// string key then costs one table load per element instead of a full
// std::hash pass.
struct ColumnVector {
  ColumnClass cls = ColumnClass::kGeneric;
  ValueType value_tag = ValueType::kInt64;  // exact tag of kI64/kF64/kStr
  std::size_t size = 0;
  NullBitmap nulls;

  std::vector<int64_t> i64;             // kI64 payloads
  std::vector<double> f64;              // kF64 payloads
  std::vector<const std::string*> str;  // kStr interned pointers
  std::vector<Value> generic;           // kGeneric fallback

  bool dict_active = false;
  std::vector<uint32_t> codes;                  // parallel to str
  std::vector<const std::string*> dict_values;  // code -> pointer
  std::vector<std::size_t> dict_hashes;         // code -> content hash

  // Reconstructs the element as a Value with its exact original type tag.
  Value ValueAt(std::size_t r) const;
};

// Extracts rows [first_row, first_row + num_rows) of rel's column `col`.
// Columns mixing type tags (never produced by the SQL paths) come back as
// kGeneric. The bitmap starts all-valid: the engine has no NULL.
ColumnVector ExtractColumn(const Relation& rel, std::size_t col,
                           std::size_t first_row, std::size_t num_rows);

// Element hash, bit-identical to Value::Hash() of the same element.
std::size_t ElemHash(const ColumnVector& c, std::size_t r);

namespace internal_batch {
bool GenericElemsEqual(const ColumnVector& a, std::size_t ar,
                       const ColumnVector& b, std::size_t br);
}  // namespace internal_batch

// Equality under Value::Compare()==0 semantics: int64/date by payload,
// any numeric mix as doubles (NaN quirks included), strings by interned
// pointer. Mismatched or generic classes take the exact Value path.
inline bool ColumnElemsEqual(const ColumnVector& a, std::size_t ar,
                             const ColumnVector& b, std::size_t br) {
  if (a.cls == ColumnClass::kI64 && b.cls == ColumnClass::kI64) {
    return a.i64[ar] == b.i64[br];
  }
  if (a.cls == ColumnClass::kStr && b.cls == ColumnClass::kStr) {
    return a.str[ar] == b.str[br];  // interned: one pooled copy per content
  }
  const bool a_num = a.cls == ColumnClass::kI64 || a.cls == ColumnClass::kF64;
  const bool b_num = b.cls == ColumnClass::kI64 || b.cls == ColumnClass::kF64;
  if (a_num && b_num) {
    const double x = a.cls == ColumnClass::kF64
                         ? a.f64[ar]
                         : static_cast<double>(a.i64[ar]);
    const double y = b.cls == ColumnClass::kF64
                         ? b.f64[br]
                         : static_cast<double>(b.i64[br]);
    return !(x < y) && !(x > y);  // Compare()'s ordering; NaN compares equal
  }
  return internal_batch::GenericElemsEqual(a, ar, b, br);
}

// Key columns of a whole relation, extracted once, plus the combined
// per-row key hash — bit-identical to HashRowKey(rel.Row(r), key_cols).
// The join/semijoin/distinct kernels build Bloom filters and chain indexes
// from `hashes` and verify candidates with KeyRowsEqual.
struct KeyBlock {
  std::vector<ColumnVector> cols;
  std::vector<std::size_t> hashes;

  std::size_t num_rows() const { return hashes.size(); }
};

KeyBlock BuildKeyBlock(const Relation& rel,
                       const std::vector<std::size_t>& key_cols);

// Range variant over rows [first_row, first_row + num_rows); block-local
// indices. The spill partitioner hashes one batch at a time through this so
// its resident set stays one batch of key columns, not a relation copy.
KeyBlock BuildKeyBlock(const Relation& rel,
                       const std::vector<std::size_t>& key_cols,
                       std::size_t first_row, std::size_t num_rows);

// Row equality across two key blocks with the same column count.
inline bool KeyRowsEqual(const KeyBlock& a, std::size_t ar, const KeyBlock& b,
                         std::size_t br) {
  for (std::size_t c = 0; c < a.cols.size(); ++c) {
    if (!ColumnElemsEqual(a.cols[c], ar, b.cols[c], br)) return false;
  }
  return true;
}

// A fixed-size chunk of a relation in columnar form: one ColumnVector per
// attribute, a selection vector of surviving chunk-local offsets, and the
// global index of its first row. Chunks are the unit the vectorized scan
// pipelines filters through; AppendToRelation gathers the selection back
// into row-major storage (skipping null-carrying rows — the no-NULL SQL
// paths never produce any).
struct ColumnarChunk {
  std::size_t first_row = 0;
  std::size_t num_rows = 0;
  std::vector<ColumnVector> columns;
  Selection selection;  // chunk-local offsets, ascending

  static ColumnarChunk FromRelation(const Relation& rel, std::size_t first_row,
                                    std::size_t num_rows);

  // Appends the selected rows to `out` (arity must match), reconstructing
  // exact value tags. Rows with a null in any column are dropped.
  void AppendToRelation(Relation* out) const;
};

}  // namespace htqo

#endif  // HTQO_EXEC_BATCH_H_

// Spill-to-disk layer for the memory-adaptive operators.
//
// When a join/semijoin/distinct working set would push live charged memory
// past the soft threshold (ExecContext::soft_memory_bytes), the operators in
// operators.cc switch to Grace-style recursive partitioning: both inputs are
// hash-partitioned into temp files owned by a SpillManager, then partition
// pairs are processed one at a time so only a fanout-th of the data is
// resident. Each spilled row carries a 64-bit tag (its original row index on
// the probe side); per-partition outputs are merged back in tag order, which
// reproduces the serial in-memory emission order exactly — the spill path is
// byte-identical to the in-memory path (see DESIGN.md §6c).
//
// Fault sites: spill.open (temp-file creation), spill.write (buffer flush),
// spill.read (reading a partition back). Every site is wrapped in a bounded
// retry loop — a transient injected failure is retried up to
// SpillOptions::retry_limit times before surfacing as kResourceExhausted —
// so a p=0.05 chaos plan usually completes while an always-fire plan fails
// as a clean typed Status.
//
// On-disk integrity: every flush lands as one self-verifying page
// [payload bytes u64][FNV-1a checksum u64][payload]. ReadBack verifies all
// page checksums before decoding a byte; a mismatch burns a bounded re-read
// retry (a torn concurrent read heals) and, if it persists, surfaces as
// kDataLoss — bit rot is reported, never silently decoded into wrong rows.
//
// The hard kill: spilling charges every flushed byte against
// SpillOptions::disk_budget_bytes; exceeding it returns kResourceExhausted
// (degradation has run out of road — memory *and* disk are exhausted).
//
// Thread safety: one SpillManager is shared by every operator of a run (the
// tree-wave evaluators spill from several nodes concurrently). File creation
// serializes on a mutex; counters are atomics. A SpillFile itself is owned
// and used by a single operator invocation.

#ifndef HTQO_EXEC_SPILL_H_
#define HTQO_EXEC_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/status.h"

namespace htqo {

struct SpillOptions {
  // Directory for temp files; empty = the system temp directory. The
  // manager creates a unique subdirectory and removes it on destruction.
  std::string dir;
  // Hard kill: total bytes the run may flush to disk. Exceeding it fails
  // the spilling operator with kResourceExhausted.
  std::size_t disk_budget_bytes = std::numeric_limits<std::size_t>::max();
  // Partitions per recursion level.
  std::size_t fanout = 8;
  // Maximum repartitioning depth; at the cap a partition is processed
  // in memory regardless of size (correctness over the soft threshold —
  // e.g. all-equal keys cannot be split by rehashing).
  std::size_t max_recursion_depth = 4;
  // Bounded retry for transient spill I/O failures (injected or real).
  std::size_t retry_limit = 3;
  // Encoded bytes buffered per file before a flush (one spill.write site
  // evaluation per flush).
  std::size_t write_buffer_bytes = 1 << 16;
};

// Plain snapshot of a manager's counters, embedded in QueryRun and the
// bench JSON.
struct SpillCounters {
  std::size_t bytes_written = 0;
  std::size_t bytes_read = 0;
  std::size_t partitions = 0;           // spill files created
  std::size_t spill_events = 0;         // operators that took the spill path
  std::size_t max_recursion_depth = 0;  // deepest repartitioning reached
  std::size_t retries = 0;              // transient I/O failures retried

  // Folds another run's counters in (subquery runs merge into their outer
  // run's QueryRun, mirroring GovernorStats::Merge).
  void Merge(const SpillCounters& other) {
    bytes_written += other.bytes_written;
    bytes_read += other.bytes_read;
    partitions += other.partitions;
    spill_events += other.spill_events;
    if (other.max_recursion_depth > max_recursion_depth) {
      max_recursion_depth = other.max_recursion_depth;
    }
    retries += other.retries;
  }
};

class SpillManager;

// One spilled run: tagged rows of a fixed arity, written once then read
// back once. The file is unlinked on destruction.
class SpillFile {
 public:
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Buffers one row; flushes through the spill.write site when the buffer
  // fills. Flush failure (after retries) or a disk-budget overrun surfaces
  // here as kResourceExhausted.
  Status Append(uint64_t tag, std::span<const Value> row);

  // Flushes the tail buffer; must be called once before ReadBack.
  Status Finish();

  std::size_t rows() const { return rows_; }
  // Total encoded bytes on disk including page headers (valid after Finish)
  // — what loading this partition back will roughly cost in memory.
  std::size_t bytes() const { return bytes_; }
  // On-disk location; exposed so corruption tests can flip bits in place.
  const std::string& path() const { return path_; }

  // Decodes the whole run into `out` (whose schema fixes the arity) and the
  // parallel tag vector, through the spill.read site with bounded retry.
  // Persistent page-checksum mismatches surface as kDataLoss.
  Status ReadBack(Relation* out, std::vector<uint64_t>* tags);

 private:
  friend class SpillManager;
  SpillFile(SpillManager* manager, std::string path, std::FILE* file)
      : manager_(manager), path_(std::move(path)), file_(file) {}

  Status Flush();

  SpillManager* manager_;
  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  std::size_t rows_ = 0;
  std::size_t bytes_ = 0;  // flushed bytes
  bool finished_ = false;
};

class SpillManager {
 public:
  explicit SpillManager(SpillOptions options);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  const SpillOptions& options() const { return options_; }
  SpillCounters counters() const;

  // Creates a fresh temp file (fault site spill.open, bounded retry).
  Result<std::unique_ptr<SpillFile>> Create();

  // Called once per operator that activates the spill path.
  void NoteSpillEvent() {
    spill_events_.fetch_add(1, std::memory_order_relaxed);
  }
  // Records the deepest repartitioning level reached.
  void NoteRecursionDepth(std::size_t depth);

 private:
  friend class SpillFile;
  // Accounts `bytes` against the disk budget; the spill path's hard kill.
  Status ChargeDisk(std::size_t bytes);
  void NoteBytesRead(std::size_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void NoteRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }

  SpillOptions options_;
  std::mutex mu_;  // guards run_dir_ creation and file numbering
  std::string run_dir_;
  bool run_dir_ready_ = false;
  uint64_t next_file_id_ = 0;
  std::atomic<std::size_t> bytes_written_{0};
  std::atomic<std::size_t> bytes_read_{0};
  std::atomic<std::size_t> partitions_{0};
  std::atomic<std::size_t> spill_events_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::atomic<std::size_t> retries_{0};
};

}  // namespace htqo

#endif  // HTQO_EXEC_SPILL_H_

#include "exec/batch.h"

#include <functional>
#include <unordered_map>

namespace htqo {

namespace {

// The 64-bit mixing used by Value::Hash for int64/date payloads (and for
// doubles folded to an integral value).
inline std::size_t HashI64Payload(int64_t v) {
  uint64_t z = static_cast<uint64_t>(v) * 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(z ^ (z >> 32));
}

// Value::Hash for kDouble: integral doubles hash as their int64 value so
// Int64(3) and Double(3.0), which compare equal, hash equal.
inline std::size_t HashF64Payload(double d) {
  int64_t as_int = static_cast<int64_t>(d);
  if (static_cast<double>(as_int) == d) return HashI64Payload(as_int);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  uint64_t z = bits * 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(z ^ (z >> 32));
}

// HashRowKey's per-column combiner.
inline void MixKeyHash(std::size_t* h, std::size_t elem_hash) {
  *h ^= elem_hash + 0x9e3779b97f4a7c15ull + (*h << 6) + (*h >> 2);
}

ColumnClass ClassOfTag(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return ColumnClass::kI64;
    case ValueType::kDouble:
      return ColumnClass::kF64;
    case ValueType::kString:
      return ColumnClass::kStr;
  }
  return ColumnClass::kGeneric;
}

// Re-extracts [first_row, first_row + n) of `col` as whole Values after a
// type-tag mismatch demoted the column to the generic class.
void ExtractGeneric(const Relation& rel, std::size_t col,
                    std::size_t first_row, std::size_t n, ColumnVector* out) {
  out->cls = ColumnClass::kGeneric;
  out->i64.clear();
  out->f64.clear();
  out->str.clear();
  out->codes.clear();
  out->dict_values.clear();
  out->dict_hashes.clear();
  out->dict_active = false;
  out->generic.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    out->generic[r] = rel.At(first_row + r, col);
  }
}

}  // namespace

std::size_t NullBitmap::CountValid() const {
  if (words_.empty()) return n_;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < n_; ++i) valid += IsValid(i) ? 1 : 0;
  return valid;
}

Value ColumnVector::ValueAt(std::size_t r) const {
  switch (cls) {
    case ColumnClass::kI64:
      return value_tag == ValueType::kDate ? Value::Date(i64[r])
                                           : Value::Int64(i64[r]);
    case ColumnClass::kF64:
      return Value::Double(f64[r]);
    case ColumnClass::kStr:
      // The pointer came out of a live kString value, so it is already in
      // the intern pool — no pool lookup needed.
      return Value::InternedString(str[r]);
    case ColumnClass::kGeneric:
      return generic[r];
  }
  return Value();
}

ColumnVector ExtractColumn(const Relation& rel, std::size_t col,
                           std::size_t first_row, std::size_t num_rows) {
  ColumnVector out;
  out.size = num_rows;
  out.nulls.Reset(num_rows);
  if (num_rows == 0) {
    out.cls = ClassOfTag(rel.schema().column(col).type);
    out.value_tag = rel.schema().column(col).type;
    return out;
  }

  // One strided pointer walk per class: the cell address advances by the
  // relation's arity instead of re-deriving row * arity + col per element.
  const std::size_t stride = rel.arity();
  const Value* cell = &rel.At(first_row, col);
  const ValueType tag = cell->type();
  out.value_tag = tag;
  out.cls = ClassOfTag(tag);
  switch (out.cls) {
    case ColumnClass::kI64: {
      out.i64.resize(num_rows);
      for (std::size_t r = 0; r < num_rows; ++r, cell += stride) {
        const Value& v = *cell;
        if (v.type() != tag) {
          // int64/date mixes still share payload semantics; anything else
          // (a lying schema) demotes to the generic class.
          if (v.type() == ValueType::kInt64 || v.type() == ValueType::kDate) {
            out.i64[r] = v.AsInt64();
            continue;
          }
          ExtractGeneric(rel, col, first_row, num_rows, &out);
          return out;
        }
        out.i64[r] = v.AsInt64();
      }
      return out;
    }
    case ColumnClass::kF64: {
      out.f64.resize(num_rows);
      for (std::size_t r = 0; r < num_rows; ++r, cell += stride) {
        const Value& v = *cell;
        if (v.type() != ValueType::kDouble) {
          ExtractGeneric(rel, col, first_row, num_rows, &out);
          return out;
        }
        out.f64[r] = v.AsDouble();
      }
      return out;
    }
    case ColumnClass::kStr: {
      out.str.resize(num_rows);
      out.codes.resize(num_rows);
      out.dict_active = true;
      std::unordered_map<const std::string*, uint32_t> dict;
      for (std::size_t r = 0; r < num_rows; ++r, cell += stride) {
        const Value& v = *cell;
        if (v.type() != ValueType::kString) {
          ExtractGeneric(rel, col, first_row, num_rows, &out);
          return out;
        }
        const std::string* s = &v.AsString();
        out.str[r] = s;
        if (!out.dict_active) continue;
        auto [it, inserted] =
            dict.emplace(s, static_cast<uint32_t>(out.dict_values.size()));
        if (inserted) {
          if (out.dict_values.size() >= kDictMaxEntries) {
            // Dictionary overflow: keep the plain interned pointers, drop
            // the code/hash cache — per-row hashing from here on.
            out.dict_active = false;
            out.codes.clear();
            out.dict_values.clear();
            out.dict_hashes.clear();
            dict.clear();
            continue;
          }
          out.dict_values.push_back(s);
          out.dict_hashes.push_back(std::hash<std::string>()(*s));
        }
        out.codes[r] = it->second;
      }
      return out;
    }
    case ColumnClass::kGeneric:
      break;
  }
  ExtractGeneric(rel, col, first_row, num_rows, &out);
  return out;
}

std::size_t ElemHash(const ColumnVector& c, std::size_t r) {
  switch (c.cls) {
    case ColumnClass::kI64:
      return HashI64Payload(c.i64[r]);
    case ColumnClass::kF64:
      return HashF64Payload(c.f64[r]);
    case ColumnClass::kStr:
      return c.dict_active ? c.dict_hashes[c.codes[r]]
                           : std::hash<std::string>()(*c.str[r]);
    case ColumnClass::kGeneric:
      return c.generic[r].Hash();
  }
  return 0;
}

namespace internal_batch {

bool GenericElemsEqual(const ColumnVector& a, std::size_t ar,
                       const ColumnVector& b, std::size_t br) {
  // Exact Value::Compare semantics via full reconstruction; only reached
  // for heterogeneous columns or class mixes the typed paths don't cover.
  return a.ValueAt(ar).Compare(b.ValueAt(br)) == 0;
}

}  // namespace internal_batch

KeyBlock BuildKeyBlock(const Relation& rel,
                       const std::vector<std::size_t>& key_cols) {
  return BuildKeyBlock(rel, key_cols, 0, rel.NumRows());
}

KeyBlock BuildKeyBlock(const Relation& rel,
                       const std::vector<std::size_t>& key_cols,
                       std::size_t first_row, std::size_t num_rows) {
  KeyBlock out;
  const std::size_t n = num_rows;
  out.cols.reserve(key_cols.size());
  for (std::size_t c : key_cols) {
    out.cols.push_back(ExtractColumn(rel, c, first_row, n));
  }
  // Column-major combine: per-row state evolves exactly like HashRowKey's
  // per-column fold, but each column's element hashing runs as one typed
  // loop (string hashes come from the dictionary cache).
  out.hashes.assign(n, 0x9e3779b97f4a7c15ull);
  for (const ColumnVector& cv : out.cols) {
    switch (cv.cls) {
      case ColumnClass::kI64:
        for (std::size_t r = 0; r < n; ++r) {
          MixKeyHash(&out.hashes[r], HashI64Payload(cv.i64[r]));
        }
        break;
      case ColumnClass::kF64:
        for (std::size_t r = 0; r < n; ++r) {
          MixKeyHash(&out.hashes[r], HashF64Payload(cv.f64[r]));
        }
        break;
      case ColumnClass::kStr:
        if (cv.dict_active) {
          for (std::size_t r = 0; r < n; ++r) {
            MixKeyHash(&out.hashes[r], cv.dict_hashes[cv.codes[r]]);
          }
        } else {
          for (std::size_t r = 0; r < n; ++r) {
            MixKeyHash(&out.hashes[r], std::hash<std::string>()(*cv.str[r]));
          }
        }
        break;
      case ColumnClass::kGeneric:
        for (std::size_t r = 0; r < n; ++r) {
          MixKeyHash(&out.hashes[r], cv.generic[r].Hash());
        }
        break;
    }
  }
  return out;
}

ColumnarChunk ColumnarChunk::FromRelation(const Relation& rel,
                                          std::size_t first_row,
                                          std::size_t num_rows) {
  ColumnarChunk chunk;
  chunk.first_row = first_row;
  chunk.num_rows = num_rows;
  chunk.columns.reserve(rel.arity());
  for (std::size_t c = 0; c < rel.arity(); ++c) {
    chunk.columns.push_back(ExtractColumn(rel, c, first_row, num_rows));
  }
  chunk.selection.resize(num_rows);
  for (std::size_t r = 0; r < num_rows; ++r) {
    chunk.selection[r] = static_cast<uint32_t>(r);
  }
  return chunk;
}

void ColumnarChunk::AppendToRelation(Relation* out) const {
  HTQO_CHECK(out->arity() == columns.size());
  std::vector<Value> row(columns.size());
  for (uint32_t r : selection) {
    bool valid = true;
    for (const ColumnVector& cv : columns) {
      if (!cv.nulls.IsValid(r)) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      row[c] = columns[c].ValueAt(r);
    }
    out->AddRow(row);
  }
}

}  // namespace htqo

#include "exec/operators.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

#include "exec/adaptive.h"
#include "exec/batch.h"
#include "exec/spill.h"
#include "util/bloom.h"
#include "util/hash_chain.h"

namespace htqo {

namespace {

// Minimum input size before an operator fans out onto the pool; below this
// the chunk bookkeeping costs more than it buys.
constexpr std::size_t kParallelRowThreshold = 2048;
// Rows per chunk. Chunk boundaries never affect results: per-chunk outputs
// are concatenated in chunk order, which equals serial row order. Equals
// kBatchRows so serial vectorized loops and pool lanes process identical
// batches — per-batch charges and batch counts match at any thread count.
constexpr std::size_t kParallelGrain = 1024;
static_assert(kParallelGrain == kBatchRows);

bool UseParallel(const ExecContext* ctx, std::size_t rows) {
  return ctx->parallel() && rows >= kParallelRowThreshold;
}

// Key hash of every row in one pass (parallel when the context allows).
// Precomputing hashes into a flat array keeps Value::Hash out of the probe
// loops entirely and doubles as the cheap prefilter on chain candidates.
// Hash computation is not charged, so this changes no budget accounting.
std::vector<std::size_t> PrecomputeKeyHashes(
    const Relation& rel, const std::vector<std::size_t>& cols,
    ExecContext* ctx) {
  std::vector<std::size_t> hashes(rel.NumRows());
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      hashes[r] = HashRowKey(rel.Row(r), cols);
    }
  };
  if (UseParallel(ctx, rel.NumRows())) {
    ctx->pool->ParallelFor(0, rel.NumRows(), kParallelGrain, ctx->num_threads,
                           ctx->governor, fill);
  } else {
    fill(0, rel.NumRows());
  }
  return hashes;
}

// ---------- Vectorized kernels ----------------------------------------------
//
// The vectorized operators (ExecContext::vectorized) extract columns into
// typed vectors (exec/batch.h) and run tight per-batch loops, charging the
// context once per batch. Output bytes, charge totals, and probe/bloom
// meters are identical to the row path: hashes and equality reproduce
// Value::Hash/Value::Compare bit for bit, batch boundaries equal the
// parallel grain, and per-batch charges sum to the row path's per-row
// totals (budgets trip on totals, so trip/no-trip outcomes match).

// `a <op> b` over int64 payloads — Value::Compare's int64/date branch.
bool I64Cmp(CompareOp op, int64_t a, int64_t b) {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
  }
  return false;
}

// `a <op> b` over doubles with Value::Compare's ordering (a NaN operand
// makes Compare return 0, i.e. "equal"), so kEq/kNe/kLe/kGe must be spelled
// through < and > rather than ==.
bool F64Cmp(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq: return !(a < b) && !(a > b);
    case CompareOp::kNe: return (a < b) || (a > b);
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return !(a > b);
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return !(a < b);
  }
  return false;
}

// Narrows `sel` to the elements of `cv` satisfying `f`. Typed loops cover
// the simple column-op-constant cases; membership/NOT IN and class mixes
// the typed loops can't express take AtomFilter::Matches on reconstructed
// Values — exactly the row path's predicate (checked failures included).
void FilterSelection(const AtomFilter& f, const ColumnVector& cv,
                     Selection* sel) {
  Selection& s = *sel;
  std::size_t kept = 0;
  if (f.in_values.empty() && !f.negated) {
    const ValueType vt = f.value.type();
    if (cv.cls == ColumnClass::kI64 &&
        (vt == ValueType::kInt64 || vt == ValueType::kDate)) {
      // Branchless compaction (here and in the loops below): the survivor
      // store always executes and the cursor advances by the predicate
      // bit, so mid-selectivity batches cost no branch mispredictions.
      const int64_t c = f.value.AsInt64();
      for (uint32_t r : s) {
        s[kept] = r;
        kept += I64Cmp(f.op, cv.i64[r], c) ? 1 : 0;
      }
      s.resize(kept);
      return;
    }
    const bool col_num =
        cv.cls == ColumnClass::kI64 || cv.cls == ColumnClass::kF64;
    if (col_num && vt != ValueType::kString) {
      // At least one double side: Value::Compare promotes both to double.
      const double c = f.value.AsDouble();
      if (cv.cls == ColumnClass::kF64) {
        for (uint32_t r : s) {
          s[kept] = r;
          kept += F64Cmp(f.op, cv.f64[r], c) ? 1 : 0;
        }
      } else {
        for (uint32_t r : s) {
          s[kept] = r;
          kept += F64Cmp(f.op, static_cast<double>(cv.i64[r]), c) ? 1 : 0;
        }
      }
      s.resize(kept);
      return;
    }
    if (cv.cls == ColumnClass::kStr && vt == ValueType::kString &&
        f.op == CompareOp::kEq) {
      const std::string* c = &f.value.AsString();
      for (uint32_t r : s) {
        s[kept] = r;
        kept += cv.str[r] == c ? 1 : 0;  // interned pointer equality
      }
      s.resize(kept);
      return;
    }
  }
  for (uint32_t r : s) {
    if (f.Matches(cv.ValueAt(r))) s[kept++] = r;
  }
  s.resize(kept);
}

// Narrows `sel` by the column/column comparison `lc <op> rc`.
void CompareSelection(CompareOp op, const ColumnVector& lc,
                      const ColumnVector& rc, Selection* sel) {
  Selection& s = *sel;
  std::size_t kept = 0;
  if (lc.cls == ColumnClass::kI64 && rc.cls == ColumnClass::kI64) {
    for (uint32_t r : s) {
      s[kept] = r;
      kept += I64Cmp(op, lc.i64[r], rc.i64[r]) ? 1 : 0;
    }
    s.resize(kept);
    return;
  }
  const bool l_num = lc.cls == ColumnClass::kI64 || lc.cls == ColumnClass::kF64;
  const bool r_num = rc.cls == ColumnClass::kI64 || rc.cls == ColumnClass::kF64;
  if (l_num && r_num) {
    for (uint32_t r : s) {
      const double a = lc.cls == ColumnClass::kF64
                           ? lc.f64[r]
                           : static_cast<double>(lc.i64[r]);
      const double b = rc.cls == ColumnClass::kF64
                           ? rc.f64[r]
                           : static_cast<double>(rc.i64[r]);
      s[kept] = r;
      kept += F64Cmp(op, a, b) ? 1 : 0;
    }
    s.resize(kept);
    return;
  }
  for (uint32_t r : s) {
    if (EvalCompare(op, lc.ValueAt(r), rc.ValueAt(r))) s[kept++] = r;
  }
  s.resize(kept);
}

// Narrows `sel` to elements where the two columns agree (intra-atom
// variable equality), under Value::Compare()==0 semantics.
void EqualitySelection(const ColumnVector& a, const ColumnVector& b,
                       Selection* sel) {
  Selection& s = *sel;
  std::size_t kept = 0;
  for (uint32_t r : s) {
    if (ColumnElemsEqual(a, r, b, r)) s[kept++] = r;
  }
  s.resize(kept);
}

// Gathers the selected elements of `cv` into row-major output at column
// `at`: base[k * stride + at] = element sel[k], with exact type tags and
// no intern-pool lookups.
void GatherColumn(const ColumnVector& cv, const Selection& sel, Value* base,
                  std::size_t stride, std::size_t at) {
  switch (cv.cls) {
    case ColumnClass::kI64:
      if (cv.value_tag == ValueType::kDate) {
        for (std::size_t k = 0; k < sel.size(); ++k) {
          base[k * stride + at] = Value::Date(cv.i64[sel[k]]);
        }
      } else {
        for (std::size_t k = 0; k < sel.size(); ++k) {
          base[k * stride + at] = Value::Int64(cv.i64[sel[k]]);
        }
      }
      return;
    case ColumnClass::kF64:
      for (std::size_t k = 0; k < sel.size(); ++k) {
        base[k * stride + at] = Value::Double(cv.f64[sel[k]]);
      }
      return;
    case ColumnClass::kStr:
      for (std::size_t k = 0; k < sel.size(); ++k) {
        base[k * stride + at] = Value::InternedString(cv.str[sel[k]]);
      }
      return;
    case ColumnClass::kGeneric:
      for (std::size_t k = 0; k < sel.size(); ++k) {
        base[k * stride + at] = cv.generic[sel[k]];
      }
      return;
  }
}

// Number of kBatchRows batches covering `total` rows; the deterministic
// per-operator batch count reported on op spans.
std::size_t NumBatches(std::size_t total) {
  return (total + kBatchRows - 1) / kBatchRows;
}

// Runs `batch_body` over [0, total) in kBatchRows strides — the serial twin
// of ParallelAppend's chunking (same boundaries, same sink).
Status SerialBatches(
    std::size_t total, Relation* out,
    const std::function<Status(std::size_t, std::size_t, Relation*)>&
        batch_body) {
  for (std::size_t lo = 0; lo < total; lo += kBatchRows) {
    Status s = batch_body(lo, std::min(lo + kBatchRows, total), out);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

// Relation::Distinct through the columnar layer: one full-row KeyBlock (the
// hashes equal HashRowKey over all columns), dedup against kept-row indices
// with typed equality, then gather survivors as whole-row memcpys. First
// occurrence of every row, in input order — byte-identical to Distinct().
// Requires arity > 0 and charges nothing, like Distinct().
Relation VectorizedDistinct(const Relation& rel, ExecContext* ctx) {
  std::vector<std::size_t> all_cols(rel.arity());
  std::iota(all_cols.begin(), all_cols.end(), std::size_t{0});
  const std::size_t n = rel.NumRows();
  KeyBlock keys = BuildKeyBlock(rel, all_cols);
  HashChainIndex seen(n);
  std::vector<uint32_t> kept;
  kept.reserve(n);
  for (std::size_t lo = 0; lo < n; lo += kBatchRows) {
    const std::size_t hi = std::min(lo + kBatchRows, n);
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t h = keys.hashes[r];
      bool dup = false;
      for (uint32_t it = seen.First(h); it != HashChainIndex::kEnd;
           it = seen.Next(it)) {
        if (keys.hashes[kept[it]] == h && KeyRowsEqual(keys, kept[it], keys, r)) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen.Insert(h, kept.size());
        kept.push_back(static_cast<uint32_t>(r));
      }
    }
    ctx->batches.fetch_add(1, std::memory_order_relaxed);
  }
  Relation out{rel.schema()};
  out.Reserve(kept.size());
  const std::size_t stride = rel.arity();
  Value* base = out.AppendRaw(kept.size());
  for (std::size_t k = 0; k < kept.size(); ++k) {
    std::copy_n(rel.RowPtr(kept[k]), stride, base + k * stride);
  }
  return out;
}

// Runs range_body(lo, hi, sink) over [0, total) on the context's pool and
// appends the per-chunk sinks to `out` in chunk order — byte-identical to
// range_body(0, total, out) on one thread. Errors surface as the failing
// chunk with the lowest index (serial order), and a governor trip during
// the loop surfaces as the trip status even when chunks were skipped.
// `parent_span` (the caller's operator span, 0 = untraced) parents the
// per-chunk spans explicitly — chunks run on pool lanes whose thread-local
// span stack does not contain the operator.
Status ParallelAppend(
    ExecContext* ctx, std::size_t total, Relation* out, uint64_t parent_span,
    const std::function<Status(std::size_t, std::size_t, Relation*)>&
        range_body) {
  const std::size_t num_chunks =
      (total + kParallelGrain - 1) / kParallelGrain;
  std::vector<Relation> chunk_out(num_chunks, Relation{out->schema()});
  std::vector<Status> chunk_status(num_chunks, Status::Ok());
  ctx->pool->ParallelFor(
      0, total, kParallelGrain, ctx->num_threads, ctx->governor,
      [&](std::size_t lo, std::size_t hi) {
        ScopedSpan chunk_span(ctx->tracer, "chunk", parent_span);
        chunk_span.Attr("first_row", lo);
        chunk_span.Attr("rows", hi - lo);
        std::size_t c = lo / kParallelGrain;
        chunk_status[c] = range_body(lo, hi, &chunk_out[c]);
      });
  if (ctx->governor != nullptr && ctx->governor->exhausted()) {
    return ctx->governor->trip_status();
  }
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (!chunk_status[c].ok()) return chunk_status[c];
  }
  std::size_t merged_rows = out->NumRows();
  for (const Relation& chunk : chunk_out) merged_rows += chunk.NumRows();
  out->Reserve(merged_rows);
  for (const Relation& chunk : chunk_out) out->AppendFrom(chunk);
  return Status::Ok();
}

// Shared column names of two schemas, with their indices on both sides.
void SharedColumns(const Schema& left, const Schema& right,
                   std::vector<std::size_t>* lcols,
                   std::vector<std::size_t>* rcols,
                   std::vector<std::size_t>* right_only) {
  for (std::size_t r = 0; r < right.arity(); ++r) {
    auto l = left.IndexOf(right.column(r).name);
    if (l) {
      lcols->push_back(*l);
      rcols->push_back(r);
    } else {
      right_only->push_back(r);
    }
  }
}

Schema JoinedSchema(const Schema& left, const Schema& right,
                    const std::vector<std::size_t>& right_only) {
  std::vector<Column> cols = left.columns();
  for (std::size_t r : right_only) cols.push_back(right.column(r));
  return Schema(std::move(cols));
}

// ---------- Grace-style spill partitioning ---------------------------------
//
// When ExecContext::ShouldSpill says an operator's working set would cross
// the soft memory threshold, both inputs are hash-partitioned into
// SpillManager temp files and partition pairs are processed one at a time.
// Output rows are collected with a 64-bit tag — the probe row's original
// index — and merged back in tag order at the end, which reproduces the
// serial in-memory emission order byte for byte: key-equal rows always land
// in the same partition with their relative order preserved, and the
// per-partition kernels mirror the in-memory loops (LIFO chain order and
// all). Partition pairs are processed serially (the per-operator spill path
// is deterministic at any thread count); parallelism across tree-wave nodes
// is unaffected — each node's operator spills independently against the
// shared manager.

// Below this many build rows a partition is always processed in memory:
// with tiny soft thresholds (the equivalence tests force them) recursing on
// trivial partitions would only burn file handles until the depth cap.
constexpr std::size_t kMinSpillRows = 64;

// Working-set estimates in bytes, used both for the in-memory governor
// charge and the spill decision. A hash join pins the build rows, a chain
// index (~24 B/row with its hash array), and the probe hash array. The
// pinned side's interned-string payloads count once each (a 16-byte Value
// only holds the handle), so memory budgets and spill thresholds see the
// real footprint of string-heavy relations; numeric schemas skip the scan.
std::size_t JoinWorkingBytes(const Relation& build, const Relation& probe) {
  return build.NumRows() * (build.arity() * sizeof(Value) + 24) +
         build.StringPayloadBytes() + probe.NumRows() * 8;
}

std::size_t SemiJoinWorkingBytes(const Relation& right, const Relation& left) {
  return right.NumRows() * (right.arity() * sizeof(Value) + 24) +
         right.StringPayloadBytes() + left.NumRows() * 8;
}

std::size_t DistinctWorkingBytes(const Relation& rel) {
  return rel.NumRows() * (rel.arity() * sizeof(Value) + 16) +
         rel.StringPayloadBytes();
}

// Bytes a loaded partition pair keeps resident while its kernel runs.
std::size_t LoadedPairBytes(const Relation& build, const Relation& probe) {
  return build.NumRows() * (build.arity() * sizeof(Value) + 24) +
         probe.NumRows() * probe.arity() * sizeof(Value) +
         build.StringPayloadBytes() + probe.StringPayloadBytes();
}

// Partition index for `hash` at recursion `depth`: a depth-salted SplitMix64
// finalizer, decorrelated from the hash-chain bucket masks so a level-d
// partition re-splits at level d+1.
std::size_t SpillPartitionOf(std::size_t hash, std::size_t depth,
                             std::size_t fanout) {
  uint64_t z = (static_cast<uint64_t>(hash) + depth + 1) *
               0x9e3779b97f4a7c15ull;
  z ^= z >> 29;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 32;
  return static_cast<std::size_t>(z % fanout);
}

// Output rows plus the probe tags they were emitted for; merged by tag once
// a Grace operator has drained every partition.
struct TaggedRows {
  Relation rows;
  std::vector<uint64_t> tags;
};

// Hash-partitions `rel` on `cols` into the manager's fanout, writing each
// row with its tag from `tags` (parallel to rows). One work unit per row
// covers the encode+write.
Result<std::vector<std::unique_ptr<SpillFile>>> PartitionToSpill(
    const Relation& rel, const std::vector<std::size_t>& cols,
    const std::vector<uint64_t>& tags, std::size_t depth, ExecContext* ctx) {
  const std::size_t fanout = ctx->spill->options().fanout;
  std::vector<std::unique_ptr<SpillFile>> parts;
  parts.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    auto file = ctx->spill->Create();
    if (!file.ok()) return file.status();
    parts.push_back(std::move(*file));
  }
  if (ctx->vectorized && rel.arity() > 0) {
    // Batch mode: key hashes computed per batch through the columnar
    // extractor (one batch of key columns resident at a time — this path
    // runs under memory pressure), whole batches serialized through the
    // tagged codec, one work charge per batch. Same bytes, same hash per
    // row, same work total as the per-row loop below.
    for (std::size_t lo = 0; lo < rel.NumRows(); lo += kBatchRows) {
      const std::size_t hi = std::min(lo + kBatchRows, rel.NumRows());
      Status w = ctx->ChargeWork(hi - lo);
      if (!w.ok()) return w;
      KeyBlock keys = BuildKeyBlock(rel, cols, lo, hi - lo);
      for (std::size_t r = lo; r < hi; ++r) {
        std::size_t p = SpillPartitionOf(keys.hashes[r - lo], depth, fanout);
        Status s = parts[p]->Append(tags[r], rel.Row(r));
        if (!s.ok()) return s;
      }
      ctx->batches.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    for (std::size_t r = 0; r < rel.NumRows(); ++r) {
      Status w = ctx->ChargeWork(1);
      if (!w.ok()) return w;
      auto row = rel.Row(r);
      std::size_t p = SpillPartitionOf(HashRowKey(row, cols), depth, fanout);
      Status s = parts[p]->Append(tags[r], row);
      if (!s.ok()) return s;
    }
  }
  for (auto& part : parts) {
    Status s = part->Finish();
    if (!s.ok()) return s;
  }
  return parts;
}

std::vector<uint64_t> IdentityTags(std::size_t n) {
  std::vector<uint64_t> tags(n);
  std::iota(tags.begin(), tags.end(), uint64_t{0});
  return tags;
}

// Reorders `collected` into `out` by ascending tag, preserving the per-tag
// emission order — the exact serial output: every tag's rows come from a
// single partition, already in kernel order.
Status MergeByTag(TaggedRows&& collected, Relation* out, ExecContext* ctx) {
  return internal::MergeRowsByTag(collected.rows, collected.tags, out, ctx);
}

// Serial tagged probe kernel for one partition pair; mirrors the in-memory
// probe loop exactly (per-candidate work charge, per-emit row charge, LIFO
// chain order) so the merged spill output is byte-identical to it.
Status TaggedHashJoinKernel(const Relation& build, const Relation& probe,
                            const std::vector<uint64_t>& probe_tags,
                            const std::vector<std::size_t>& bcols,
                            const std::vector<std::size_t>& pcols,
                            const std::vector<std::size_t>& right_only,
                            bool build_left, std::size_t left_arity,
                            ExecContext* ctx, TaggedRows* out) {
  Status s = ctx->ChargeWork(build.NumRows() + probe.NumRows());
  if (!s.ok()) return s;
  ctx->hash_probes.fetch_add(probe.NumRows(), std::memory_order_relaxed);
  std::vector<std::size_t> build_hash(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    build_hash[r] = HashRowKey(build.Row(r), bcols);
  }
  BlockedBloomFilter bloom(build.NumRows());
  for (std::size_t h : build_hash) bloom.Add(h);
  HashChainIndex table(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    table.Insert(build_hash[r], r);
  }
  std::vector<Value> row(out->rows.arity());
  std::size_t bloom_skipped = 0;
  for (std::size_t p = 0; p < probe.NumRows(); ++p) {
    auto probe_row = probe.Row(p);
    std::size_t h = HashRowKey(probe_row, pcols);
    if (!bloom.MayContain(h)) {
      ++bloom_skipped;
      continue;
    }
    for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
         it = table.Next(it)) {
      Status st = ctx->ChargeWork(1);
      if (!st.ok()) return st;
      if (build_hash[it] != h ||
          !RowKeysEqual(build.Row(it), bcols, probe_row, pcols)) {
        continue;
      }
      auto build_row = build.Row(it);
      auto lrow = build_left ? build_row : probe_row;
      auto rrow = build_left ? probe_row : build_row;
      std::size_t i = 0;
      for (; i < left_arity; ++i) row[i] = lrow[i];
      for (std::size_t r : right_only) row[i++] = rrow[r];
      st = ctx->ChargeRows(1);
      if (!st.ok()) return st;
      out->rows.AddRow(row);
      out->tags.push_back(probe_tags[p]);
    }
  }
  ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
  return Status::Ok();
}

// Recursive Grace hash join: partitions build/probe, drains partition pairs
// serially, repartitioning a pair while it still exceeds the soft threshold
// and the depth cap allows. At the cap the kernel runs in memory regardless
// (correctness over the threshold; all-equal keys cannot be split).
Result<Relation> GraceHashJoin(const Relation& left, const Relation& right,
                               bool build_left,
                               const std::vector<std::size_t>& lcols,
                               const std::vector<std::size_t>& rcols,
                               const std::vector<std::size_t>& right_only,
                               Schema out_schema, ExecContext* ctx) {
  ctx->spill->NoteSpillEvent();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<std::size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<std::size_t>& pcols = build_left ? rcols : lcols;
  const std::size_t fanout = ctx->spill->options().fanout;
  const std::size_t max_depth = ctx->spill->options().max_recursion_depth;

  TaggedRows collected{Relation{out_schema}, {}};
  std::function<Status(const Relation&, const Relation&,
                       const std::vector<uint64_t>&, std::size_t)>
      recurse = [&](const Relation& b, const Relation& p,
                    const std::vector<uint64_t>& ptags,
                    std::size_t depth) -> Status {
    ctx->spill->NoteRecursionDepth(depth + 1);
    auto bparts = PartitionToSpill(b, bcols, IdentityTags(b.NumRows()),
                                   depth, ctx);
    if (!bparts.ok()) return bparts.status();
    auto pparts = PartitionToSpill(p, pcols, ptags, depth, ctx);
    if (!pparts.ok()) return pparts.status();
    for (std::size_t i = 0; i < fanout; ++i) {
      // The spill path is serial per operator, so the operator span (and,
      // when recursing, the outer partition span) is open on this thread.
      ScopedSpan part_span(ctx->tracer, "spill.partition");
      part_span.Attr("depth", depth);
      part_span.Attr("index", i);
      Relation bpart{b.schema()};
      Relation ppart{p.schema()};
      std::vector<uint64_t> btags, ptags_i;
      Status rs = (*bparts)[i]->ReadBack(&bpart, &btags);
      if (!rs.ok()) return rs;
      rs = (*pparts)[i]->ReadBack(&ppart, &ptags_i);
      if (!rs.ok()) return rs;
      (*bparts)[i].reset();  // unlink both files before the pair runs
      (*pparts)[i].reset();
      part_span.Attr("rows_build", bpart.NumRows());
      part_span.Attr("rows_probe", ppart.NumRows());
      ScopedTableMemory loaded(ctx, LoadedPairBytes(bpart, ppart));
      if (!loaded.status().ok()) return loaded.status();
      if (depth + 1 < max_depth && bpart.NumRows() > kMinSpillRows &&
          ctx->ShouldSpill(JoinWorkingBytes(bpart, ppart))) {
        rs = recurse(bpart, ppart, ptags_i, depth + 1);
      } else {
        rs = TaggedHashJoinKernel(bpart, ppart, ptags_i, bcols, pcols,
                                  right_only, build_left, left.arity(), ctx,
                                  &collected);
      }
      if (!rs.ok()) return rs;
    }
    return Status::Ok();
  };
  Status s = recurse(build, probe, IdentityTags(probe.NumRows()), 0);
  if (!s.ok()) return s;
  Relation out{std::move(out_schema)};
  s = MergeByTag(std::move(collected), &out, ctx);
  if (!s.ok()) return s;
  return out;
}

// Serial tagged semijoin kernel; mirrors the in-memory loop (first match
// wins, one row charge per emitted left row).
Status TaggedSemiJoinKernel(const Relation& lpart, const Relation& rpart,
                            const std::vector<uint64_t>& ltags,
                            const std::vector<std::size_t>& lcols,
                            const std::vector<std::size_t>& rcols,
                            ExecContext* ctx, TaggedRows* out) {
  Status s = ctx->ChargeWork(lpart.NumRows() + rpart.NumRows());
  if (!s.ok()) return s;
  ctx->hash_probes.fetch_add(lpart.NumRows(), std::memory_order_relaxed);
  std::vector<std::size_t> right_hash(rpart.NumRows());
  for (std::size_t r = 0; r < rpart.NumRows(); ++r) {
    right_hash[r] = HashRowKey(rpart.Row(r), rcols);
  }
  BlockedBloomFilter bloom(rpart.NumRows());
  for (std::size_t h : right_hash) bloom.Add(h);
  HashChainIndex table(rpart.NumRows());
  for (std::size_t r = 0; r < rpart.NumRows(); ++r) {
    table.Insert(right_hash[r], r);
  }
  std::size_t bloom_skipped = 0;
  for (std::size_t l = 0; l < lpart.NumRows(); ++l) {
    auto lrow = lpart.Row(l);
    std::size_t h = HashRowKey(lrow, lcols);
    if (!bloom.MayContain(h)) {
      ++bloom_skipped;
      continue;
    }
    for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
         it = table.Next(it)) {
      if (right_hash[it] == h &&
          RowKeysEqual(rpart.Row(it), rcols, lrow, lcols)) {
        Status st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        out->rows.AddRow(lrow);
        out->tags.push_back(ltags[l]);
        break;
      }
    }
  }
  ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
  return Status::Ok();
}

Result<Relation> GraceSemiJoin(const Relation& left, const Relation& right,
                               const std::vector<std::size_t>& lcols,
                               const std::vector<std::size_t>& rcols,
                               ExecContext* ctx) {
  ctx->spill->NoteSpillEvent();
  const std::size_t fanout = ctx->spill->options().fanout;
  const std::size_t max_depth = ctx->spill->options().max_recursion_depth;
  TaggedRows collected{Relation{left.schema()}, {}};
  std::function<Status(const Relation&, const Relation&,
                       const std::vector<uint64_t>&, std::size_t)>
      recurse = [&](const Relation& l, const Relation& r,
                    const std::vector<uint64_t>& ltags,
                    std::size_t depth) -> Status {
    ctx->spill->NoteRecursionDepth(depth + 1);
    auto lparts = PartitionToSpill(l, lcols, ltags, depth, ctx);
    if (!lparts.ok()) return lparts.status();
    auto rparts = PartitionToSpill(r, rcols, IdentityTags(r.NumRows()),
                                   depth, ctx);
    if (!rparts.ok()) return rparts.status();
    for (std::size_t i = 0; i < fanout; ++i) {
      ScopedSpan part_span(ctx->tracer, "spill.partition");
      part_span.Attr("depth", depth);
      part_span.Attr("index", i);
      Relation lpart{l.schema()};
      Relation rpart{r.schema()};
      std::vector<uint64_t> ltags_i, rtags;
      Status rs = (*lparts)[i]->ReadBack(&lpart, &ltags_i);
      if (!rs.ok()) return rs;
      rs = (*rparts)[i]->ReadBack(&rpart, &rtags);
      if (!rs.ok()) return rs;
      (*lparts)[i].reset();
      (*rparts)[i].reset();
      part_span.Attr("rows_build", rpart.NumRows());
      part_span.Attr("rows_probe", lpart.NumRows());
      ScopedTableMemory loaded(ctx, LoadedPairBytes(rpart, lpart));
      if (!loaded.status().ok()) return loaded.status();
      if (depth + 1 < max_depth && rpart.NumRows() > kMinSpillRows &&
          ctx->ShouldSpill(SemiJoinWorkingBytes(rpart, lpart))) {
        rs = recurse(lpart, rpart, ltags_i, depth + 1);
      } else {
        rs = TaggedSemiJoinKernel(lpart, rpart, ltags_i, lcols, rcols, ctx,
                                  &collected);
      }
      if (!rs.ok()) return rs;
    }
    return Status::Ok();
  };
  Status s = recurse(left, right, IdentityTags(left.NumRows()), 0);
  if (!s.ok()) return s;
  Relation out{left.schema()};
  s = MergeByTag(std::move(collected), &out, ctx);
  if (!s.ok()) return s;
  return out;
}

}  // namespace

std::vector<std::size_t> IndicesOf(const Relation& rel,
                                   const std::vector<std::string>& names) {
  std::vector<std::size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    auto idx = rel.schema().IndexOf(n);
    HTQO_CHECK(idx.has_value());
    out.push_back(*idx);
  }
  return out;
}

Relation ProjectByName(const Relation& rel,
                       const std::vector<std::string>& columns,
                       bool distinct) {
  Relation projected = rel.Project(IndicesOf(rel, columns));
  return distinct ? projected.Distinct() : projected;
}

Result<Relation> ProjectByName(const Relation& rel,
                               const std::vector<std::string>& columns,
                               bool distinct, ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.project", ctx->SpanParent());
  op_span.Attr("rows_in", rel.NumRows());
  Relation projected = rel.Project(IndicesOf(rel, columns));
  if (!distinct) {
    op_span.Attr("rows_out", projected.NumRows());
    return projected;
  }
  auto out = SpillableDistinct(projected, ctx);
  if (out.ok()) op_span.Attr("rows_out", out->NumRows());
  return out;
}

Result<Relation> SpillableDistinct(const Relation& rel, ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.distinct", ctx->SpanParent());
  op_span.Attr("rows_in", rel.NumRows());
  if (rel.arity() == 0 || rel.NumRows() == 0) return rel.Distinct();
  std::vector<std::size_t> all_cols(rel.arity());
  std::iota(all_cols.begin(), all_cols.end(), std::size_t{0});
  const std::size_t working_bytes = DistinctWorkingBytes(rel);
  if (!ctx->ShouldSpill(working_bytes)) {
    ScopedTableMemory working(ctx, working_bytes);
    if (!working.status().ok()) return working.status();
    Relation distinct =
        ctx->vectorized ? VectorizedDistinct(rel, ctx) : rel.Distinct();
    op_span.Attr("rows_out", distinct.NumRows());
    if (ctx->vectorized) op_span.Attr("batches", NumBatches(rel.NumRows()));
    return distinct;
  }

  // Grace path: partition on the full-row hash (value-equal rows always
  // share a partition), dedup each partition preserving order, keep each
  // survivor's original row index as its tag. Merging by tag yields exactly
  // Distinct()'s output: the first occurrence of every row, in input order.
  ctx->spill->NoteSpillEvent();
  const std::size_t fanout = ctx->spill->options().fanout;
  const std::size_t max_depth = ctx->spill->options().max_recursion_depth;
  TaggedRows collected{Relation{rel.schema()}, {}};
  std::function<Status(const Relation&, const std::vector<uint64_t>&,
                       std::size_t)>
      recurse = [&](const Relation& in, const std::vector<uint64_t>& tags,
                    std::size_t depth) -> Status {
    ctx->spill->NoteRecursionDepth(depth + 1);
    auto parts = PartitionToSpill(in, all_cols, tags, depth, ctx);
    if (!parts.ok()) return parts.status();
    for (std::size_t i = 0; i < fanout; ++i) {
      ScopedSpan part_span(ctx->tracer, "spill.partition");
      part_span.Attr("depth", depth);
      part_span.Attr("index", i);
      Relation part{rel.schema()};
      std::vector<uint64_t> part_tags;
      Status rs = (*parts)[i]->ReadBack(&part, &part_tags);
      if (!rs.ok()) return rs;
      (*parts)[i].reset();
      part_span.Attr("rows", part.NumRows());
      ScopedTableMemory loaded(
          ctx, part.NumRows() * (part.arity() * sizeof(Value) + 16));
      if (!loaded.status().ok()) return loaded.status();
      if (depth + 1 < max_depth && part.NumRows() > kMinSpillRows &&
          ctx->ShouldSpill(DistinctWorkingBytes(part))) {
        rs = recurse(part, part_tags, depth + 1);
        if (!rs.ok()) return rs;
        continue;
      }
      // In-partition dedup, first occurrence wins — Distinct()'s algorithm
      // with the tag carried along.
      HashChainIndex seen(part.NumRows());
      std::vector<std::size_t> kept_hash;
      kept_hash.reserve(part.NumRows());
      std::size_t kept_base = collected.rows.NumRows();
      for (std::size_t r = 0; r < part.NumRows(); ++r) {
        auto row = part.Row(r);
        std::size_t h = HashRowKey(row, all_cols);
        bool dup = false;
        for (uint32_t it = seen.First(h); it != HashChainIndex::kEnd;
             it = seen.Next(it)) {
          if (kept_hash[it] == h &&
              RowKeysEqual(collected.rows.Row(kept_base + it), all_cols, row,
                           all_cols)) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          seen.Insert(h, kept_hash.size());
          kept_hash.push_back(h);
          collected.rows.AddRow(row);
          collected.tags.push_back(part_tags[r]);
        }
      }
    }
    return Status::Ok();
  };
  Status s = recurse(rel, IdentityTags(rel.NumRows()), 0);
  if (!s.ok()) return s;
  Relation out{rel.schema()};
  s = MergeByTag(std::move(collected), &out, ctx);
  if (!s.ok()) return s;
  op_span.Attr("rows_out", out.NumRows());
  op_span.Attr("spilled", 1);
  return out;
}

Result<Relation> ScanAtom(const ResolvedQuery& rq, std::size_t atom_index,
                          const Catalog& catalog, ExecContext* ctx) {
  const Atom& atom = rq.cq.atoms[atom_index];
  ScopedSpan op_span(ctx->tracer, "op.scan", ctx->SpanParent());
  op_span.Attr("relation", atom.relation);
  // The atom index ties this span back to rq.cq.atoms for the feedback
  // loop's actual-vs-estimated reconciliation (the relation name alone is
  // ambiguous under self-joins).
  op_span.Attr("atom", atom_index);
  auto base = catalog.Get(atom.relation);
  if (!base.ok()) return base.status();
  const Relation& rel = **base;

  // Output columns: one per distinct variable (first binding wins), tid last.
  std::vector<VarId> vars = atom.Vars();
  std::vector<Column> cols;
  std::vector<std::size_t> source_col;  // base column per output var; tid = -1
  constexpr std::size_t kTid = static_cast<std::size_t>(-1);
  for (VarId v : vars) {
    if (atom.has_tid && v == atom.tid_var) {
      cols.push_back(Column{rq.cq.vars[v].name, ValueType::kInt64});
      source_col.push_back(kTid);
      continue;
    }
    for (const AtomBinding& b : atom.bindings) {
      if (b.var == v) {
        cols.push_back(
            Column{rq.cq.vars[v].name, rel.schema().column(b.column).type});
        source_col.push_back(b.column);
        break;
      }
    }
  }
  Relation out{Schema(std::move(cols))};
  Status alloc = out.TryReserve(rel.NumRows());
  if (!alloc.ok()) return alloc;

  if (ctx->vectorized) {
    // Vectorized scan: per batch, extract each referenced base column once,
    // narrow a selection vector through filters / local comparisons /
    // intra-atom equalities with typed loops, then gather the survivors
    // column-wise. One work charge per batch (the row path charges one unit
    // per input row), one row charge per batch's emissions.
    std::vector<std::size_t> referenced;  // base columns this scan touches
    std::vector<std::size_t> slot(rel.arity(), static_cast<std::size_t>(-1));
    auto reference = [&](std::size_t col) {
      if (slot[col] == static_cast<std::size_t>(-1)) {
        slot[col] = referenced.size();
        referenced.push_back(col);
      }
    };
    for (const AtomFilter& f : atom.filters) reference(f.column);
    for (const LocalComparison& c : atom.local_comparisons) {
      reference(c.lcolumn);
      reference(c.rcolumn);
    }
    for (const AtomBinding& b : atom.bindings) reference(b.column);
    for (std::size_t c : source_col) {
      if (c != kTid) reference(c);
    }
    // Intra-atom equality pairs, deduplicated: the row path's nested
    // binding loops test every ordered pair of same-var bindings, which
    // reduces to "all bindings of a var agree" — the unordered pairs below.
    std::vector<std::pair<std::size_t, std::size_t>> equal_pairs;
    for (std::size_t i = 0; i < atom.bindings.size(); ++i) {
      for (std::size_t j = i + 1; j < atom.bindings.size(); ++j) {
        if (atom.bindings[i].var == atom.bindings[j].var &&
            atom.bindings[i].column != atom.bindings[j].column) {
          equal_pairs.emplace_back(atom.bindings[i].column,
                                   atom.bindings[j].column);
        }
      }
    }

    const bool parallel = UseParallel(ctx, rel.NumRows());
    auto scan_batch = [&](std::size_t lo, std::size_t hi,
                          Relation* sink) -> Status {
      Status work = ctx->ChargeWork(hi - lo);
      if (!work.ok()) return work;
      const std::size_t n = hi - lo;
      std::vector<ColumnVector> cols_v(referenced.size());
      for (std::size_t i = 0; i < referenced.size(); ++i) {
        cols_v[i] = ExtractColumn(rel, referenced[i], lo, n);
      }
      Selection sel(n);
      std::iota(sel.begin(), sel.end(), uint32_t{0});
      for (const AtomFilter& f : atom.filters) {
        if (sel.empty()) break;
        FilterSelection(f, cols_v[slot[f.column]], &sel);
      }
      for (const LocalComparison& c : atom.local_comparisons) {
        if (sel.empty()) break;
        CompareSelection(c.op, cols_v[slot[c.lcolumn]],
                         cols_v[slot[c.rcolumn]], &sel);
      }
      for (const auto& [ca, cb] : equal_pairs) {
        if (sel.empty()) break;
        EqualitySelection(cols_v[slot[ca]], cols_v[slot[cb]], &sel);
      }
      ctx->batches.fetch_add(1, std::memory_order_relaxed);
      if (sel.empty()) return Status::Ok();
      Status s = ctx->ChargeRows(sel.size());
      if (!s.ok()) return s;
      const std::size_t stride = source_col.size();
      if (!parallel) {
        // Serial sinks span every batch: extrapolate survivor density over
        // [0, hi) to the whole relation and reserve once (capped by the
        // input size — a scan never emits more rows than it reads) instead
        // of riding the doubling ladder. Parallel chunk sinks get one
        // exact-size append each.
        const std::size_t need = sink->NumRows() + sel.size();
        if (need > sink->CapacityRows()) {
          const auto projected = static_cast<std::size_t>(
              static_cast<double>(need) * static_cast<double>(rel.NumRows()) /
              static_cast<double>(hi));
          sink->Reserve(std::min(rel.NumRows(),
                                 std::max(need, projected + projected / 8)));
        }
      }
      Value* base = sink->AppendRaw(sel.size());
      for (std::size_t i = 0; i < stride; ++i) {
        if (source_col[i] == kTid) {
          for (std::size_t k = 0; k < sel.size(); ++k) {
            base[k * stride + i] =
                Value::Int64(static_cast<int64_t>(lo + sel[k]));
          }
        } else {
          GatherColumn(cols_v[slot[source_col[i]]], sel, base, stride, i);
        }
      }
      return Status::Ok();
    };
    Status scan = UseParallel(ctx, rel.NumRows())
                      ? ParallelAppend(ctx, rel.NumRows(), &out, op_span.id(),
                                       scan_batch)
                      : SerialBatches(rel.NumRows(), &out, scan_batch);
    if (!scan.ok()) return scan;
    ctx->NotePeak(out);
    op_span.Attr("rows_out", out.NumRows());
    op_span.Attr("batches", NumBatches(rel.NumRows()));
    if (ctx->replan != nullptr) {
      ctx->replan->NoteScanActual(atom_index, out.NumRows());
    }
    return out;
  }

  auto scan_range = [&](std::size_t lo, std::size_t hi,
                        Relation* sink) -> Status {
    std::vector<Value> row(source_col.size());
    for (std::size_t r = lo; r < hi; ++r) {
      Status work = ctx->ChargeWork(1);
      if (!work.ok()) return work;
      auto src = rel.Row(r);
      bool pass = true;
      for (const AtomFilter& f : atom.filters) {
        if (!f.Matches(src[f.column])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      for (const LocalComparison& c : atom.local_comparisons) {
        if (!EvalCompare(c.op, src[c.lcolumn], src[c.rcolumn])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      // Intra-atom variable equality: every binding of a var must agree.
      for (const AtomBinding& b : atom.bindings) {
        std::size_t first_col = b.column;
        for (const AtomBinding& b2 : atom.bindings) {
          if (b2.var == b.var && b2.column != first_col &&
              src[b2.column].Compare(src[first_col]) != 0) {
            pass = false;
            break;
          }
        }
        if (!pass) break;
      }
      if (!pass) continue;
      for (std::size_t i = 0; i < source_col.size(); ++i) {
        row[i] = source_col[i] == kTid ? Value::Int64(static_cast<int64_t>(r))
                                       : src[source_col[i]];
      }
      Status s = ctx->ChargeRows(1);
      if (!s.ok()) return s;
      sink->AddRow(row);
    }
    return Status::Ok();
  };
  Status scan =
      UseParallel(ctx, rel.NumRows())
          ? ParallelAppend(ctx, rel.NumRows(), &out, op_span.id(), scan_range)
          : scan_range(0, rel.NumRows(), &out);
  if (!scan.ok()) return scan;
  ctx->NotePeak(out);
  op_span.Attr("rows_out", out.NumRows());
  if (ctx->replan != nullptr) {
    ctx->replan->NoteScanActual(atom_index, out.NumRows());
  }
  return out;
}

Result<Relation> NaturalHashJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.hash_join", ctx->SpanParent());
  op_span.Attr("rows_left", left.NumRows());
  op_span.Attr("rows_right", right.NumRows());
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;

  // Build on the smaller input.
  const bool build_left = left.NumRows() <= right.NumRows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<std::size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<std::size_t>& pcols = build_left ? rcols : lcols;

  Status s = ctx->ChargeWork(build.NumRows() + probe.NumRows());
  if (!s.ok()) return s;

  // Memory-adaptive branch: when the build table would push live memory
  // past the soft threshold, take the Grace spill path (byte-identical
  // output). Otherwise charge the working set against the governor — with
  // spilling disarmed this is where an undersized memory budget trips.
  const std::size_t working_bytes = JoinWorkingBytes(build, probe);
  if (!lcols.empty() && ctx->ShouldSpill(working_bytes)) {
    op_span.Attr("spilled", 1);
    auto spilled = GraceHashJoin(left, right, build_left, lcols, rcols,
                                 right_only, out.schema(), ctx);
    if (spilled.ok()) op_span.Attr("rows_out", spilled->NumRows());
    return spilled;
  }
  ScopedTableMemory working(ctx, working_bytes);
  if (!working.status().ok()) return working.status();

  if (ctx->vectorized && !lcols.empty()) {
    // Vectorized probe. Key columns and hashes are extracted once per side
    // into typed blocks (hashes bit-identical to HashRowKey, so the Bloom
    // filter, bucket layout and chain candidate sets equal the row path's).
    // Each probe batch collects its (build, probe) match pairs in a tight
    // loop — no Status, no Value calls — then charges work for every chain
    // candidate visited and one row per match, and gathers output rows as
    // whole-row memcpys. Cross products (no shared columns) stay on the
    // row path below.
    KeyBlock bkey = BuildKeyBlock(build, bcols);
    KeyBlock pkey = BuildKeyBlock(probe, pcols);
    BlockedBloomFilter bloom(build.NumRows());
    for (std::size_t h : bkey.hashes) bloom.Add(h);
    HashChainIndex table(build.NumRows());
    for (std::size_t r = 0; r < build.NumRows(); ++r) {
      table.Insert(bkey.hashes[r], r);
    }
    // Single-int64-key fast path: the hash is a pure function of the
    // payload, so payload equality decides exactly what the hash check +
    // KeyRowsEqual pair decides — one load and compare per candidate.
    const bool key_i64 = bkey.cols.size() == 1 &&
                         bkey.cols[0].cls == ColumnClass::kI64 &&
                         pkey.cols[0].cls == ColumnClass::kI64;
    const int64_t* bkey_i64 = key_i64 ? bkey.cols[0].i64.data() : nullptr;
    const int64_t* pkey_i64 = key_i64 ? pkey.cols[0].i64.data() : nullptr;
    const bool parallel = UseParallel(ctx, probe.NumRows());

    auto probe_batch = [&](std::size_t lo, std::size_t hi,
                           Relation* sink) -> Status {
      // (build row, probe offset in [lo, hi)) per match, in probe order.
      std::vector<std::pair<uint32_t, uint32_t>> matches;
      matches.reserve(hi - lo);
      std::size_t candidates = 0;
      std::size_t bloom_skipped = 0;
      for (std::size_t p = lo; p < hi; ++p) {
        const std::size_t h = pkey.hashes[p];
        if (!bloom.MayContain(h)) {
          ++bloom_skipped;
          continue;
        }
        if (key_i64) {
          const int64_t key = pkey_i64[p];
          for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
               it = table.Next(it)) {
            ++candidates;
            if (bkey_i64[it] == key) {
              matches.emplace_back(it, static_cast<uint32_t>(p - lo));
            }
          }
          continue;
        }
        for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
             it = table.Next(it)) {
          ++candidates;
          if (bkey.hashes[it] == h && KeyRowsEqual(bkey, it, pkey, p)) {
            matches.emplace_back(it, static_cast<uint32_t>(p - lo));
          }
        }
      }
      ctx->batches.fetch_add(1, std::memory_order_relaxed);
      ctx->hash_probes.fetch_add(hi - lo, std::memory_order_relaxed);
      ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
      if (candidates > 0) {
        Status st = ctx->ChargeWork(candidates);
        if (!st.ok()) return st;
      }
      if (matches.empty()) return Status::Ok();
      Status st = ctx->ChargeRows(matches.size());
      if (!st.ok()) return st;
      const std::size_t la = left.arity();
      const std::size_t stride = out.arity();
      const std::size_t barity = build.arity();
      const std::size_t parity = probe.arity();
      const Value* bdata = build.RowPtr(0);
      const Value* pdata = probe.RowPtr(lo);
      if (!parallel) {
        // The serial sink spans every batch, so match density over [0, hi)
        // extrapolates to the whole probe side; one density-informed
        // reserve replaces the doubling ladder, which would recopy all
        // rows gathered so far at each step. Parallel chunk sinks see one
        // exact-size append each and skip this.
        const std::size_t need = sink->NumRows() + matches.size();
        if (need > sink->CapacityRows()) {
          const auto projected = static_cast<std::size_t>(
              static_cast<double>(need) *
              static_cast<double>(probe.NumRows()) / static_cast<double>(hi));
          sink->Reserve(std::max(need, projected + projected / 8));
        }
      }
      Value* base = sink->AppendRaw(matches.size());
      for (std::size_t k = 0; k < matches.size(); ++k) {
        const Value* brow = bdata + matches[k].first * barity;
        const Value* prow = pdata + matches[k].second * parity;
        const Value* lrow = build_left ? brow : prow;
        const Value* rrow = build_left ? prow : brow;
        Value* dst = base + k * stride;
        std::copy_n(lrow, la, dst);
        std::size_t i = la;
        for (std::size_t rc : right_only) dst[i++] = rrow[rc];
      }
      return Status::Ok();
    };
    Status vec_status =
        UseParallel(ctx, probe.NumRows())
            ? ParallelAppend(ctx, probe.NumRows(), &out, op_span.id(),
                             probe_batch)
            : SerialBatches(probe.NumRows(), &out, probe_batch);
    if (!vec_status.ok()) return vec_status;
    ctx->NotePeak(out);
    op_span.Attr("rows_out", out.NumRows());
    op_span.Attr("batches", NumBatches(probe.NumRows()));
    return out;
  }

  // Both sides' key hashes up front; the build table is then pure pointer
  // writes and the probe loop never calls Value::Hash. The table is built
  // once and probed read-only from all lanes, so chain iteration order —
  // and with it every per-candidate work charge and per-probe match order —
  // is identical at any thread count.
  std::vector<std::size_t> build_hash = PrecomputeKeyHashes(build, bcols, ctx);
  std::vector<std::size_t> probe_hash =
      lcols.empty() ? std::vector<std::size_t>{}
                    : PrecomputeKeyHashes(probe, pcols, ctx);
  // Bloom prefilter over the build-side hashes: a probe that misses it has
  // no chain partner, so the walk (and its per-candidate work charges) is
  // skipped outright. Built once before probing, from the same precomputed
  // hashes at every thread count — output and meters stay byte-identical.
  BlockedBloomFilter bloom(build.NumRows());
  for (std::size_t h : build_hash) bloom.Add(h);
  HashChainIndex table(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    table.Insert(build_hash[r], r);
  }

  auto probe_range = [&](std::size_t lo, std::size_t hi,
                         Relation* sink) -> Status {
    std::vector<Value> row(out.arity());
    std::size_t bloom_skipped = 0;
    for (std::size_t p = lo; p < hi; ++p) {
      auto probe_row = probe.Row(p);
      auto emit = [&](std::size_t b) -> Status {
        auto build_row = build.Row(b);
        auto lrow = build_left ? build_row : probe_row;
        auto rrow = build_left ? probe_row : build_row;
        std::size_t i = 0;
        for (; i < left.arity(); ++i) row[i] = lrow[i];
        for (std::size_t r : right_only) row[i++] = rrow[r];
        Status st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        sink->AddRow(row);
        return Status::Ok();
      };
      if (lcols.empty()) {
        // Cross product: every build row matches.
        for (std::size_t b = 0; b < build.NumRows(); ++b) {
          Status st = ctx->ChargeWork(1);
          if (!st.ok()) return st;
          st = emit(b);
          if (!st.ok()) return st;
        }
        continue;
      }
      std::size_t h = probe_hash[p];
      if (!bloom.MayContain(h)) {
        ++bloom_skipped;
        continue;
      }
      for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
           it = table.Next(it)) {
        Status st = ctx->ChargeWork(1);
        if (!st.ok()) return st;
        if (build_hash[it] == h &&
            RowKeysEqual(build.Row(it), bcols, probe_row, pcols)) {
          st = emit(it);
          if (!st.ok()) return st;
        }
      }
    }
    if (!lcols.empty()) {
      // One add per probe batch keeps contention negligible.
      ctx->hash_probes.fetch_add(hi - lo, std::memory_order_relaxed);
      ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
    }
    return Status::Ok();
  };
  Status probe_status =
      UseParallel(ctx, probe.NumRows())
          ? ParallelAppend(ctx, probe.NumRows(), &out, op_span.id(),
                           probe_range)
          : probe_range(0, probe.NumRows(), &out);
  if (!probe_status.ok()) return probe_status;
  ctx->NotePeak(out);
  op_span.Attr("rows_out", out.NumRows());
  return out;
}

Result<Relation> NaturalNestedLoopJoin(const Relation& left,
                                       const Relation& right,
                                       ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.nl_join", ctx->SpanParent());
  op_span.Attr("rows_left", left.NumRows());
  op_span.Attr("rows_right", right.NumRows());
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;

  std::vector<Value> row(out.arity());
  for (std::size_t l = 0; l < left.NumRows(); ++l) {
    auto lrow = left.Row(l);
    for (std::size_t r = 0; r < right.NumRows(); ++r) {
      Status st = ctx->ChargeWork(1);
      if (!st.ok()) return st;
      auto rrow = right.Row(r);
      if (!RowKeysEqual(lrow, lcols, rrow, rcols)) continue;
      std::size_t i = 0;
      for (; i < left.arity(); ++i) row[i] = lrow[i];
      for (std::size_t rc : right_only) row[i++] = rrow[rc];
      st = ctx->ChargeRows(1);
      if (!st.ok()) return st;
      out.AddRow(row);
    }
  }
  ctx->NotePeak(out);
  op_span.Attr("rows_out", out.NumRows());
  return out;
}

Result<Relation> NaturalSortMergeJoin(const Relation& left,
                                      const Relation& right,
                                      ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.merge_join", ctx->SpanParent());
  op_span.Attr("rows_left", left.NumRows());
  op_span.Attr("rows_right", right.NumRows());
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  if (lcols.empty()) {
    // Cross product: no merge order exists; delegate to the hash join's
    // cross-product path.
    return NaturalHashJoin(left, right, ctx);
  }

  Relation sorted_left = left;
  Relation sorted_right = right;
  sorted_left.SortBy(lcols);
  sorted_right.SortBy(rcols);
  Status s = ctx->ChargeWork(left.NumRows() + right.NumRows());
  if (!s.ok()) return s;

  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;
  auto compare_keys = [&](std::size_t l, std::size_t r) {
    auto lrow = sorted_left.Row(l);
    auto rrow = sorted_right.Row(r);
    for (std::size_t i = 0; i < lcols.size(); ++i) {
      int cmp = lrow[lcols[i]].Compare(rrow[rcols[i]]);
      if (cmp != 0) return cmp;
    }
    return 0;
  };

  std::vector<Value> row(out.arity());
  std::size_t l = 0, r = 0;
  while (l < sorted_left.NumRows() && r < sorted_right.NumRows()) {
    int cmp = compare_keys(l, r);
    if (cmp < 0) {
      ++l;
      continue;
    }
    if (cmp > 0) {
      ++r;
      continue;
    }
    // Duplicate runs: emit the cross product of equal-key blocks.
    std::size_t l_end = l + 1;
    while (l_end < sorted_left.NumRows() &&
           RowKeysEqual(sorted_left.Row(l_end), lcols, sorted_left.Row(l),
                        lcols)) {
      ++l_end;
    }
    std::size_t r_end = r + 1;
    while (r_end < sorted_right.NumRows() &&
           RowKeysEqual(sorted_right.Row(r_end), rcols, sorted_right.Row(r),
                        rcols)) {
      ++r_end;
    }
    for (std::size_t li = l; li < l_end; ++li) {
      auto lrow = sorted_left.Row(li);
      for (std::size_t ri = r; ri < r_end; ++ri) {
        Status st = ctx->ChargeWork(1);
        if (!st.ok()) return st;
        auto rrow = sorted_right.Row(ri);
        std::size_t i = 0;
        for (; i < left.arity(); ++i) row[i] = lrow[i];
        for (std::size_t rc : right_only) row[i++] = rrow[rc];
        st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        out.AddRow(row);
      }
    }
    l = l_end;
    r = r_end;
  }
  ctx->NotePeak(out);
  op_span.Attr("rows_out", out.NumRows());
  return out;
}

Result<Relation> NaturalSemiJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx) {
  ScopedSpan op_span(ctx->tracer, "op.semijoin", ctx->SpanParent());
  op_span.Attr("rows_left", left.NumRows());
  op_span.Attr("rows_right", right.NumRows());
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{left.schema()};
  Status alloc = out.TryReserve(left.NumRows());
  if (!alloc.ok()) return alloc;
  if (lcols.empty()) {
    // Degenerate: keep left iff right nonempty.
    if (right.NumRows() == 0) return out;
    Status s = ctx->ChargeRows(left.NumRows());
    if (!s.ok()) return s;
    return left;
  }
  Status s = ctx->ChargeWork(left.NumRows() + right.NumRows());
  if (!s.ok()) return s;
  const std::size_t working_bytes = SemiJoinWorkingBytes(right, left);
  if (ctx->ShouldSpill(working_bytes)) {
    op_span.Attr("spilled", 1);
    auto spilled = GraceSemiJoin(left, right, lcols, rcols, ctx);
    if (spilled.ok()) op_span.Attr("rows_out", spilled->NumRows());
    return spilled;
  }
  ScopedTableMemory working(ctx, working_bytes);
  if (!working.status().ok()) return working.status();

  if (ctx->vectorized) {
    // Vectorized probe: same shape as the hash join's, but first match
    // wins and — like the row path — chain candidates charge no work (the
    // semijoin's work charge is the prolog's per-input-row charge). Matched
    // left rows are gathered as whole-row memcpys in probe order.
    KeyBlock rkey = BuildKeyBlock(right, rcols);
    KeyBlock lkey = BuildKeyBlock(left, lcols);
    BlockedBloomFilter bloom(right.NumRows());
    for (std::size_t h : rkey.hashes) bloom.Add(h);
    HashChainIndex table(right.NumRows());
    for (std::size_t r = 0; r < right.NumRows(); ++r) {
      table.Insert(rkey.hashes[r], r);
    }
    // Single-int64-key fast path, as in the hash join: payload equality is
    // exactly the hash check + KeyRowsEqual pair for this class.
    const bool key_i64 = rkey.cols.size() == 1 &&
                         rkey.cols[0].cls == ColumnClass::kI64 &&
                         lkey.cols[0].cls == ColumnClass::kI64;
    const int64_t* rkey_i64 = key_i64 ? rkey.cols[0].i64.data() : nullptr;
    const int64_t* lkey_i64 = key_i64 ? lkey.cols[0].i64.data() : nullptr;
    const bool parallel = UseParallel(ctx, left.NumRows());
    auto probe_batch = [&](std::size_t lo, std::size_t hi,
                           Relation* sink) -> Status {
      std::vector<uint32_t> matched;  // offsets in [lo, hi), ascending
      std::size_t bloom_skipped = 0;
      for (std::size_t l = lo; l < hi; ++l) {
        const std::size_t h = lkey.hashes[l];
        if (!bloom.MayContain(h)) {
          ++bloom_skipped;
          continue;
        }
        if (key_i64) {
          const int64_t key = lkey_i64[l];
          for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
               it = table.Next(it)) {
            if (rkey_i64[it] == key) {
              matched.push_back(static_cast<uint32_t>(l - lo));
              break;
            }
          }
          continue;
        }
        for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
             it = table.Next(it)) {
          if (rkey.hashes[it] == h && KeyRowsEqual(rkey, it, lkey, l)) {
            matched.push_back(static_cast<uint32_t>(l - lo));
            break;
          }
        }
      }
      ctx->batches.fetch_add(1, std::memory_order_relaxed);
      ctx->hash_probes.fetch_add(hi - lo, std::memory_order_relaxed);
      ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
      if (matched.empty()) return Status::Ok();
      Status st = ctx->ChargeRows(matched.size());
      if (!st.ok()) return st;
      const std::size_t stride = left.arity();
      if (!parallel) {
        // Same density-extrapolated reserve as the scan; a semijoin never
        // emits more rows than its left input.
        const std::size_t need = sink->NumRows() + matched.size();
        if (need > sink->CapacityRows()) {
          const auto projected = static_cast<std::size_t>(
              static_cast<double>(need) * static_cast<double>(left.NumRows()) /
              static_cast<double>(hi));
          sink->Reserve(std::min(left.NumRows(),
                                 std::max(need, projected + projected / 8)));
        }
      }
      Value* base = sink->AppendRaw(matched.size());
      for (std::size_t k = 0; k < matched.size(); ++k) {
        std::copy_n(left.RowPtr(lo + matched[k]), stride, base + k * stride);
      }
      return Status::Ok();
    };
    Status vec_status =
        UseParallel(ctx, left.NumRows())
            ? ParallelAppend(ctx, left.NumRows(), &out, op_span.id(),
                             probe_batch)
            : SerialBatches(left.NumRows(), &out, probe_batch);
    if (!vec_status.ok()) return vec_status;
    ctx->NotePeak(out);
    op_span.Attr("rows_out", out.NumRows());
    op_span.Attr("batches", NumBatches(left.NumRows()));
    return out;
  }

  std::vector<std::size_t> right_hash = PrecomputeKeyHashes(right, rcols, ctx);
  std::vector<std::size_t> left_hash = PrecomputeKeyHashes(left, lcols, ctx);
  // Bloom prefilter over the right-side hashes — the semijoin's selective
  // case (most left rows partnerless) resolves without touching the chain.
  BlockedBloomFilter bloom(right.NumRows());
  for (std::size_t h : right_hash) bloom.Add(h);
  HashChainIndex table(right.NumRows());
  for (std::size_t r = 0; r < right.NumRows(); ++r) {
    table.Insert(right_hash[r], r);
  }
  auto probe_range = [&](std::size_t lo, std::size_t hi,
                         Relation* sink) -> Status {
    std::size_t bloom_skipped = 0;
    for (std::size_t l = lo; l < hi; ++l) {
      auto lrow = left.Row(l);
      std::size_t h = left_hash[l];
      if (!bloom.MayContain(h)) {
        ++bloom_skipped;
        continue;
      }
      for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
           it = table.Next(it)) {
        if (right_hash[it] == h &&
            RowKeysEqual(right.Row(it), rcols, lrow, lcols)) {
          Status st = ctx->ChargeRows(1);
          if (!st.ok()) return st;
          sink->AddRow(lrow);
          break;
        }
      }
    }
    ctx->hash_probes.fetch_add(hi - lo, std::memory_order_relaxed);
    ctx->bloom_skips.fetch_add(bloom_skipped, std::memory_order_relaxed);
    return Status::Ok();
  };
  Status probe_status =
      UseParallel(ctx, left.NumRows())
          ? ParallelAppend(ctx, left.NumRows(), &out, op_span.id(),
                           probe_range)
          : probe_range(0, left.NumRows(), &out);
  if (!probe_status.ok()) return probe_status;
  ctx->NotePeak(out);
  op_span.Attr("rows_out", out.NumRows());
  return out;
}

namespace internal {

Status MergeRowsByTag(const Relation& rows, const std::vector<uint64_t>& tags,
                      Relation* out, ExecContext* ctx) {
  const std::size_t n = tags.size();
  Status alloc = out->TryReserve(rows.NumRows());
  if (!alloc.ok()) return alloc;
  if (n == 0) {
    ctx->NotePeak(*out);
    return Status::Ok();
  }
  uint64_t max_tag = 0;
  for (uint64_t t : tags) max_tag = std::max(max_tag, t);
  std::vector<std::size_t> order(n);
  if (max_tag > uint64_t{8} * n + 1024) {
    // Sparse tag range: the offset table would dwarf the payload; fall back
    // to the comparison sort.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tags[a] < tags[b];
                     });
  } else {
    // Dense tags (the spill kernels emit probe-row indices): one counting
    // pass, a prefix sum, and stable placement — O(n + max_tag) with no
    // comparator calls.
    std::vector<std::size_t> offsets(static_cast<std::size_t>(max_tag) + 2, 0);
    for (uint64_t t : tags) ++offsets[static_cast<std::size_t>(t) + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    for (std::size_t i = 0; i < n; ++i) {
      order[offsets[static_cast<std::size_t>(tags[i])]++] = i;
    }
  }
  for (std::size_t idx : order) out->AddRow(rows.Row(idx));
  ctx->NotePeak(*out);
  return Status::Ok();
}

}  // namespace internal

}  // namespace htqo

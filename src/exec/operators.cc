#include "exec/operators.h"

#include <algorithm>
#include <functional>

#include "util/hash_chain.h"

namespace htqo {

namespace {

// Minimum input size before an operator fans out onto the pool; below this
// the chunk bookkeeping costs more than it buys.
constexpr std::size_t kParallelRowThreshold = 2048;
// Rows per chunk. Chunk boundaries never affect results: per-chunk outputs
// are concatenated in chunk order, which equals serial row order.
constexpr std::size_t kParallelGrain = 1024;

bool UseParallel(const ExecContext* ctx, std::size_t rows) {
  return ctx->parallel() && rows >= kParallelRowThreshold;
}

// Key hash of every row in one pass (parallel when the context allows).
// Precomputing hashes into a flat array keeps Value::Hash out of the probe
// loops entirely and doubles as the cheap prefilter on chain candidates.
// Hash computation is not charged, so this changes no budget accounting.
std::vector<std::size_t> PrecomputeKeyHashes(
    const Relation& rel, const std::vector<std::size_t>& cols,
    ExecContext* ctx) {
  std::vector<std::size_t> hashes(rel.NumRows());
  auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      hashes[r] = HashRowKey(rel.Row(r), cols);
    }
  };
  if (UseParallel(ctx, rel.NumRows())) {
    ctx->pool->ParallelFor(0, rel.NumRows(), kParallelGrain, ctx->num_threads,
                           ctx->governor, fill);
  } else {
    fill(0, rel.NumRows());
  }
  return hashes;
}

// Runs range_body(lo, hi, sink) over [0, total) on the context's pool and
// appends the per-chunk sinks to `out` in chunk order — byte-identical to
// range_body(0, total, out) on one thread. Errors surface as the failing
// chunk with the lowest index (serial order), and a governor trip during
// the loop surfaces as the trip status even when chunks were skipped.
Status ParallelAppend(
    ExecContext* ctx, std::size_t total, Relation* out,
    const std::function<Status(std::size_t, std::size_t, Relation*)>&
        range_body) {
  const std::size_t num_chunks =
      (total + kParallelGrain - 1) / kParallelGrain;
  std::vector<Relation> chunk_out(num_chunks, Relation{out->schema()});
  std::vector<Status> chunk_status(num_chunks, Status::Ok());
  ctx->pool->ParallelFor(
      0, total, kParallelGrain, ctx->num_threads, ctx->governor,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t c = lo / kParallelGrain;
        chunk_status[c] = range_body(lo, hi, &chunk_out[c]);
      });
  if (ctx->governor != nullptr && ctx->governor->exhausted()) {
    return ctx->governor->trip_status();
  }
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (!chunk_status[c].ok()) return chunk_status[c];
  }
  for (const Relation& chunk : chunk_out) out->AppendFrom(chunk);
  return Status::Ok();
}

// Shared column names of two schemas, with their indices on both sides.
void SharedColumns(const Schema& left, const Schema& right,
                   std::vector<std::size_t>* lcols,
                   std::vector<std::size_t>* rcols,
                   std::vector<std::size_t>* right_only) {
  for (std::size_t r = 0; r < right.arity(); ++r) {
    auto l = left.IndexOf(right.column(r).name);
    if (l) {
      lcols->push_back(*l);
      rcols->push_back(r);
    } else {
      right_only->push_back(r);
    }
  }
}

Schema JoinedSchema(const Schema& left, const Schema& right,
                    const std::vector<std::size_t>& right_only) {
  std::vector<Column> cols = left.columns();
  for (std::size_t r : right_only) cols.push_back(right.column(r));
  return Schema(std::move(cols));
}

}  // namespace

std::vector<std::size_t> IndicesOf(const Relation& rel,
                                   const std::vector<std::string>& names) {
  std::vector<std::size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    auto idx = rel.schema().IndexOf(n);
    HTQO_CHECK(idx.has_value());
    out.push_back(*idx);
  }
  return out;
}

Relation ProjectByName(const Relation& rel,
                       const std::vector<std::string>& columns,
                       bool distinct) {
  Relation projected = rel.Project(IndicesOf(rel, columns));
  return distinct ? projected.Distinct() : projected;
}

Result<Relation> ScanAtom(const ResolvedQuery& rq, std::size_t atom_index,
                          const Catalog& catalog, ExecContext* ctx) {
  const Atom& atom = rq.cq.atoms[atom_index];
  auto base = catalog.Get(atom.relation);
  if (!base.ok()) return base.status();
  const Relation& rel = **base;

  // Output columns: one per distinct variable (first binding wins), tid last.
  std::vector<VarId> vars = atom.Vars();
  std::vector<Column> cols;
  std::vector<std::size_t> source_col;  // base column per output var; tid = -1
  constexpr std::size_t kTid = static_cast<std::size_t>(-1);
  for (VarId v : vars) {
    if (atom.has_tid && v == atom.tid_var) {
      cols.push_back(Column{rq.cq.vars[v].name, ValueType::kInt64});
      source_col.push_back(kTid);
      continue;
    }
    for (const AtomBinding& b : atom.bindings) {
      if (b.var == v) {
        cols.push_back(
            Column{rq.cq.vars[v].name, rel.schema().column(b.column).type});
        source_col.push_back(b.column);
        break;
      }
    }
  }
  Relation out{Schema(std::move(cols))};
  Status alloc = out.TryReserve(rel.NumRows());
  if (!alloc.ok()) return alloc;

  auto scan_range = [&](std::size_t lo, std::size_t hi,
                        Relation* sink) -> Status {
    std::vector<Value> row(source_col.size());
    for (std::size_t r = lo; r < hi; ++r) {
      Status work = ctx->ChargeWork(1);
      if (!work.ok()) return work;
      auto src = rel.Row(r);
      bool pass = true;
      for (const AtomFilter& f : atom.filters) {
        if (!f.Matches(src[f.column])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      for (const LocalComparison& c : atom.local_comparisons) {
        if (!EvalCompare(c.op, src[c.lcolumn], src[c.rcolumn])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      // Intra-atom variable equality: every binding of a var must agree.
      for (const AtomBinding& b : atom.bindings) {
        std::size_t first_col = b.column;
        for (const AtomBinding& b2 : atom.bindings) {
          if (b2.var == b.var && b2.column != first_col &&
              src[b2.column].Compare(src[first_col]) != 0) {
            pass = false;
            break;
          }
        }
        if (!pass) break;
      }
      if (!pass) continue;
      for (std::size_t i = 0; i < source_col.size(); ++i) {
        row[i] = source_col[i] == kTid ? Value::Int64(static_cast<int64_t>(r))
                                       : src[source_col[i]];
      }
      Status s = ctx->ChargeRows(1);
      if (!s.ok()) return s;
      sink->AddRow(row);
    }
    return Status::Ok();
  };
  Status scan = UseParallel(ctx, rel.NumRows())
                    ? ParallelAppend(ctx, rel.NumRows(), &out, scan_range)
                    : scan_range(0, rel.NumRows(), &out);
  if (!scan.ok()) return scan;
  ctx->NotePeak(out.NumRows());
  return out;
}

Result<Relation> NaturalHashJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx) {
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;

  // Build on the smaller input.
  const bool build_left = left.NumRows() <= right.NumRows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<std::size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<std::size_t>& pcols = build_left ? rcols : lcols;

  Status s = ctx->ChargeWork(build.NumRows() + probe.NumRows());
  if (!s.ok()) return s;

  // Both sides' key hashes up front; the build table is then pure pointer
  // writes and the probe loop never calls Value::Hash. The table is built
  // once and probed read-only from all lanes, so chain iteration order —
  // and with it every per-candidate work charge and per-probe match order —
  // is identical at any thread count.
  std::vector<std::size_t> build_hash = PrecomputeKeyHashes(build, bcols, ctx);
  std::vector<std::size_t> probe_hash =
      lcols.empty() ? std::vector<std::size_t>{}
                    : PrecomputeKeyHashes(probe, pcols, ctx);
  HashChainIndex table(build.NumRows());
  for (std::size_t r = 0; r < build.NumRows(); ++r) {
    table.Insert(build_hash[r], r);
  }

  auto probe_range = [&](std::size_t lo, std::size_t hi,
                         Relation* sink) -> Status {
    std::vector<Value> row(out.arity());
    for (std::size_t p = lo; p < hi; ++p) {
      auto probe_row = probe.Row(p);
      auto emit = [&](std::size_t b) -> Status {
        auto build_row = build.Row(b);
        auto lrow = build_left ? build_row : probe_row;
        auto rrow = build_left ? probe_row : build_row;
        std::size_t i = 0;
        for (; i < left.arity(); ++i) row[i] = lrow[i];
        for (std::size_t r : right_only) row[i++] = rrow[r];
        Status st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        sink->AddRow(row);
        return Status::Ok();
      };
      if (lcols.empty()) {
        // Cross product: every build row matches.
        for (std::size_t b = 0; b < build.NumRows(); ++b) {
          Status st = ctx->ChargeWork(1);
          if (!st.ok()) return st;
          st = emit(b);
          if (!st.ok()) return st;
        }
        continue;
      }
      std::size_t h = probe_hash[p];
      for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
           it = table.Next(it)) {
        Status st = ctx->ChargeWork(1);
        if (!st.ok()) return st;
        if (build_hash[it] == h &&
            RowKeysEqual(build.Row(it), bcols, probe_row, pcols)) {
          st = emit(it);
          if (!st.ok()) return st;
        }
      }
    }
    return Status::Ok();
  };
  Status probe_status =
      UseParallel(ctx, probe.NumRows())
          ? ParallelAppend(ctx, probe.NumRows(), &out, probe_range)
          : probe_range(0, probe.NumRows(), &out);
  if (!probe_status.ok()) return probe_status;
  ctx->NotePeak(out.NumRows());
  return out;
}

Result<Relation> NaturalNestedLoopJoin(const Relation& left,
                                       const Relation& right,
                                       ExecContext* ctx) {
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;

  std::vector<Value> row(out.arity());
  for (std::size_t l = 0; l < left.NumRows(); ++l) {
    auto lrow = left.Row(l);
    for (std::size_t r = 0; r < right.NumRows(); ++r) {
      Status st = ctx->ChargeWork(1);
      if (!st.ok()) return st;
      auto rrow = right.Row(r);
      if (!RowKeysEqual(lrow, lcols, rrow, rcols)) continue;
      std::size_t i = 0;
      for (; i < left.arity(); ++i) row[i] = lrow[i];
      for (std::size_t rc : right_only) row[i++] = rrow[rc];
      st = ctx->ChargeRows(1);
      if (!st.ok()) return st;
      out.AddRow(row);
    }
  }
  ctx->NotePeak(out.NumRows());
  return out;
}

Result<Relation> NaturalSortMergeJoin(const Relation& left,
                                      const Relation& right,
                                      ExecContext* ctx) {
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  if (lcols.empty()) {
    // Cross product: no merge order exists; delegate to the hash join's
    // cross-product path.
    return NaturalHashJoin(left, right, ctx);
  }

  Relation sorted_left = left;
  Relation sorted_right = right;
  sorted_left.SortBy(lcols);
  sorted_right.SortBy(rcols);
  Status s = ctx->ChargeWork(left.NumRows() + right.NumRows());
  if (!s.ok()) return s;

  Relation out{JoinedSchema(left.schema(), right.schema(), right_only)};
  Status alloc = out.TryReserve(std::max(left.NumRows(), right.NumRows()));
  if (!alloc.ok()) return alloc;
  auto compare_keys = [&](std::size_t l, std::size_t r) {
    auto lrow = sorted_left.Row(l);
    auto rrow = sorted_right.Row(r);
    for (std::size_t i = 0; i < lcols.size(); ++i) {
      int cmp = lrow[lcols[i]].Compare(rrow[rcols[i]]);
      if (cmp != 0) return cmp;
    }
    return 0;
  };

  std::vector<Value> row(out.arity());
  std::size_t l = 0, r = 0;
  while (l < sorted_left.NumRows() && r < sorted_right.NumRows()) {
    int cmp = compare_keys(l, r);
    if (cmp < 0) {
      ++l;
      continue;
    }
    if (cmp > 0) {
      ++r;
      continue;
    }
    // Duplicate runs: emit the cross product of equal-key blocks.
    std::size_t l_end = l + 1;
    while (l_end < sorted_left.NumRows() &&
           RowKeysEqual(sorted_left.Row(l_end), lcols, sorted_left.Row(l),
                        lcols)) {
      ++l_end;
    }
    std::size_t r_end = r + 1;
    while (r_end < sorted_right.NumRows() &&
           RowKeysEqual(sorted_right.Row(r_end), rcols, sorted_right.Row(r),
                        rcols)) {
      ++r_end;
    }
    for (std::size_t li = l; li < l_end; ++li) {
      auto lrow = sorted_left.Row(li);
      for (std::size_t ri = r; ri < r_end; ++ri) {
        Status st = ctx->ChargeWork(1);
        if (!st.ok()) return st;
        auto rrow = sorted_right.Row(ri);
        std::size_t i = 0;
        for (; i < left.arity(); ++i) row[i] = lrow[i];
        for (std::size_t rc : right_only) row[i++] = rrow[rc];
        st = ctx->ChargeRows(1);
        if (!st.ok()) return st;
        out.AddRow(row);
      }
    }
    l = l_end;
    r = r_end;
  }
  ctx->NotePeak(out.NumRows());
  return out;
}

Result<Relation> NaturalSemiJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx) {
  std::vector<std::size_t> lcols, rcols, right_only;
  SharedColumns(left.schema(), right.schema(), &lcols, &rcols, &right_only);
  Relation out{left.schema()};
  Status alloc = out.TryReserve(left.NumRows());
  if (!alloc.ok()) return alloc;
  if (lcols.empty()) {
    // Degenerate: keep left iff right nonempty.
    if (right.NumRows() == 0) return out;
    Status s = ctx->ChargeRows(left.NumRows());
    if (!s.ok()) return s;
    return left;
  }
  Status s = ctx->ChargeWork(left.NumRows() + right.NumRows());
  if (!s.ok()) return s;
  std::vector<std::size_t> right_hash = PrecomputeKeyHashes(right, rcols, ctx);
  std::vector<std::size_t> left_hash = PrecomputeKeyHashes(left, lcols, ctx);
  HashChainIndex table(right.NumRows());
  for (std::size_t r = 0; r < right.NumRows(); ++r) {
    table.Insert(right_hash[r], r);
  }
  auto probe_range = [&](std::size_t lo, std::size_t hi,
                         Relation* sink) -> Status {
    for (std::size_t l = lo; l < hi; ++l) {
      auto lrow = left.Row(l);
      std::size_t h = left_hash[l];
      for (uint32_t it = table.First(h); it != HashChainIndex::kEnd;
           it = table.Next(it)) {
        if (right_hash[it] == h &&
            RowKeysEqual(right.Row(it), rcols, lrow, lcols)) {
          Status st = ctx->ChargeRows(1);
          if (!st.ok()) return st;
          sink->AddRow(lrow);
          break;
        }
      }
    }
    return Status::Ok();
  };
  Status probe_status =
      UseParallel(ctx, left.NumRows())
          ? ParallelAppend(ctx, left.NumRows(), &out, probe_range)
          : probe_range(0, left.NumRows(), &out);
  if (!probe_status.ok()) return probe_status;
  ctx->NotePeak(out.NumRows());
  return out;
}

}  // namespace htqo

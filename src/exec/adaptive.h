// Mid-query re-planning controller (DESIGN.md §6h): the runtime half of the
// adaptive re-optimization loop.
//
// The q-HD evaluator computes one relation per decomposition node; with a
// ReplanController armed on the ExecContext, it (a) records the actual
// cardinality of every atom scan, (b) compares each finished node's actual
// row count against the cost model's estimate at the wave barrier, and
// (c) when an intermediate blows past its estimate by `blowup_factor`,
// checkpoints every completed node result and abandons the pass so
// HybridOptimizer can re-enter the decomposition search with the observed
// cardinalities pinned. The resumed pass reuses checkpoints whose subtree
// matches and recomputes the rest.
//
// Determinism: trips are decided at wave barriers on the coordinating
// thread, after every node of the wave finished — the completed-node set at
// a trip is exactly the union of the finished waves, identical at any
// thread count. Checkpoints are stored in node-index order, so the
// replan.checkpoint fault site sees the same hit sequence serial or
// parallel.
//
// Thread safety: NoteScanActual is called from pool lanes and locks; every
// other member is only touched by the coordinating thread (between waves or
// between evaluation passes) and is deliberately unlocked.

#ifndef HTQO_EXEC_ADAPTIVE_H_
#define HTQO_EXEC_ADAPTIVE_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "storage/relation.h"

namespace htqo {

class ReplanController {
 public:
  struct Options {
    // A node trips when actual > blowup_factor * max(estimate, 1).
    double blowup_factor = 4.0;
    // ... and actual >= min_rows: tiny intermediates never justify paying
    // for a second decomposition search.
    std::size_t min_rows = 1024;
  };

  // Checkpoint key: (sorted atom indices of the subtree's lambda union,
  // sorted chi variable ids). Both index the query's fixed atom/variable
  // numbering, so keys are stable across replans of one query, and the key
  // fully determines the node relation: every node projection is
  // set-semantics, so rel(p) = pi_chi(p)(join of the subtree's atoms).
  using CheckpointKey =
      std::pair<std::vector<std::size_t>, std::vector<std::size_t>>;

  explicit ReplanController(const Options& options) : options_(options) {}

  // Disarmed, the controller still records scans and serves checkpoints but
  // never trips — the state of the final (post-replan or fallback) pass.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  // Observed scan cardinality of atom `atom_index` (called by ScanAtom from
  // any pool lane; values are deterministic, re-scans just overwrite).
  void NoteScanActual(std::size_t atom_index, std::size_t rows);
  // Snapshot for pinning into the re-planning search's edge stats.
  std::map<std::size_t, std::size_t> ObservedEdgeRows() const;

  // Installs the per-node cardinality estimates of the tree about to be
  // evaluated and clears any previous trip.
  void BeginTree(std::vector<double> node_estimates);
  double NodeEstimate(std::size_t node) const {
    return node < estimates_.size() ? estimates_[node] : 0.0;
  }

  // Trip policy, consulted at the wave barrier for every finished node.
  bool ShouldTrip(std::size_t node, std::size_t actual_rows) const;

  void RecordTrip(std::size_t node, std::size_t actual_rows);
  bool tripped() const { return tripped_; }
  std::size_t tripped_node() const { return tripped_node_; }
  std::size_t tripped_actual() const { return tripped_actual_; }
  double tripped_estimate() const { return NodeEstimate(tripped_node_); }

  // Checkpoint store. Store consumes the relation; false means the
  // replan.checkpoint fault site fired and the node was dropped (it will be
  // recomputed). Take consumes the entry.
  bool StoreCheckpoint(CheckpointKey key, Relation rel);
  bool HasCheckpoint(const CheckpointKey& key) const {
    return checkpoints_.find(key) != checkpoints_.end();
  }
  std::optional<Relation> TakeCheckpoint(const CheckpointKey& key);

  std::size_t checkpoints_stored() const { return stored_; }
  std::size_t checkpoints_reused() const { return reused_; }
  std::size_t checkpoints_dropped() const { return dropped_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  bool armed_ = true;
  mutable std::mutex scan_mu_;  // guards observed_ only
  std::map<std::size_t, std::size_t> observed_;
  std::vector<double> estimates_;
  bool tripped_ = false;
  std::size_t tripped_node_ = 0;
  std::size_t tripped_actual_ = 0;
  std::map<CheckpointKey, Relation> checkpoints_;
  std::size_t stored_ = 0;
  std::size_t reused_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace htqo

#endif  // HTQO_EXEC_ADAPTIVE_H_

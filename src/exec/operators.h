// Physical operators. Every operator fully materializes its output and
// charges an ExecContext, whose budgets realize the paper's "does not
// terminate after 10 minutes" observations as deterministic DNF outcomes in
// the benchmark harness instead of wall-clock blow-ups.
//
// Column-naming convention: all intermediate relations carry one column per
// CQ variable, named with the variable's name. Joins are therefore natural
// joins on shared column names, and the q-HD evaluator's chi-projections are
// name-based projections.

#ifndef HTQO_EXEC_OPERATORS_H_
#define HTQO_EXEC_OPERATORS_H_

#include <limits>
#include <string>
#include <vector>

#include "cq/isolator.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

// Budget/accounting shared by one query execution. Counters saturate at
// SIZE_MAX instead of wrapping, so near-max budgets cannot be lapped.
struct ExecContext {
  // Max rows any single operator run may emit in total.
  std::size_t row_budget = std::numeric_limits<std::size_t>::max();
  // Max abstract work units (nested-loop probes, hash probes, scan rows).
  std::size_t work_budget = std::numeric_limits<std::size_t>::max();
  // Optional query governor: every charge is forwarded, so a wall-clock
  // deadline or cancellation also stops execution, not just the searches.
  // Borrowed; the owner (HybridOptimizer::RunResolved) clears it before the
  // context outlives the governor.
  ResourceGovernor* governor = nullptr;

  std::size_t rows_charged = 0;
  std::size_t work_charged = 0;
  // High-water mark of single-relation size, for reporting.
  std::size_t peak_rows = 0;

  Status ChargeRows(std::size_t rows) {
    rows_charged = SaturatingAdd(rows_charged, rows);
    if (rows_charged > row_budget) {
      return Status::ResourceExhausted("row budget exceeded");
    }
    if (governor != nullptr) return governor->ChargeExecution(rows);
    return Status::Ok();
  }
  Status ChargeWork(std::size_t work) {
    work_charged = SaturatingAdd(work_charged, work);
    if (work_charged > work_budget) {
      return Status::ResourceExhausted("work budget exceeded");
    }
    if (governor != nullptr) return governor->ChargeExecution(work);
    return Status::Ok();
  }
  void NotePeak(std::size_t rows) {
    peak_rows = std::max(peak_rows, rows);
    if (governor != nullptr) {
      governor->NotePeakMemory(rows * sizeof(Value));
    }
  }
};

// Scans the base relation of atom `atom_index` of `rq`: applies the atom's
// constant filters, local comparisons and intra-atom variable equalities,
// and projects to one column per bound variable (named after the variable;
// the synthetic tuple-id column holds the source row index).
Result<Relation> ScanAtom(const ResolvedQuery& rq, std::size_t atom_index,
                          const Catalog& catalog, ExecContext* ctx);

// Natural hash join on all shared column names (cross product when none).
// Output schema: left columns followed by right-only columns. Bag semantics.
Result<Relation> NaturalHashJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx);

// Same result as NaturalHashJoin, computed by nested loops — the execution
// regime of a misconfigured/statistics-less system.
Result<Relation> NaturalNestedLoopJoin(const Relation& left,
                                       const Relation& right,
                                       ExecContext* ctx);

// Same result as NaturalHashJoin, computed by sorting both inputs on the
// shared columns and merging (with cross products inside duplicate runs).
// The third classical join algorithm; cache-friendly on presorted inputs.
Result<Relation> NaturalSortMergeJoin(const Relation& left,
                                      const Relation& right,
                                      ExecContext* ctx);

// Rows of `left` having at least one natural-join partner in `right`.
Result<Relation> NaturalSemiJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx);

// Projects `rel` onto the named columns (in that order); unknown names are a
// checked failure. Deduplicates when `distinct`.
Relation ProjectByName(const Relation& rel,
                       const std::vector<std::string>& columns, bool distinct);

// Column indices of `names` within rel's schema (checked).
std::vector<std::size_t> IndicesOf(const Relation& rel,
                                   const std::vector<std::string>& names);

}  // namespace htqo

#endif  // HTQO_EXEC_OPERATORS_H_

// Physical operators. Every operator fully materializes its output and
// charges an ExecContext, whose budgets realize the paper's "does not
// terminate after 10 minutes" observations as deterministic DNF outcomes in
// the benchmark harness instead of wall-clock blow-ups.
//
// Column-naming convention: all intermediate relations carry one column per
// CQ variable, named with the variable's name. Joins are therefore natural
// joins on shared column names, and the q-HD evaluator's chi-projections are
// name-based projections.

#ifndef HTQO_EXEC_OPERATORS_H_
#define HTQO_EXEC_OPERATORS_H_

#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include "cq/isolator.h"
#include "exec/spill.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "util/governor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace htqo {

class ReplanController;
struct ShardRuntime;

// Budget/accounting shared by one query execution. Counters saturate at
// SIZE_MAX instead of wrapping, so near-max budgets cannot be lapped.
//
// Thread safety: the counters are atomic because the parallel join/semijoin
// kernels and tree-wave evaluators charge one shared context from every pool
// lane. Atomic saturating adds commute, so the totals — and therefore
// whether a budget trips — are identical at any thread count; only *which*
// charge call observes the crossing varies. Budgets are plain fields set
// before execution starts.
struct ExecContext {
  // Max rows any single operator run may emit in total.
  std::size_t row_budget = std::numeric_limits<std::size_t>::max();
  // Max abstract work units (nested-loop probes, hash probes, scan rows).
  std::size_t work_budget = std::numeric_limits<std::size_t>::max();
  // Optional query governor: every charge is forwarded, so a wall-clock
  // deadline or cancellation also stops execution, not just the searches.
  // Borrowed; the owner (HybridOptimizer::RunResolved) clears it before the
  // context outlives the governor.
  ResourceGovernor* governor = nullptr;
  // Parallel execution: nullptr (the default) keeps every operator on the
  // exact serial code path; a pool plus num_threads > 1 unlocks the
  // partitioned kernels. Borrowed from ThreadPool::Shared.
  ThreadPool* pool = nullptr;
  std::size_t num_threads = 1;
  // Memory-adaptive execution: with a SpillManager armed, an operator whose
  // projected working set would push live charged memory past
  // soft_memory_bytes takes the Grace-partitioned spill path instead of
  // materializing (and possibly hard-tripping the governor's memory budget)
  // in memory. Borrowed; cleared by the owner like `governor`.
  SpillManager* spill = nullptr;
  std::size_t soft_memory_bytes = std::numeric_limits<std::size_t>::max();
  // Tracing: null tracer = off (one branch per operator). `trace_parent` is
  // the span id operator spans attach to when the worker's thread-local
  // stack is empty (pool lanes); the wave dispatchers repoint it between
  // barrier waves. Borrowed like `governor`.
  Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;
  // Vectorized execution: operators process kBatchRows-sized columnar
  // batches with tight typed kernels instead of row-at-a-time Value loops.
  // Output, charge totals, and probe/bloom meters are byte-identical either
  // way (see exec/batch.h); the row path stays for differential testing.
  bool vectorized = true;
  // Adaptive mid-query re-planning (exec/adaptive.h): with a controller
  // armed, ScanAtom reports actual cardinalities and the q-HD evaluator
  // checks intermediates against their estimates at every wave barrier.
  // Borrowed like `governor`; nullptr (the default) keeps every operator on
  // the exact non-adaptive code path.
  ReplanController* replan = nullptr;
  // Sharded evaluation (exec/shard.h): with a runtime attached, the
  // Yannakakis/q-HD reduction passes run as a hash-partitioned semijoin
  // program with Bloom-filter exchange between shard pieces. Borrowed like
  // `governor`; nullptr (the default) keeps the single-shard code paths.
  // Replan-armed runs ignore it (replanning already owns the wave
  // barriers); sharding silently stays off there.
  ShardRuntime* shard = nullptr;

  std::atomic<std::size_t> rows_charged{0};
  std::atomic<std::size_t> work_charged{0};
  // High-water mark of single-relation size, for reporting.
  std::atomic<std::size_t> peak_rows{0};
  // Build-side probe count of the hash join/semijoin kernels (one add per
  // probe batch, not per row); feeds the htqo_hash_probes_per_query metric.
  std::atomic<std::size_t> hash_probes{0};
  // Probes the blocked Bloom filter resolved without a chain walk. A
  // deterministic function of the input data (the filter is built from the
  // same precomputed hashes at every thread count), so serial and parallel
  // runs report identical counts. Feeds htqo_bloom_skips_per_query.
  std::atomic<std::size_t> bloom_skips{0};
  // Columnar batches processed by the vectorized kernels; zero on the row
  // path. Feeds EXPLAIN ANALYZE per-operator batch counts and the
  // htqo_exec_batches_per_query metric. Deterministic at any thread count:
  // the parallel grain equals kBatchRows, so chunk boundaries match.
  std::atomic<std::size_t> batches{0};

  ExecContext() = default;
  // Copyable/assignable despite the atomics so QueryRun (which embeds one)
  // still moves through Result<T>. Only the owner copies, never a worker.
  ExecContext(const ExecContext& other) { *this = other; }
  ExecContext& operator=(const ExecContext& other) {
    row_budget = other.row_budget;
    work_budget = other.work_budget;
    governor = other.governor;
    pool = other.pool;
    num_threads = other.num_threads;
    spill = other.spill;
    soft_memory_bytes = other.soft_memory_bytes;
    tracer = other.tracer;
    trace_parent = other.trace_parent;
    vectorized = other.vectorized;
    replan = other.replan;
    shard = other.shard;
    rows_charged.store(other.rows_charged.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    work_charged.store(other.work_charged.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    peak_rows.store(other.peak_rows.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    hash_probes.store(other.hash_probes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    bloom_skips.store(other.bloom_skips.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    batches.store(other.batches.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  // Parent for an operator span: the innermost open span on this thread
  // (serial path and nested operators), else the cross-thread parent a
  // dispatcher left in `trace_parent` (pool lanes start with an empty
  // thread-local stack).
  uint64_t SpanParent() const {
    const uint64_t tls = Tracer::CurrentParent(tracer);
    return tls != 0 ? tls : trace_parent;
  }

  bool parallel() const { return pool != nullptr && num_threads > 1; }

  Status ChargeRows(std::size_t rows) {
    if (AtomicSaturatingAdd(&rows_charged, rows) > row_budget) {
      return Status::ResourceExhausted("row budget exceeded");
    }
    if (governor != nullptr) return governor->ChargeExecution(rows);
    return Status::Ok();
  }
  Status ChargeWork(std::size_t work) {
    if (AtomicSaturatingAdd(&work_charged, work) > work_budget) {
      return Status::ResourceExhausted("work budget exceeded");
    }
    if (governor != nullptr) return governor->ChargeExecution(work);
    return Status::Ok();
  }
  void NotePeak(std::size_t rows) {
    AtomicMax(&peak_rows, rows);
    if (governor != nullptr) {
      governor->NotePeakMemory(rows * sizeof(Value));
    }
  }
  // Relation-aware overload: reports the real footprint — tuple store plus
  // interned-string payload bytes (each distinct string counted once) — so
  // governor memory budgets reflect string-heavy relations, not just their
  // 16-byte handles. The row-count high-water mark is unchanged.
  void NotePeak(const Relation& rel) {
    AtomicMax(&peak_rows, rel.NumRows());
    if (governor != nullptr) {
      governor->NotePeakMemory(rel.FootprintBytes());
    }
  }

  // True when materializing `projected_bytes` more working set should take
  // the spill path: a manager is armed and the projection added to the
  // governor's live balance crosses the soft threshold.
  bool ShouldSpill(std::size_t projected_bytes) const {
    if (spill == nullptr) return false;
    std::size_t live =
        governor != nullptr ? governor->live_memory_bytes() : 0;
    return SaturatingAdd(live, projected_bytes) > soft_memory_bytes;
  }

  // Live-memory accounting for operator working sets (hash tables, loaded
  // spill partitions). Charge may trip the governor's hard memory budget;
  // Release credits the balance back when the working set is freed.
  Status ChargeTableMemory(std::size_t bytes) {
    if (governor == nullptr) return Status::Ok();
    return governor->ChargeMemory(bytes);
  }
  void ReleaseTableMemory(std::size_t bytes) {
    if (governor != nullptr) governor->ReleaseMemory(bytes);
  }
};

// RAII working-set charge: charges on construction (status() reports a
// governor trip), releases the same amount on destruction — every operator
// exit path, error or success, credits the governor back.
class ScopedTableMemory {
 public:
  ScopedTableMemory(ExecContext* ctx, std::size_t bytes)
      : ctx_(ctx), bytes_(bytes), status_(ctx->ChargeTableMemory(bytes)) {}
  ~ScopedTableMemory() { ctx_->ReleaseTableMemory(bytes_); }
  ScopedTableMemory(const ScopedTableMemory&) = delete;
  ScopedTableMemory& operator=(const ScopedTableMemory&) = delete;

  const Status& status() const { return status_; }

 private:
  ExecContext* ctx_;
  std::size_t bytes_;
  Status status_;
};

// Scans the base relation of atom `atom_index` of `rq`: applies the atom's
// constant filters, local comparisons and intra-atom variable equalities,
// and projects to one column per bound variable (named after the variable;
// the synthetic tuple-id column holds the source row index).
Result<Relation> ScanAtom(const ResolvedQuery& rq, std::size_t atom_index,
                          const Catalog& catalog, ExecContext* ctx);

// Natural hash join on all shared column names (cross product when none).
// Output schema: left columns followed by right-only columns. Bag semantics.
Result<Relation> NaturalHashJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx);

// Same result as NaturalHashJoin, computed by nested loops — the execution
// regime of a misconfigured/statistics-less system.
Result<Relation> NaturalNestedLoopJoin(const Relation& left,
                                       const Relation& right,
                                       ExecContext* ctx);

// Same result as NaturalHashJoin, computed by sorting both inputs on the
// shared columns and merging (with cross products inside duplicate runs).
// The third classical join algorithm; cache-friendly on presorted inputs.
Result<Relation> NaturalSortMergeJoin(const Relation& left,
                                      const Relation& right,
                                      ExecContext* ctx);

// Rows of `left` having at least one natural-join partner in `right`.
Result<Relation> NaturalSemiJoin(const Relation& left, const Relation& right,
                                 ExecContext* ctx);

// Projects `rel` onto the named columns (in that order); unknown names are a
// checked failure. Deduplicates when `distinct`.
Relation ProjectByName(const Relation& rel,
                       const std::vector<std::string>& columns, bool distinct);

// Context-aware variant used at the hot q-HD/Yannakakis call sites: the
// distinct pass goes through SpillableDistinct below, so a projection whose
// dedup working set crosses the soft memory threshold spills instead of
// materializing its hash index in memory. Same rows, same order.
Result<Relation> ProjectByName(const Relation& rel,
                               const std::vector<std::string>& columns,
                               bool distinct, ExecContext* ctx);

// Relation::Distinct with working-set accounting and a Grace-partitioned
// spill path — byte-identical to Distinct() (first occurrence of every row,
// in input order) whether or not it spills.
Result<Relation> SpillableDistinct(const Relation& rel, ExecContext* ctx);

// Column indices of `names` within rel's schema (checked).
std::vector<std::size_t> IndicesOf(const Relation& rel,
                                   const std::vector<std::string>& names);

namespace internal {

// Stable reorder of `rows` into `out` by ascending tag (tags[i] tags
// rows.Row(i); equal tags keep their input order). The spill paths use this
// to reassemble partitioned output in serial emission order. Tags there are
// probe-row indices — dense in [0, probe rows) — so placement runs as a
// counting sort (one counting pass + prefix sum) instead of an O(n log n)
// comparison sort, falling back to stable_sort only when the tag range is
// too sparse for the offset table to pay off. Exposed for bench_operators.
Status MergeRowsByTag(const Relation& rows, const std::vector<uint64_t>& tags,
                      Relation* out, ExecContext* ctx);

}  // namespace internal

}  // namespace htqo

#endif  // HTQO_EXEC_OPERATORS_H_

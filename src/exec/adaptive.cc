#include "exec/adaptive.h"

#include <algorithm>

#include "util/fault_injector.h"

namespace htqo {

void ReplanController::NoteScanActual(std::size_t atom_index,
                                      std::size_t rows) {
  std::lock_guard<std::mutex> lock(scan_mu_);
  observed_[atom_index] = rows;
}

std::map<std::size_t, std::size_t> ReplanController::ObservedEdgeRows() const {
  std::lock_guard<std::mutex> lock(scan_mu_);
  return observed_;
}

void ReplanController::BeginTree(std::vector<double> node_estimates) {
  estimates_ = std::move(node_estimates);
  tripped_ = false;
  tripped_node_ = 0;
  tripped_actual_ = 0;
}

bool ReplanController::ShouldTrip(std::size_t node,
                                  std::size_t actual_rows) const {
  if (!armed_ || tripped_) return false;
  if (actual_rows < options_.min_rows) return false;
  const double estimate = std::max(1.0, NodeEstimate(node));
  return static_cast<double>(actual_rows) > options_.blowup_factor * estimate;
}

void ReplanController::RecordTrip(std::size_t node, std::size_t actual_rows) {
  tripped_ = true;
  tripped_node_ = node;
  tripped_actual_ = actual_rows;
}

bool ReplanController::StoreCheckpoint(CheckpointKey key, Relation rel) {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteReplanCheckpoint)) {
    ++dropped_;
    return false;
  }
  checkpoints_[std::move(key)] = std::move(rel);
  ++stored_;
  return true;
}

std::optional<Relation> ReplanController::TakeCheckpoint(
    const CheckpointKey& key) {
  auto it = checkpoints_.find(key);
  if (it == checkpoints_.end()) return std::nullopt;
  Relation rel = std::move(it->second);
  checkpoints_.erase(it);
  ++reused_;
  return rel;
}

}  // namespace htqo

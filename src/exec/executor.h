// Final-stage execution: step (4) of the paper's pipeline. Takes the CQ
// answer relation (one column per output variable) and evaluates the SQL
// surface on top: SELECT expressions, aggregates with GROUP BY, DISTINCT,
// and ORDER BY.

#ifndef HTQO_EXEC_EXECUTOR_H_
#define HTQO_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "cq/isolator.h"
#include "exec/operators.h"
#include "storage/relation.h"
#include "util/status.h"

namespace htqo {

// Projects a (bag-semantics) join result onto the output variables of the
// CQ and deduplicates: turns a baseline join plan's output into the
// canonical CQ answer relation (columns named after out(Q) variables, in
// out(Q) order).
Result<Relation> ProjectToOutputVars(const ResolvedQuery& rq,
                                     const Relation& join_result,
                                     ExecContext* ctx);

// The empty CQ answer relation (used when always_false).
Relation EmptyAnswer(const ResolvedQuery& rq);

// Evaluates the SELECT list over the CQ answer relation `answer` (whose
// columns must be the out(Q) variables by name): computes expressions, runs
// aggregation/GROUP BY when present, applies DISTINCT and ORDER BY. Output
// columns are named by select-item alias, else by the referenced column
// name, else "col<i>" (uniquified).
Result<Relation> EvaluateSelectOutput(const ResolvedQuery& rq,
                                      const Relation& answer,
                                      ExecContext* ctx);

}  // namespace htqo

#endif  // HTQO_EXEC_EXECUTOR_H_

// Join trees / join forests for acyclic hypergraphs (Section 2).
//
// Construction uses the Bernstein–Goodman theorem: a hypergraph is acyclic
// iff every maximum-weight spanning tree of its intersection graph (edge
// weight = number of shared variables) is a join tree. We build one maximal
// spanning forest and verify the running-intersection property; verification
// failure means the hypergraph is cyclic.

#ifndef HTQO_HYPERGRAPH_JOIN_TREE_H_
#define HTQO_HYPERGRAPH_JOIN_TREE_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htqo {

struct JoinForest {
  // parent[e] = parent edge index in the forest, or kNoParent for roots.
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent;
  std::vector<std::size_t> roots;

  std::vector<std::size_t> ChildrenOf(std::size_t e) const;
};

// Builds a join forest for `h`; NotFound when `h` is cyclic.
Result<JoinForest> BuildJoinForest(const Hypergraph& h);

// Verifies the connectedness (running intersection) property: for every
// pair of edges, their shared variables occur in every edge on the forest
// path between them.
bool VerifyJoinForest(const Hypergraph& h, const JoinForest& forest);

}  // namespace htqo

#endif  // HTQO_HYPERGRAPH_JOIN_TREE_H_

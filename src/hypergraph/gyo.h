// GYO (Graham / Yu–Özsoyoğlu) reduction: the classical linear-ish acyclicity
// test for hypergraphs. A hypergraph is acyclic iff repeatedly (a) removing
// vertices that occur in exactly one edge and (b) removing edges contained
// in another edge empties the edge set.

#ifndef HTQO_HYPERGRAPH_GYO_H_
#define HTQO_HYPERGRAPH_GYO_H_

#include "hypergraph/hypergraph.h"

namespace htqo {

// True when `h` is an acyclic hypergraph. Edgeless hypergraphs are acyclic.
bool IsAcyclic(const Hypergraph& h);

// True when the sub-hypergraph given by `edge_subset` is acyclic.
bool IsAcyclicSubset(const Hypergraph& h, const Bitset& edge_subset);

}  // namespace htqo

#endif  // HTQO_HYPERGRAPH_GYO_H_

#include "hypergraph/join_tree.h"

#include <algorithm>
#include <numeric>

namespace htqo {

std::vector<std::size_t> JoinForest::ChildrenOf(std::size_t e) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] == e) out.push_back(i);
  }
  return out;
}

namespace {

class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Result<JoinForest> BuildJoinForest(const Hypergraph& h) {
  const std::size_t m = h.NumEdges();
  JoinForest forest;
  forest.parent.assign(m, JoinForest::kNoParent);
  if (m == 0) return forest;

  // Kruskal on the intersection graph, heaviest first.
  struct Link {
    std::size_t a, b, weight;
  };
  std::vector<Link> links;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      std::size_t w = (h.edge(i) & h.edge(j)).Count();
      if (w > 0) links.push_back(Link{i, j, w});
    }
  }
  std::stable_sort(links.begin(), links.end(),
                   [](const Link& x, const Link& y) {
                     return x.weight > y.weight;
                   });

  DisjointSets sets(m);
  std::vector<std::vector<std::size_t>> adjacency(m);
  for (const Link& l : links) {
    if (sets.Union(l.a, l.b)) {
      adjacency[l.a].push_back(l.b);
      adjacency[l.b].push_back(l.a);
    }
  }

  // Root every connected component at its smallest edge index.
  std::vector<bool> visited(m, false);
  for (std::size_t r = 0; r < m; ++r) {
    if (visited[r]) continue;
    forest.roots.push_back(r);
    std::vector<std::size_t> stack{r};
    visited[r] = true;
    while (!stack.empty()) {
      std::size_t cur = stack.back();
      stack.pop_back();
      for (std::size_t next : adjacency[cur]) {
        if (!visited[next]) {
          visited[next] = true;
          forest.parent[next] = cur;
          stack.push_back(next);
        }
      }
    }
  }

  if (!VerifyJoinForest(h, forest)) {
    return Status::NotFound("hypergraph is cyclic: no join forest exists");
  }
  return forest;
}

bool VerifyJoinForest(const Hypergraph& h, const JoinForest& forest) {
  const std::size_t m = h.NumEdges();
  if (forest.parent.size() != m) return false;
  // For each variable, the edges containing it must form a connected subtree
  // of the forest — equivalent to the pairwise path property but linear to
  // check: count edges containing v and the tree-links (child,parent) where
  // both contain v; connected iff links == count - 1 within one component.
  for (std::size_t v = 0; v < h.NumVertices(); ++v) {
    std::size_t count = 0;
    std::size_t internal_links = 0;
    for (std::size_t e = 0; e < m; ++e) {
      if (!h.edge(e).Test(v)) continue;
      ++count;
      std::size_t p = forest.parent[e];
      if (p != JoinForest::kNoParent && h.edge(p).Test(v)) ++internal_links;
    }
    if (count > 0 && internal_links != count - 1) return false;
  }
  return true;
}

}  // namespace htqo

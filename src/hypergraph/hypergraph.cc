#include "hypergraph/hypergraph.h"

#include "util/strings.h"

namespace htqo {

Hypergraph::Hypergraph(std::size_t num_vertices,
                       std::vector<std::string> vertex_names,
                       std::vector<std::string> edge_names)
    : num_vertices_(num_vertices),
      vertex_names_(std::move(vertex_names)),
      edge_names_(std::move(edge_names)) {
  HTQO_CHECK(vertex_names_.size() == num_vertices_);
}

Hypergraph::Hypergraph(std::size_t num_vertices)
    : num_vertices_(num_vertices) {
  vertex_names_.reserve(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i) {
    vertex_names_.push_back("v" + std::to_string(i));
  }
}

std::size_t Hypergraph::AddEdge(const std::vector<std::size_t>& vertices) {
  Bitset e(num_vertices_);
  for (std::size_t v : vertices) {
    HTQO_CHECK(v < num_vertices_);
    e.Set(v);
  }
  return AddEdge(std::move(e));
}

std::size_t Hypergraph::AddEdge(Bitset vertices) {
  HTQO_CHECK(vertices.size() == num_vertices_);
  std::size_t idx = edges_.size();
  edges_.push_back(std::move(vertices));
  if (edge_names_.size() < edges_.size()) {
    edge_names_.push_back("e" + std::to_string(idx));
  }
  return idx;
}

Bitset Hypergraph::VarsOf(const Bitset& edge_set) const {
  HTQO_DCHECK(edge_set.size() == edges_.size());
  Bitset out(num_vertices_);
  for (std::size_t e = edge_set.FirstSet(); e < edge_set.size();
       e = edge_set.NextSet(e)) {
    out |= edges_[e];
  }
  return out;
}

Bitset Hypergraph::AllVertices() const {
  Bitset out(num_vertices_);
  for (std::size_t i = 0; i < num_vertices_; ++i) out.Set(i);
  return out;
}

Bitset Hypergraph::AllEdges() const {
  Bitset out(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) out.Set(i);
  return out;
}

std::vector<Bitset> Hypergraph::ComponentsOf(const Bitset& edge_subset,
                                             const Bitset& separator) const {
  std::vector<Bitset> components;
  Bitset remaining = edge_subset;
  // Drop edges entirely covered by the separator.
  for (std::size_t e = remaining.FirstSet(); e < remaining.size();
       e = remaining.NextSet(e)) {
    if (edges_[e].IsSubsetOf(separator)) remaining.Reset(e);
  }
  while (remaining.Any()) {
    std::size_t seed = remaining.FirstSet();
    Bitset comp = EmptyEdgeSet();
    comp.Set(seed);
    remaining.Reset(seed);
    Bitset frontier_vars = edges_[seed] - separator;
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t e = remaining.FirstSet(); e < remaining.size();
           e = remaining.NextSet(e)) {
        Bitset outside = edges_[e] - separator;
        if (outside.Intersects(frontier_vars)) {
          comp.Set(e);
          remaining.Reset(e);
          frontier_vars |= outside;
          grew = true;
        }
      }
    }
    components.push_back(std::move(comp));
  }
  return components;
}

Bitset Hypergraph::EdgesIntersecting(const Bitset& edge_subset,
                                     const Bitset& vars) const {
  Bitset out = EmptyEdgeSet();
  for (std::size_t e = edge_subset.FirstSet(); e < edge_subset.size();
       e = edge_subset.NextSet(e)) {
    if (edges_[e].Intersects(vars)) out.Set(e);
  }
  return out;
}

std::string Hypergraph::ToString() const {
  std::string out = "Hypergraph(" + std::to_string(num_vertices_) +
                    " vertices):\n";
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    std::vector<std::string> vars;
    for (std::size_t v : edges_[e].ToVector()) vars.push_back(vertex_names_[v]);
    out += "  " + edge_names_[e] + "(" + Join(vars, ",") + ")\n";
  }
  return out;
}

std::string Hypergraph::ToDot() const {
  std::string out = "graph hypergraph {\n";
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    out += "  v" + std::to_string(v) + " [label=\"" + vertex_names_[v] +
           "\" shape=ellipse];\n";
  }
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    out += "  e" + std::to_string(e) + " [label=\"" + edge_names_[e] +
           "\" shape=box style=filled fillcolor=lightgray];\n";
    for (std::size_t v : edges_[e].ToVector()) {
      out += "  e" + std::to_string(e) + " -- v" + std::to_string(v) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace htqo

// Canonical hypergraph labeling for the decomposition cache.
//
// Two conjunctive queries that differ only in alias/variable names (and in
// constants) have isomorphic labeled hypergraphs, and a (q-)hypertree
// decomposition depends only on that hypergraph plus the output-variable
// set — so a cache keyed by a canonical form of H(Q) turns repeated query
// templates into pure lookups. CanonicalizeHypergraph computes:
//
//   * a deterministic relabeling (vertex_to_canon / edge_to_canon and
//     inverses) such that any two isomorphic inputs — same structure, same
//     per-edge labels, same out-set image — map to the *same* canonical
//     graph;
//   * a canonical byte certificate describing that graph exactly (edge list
//     in canonical order, labels, out-set), used for collision-proof
//     equality; and
//   * a 128-bit fingerprint of the certificate for hashing/sharding.
//
// Algorithm: iterative WL-style color refinement on the bipartite
// vertex/edge incidence structure (exact signature comparison, no hash
// ranks), followed by an individualization tie-break search over the
// remaining symmetric color classes that keeps the lexicographically
// smallest certificate. The search is exact for the automorphism groups
// real queries exhibit; a deterministic leaf cap bounds pathological
// symmetric inputs — past the cap the labeling is still deterministic and
// self-consistent (a fingerprint never lies about its own certificate),
// the only cost is that two relabelings of such an input may land on
// different cache entries (a miss, never a wrong answer).

#ifndef HTQO_HYPERGRAPH_CANONICAL_H_
#define HTQO_HYPERGRAPH_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace htqo {

struct CanonicalForm {
  // vertex_to_canon[v] = canonical position of input vertex v; canon_to_vertex
  // is the inverse permutation. Likewise for edges.
  std::vector<std::size_t> vertex_to_canon;
  std::vector<std::size_t> canon_to_vertex;
  std::vector<std::size_t> edge_to_canon;
  std::vector<std::size_t> canon_to_edge;
  // Exact canonical description: isomorphic inputs (respecting labels and
  // out-set) produce byte-identical certificates.
  std::string certificate;
  // SplitMix-folded 128-bit hash of the certificate.
  uint64_t fingerprint_lo = 0;
  uint64_t fingerprint_hi = 0;
};

// Canonicalizes `h` with the vertex subset `out_vars` distinguished (the
// decomposition's rooting constraint) and one opaque label per edge
// (relation names, for the plan cache). `edge_labels` may be empty (all
// edges unlabeled) or must have one entry per edge.
CanonicalForm CanonicalizeHypergraph(const Hypergraph& h,
                                     const Bitset& out_vars,
                                     const std::vector<std::string>&
                                         edge_labels = {});

// 128-bit fingerprint of an arbitrary byte string (two independently seeded
// SplitMix64 streams folded over the input). Exposed for tests.
void Fingerprint128(const std::string& bytes, uint64_t* lo, uint64_t* hi);

}  // namespace htqo

#endif  // HTQO_HYPERGRAPH_CANONICAL_H_

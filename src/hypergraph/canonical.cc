#include "hypergraph/canonical.h"

#include <algorithm>
#include <utility>

namespace htqo {

namespace {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic cap on the individualization search: past this many leaf
// certificates the best-so-far wins. Real query hypergraphs refine to
// (near-)discrete partitions in one or two rounds; only adversarially
// symmetric inputs (identical-relation cliques) approach the cap.
constexpr std::size_t kMaxSearchLeaves = 512;

// Combined node space: vertices are nodes [0, V), edges are [V, V+E).
// Colors are dense ranks; refinement re-ranks by exact lexicographic
// signature order (no hashing), which is isomorphism-invariant.
struct Refiner {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::vector<std::vector<std::size_t>> adj;

  std::size_t NumNodes() const { return num_vertices + num_edges; }

  static std::size_t ReRank(
      const std::vector<std::vector<std::size_t>>& signatures,
      std::vector<std::size_t>* colors) {
    std::vector<std::size_t> order(signatures.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return signatures[a] < signatures[b];
              });
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && signatures[order[i]] != signatures[order[i - 1]]) {
        ++distinct;
      }
      (*colors)[order[i]] = distinct;
    }
    return signatures.empty() ? 0 : distinct + 1;
  }

  // Refines `colors` to the coarsest stable partition at least as fine as
  // the input. Signatures include the node's own color, so rounds only ever
  // split classes; the loop ends when a round splits nothing.
  void Refine(std::vector<std::size_t>* colors) const {
    const std::size_t n = NumNodes();
    std::size_t distinct = 0;
    {
      // Normalize the incoming colors to dense ranks.
      std::vector<std::vector<std::size_t>> sig(n);
      for (std::size_t i = 0; i < n; ++i) sig[i] = {(*colors)[i]};
      distinct = ReRank(sig, colors);
    }
    while (distinct < n) {
      std::vector<std::vector<std::size_t>> sig(n);
      for (std::size_t i = 0; i < n; ++i) {
        sig[i].reserve(adj[i].size() + 1);
        sig[i].push_back((*colors)[i]);
        for (std::size_t nb : adj[i]) sig[i].push_back((*colors)[nb]);
        std::sort(sig[i].begin() + 1, sig[i].end());
      }
      std::size_t next = ReRank(sig, colors);
      if (next == distinct) break;
      distinct = next;
    }
  }
};

struct SearchState {
  const Refiner* refiner = nullptr;
  const Hypergraph* h = nullptr;
  const Bitset* out_vars = nullptr;
  const std::vector<std::size_t>* label_ranks = nullptr;
  const std::vector<std::string>* labels_sorted = nullptr;
  std::size_t leaves_left = kMaxSearchLeaves;
  bool have_best = false;
  std::string best_certificate;
  std::vector<std::size_t> best_colors;
};

// Orders per-kind nodes by their (discrete) colors into canonical positions.
void DiscreteOrders(const Refiner& r, const std::vector<std::size_t>& colors,
                    std::vector<std::size_t>* canon_to_vertex,
                    std::vector<std::size_t>* canon_to_edge) {
  canon_to_vertex->resize(r.num_vertices);
  canon_to_edge->resize(r.num_edges);
  for (std::size_t v = 0; v < r.num_vertices; ++v) (*canon_to_vertex)[v] = v;
  for (std::size_t e = 0; e < r.num_edges; ++e) (*canon_to_edge)[e] = e;
  std::sort(canon_to_vertex->begin(), canon_to_vertex->end(),
            [&](std::size_t a, std::size_t b) {
              return colors[a] < colors[b];
            });
  std::sort(canon_to_edge->begin(), canon_to_edge->end(),
            [&](std::size_t a, std::size_t b) {
              return colors[r.num_vertices + a] <
                     colors[r.num_vertices + b];
            });
}

void AppendNumber(std::size_t n, std::string* out) {
  out->append(std::to_string(n));
}

// Serializes the canonical graph a discrete coloring induces. Byte-equal
// certificates mean byte-equal canonical graphs, so this is both the
// tie-break objective (keep the lexicographically smallest) and the cache's
// collision-proof comparison payload.
std::string BuildCertificate(const SearchState& st,
                             const std::vector<std::size_t>& colors) {
  const Refiner& r = *st.refiner;
  std::vector<std::size_t> canon_to_vertex, canon_to_edge;
  DiscreteOrders(r, colors, &canon_to_vertex, &canon_to_edge);
  std::vector<std::size_t> vertex_to_canon(r.num_vertices);
  for (std::size_t c = 0; c < canon_to_vertex.size(); ++c) {
    vertex_to_canon[canon_to_vertex[c]] = c;
  }

  std::string cert;
  cert.reserve(16 * (r.num_vertices + r.num_edges) + 32);
  cert.append("v");
  AppendNumber(r.num_vertices, &cert);
  cert.append("e");
  AppendNumber(r.num_edges, &cert);
  cert.append("|out:");
  std::vector<std::size_t> out_ids;
  if (st.out_vars->size() == r.num_vertices) {
    for (std::size_t v = st.out_vars->FirstSet(); v < st.out_vars->size();
         v = st.out_vars->NextSet(v)) {
      out_ids.push_back(vertex_to_canon[v]);
    }
  }
  std::sort(out_ids.begin(), out_ids.end());
  for (std::size_t id : out_ids) {
    AppendNumber(id, &cert);
    cert.push_back(',');
  }
  for (std::size_t c = 0; c < canon_to_edge.size(); ++c) {
    const std::size_t e = canon_to_edge[c];
    cert.push_back('|');
    if (st.label_ranks != nullptr && !st.labels_sorted->empty()) {
      cert.append((*st.labels_sorted)[(*st.label_ranks)[e]]);
    }
    cert.push_back(':');
    std::vector<std::size_t> members;
    const Bitset& edge = st.h->edge(e);
    for (std::size_t v = edge.FirstSet(); v < edge.size();
         v = edge.NextSet(v)) {
      members.push_back(vertex_to_canon[v]);
    }
    std::sort(members.begin(), members.end());
    for (std::size_t id : members) {
      AppendNumber(id, &cert);
      cert.push_back(',');
    }
  }
  return cert;
}

// Individualization-refinement: refine, then split the first (smallest-
// color) non-singleton class on each of its members in turn, keeping the
// lexicographically smallest leaf certificate. Exploring *every* member of
// the chosen class is what makes the result invariant under relabeling.
void Search(std::vector<std::size_t> colors, SearchState* st) {
  if (st->leaves_left == 0) return;
  st->refiner->Refine(&colors);
  const std::size_t n = st->refiner->NumNodes();
  // Locate the first non-singleton color class.
  std::vector<std::size_t> class_size(n, 0);
  for (std::size_t i = 0; i < n; ++i) ++class_size[colors[i]];
  std::size_t target_color = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (class_size[colors[i]] > 1 &&
        (target_color == n || colors[i] < target_color)) {
      target_color = colors[i];
    }
  }
  if (target_color == n) {  // discrete: a leaf
    --st->leaves_left;
    std::string cert = BuildCertificate(*st, colors);
    if (!st->have_best || cert < st->best_certificate) {
      st->have_best = true;
      st->best_certificate = std::move(cert);
      st->best_colors = std::move(colors);
    }
    return;
  }
  for (std::size_t m = 0; m < n && st->leaves_left > 0; ++m) {
    if (colors[m] != target_color) continue;
    std::vector<std::size_t> branch = colors;
    branch[m] = n;  // fresh color > every dense rank: individualized
    Search(std::move(branch), st);
  }
}

}  // namespace

void Fingerprint128(const std::string& bytes, uint64_t* lo, uint64_t* hi) {
  uint64_t a = 0x243f6a8885a308d3ull;
  uint64_t b = 0x13198a2e03707344ull;
  for (unsigned char c : bytes) {
    a = Mix64(a ^ c);
    b = Mix64(b + c);
  }
  *lo = Mix64(a ^ bytes.size());
  *hi = Mix64(b ^ (bytes.size() * 0x9e3779b97f4a7c15ull));
}

CanonicalForm CanonicalizeHypergraph(
    const Hypergraph& h, const Bitset& out_vars,
    const std::vector<std::string>& edge_labels) {
  Refiner refiner;
  refiner.num_vertices = h.NumVertices();
  refiner.num_edges = h.NumEdges();
  const std::size_t n = refiner.NumNodes();
  refiner.adj.resize(n);
  for (std::size_t e = 0; e < refiner.num_edges; ++e) {
    const Bitset& edge = h.edge(e);
    for (std::size_t v = edge.FirstSet(); v < edge.size();
         v = edge.NextSet(v)) {
      refiner.adj[v].push_back(refiner.num_vertices + e);
      refiner.adj[refiner.num_vertices + e].push_back(v);
    }
  }

  // Edge labels become isomorphism-invariant ranks (and the sorted label
  // list goes into the certificate, so distinct labelings never collide).
  std::vector<std::string> labels_sorted;
  std::vector<std::size_t> label_ranks(refiner.num_edges, 0);
  if (!edge_labels.empty()) {
    labels_sorted = edge_labels;
    std::sort(labels_sorted.begin(), labels_sorted.end());
    labels_sorted.erase(
        std::unique(labels_sorted.begin(), labels_sorted.end()),
        labels_sorted.end());
    for (std::size_t e = 0; e < refiner.num_edges; ++e) {
      label_ranks[e] = static_cast<std::size_t>(
          std::lower_bound(labels_sorted.begin(), labels_sorted.end(),
                           edge_labels[e]) -
          labels_sorted.begin());
    }
  }

  // Initial colors from invariant tuples: vertices by (out-membership,
  // degree), edges by (label rank, arity) — offset so the two kinds never
  // share a class.
  std::vector<std::vector<std::size_t>> init(n);
  const bool out_sized = out_vars.size() == refiner.num_vertices;
  for (std::size_t v = 0; v < refiner.num_vertices; ++v) {
    init[v] = {0, out_sized && out_vars.Test(v) ? std::size_t{1} : 0,
               refiner.adj[v].size()};
  }
  for (std::size_t e = 0; e < refiner.num_edges; ++e) {
    init[refiner.num_vertices + e] = {1, label_ranks[e],
                                      refiner.adj[refiner.num_vertices + e]
                                          .size()};
  }
  std::vector<std::size_t> colors(n, 0);
  Refiner::ReRank(init, &colors);

  SearchState st;
  st.refiner = &refiner;
  st.h = &h;
  st.out_vars = &out_vars;
  st.label_ranks = &label_ranks;
  st.labels_sorted = &labels_sorted;
  Search(std::move(colors), &st);

  CanonicalForm form;
  DiscreteOrders(refiner, st.best_colors, &form.canon_to_vertex,
                 &form.canon_to_edge);
  form.vertex_to_canon.resize(refiner.num_vertices);
  form.edge_to_canon.resize(refiner.num_edges);
  for (std::size_t c = 0; c < form.canon_to_vertex.size(); ++c) {
    form.vertex_to_canon[form.canon_to_vertex[c]] = c;
  }
  for (std::size_t c = 0; c < form.canon_to_edge.size(); ++c) {
    form.edge_to_canon[form.canon_to_edge[c]] = c;
  }
  form.certificate = std::move(st.best_certificate);
  Fingerprint128(form.certificate, &form.fingerprint_lo, &form.fingerprint_hi);
  return form;
}

}  // namespace htqo

#include "hypergraph/gyo.h"

namespace htqo {

bool IsAcyclicSubset(const Hypergraph& h, const Bitset& edge_subset) {
  // Working copies of the surviving edges.
  std::vector<Bitset> edges;
  for (std::size_t e = edge_subset.FirstSet(); e < edge_subset.size();
       e = edge_subset.NextSet(e)) {
    edges.push_back(h.edge(e));
  }
  if (edges.size() <= 1) return true;

  bool changed = true;
  while (changed) {
    changed = false;

    // (a) Remove vertices occurring in exactly one edge ("ears' private
    // vertices"). Count occurrences.
    std::vector<int> occurrences(h.NumVertices(), 0);
    for (const Bitset& e : edges) {
      for (std::size_t v = e.FirstSet(); v < e.size(); v = e.NextSet(v)) {
        ++occurrences[v];
      }
    }
    for (Bitset& e : edges) {
      for (std::size_t v = e.FirstSet(); v < e.size(); v = e.NextSet(v)) {
        if (occurrences[v] == 1) {
          e.Reset(v);
          changed = true;
        }
      }
    }

    // (b) Remove empty edges and edges contained in another edge.
    std::vector<Bitset> kept;
    kept.reserve(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].None()) {
        changed = true;
        continue;
      }
      bool contained = false;
      for (std::size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        // Break ties by index so two identical edges don't delete each other.
        if (edges[i] == edges[j] ? (i > j) : edges[i].IsSubsetOf(edges[j])) {
          contained = true;
          break;
        }
      }
      if (contained) {
        changed = true;
      } else {
        kept.push_back(edges[i]);
      }
    }
    edges = std::move(kept);
    if (edges.size() <= 1) return true;
  }
  return edges.size() <= 1;
}

bool IsAcyclic(const Hypergraph& h) {
  return IsAcyclicSubset(h, h.AllEdges());
}

}  // namespace htqo

// Query hypergraphs H(Q) = (V, E): one vertex per variable, one hyperedge
// per query atom (Section 2). Edges are identified by index, so two atoms
// with identical variable sets remain distinct edges — the paper's
// "fresh variable per atom" device is realized structurally.

#ifndef HTQO_HYPERGRAPH_HYPERGRAPH_H_
#define HTQO_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "util/bitset.h"

namespace htqo {

class Hypergraph {
 public:
  Hypergraph(std::size_t num_vertices, std::vector<std::string> vertex_names,
             std::vector<std::string> edge_names);

  // Convenience constructor with generated names (v0..., e0...).
  explicit Hypergraph(std::size_t num_vertices);

  std::size_t NumVertices() const { return num_vertices_; }
  std::size_t NumEdges() const { return edges_.size(); }

  // Adds an edge over the given vertex ids; returns its index.
  std::size_t AddEdge(const std::vector<std::size_t>& vertices);
  std::size_t AddEdge(Bitset vertices);

  const Bitset& edge(std::size_t i) const { return edges_[i]; }
  const std::vector<Bitset>& edges() const { return edges_; }

  const std::string& vertex_name(std::size_t v) const {
    return vertex_names_[v];
  }
  const std::string& edge_name(std::size_t e) const { return edge_names_[e]; }

  // Union of the vertex sets of the edges in `edge_set` (λ -> var(λ)).
  Bitset VarsOf(const Bitset& edge_set) const;

  // All-vertices / all-edges bitsets.
  Bitset AllVertices() const;
  Bitset AllEdges() const;

  // Empty bitset sized for vertices / edges.
  Bitset EmptyVertexSet() const { return Bitset(num_vertices_); }
  Bitset EmptyEdgeSet() const { return Bitset(edges_.size()); }

  // [S]-components (Section 3 / det-k-decomp): partitions the edges of
  // `edge_subset` that have at least one vertex outside `separator` into
  // maximal groups connected through vertices outside `separator`. Edges
  // entirely inside `separator` belong to no component (they are covered).
  std::vector<Bitset> ComponentsOf(const Bitset& edge_subset,
                                   const Bitset& separator) const;

  // Edges (within `edge_subset`) intersecting the vertex set `vars`.
  Bitset EdgesIntersecting(const Bitset& edge_subset, const Bitset& vars)
      const;

  std::string ToString() const;

  // Graphviz rendering: bipartite graph of variable nodes (circles) and
  // atom nodes (boxes).
  std::string ToDot() const;

 private:
  std::size_t num_vertices_;
  std::vector<Bitset> edges_;
  std::vector<std::string> vertex_names_;
  std::vector<std::string> edge_names_;
};

}  // namespace htqo

#endif  // HTQO_HYPERGRAPH_HYPERGRAPH_H_

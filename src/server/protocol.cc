#include "server/protocol.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "util/fault_injector.h"

namespace htqo {

namespace {

struct TypeName {
  FrameType type;
  const char* name;
};
constexpr TypeName kTypeNames[] = {
    {FrameType::kHello, "HELLO"},     {FrameType::kQuery, "QUERY"},
    {FrameType::kPing, "PING"},       {FrameType::kMetrics, "METRICS"},
    {FrameType::kDebug, "DEBUG"},     {FrameType::kQuit, "QUIT"},
    {FrameType::kOk, "OK"},           {FrameType::kErr, "ERR"},
    {FrameType::kBye, "BYE"},
};

}  // namespace

const char* FrameTypeName(FrameType type) {
  for (const TypeName& t : kTypeNames) {
    if (t.type == type) return t.name;
  }
  return "?";
}

const char* StatusCodeWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "internal";
}

StatusCode StatusCodeFromWireName(std::string_view name) {
  if (name == "ok") return StatusCode::kOk;
  if (name == "invalid-argument") return StatusCode::kInvalidArgument;
  if (name == "not-found") return StatusCode::kNotFound;
  if (name == "resource-exhausted") return StatusCode::kResourceExhausted;
  if (name == "deadline-exceeded") return StatusCode::kDeadlineExceeded;
  if (name == "data-loss") return StatusCode::kDataLoss;
  return StatusCode::kInternal;
}

std::string_view Frame::GetString(std::string_view key,
                                  std::string_view def) const {
  auto it = fields.find(key);
  return it == fields.end() ? def : std::string_view(it->second);
}

uint64_t Frame::GetUint(std::string_view key, uint64_t def) const {
  auto it = fields.find(key);
  if (it == fields.end()) return def;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return def;
  return static_cast<uint64_t>(v);
}

std::string Frame::Serialize() const {
  std::string out = FrameTypeName(type);
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  if (!payload.empty()) {
    out += " len=";
    out += std::to_string(payload.size());
  }
  out += '\n';
  out += payload;
  return out;
}

Status ParseFrameHeader(std::string_view line, Frame* frame,
                        std::size_t* payload_len) {
  frame->fields.clear();
  frame->payload.clear();
  *payload_len = 0;
  if (line.size() > kMaxHeaderBytes) {
    return Status::InvalidArgument("frame header exceeds " +
                                   std::to_string(kMaxHeaderBytes) + " bytes");
  }
  std::size_t sp = line.find(' ');
  std::string_view type_token = line.substr(0, sp);
  bool known = false;
  for (const TypeName& t : kTypeNames) {
    if (type_token == t.name) {
      frame->type = t.type;
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument("unknown frame type '" +
                                   std::string(type_token) + "'");
  }
  std::string_view rest = sp == std::string_view::npos ? "" : line.substr(sp);
  while (!rest.empty()) {
    if (rest[0] != ' ') {
      return Status::InvalidArgument("malformed frame fields");
    }
    rest.remove_prefix(1);
    std::size_t end = rest.find(' ');
    std::string_view field = rest.substr(0, end);
    rest = end == std::string_view::npos ? "" : rest.substr(end);
    std::size_t eq = field.find('=');
    if (eq == 0 || eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed field '" + std::string(field) +
                                     "' (expected key=value)");
    }
    std::string key(field.substr(0, eq));
    std::string value(field.substr(eq + 1));
    if (key == "len") {
      errno = 0;
      char* num_end = nullptr;
      unsigned long long n = std::strtoull(value.c_str(), &num_end, 10);
      if (errno != 0 || num_end == value.c_str() || *num_end != '\0') {
        return Status::InvalidArgument("malformed len field '" + value + "'");
      }
      if (n > kMaxPayloadBytes) {
        return Status::InvalidArgument(
            "frame payload of " + value + " bytes exceeds the " +
            std::to_string(kMaxPayloadBytes) + "-byte limit");
      }
      *payload_len = static_cast<std::size_t>(n);
    } else {
      frame->fields[std::move(key)] = std::move(value);
    }
  }
  return Status::Ok();
}

namespace {

// Waits for readability; kDeadlineExceeded on timeout, kInternal on error.
// `deadline_ms` <= 0 waits forever.
Status WaitReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::Internal(std::string("poll failed: ") +
                            std::strerror(errno));
  }
  if (rc == 0) return Status::DeadlineExceeded("read timed out");
  return Status::Ok();
}

// One recv into `buf`; kNotFound on EOF, kInternal on error/injected fault.
Status RecvSome(int fd, std::string* buf) {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteServerRead)) {
    return Status::Internal("injected fault at server.read");
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return Status::Internal(std::string("recv failed: ") +
                            std::strerror(errno));
  }
  if (n == 0) return Status::NotFound("peer closed the connection");
  buf->append(chunk, static_cast<std::size_t>(n));
  return Status::Ok();
}

}  // namespace

Status ReadFrame(int fd, std::string* carry, Frame* frame, int timeout_ms) {
  // `carry` is only consumed once the complete frame (header + payload) is
  // buffered, so a timeout mid-frame leaves the stream intact and the next
  // call resumes exactly where this one stopped.
  while (true) {
    std::size_t newline = carry->find('\n');
    if (newline != std::string::npos) {
      std::size_t payload_len = 0;
      Status parsed =
          ParseFrameHeader(std::string_view(*carry).substr(0, newline), frame,
                           &payload_len);
      if (!parsed.ok()) {
        // Malformed header: consume the line so the connection could in
        // principle resync, though callers close on kInvalidArgument.
        carry->erase(0, newline + 1);
        return parsed;
      }
      if (carry->size() >= newline + 1 + payload_len) {
        frame->payload = carry->substr(newline + 1, payload_len);
        carry->erase(0, newline + 1 + payload_len);
        return Status::Ok();
      }
    } else if (carry->size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("frame header exceeds " +
                                     std::to_string(kMaxHeaderBytes) +
                                     " bytes");
    }
    Status ready = WaitReadable(fd, timeout_ms);
    if (!ready.ok()) return ready;
    Status got = RecvSome(fd, carry);
    if (!got.ok()) {
      if (got.code() == StatusCode::kNotFound && !carry->empty()) {
        return Status::InvalidArgument("connection closed mid-frame");
      }
      return got;
    }
  }
}

Status WriteFrame(int fd, const Frame& frame) {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteServerWrite)) {
    return Status::Internal("injected fault at server.write");
  }
  std::string wire = frame.Serialize();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n;
    do {
      n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Frame MakeOkFrame(std::string payload) {
  Frame f;
  f.type = FrameType::kOk;
  f.payload = std::move(payload);
  return f;
}

Frame MakeErrFrame(const Status& status, uint64_t retry_after_ms) {
  Frame f;
  f.type = FrameType::kErr;
  f.fields["code"] = StatusCodeWireName(status.code());
  if (retry_after_ms > 0) {
    f.fields["retry_after_ms"] = std::to_string(retry_after_ms);
  }
  f.payload = status.message();
  return f;
}

}  // namespace htqo

// Blocking client for the query server's frame protocol.
//
// The client is the reference implementation of the retry contract
// (README "Running the server"): a kResourceExhausted ERR is a *shed* —
// the server is overloaded, but healthy — and carries a retry_after_ms
// hint. Query() honors it: it sleeps retry_after_ms plus decorrelated
// jitter (so a fleet of shed clients does not re-arrive as a thundering
// herd) and retries, up to max_retries times or the caller's deadline.
// A kDeadlineExceeded ERR is never retried: by definition there is no
// time left to retry in.
//
// One Client is one connection and is not thread-safe; a load generator
// wants one Client per worker thread.

#ifndef HTQO_SERVER_CLIENT_H_
#define HTQO_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "server/protocol.h"
#include "util/rng.h"
#include "util/status.h"

namespace htqo {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string tenant = "default";
  // Per-attempt response timeout; <= 0 waits forever.
  int response_timeout_ms = 60000;
  // Retry policy for shed (resource-exhausted) responses.
  int max_retries = 5;
  uint64_t backoff_jitter_seed = 42;
  // Cap on any single backoff sleep, whatever the server hints.
  uint64_t max_backoff_ms = 2000;
  // Client-side tracing (DESIGN.md §6i). Non-empty: every Query() runs
  // under a client Tracer with a fresh 128-bit trace id, sends
  // trace_id/parent_span on the QUERY frame so the server's spans stitch
  // under the client's, and exports trace_<hex>_<pid>.json here — the
  // other half of the server's file of the same hex prefix.
  std::string trace_dir;
  // Test hook: overrides the pid baked into exported span ids, so a test
  // running client and server in one process still yields a stitchable
  // two-"process" trace pair. 0 = the real pid.
  uint64_t trace_export_pid = 0;
};

// One query's worth of response detail.
struct QueryReply {
  std::string result_text;       // rendered result table (possibly truncated)
  uint64_t rows = 0;
  uint64_t queued_us = 0;        // time spent in the admission queue
  double plan_ms = 0;
  double exec_ms = 0;
  int degradations = 0;          // optimizer ladder steps taken server-side
  int admission_level = 0;       // admission degrade level (0 = full budgets)
  int replans = 0;               // mid-query replans taken server-side
  int sheds_retried = 0;         // sheds absorbed by the retry loop
  uint64_t backoff_ms = 0;       // total time slept in backoff
  uint64_t record_id = 0;        // server flight-recorder id (0 = none)
  std::string trace_id;          // 32-hex trace id when tracing was on
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and sends HELLO tenant=<tenant>. kInternal on socket errors,
  // the server's error on a rejected HELLO.
  Status Connect();

  // Runs one query, absorbing sheds per the retry policy. `deadline_ms` is
  // forwarded to the server (0 = no deadline) and also bounds the retry
  // loop client-side.
  Result<QueryReply> Query(const std::string& sql, uint64_t deadline_ms = 0);

  // Fetches the Prometheus exposition over the query connection (METRICS
  // frame — no separate HTTP listener needed).
  Result<std::string> Metrics();

  // Live introspection over the query connection (DEBUG frame): JSON for
  // `what` in sessions|queues|cache|slow|record|build. `id` selects a
  // flight record (what=record), `n` bounds the slow log (0 = default).
  Result<std::string> Debug(const std::string& what, uint64_t id = 0,
                            uint64_t n = 0);

  Status Ping();

  // Polite goodbye (QUIT, await BYE) then close. The destructor just
  // closes.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  // Sends `frame`, reads one response frame into *reply.
  Status RoundTrip(const Frame& frame, Frame* reply);

  ClientOptions options_;
  int fd_ = -1;
  std::string carry_;
  Rng rng_;
};

}  // namespace htqo

#endif  // HTQO_SERVER_CLIENT_H_

#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "cache/decomp_cache.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace htqo {

namespace {

constexpr int kAcceptPollMs = 200;

// Bound + listening TCP socket on host:port; fills *bound_port with the
// kernel-assigned port when `port` is 0. Returns -1 on failure.
int Listen(const std::string& host, uint16_t port, uint16_t* bound_port,
           std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket failed: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    *error = std::string("bind/listen failed: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

// Accepts one connection if the listener is readable within the poll
// slice; -1 when there is nothing to accept (or the socket died).
int AcceptOne(int listen_fd) {
  struct pollfd pfd;
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, kAcceptPollMs);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return -1;
  int fd;
  do {
    fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

QueryServer::QueryServer(const Catalog* catalog,
                         const StatisticsRegistry* stats,
                         ServerOptions options)
    : options_(std::move(options)),
      optimizer_(catalog, stats),
      admission_(options_.admission),
      slo_(options_.default_slo) {}

QueryServer::QueryServer(const Catalog* catalog, StatisticsRegistry* stats,
                         ServerOptions options)
    : options_(std::move(options)),
      optimizer_(catalog, stats),
      admission_(options_.admission),
      slo_(options_.default_slo),
      mutable_stats_(stats) {}

QueryServer::~QueryServer() {
  if (running()) Drain(/*deadline_seconds=*/1.0);
}

Status QueryServer::Start() {
  if (running()) return Status::Internal("server already started");
  std::string error;
  listen_fd_ = Listen(options_.host, options_.port, &port_, &error);
  if (listen_fd_ < 0) return Status::Internal(error);
  if (options_.enable_metrics_http) {
    metrics_fd_ = Listen(options_.host, options_.metrics_http_port,
                         &metrics_http_port_, &error);
    if (metrics_fd_ < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("metrics listener: " + error);
    }
  }
  // Pre-grow the shared pool to this server's per-query lane count before
  // any session exists: ThreadPool::Shared growth joins the old pool, so
  // it must never race an in-flight query. Sharded runs fan each wave out
  // over num_threads x num_shards lanes, so the product (capped so a
  // misconfigured --shards cannot oversubscribe the host into stalls) is
  // the lane count queries will actually request.
  const std::size_t shard_lanes = std::max<std::size_t>(
      std::size_t{1}, options_.run_template.num_shards);
  ThreadPool::Shared(std::min(
      kMaxShardLanes, options_.run_template.num_threads * shard_lanes));
  // Observability plane: size the process-global flight-recorder ring
  // before installing the crash handler (the handler captures raw ring
  // pointers, so the ring must not be resized afterwards), then seed the
  // per-tenant SLO policies so their gauges exist before the first query.
  FlightRecorder::Global().Reset(options_.flight_capacity);
  if (!options_.crash_dump_path.empty()) {
    FlightRecorder::InstallCrashHandler(options_.crash_dump_path.c_str());
  }
  for (const auto& [tenant, policy] : options_.tenant_slos) {
    slo_.SetPolicy(tenant, policy);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  return Status::Ok();
}

void QueryServer::ReapFinishedLocked() {
  for (std::size_t i = 0; i < sessions_.size();) {
    if (sessions_[i].session->finished()) {
      sessions_[i].thread.join();
      sessions_[i] = std::move(sessions_.back());
      sessions_.pop_back();
    } else {
      ++i;
    }
  }
}

void QueryServer::AcceptLoop() {
  Counter* connections =
      MetricsRegistry::Global().GetCounter(kMetricServerConnectionsTotal);
  Counter* protocol_errors =
      MetricsRegistry::Global().GetCounter(kMetricServerProtocolErrorsTotal);
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = AcceptOne(listen_fd_);
    if (fd < 0) continue;
    if (FaultInjector::Instance().ShouldFail(kFaultSiteServerAccept)) {
      // Injected accept failure: this connection is lost, the server is
      // not. The peer sees a reset; every existing session keeps running.
      protocol_errors->Increment();
      ::close(fd);
      continue;
    }
    connections->Increment();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapFinishedLocked();
    if (sessions_.size() >= options_.max_sessions) {
      // Session cap: tell the peer to back off, exactly like a shed query.
      WriteFrame(fd, MakeErrFrame(
                         AdmissionShedStatus("server at max sessions"),
                         admission_.RetryAfterMs()));
      ::close(fd);
      continue;
    }
    SessionHandle handle;
    handle.session =
        std::make_unique<Session>(this, fd, next_session_id_++);
    Session* raw = handle.session.get();
    handle.thread = std::thread([raw] { raw->Run(); });
    sessions_.push_back(std::move(handle));
  }
}

namespace {

// Minimal JSON string escaping for tenant names and error text.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string QueryServer::DebugJson(const std::string& what, uint64_t id,
                                   uint64_t n) {
  if (what == "sessions") {
    std::string out = "{\"sessions\":[";
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      bool first = true;
      for (const SessionHandle& h : sessions_) {
        Session::StatsView v = h.session->Stats();
        if (!first) out += ',';
        first = false;
        out += "{\"id\":" + std::to_string(v.id) + ",\"tenant\":\"" +
               JsonEscape(v.tenant) +
               "\",\"in_flight\":" + (v.in_flight ? "true" : "false") +
               ",\"queries\":" + std::to_string(v.queries) +
               ",\"errors\":" + std::to_string(v.errors) +
               ",\"last_record\":" + std::to_string(v.last_record_id) + "}";
      }
    }
    out += "],\"max_sessions\":" + std::to_string(options_.max_sessions) +
           ",\"draining\":" + (running() ? "false" : "true") + "}";
    return out;
  }
  if (what == "queues") {
    AdmissionController::Snapshot s = admission_.snapshot();
    std::string out = "{\"active_total\":" + std::to_string(s.active_total) +
                      ",\"waiting_total\":" + std::to_string(s.waiting_total) +
                      ",\"admitted\":" + std::to_string(s.admitted) +
                      ",\"queued\":" + std::to_string(s.queued) +
                      ",\"shed\":" + std::to_string(s.shed) +
                      ",\"queue_timeouts\":" + std::to_string(s.queue_timeouts) +
                      ",\"degraded\":" + std::to_string(s.degraded) +
                      ",\"pressure\":" + JsonDouble(s.pressure) +
                      ",\"degrade_level\":" + std::to_string(s.degrade_level) +
                      ",\"draining\":" + (s.draining ? "true" : "false") +
                      ",\"retry_after_ms\":" + std::to_string(s.retry_after_ms) +
                      ",\"tenants\":{";
    bool first = true;
    for (const auto& [tenant, info] : s.tenants) {
      if (!first) out += ',';
      first = false;
      out += "\"" + JsonEscape(tenant) +
             "\":{\"active\":" + std::to_string(info.active) +
             ",\"waiting\":" + std::to_string(info.waiting) +
             ",\"max_concurrent\":" + std::to_string(info.max_concurrent) +
             ",\"max_queue_depth\":" + std::to_string(info.max_queue_depth) +
             "}";
    }
    out += "},\"slo\":[";
    first = true;
    for (const SloTracker::TenantSlo& slo : slo_.Snapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"tenant\":\"" + JsonEscape(slo.tenant) +
             "\",\"target_p99_ms\":" + JsonDouble(slo.policy.target_p99_ms) +
             ",\"error_budget\":" + JsonDouble(slo.policy.error_budget) +
             ",\"queries\":" + std::to_string(slo.queries) +
             ",\"violations\":" + std::to_string(slo.violations) +
             ",\"burn_rate\":" + JsonDouble(slo.burn_rate) + "}";
    }
    out += "]}";
    return out;
  }
  if (what == "cache") {
    DecompCache::Stats s = DecompCache::Global().stats();
    return "{\"entries\":" + std::to_string(s.entries) +
           ",\"bytes\":" + std::to_string(s.bytes) +
           ",\"byte_budget\":" + std::to_string(s.byte_budget) +
           ",\"hits\":" + std::to_string(s.hits) +
           ",\"misses\":" + std::to_string(s.misses) +
           ",\"evictions\":" + std::to_string(s.evictions) +
           ",\"stale\":" + std::to_string(s.stale) +
           ",\"singleflight_waits\":" + std::to_string(s.singleflight_waits) +
           "}";
  }
  if (what == "slow") {
    if (n == 0) n = 16;
    const FlightRecorder& rec = FlightRecorder::Global();
    std::vector<FlightRecord> slow = rec.Slowest(n);
    std::string out =
        "{\"total_recorded\":" + std::to_string(rec.total_recorded()) +
        ",\"capacity\":" + std::to_string(rec.capacity()) + ",\"records\":[";
    for (std::size_t i = 0; i < slow.size(); ++i) {
      if (i > 0) out += ',';
      out += FlightRecordJson(slow[i]);
    }
    out += "]}";
    return out;
  }
  if (what == "record") {
    FlightRecord r;
    if (!FlightRecorder::Global().Find(id, &r)) {
      return "{\"error\":\"record " + std::to_string(id) +
             " not in the retained window\"}";
    }
    return FlightRecordJson(r);
  }
  if (what == "build") {
    return "{\"version\":\"" + JsonEscape(BuildVersionString()) +
           "\",\"git_sha\":\"" + JsonEscape(BuildGitShaString()) +
           "\",\"sanitizer\":\"" + JsonEscape(BuildSanitizerString()) +
           "\",\"pid\":" + std::to_string(::getpid()) +
           ",\"start_time_unix_seconds\":" +
           JsonDouble(ProcessStartTimeSeconds()) +
           ",\"uptime_seconds\":" + JsonDouble(ProcessUptimeSeconds()) +
           ",\"tracing_compiled_in\":" +
           (kTracingCompiledIn ? "true" : "false") + "}";
  }
  return "";
}

void QueryServer::MetricsLoop() {
  Counter* debug_requests =
      MetricsRegistry::Global().GetCounter(kMetricDebugRequestsTotal);
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = AcceptOne(metrics_fd_);
    if (fd < 0) continue;
    // Minimal HTTP: read whatever one poll slice delivers of the request,
    // route on the path, answer, close. Enough for Prometheus, curl, and
    // the CI scraper; anything fancier belongs behind a real proxy.
    char buf[2048];
    ssize_t got = 0;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 1000) > 0) {
      got = ::recv(fd, buf, sizeof(buf) - 1, 0);
    }
    if (got < 0) got = 0;
    buf[got] = '\0';
    // Request line: "GET <path>[?query] HTTP/1.x". Anything unparseable is
    // treated as GET /metrics, which keeps bare `nc` probes working.
    std::string path = "/metrics";
    {
      std::string_view req(buf, static_cast<std::size_t>(got));
      if (req.substr(0, 4) == "GET ") {
        std::string_view rest = req.substr(4);
        std::size_t end = rest.find_first_of(" \r\n");
        path = std::string(rest.substr(0, end));
      }
    }
    std::string query;
    if (std::size_t q = path.find('?'); q != std::string::npos) {
      query = path.substr(q + 1);
      path.resize(q);
    }
    std::string body;
    std::string content_type = "application/json";
    const char* status_line = "HTTP/1.1 200 OK";
    if (path == "/metrics" || path == "/") {
      body = MetricsRegistry::Global().PrometheusText();
      content_type = "text/plain; version=0.0.4";
    } else if (path.rfind("/debug/", 0) == 0) {
      debug_requests->Increment();
      std::string what = path.substr(7);
      uint64_t rec_id = 0;
      uint64_t slow_n = 0;
      if (what.rfind("record/", 0) == 0) {
        rec_id = std::strtoull(what.c_str() + 7, nullptr, 10);
        what = "record";
      }
      if (query.rfind("n=", 0) == 0) {
        slow_n = std::strtoull(query.c_str() + 2, nullptr, 10);
      }
      body = DebugJson(what, rec_id, slow_n);
      if (body.empty()) {
        status_line = "HTTP/1.1 404 Not Found";
        body = "{\"error\":\"unknown debug path\",\"paths\":[\"/debug/"
               "sessions\",\"/debug/queues\",\"/debug/cache\",\"/debug/"
               "slow\",\"/debug/record/<id>\",\"/debug/build\"]}";
      }
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "{\"error\":\"not found; try /metrics or /debug/*\"}";
    }
    std::string response = std::string(status_line) +
                           "\r\n"
                           "Content-Type: " +
                           content_type +
                           "\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) +
                           "\r\n"
                           "Connection: close\r\n\r\n" +
                           body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

Status QueryServer::Drain(double deadline_seconds, std::size_t* cancelled) {
  if (cancelled != nullptr) *cancelled = 0;
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::Ok();  // already drained
  }
  // Phase 1: stop taking work. The accept loop exits at its next poll
  // slice; queued admissions are shed with the drain message; sessions are
  // told to wind down after their current frame.
  admission_.BeginDrain();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) h.session->RequestDrain();
  }
  // Phase 2: wait for in-flight queries until the drain deadline.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, deadline_seconds)));
  while (std::chrono::steady_clock::now() < deadline) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (SessionHandle& h : sessions_) {
        if (h.session->query_in_flight()) busy = true;
      }
    }
    if (!busy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Phase 3: cancel stragglers through their governors and unblock every
  // session's socket; then joining is bounded by a governor checkpoint.
  std::size_t late = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) {
      if (h.session->query_in_flight()) ++late;
      h.session->Cancel();
    }
  }
  if (late > 0) {
    MetricsRegistry::Global()
        .GetCounter(kMetricServerDrainCancelledTotal)
        ->Add(late);
  }
  if (cancelled != nullptr) *cancelled = late;
  // Phase 4: tear down threads and sockets.
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) h.thread.join();
    sessions_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  listen_fd_ = -1;
  metrics_fd_ = -1;
  return Status::Ok();
}

}  // namespace htqo

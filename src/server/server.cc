#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/metrics.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace htqo {

namespace {

constexpr int kAcceptPollMs = 200;

// Bound + listening TCP socket on host:port; fills *bound_port with the
// kernel-assigned port when `port` is 0. Returns -1 on failure.
int Listen(const std::string& host, uint16_t port, uint16_t* bound_port,
           std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket failed: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    *error = std::string("bind/listen failed: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

// Accepts one connection if the listener is readable within the poll
// slice; -1 when there is nothing to accept (or the socket died).
int AcceptOne(int listen_fd) {
  struct pollfd pfd;
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, kAcceptPollMs);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return -1;
  int fd;
  do {
    fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

QueryServer::QueryServer(const Catalog* catalog,
                         const StatisticsRegistry* stats,
                         ServerOptions options)
    : options_(std::move(options)),
      optimizer_(catalog, stats),
      admission_(options_.admission) {}

QueryServer::QueryServer(const Catalog* catalog, StatisticsRegistry* stats,
                         ServerOptions options)
    : options_(std::move(options)),
      optimizer_(catalog, stats),
      admission_(options_.admission),
      mutable_stats_(stats) {}

QueryServer::~QueryServer() {
  if (running()) Drain(/*deadline_seconds=*/1.0);
}

Status QueryServer::Start() {
  if (running()) return Status::Internal("server already started");
  std::string error;
  listen_fd_ = Listen(options_.host, options_.port, &port_, &error);
  if (listen_fd_ < 0) return Status::Internal(error);
  if (options_.enable_metrics_http) {
    metrics_fd_ = Listen(options_.host, options_.metrics_http_port,
                         &metrics_http_port_, &error);
    if (metrics_fd_ < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("metrics listener: " + error);
    }
  }
  // Pre-grow the shared pool to this server's per-query lane count before
  // any session exists: ThreadPool::Shared growth joins the old pool, so
  // it must never race an in-flight query.
  ThreadPool::Shared(options_.run_template.num_threads);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  return Status::Ok();
}

void QueryServer::ReapFinishedLocked() {
  for (std::size_t i = 0; i < sessions_.size();) {
    if (sessions_[i].session->finished()) {
      sessions_[i].thread.join();
      sessions_[i] = std::move(sessions_.back());
      sessions_.pop_back();
    } else {
      ++i;
    }
  }
}

void QueryServer::AcceptLoop() {
  Counter* connections =
      MetricsRegistry::Global().GetCounter(kMetricServerConnectionsTotal);
  Counter* protocol_errors =
      MetricsRegistry::Global().GetCounter(kMetricServerProtocolErrorsTotal);
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = AcceptOne(listen_fd_);
    if (fd < 0) continue;
    if (FaultInjector::Instance().ShouldFail(kFaultSiteServerAccept)) {
      // Injected accept failure: this connection is lost, the server is
      // not. The peer sees a reset; every existing session keeps running.
      protocol_errors->Increment();
      ::close(fd);
      continue;
    }
    connections->Increment();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapFinishedLocked();
    if (sessions_.size() >= options_.max_sessions) {
      // Session cap: tell the peer to back off, exactly like a shed query.
      WriteFrame(fd, MakeErrFrame(
                         AdmissionShedStatus("server at max sessions"),
                         admission_.RetryAfterMs()));
      ::close(fd);
      continue;
    }
    SessionHandle handle;
    handle.session =
        std::make_unique<Session>(this, fd, next_session_id_++);
    Session* raw = handle.session.get();
    handle.thread = std::thread([raw] { raw->Run(); });
    sessions_.push_back(std::move(handle));
  }
}

void QueryServer::MetricsLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = AcceptOne(metrics_fd_);
    if (fd < 0) continue;
    // Minimal HTTP: read whatever one poll slice delivers of the request,
    // answer with the full exposition, close. Enough for Prometheus and
    // curl; anything fancier belongs behind a real proxy.
    char buf[2048];
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 1000) > 0) {
      (void)::recv(fd, buf, sizeof(buf), 0);
    }
    std::string body = MetricsRegistry::Global().PrometheusText();
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

Status QueryServer::Drain(double deadline_seconds, std::size_t* cancelled) {
  if (cancelled != nullptr) *cancelled = 0;
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::Ok();  // already drained
  }
  // Phase 1: stop taking work. The accept loop exits at its next poll
  // slice; queued admissions are shed with the drain message; sessions are
  // told to wind down after their current frame.
  admission_.BeginDrain();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) h.session->RequestDrain();
  }
  // Phase 2: wait for in-flight queries until the drain deadline.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, deadline_seconds)));
  while (std::chrono::steady_clock::now() < deadline) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (SessionHandle& h : sessions_) {
        if (h.session->query_in_flight()) busy = true;
      }
    }
    if (!busy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Phase 3: cancel stragglers through their governors and unblock every
  // session's socket; then joining is bounded by a governor checkpoint.
  std::size_t late = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) {
      if (h.session->query_in_flight()) ++late;
      h.session->Cancel();
    }
  }
  if (late > 0) {
    MetricsRegistry::Global()
        .GetCounter(kMetricServerDrainCancelledTotal)
        ->Add(late);
  }
  if (cancelled != nullptr) *cancelled = late;
  // Phase 4: tear down threads and sockets.
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (SessionHandle& h : sessions_) h.thread.join();
    sessions_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  listen_fd_ = -1;
  metrics_fd_ = -1;
  return Status::Ok();
}

}  // namespace htqo

#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>

namespace htqo {

namespace {

double ParseDoubleField(const Frame& frame, std::string_view key) {
  auto it = frame.fields.find(key);
  if (it == frame.fields.end()) return 0;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)), rng_(options_.backoff_jitter_seed) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Connect() {
  if (fd_ >= 0) return Status::Internal("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid host '" + options_.host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return Status::Internal(std::string("connect failed: ") +
                            std::strerror(errno));
  }
  fd_ = fd;
  carry_.clear();
  Frame hello;
  hello.type = FrameType::kHello;
  hello.fields["tenant"] = options_.tenant;
  Frame reply;
  Status s = RoundTrip(hello, &reply);
  if (!s.ok()) {
    Close();
    return s;
  }
  if (reply.type != FrameType::kOk) {
    Status err = Status::Internal("HELLO rejected: " + reply.payload);
    Close();
    return err;
  }
  return Status::Ok();
}

Status Client::RoundTrip(const Frame& frame, Frame* reply) {
  if (fd_ < 0) return Status::Internal("not connected");
  Status s = WriteFrame(fd_, frame);
  if (!s.ok()) return s;
  s = ReadFrame(fd_, &carry_, reply, options_.response_timeout_ms);
  if (s.code() == StatusCode::kNotFound) {
    return Status::Internal("server closed the connection");
  }
  return s;
}

Result<QueryReply> Client::Query(const std::string& sql,
                                 uint64_t deadline_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      deadline_ms > 0 ? Clock::now() + std::chrono::milliseconds(deadline_ms)
                      : Clock::time_point::max();
  QueryReply out;
  // Client half of the stitched trace: one tracer for the whole retry
  // loop, a root span covering it, and one child span per attempt whose
  // wire id rides the QUERY frame as parent_span. Exported (best effort)
  // after the final attempt; the server's half shares the hex prefix.
  std::optional<Tracer> tracer;
  uint64_t root_span = 0;
  if (!options_.trace_dir.empty()) {
    tracer.emplace();
    tracer->SetTraceId(TraceId::Random());
    if (options_.trace_export_pid != 0) {
      tracer->SetExportPid(options_.trace_export_pid);
    }
    root_span = tracer->Begin("client.query", 0);
    tracer->Attr(root_span, "tenant", options_.tenant);
    out.trace_id = tracer->trace_id().ToHex();
  }
  auto export_trace = [&] {
    if (!tracer.has_value()) return;
    tracer->End(root_span);
    const std::string path = options_.trace_dir + "/trace_" +
                             tracer->trace_id().ToHex() + "_" +
                             std::to_string(tracer->export_pid()) + ".json";
    (void)tracer->WriteChromeTrace(path);  // exporter failure is not ours
  };
  for (int attempt = 0;; ++attempt) {
    Frame query;
    query.type = FrameType::kQuery;
    query.payload = sql;
    uint64_t attempt_span = 0;
    if (tracer.has_value()) {
      attempt_span = tracer->Begin("client.attempt", root_span);
      tracer->Attr(attempt_span, "attempt", std::to_string(attempt));
      query.fields["trace_id"] = tracer->trace_id().ToHex();
      query.fields["parent_span"] = tracer->WireSpanId(attempt_span);
    }
    if (deadline_ms > 0) {
      // Forward what's left, not the original: queue time already spent in
      // earlier shed/backoff rounds must count against this query.
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) {
        export_trace();
        return Status::DeadlineExceeded("query deadline passed");
      }
      query.fields["deadline_ms"] = std::to_string(left);
    }
    Frame reply;
    Status s = RoundTrip(query, &reply);
    if (tracer.has_value()) tracer->End(attempt_span);
    if (!s.ok()) {
      export_trace();
      return s;
    }
    if (reply.type == FrameType::kOk) {
      out.result_text = std::move(reply.payload);
      out.rows = reply.GetUint("rows");
      out.queued_us = reply.GetUint("queued_us");
      out.plan_ms = ParseDoubleField(reply, "plan_ms");
      out.exec_ms = ParseDoubleField(reply, "exec_ms");
      out.degradations = static_cast<int>(reply.GetUint("degraded"));
      out.admission_level =
          static_cast<int>(reply.GetUint("admission_level"));
      out.replans = static_cast<int>(reply.GetUint("replans"));
      out.record_id = reply.GetUint("record");
      out.sheds_retried = attempt;
      if (tracer.has_value()) {
        tracer->Attr(root_span, "rows", std::to_string(out.rows));
        tracer->Attr(root_span, "record", std::to_string(out.record_id));
      }
      export_trace();
      return out;
    }
    if (reply.type != FrameType::kErr) {
      export_trace();
      return Status::Internal(std::string("unexpected reply frame ") +
                              FrameTypeName(reply.type));
    }
    StatusCode code = StatusCodeFromWireName(reply.GetString("code"));
    if (code != StatusCode::kResourceExhausted ||
        attempt >= options_.max_retries) {
      // Not a shed (or out of retries): surface the server's error as-is.
      export_trace();
      std::string message = std::move(reply.payload);
      switch (code) {
        case StatusCode::kInvalidArgument:
          return Status::InvalidArgument(std::move(message));
        case StatusCode::kNotFound:
          return Status::NotFound(std::move(message));
        case StatusCode::kResourceExhausted:
          return Status::ResourceExhausted(std::move(message));
        case StatusCode::kDeadlineExceeded:
          return Status::DeadlineExceeded(std::move(message));
        default:
          return Status::Internal(std::move(message));
      }
    }
    // Shed: back off for the server's hint plus decorrelated jitter in
    // [0, hint), capped, then retry.
    uint64_t hint = reply.GetUint("retry_after_ms", 50);
    if (hint == 0) hint = 50;
    uint64_t sleep_ms = hint + rng_.Uniform(hint);
    if (sleep_ms > options_.max_backoff_ms) sleep_ms = options_.max_backoff_ms;
    if (deadline != Clock::time_point::max() &&
        Clock::now() + std::chrono::milliseconds(sleep_ms) >= deadline) {
      export_trace();
      return Status::DeadlineExceeded(
          "query deadline would pass during retry backoff");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    out.backoff_ms += sleep_ms;
  }
}

Result<std::string> Client::Debug(const std::string& what, uint64_t id,
                                  uint64_t n) {
  Frame req;
  req.type = FrameType::kDebug;
  req.fields["what"] = what;
  if (id > 0) req.fields["id"] = std::to_string(id);
  if (n > 0) req.fields["n"] = std::to_string(n);
  Frame reply;
  Status s = RoundTrip(req, &reply);
  if (!s.ok()) return s;
  if (reply.type != FrameType::kOk) {
    return Status::InvalidArgument("DEBUG rejected: " + reply.payload);
  }
  return std::move(reply.payload);
}

Result<std::string> Client::Metrics() {
  Frame req;
  req.type = FrameType::kMetrics;
  Frame reply;
  Status s = RoundTrip(req, &reply);
  if (!s.ok()) return s;
  if (reply.type != FrameType::kOk) {
    return Status::Internal("METRICS rejected: " + reply.payload);
  }
  return std::move(reply.payload);
}

Status Client::Ping() {
  Frame req;
  req.type = FrameType::kPing;
  Frame reply;
  Status s = RoundTrip(req, &reply);
  if (!s.ok()) return s;
  if (reply.type != FrameType::kOk) {
    return Status::Internal("PING rejected: " + reply.payload);
  }
  return Status::Ok();
}

void Client::Close() {
  if (fd_ < 0) return;
  Frame quit;
  quit.type = FrameType::kQuit;
  Frame reply;
  (void)RoundTrip(quit, &reply);  // best effort: BYE or bust
  ::close(fd_);
  fd_ = -1;
  carry_.clear();
}

}  // namespace htqo

#include "server/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <optional>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server.h"
#include "stats/feedback.h"

namespace htqo {

namespace {

// Poll slice for the frame loop: short enough that drain requests and idle
// timeouts are noticed promptly, long enough to stay out of the way.
constexpr int kPollSliceMs = 200;

std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

}  // namespace

Session::Session(QueryServer* server, int fd, uint64_t id)
    : server_(server), fd_(fd), id_(id) {}

Session::StatsView Session::Stats() const {
  StatsView v;
  v.id = id_;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    v.tenant = tenant_;
  }
  v.in_flight = query_in_flight_.load(std::memory_order_relaxed);
  v.queries = queries_served_.load(std::memory_order_relaxed);
  v.errors = query_errors_.load(std::memory_order_relaxed);
  v.last_record_id = last_record_id_.load(std::memory_order_relaxed);
  return v;
}

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

void Session::Cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  drain_requested_.store(true, std::memory_order_relaxed);
  // Half-close unblocks a session parked in poll(); the frame loop then
  // reads EOF and exits through its normal cleanup.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::SendOrDrop(const Frame& frame) {
  // A failed response write (peer vanished, server.write fault) ends the
  // session on the next loop iteration; the write itself must not.
  Status s = WriteFrame(fd_, frame);
  if (!s.ok()) {
    MetricsRegistry::Global()
        .GetCounter(kMetricServerProtocolErrorsTotal)
        ->Increment();
    drain_requested_.store(true, std::memory_order_relaxed);
  }
}

void Session::Run() {
  using Clock = std::chrono::steady_clock;
  auto last_activity = Clock::now();
  const double idle_limit = server_->options().idle_timeout_seconds;
  while (!drain_requested_.load(std::memory_order_relaxed)) {
    Frame frame;
    Status s = ReadFrame(fd_, &carry_, &frame, kPollSliceMs);
    if (s.code() == StatusCode::kDeadlineExceeded) {
      // Poll slice elapsed without a complete frame: check idle + drain.
      if (idle_limit > 0 &&
          std::chrono::duration<double>(Clock::now() - last_activity)
                  .count() > idle_limit) {
        SendOrDrop(MakeErrFrame(
            Status::DeadlineExceeded("session idle timeout")));
        break;
      }
      continue;
    }
    if (s.code() == StatusCode::kNotFound) break;  // clean EOF
    if (!s.ok()) {
      MetricsRegistry::Global()
          .GetCounter(kMetricServerProtocolErrorsTotal)
          ->Increment();
      if (s.code() == StatusCode::kInvalidArgument) {
        SendOrDrop(MakeErrFrame(s));
      }
      break;
    }
    last_activity = Clock::now();
    if (!HandleFrame(frame)) break;
  }
  // Half-close immediately: a peer still waiting on a response must see
  // EOF now, not when the server gets around to reaping this session.
  ::shutdown(fd_, SHUT_RDWR);
  finished_.store(true, std::memory_order_release);
}

bool Session::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      std::string tenant(frame.GetString("tenant"));
      if (tenant.empty()) {
        SendOrDrop(MakeErrFrame(
            Status::InvalidArgument("HELLO requires tenant=<name>")));
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(meta_mu_);
        tenant_ = std::move(tenant);
      }
      // Resolve the per-tenant labeled series once (DESIGN.md §6i); the
      // per-query path then touches only pointer-stable handles.
      MetricsRegistry& reg = MetricsRegistry::Global();
      m_queries_ =
          reg.GetCounter(TenantMetricName(kMetricTenantQueriesTotal, tenant_));
      m_errors_ =
          reg.GetCounter(TenantMetricName(kMetricTenantErrorsTotal, tenant_));
      m_latency_us_ = reg.GetHistogram(
          TenantMetricName(kMetricTenantQueryLatencyUs, tenant_));
      m_spill_bytes_ = reg.GetCounter(
          TenantMetricName(kMetricTenantSpillBytesTotal, tenant_));
      m_cache_hits_ = reg.GetCounter(
          TenantMetricName(kMetricTenantPlanCacheHitsTotal, tenant_));
      m_cache_misses_ = reg.GetCounter(
          TenantMetricName(kMetricTenantPlanCacheMissesTotal, tenant_));
      m_replans_ =
          reg.GetCounter(TenantMetricName(kMetricTenantReplansTotal, tenant_));
      Frame ok = MakeOkFrame("");
      ok.fields["session"] = std::to_string(id_);
      SendOrDrop(ok);
      return true;
    }
    case FrameType::kPing:
      SendOrDrop(MakeOkFrame(""));
      return true;
    case FrameType::kMetrics:
      SendOrDrop(MakeOkFrame(MetricsRegistry::Global().PrometheusText()));
      return true;
    case FrameType::kDebug: {
      MetricsRegistry::Global()
          .GetCounter(kMetricDebugRequestsTotal)
          ->Increment();
      std::string what(frame.GetString("what"));
      std::string json =
          server_->DebugJson(what, frame.GetUint("id"), frame.GetUint("n"));
      if (json.empty()) {
        SendOrDrop(MakeErrFrame(Status::InvalidArgument(
            "DEBUG what=" + what +
            ": unknown target (want sessions|queues|cache|slow|record|"
            "build)")));
        return true;
      }
      SendOrDrop(MakeOkFrame(std::move(json)));
      return true;
    }
    case FrameType::kQuery:
      HandleQuery(frame);
      return true;
    case FrameType::kQuit:
      {
        Frame bye;
        bye.type = FrameType::kBye;
        SendOrDrop(bye);
      }
      return false;
    default:
      SendOrDrop(MakeErrFrame(Status::InvalidArgument(
          std::string("unexpected frame type ") + FrameTypeName(frame.type))));
      return false;
  }
}

void Session::HandleQuery(const Frame& frame) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter(kMetricServerQueriesTotal)->Increment();
  const auto started = std::chrono::steady_clock::now();
  if (tenant_.empty()) {
    SendOrDrop(MakeErrFrame(
        Status::InvalidArgument("QUERY before HELLO: no tenant bound")));
    return;
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  if (m_queries_ != nullptr) m_queries_->Increment();
  // Wire trace context (DESIGN.md §6i): a client-sent trace_id/parent_span
  // makes this query's spans stitch under the client's span. Tracing is
  // armed whenever the server has a trace directory OR the client sent
  // context; the export decision happens after the run.
  const ServerOptions& sopts = server_->options();
  const TraceId remote_trace = TraceId::FromHex(frame.GetString("trace_id"));
  std::string remote_parent(frame.GetString("parent_span"));
  const bool trace_armed = !sopts.trace_dir.empty() || remote_trace.valid();
  // Per-query deadline: the frame's deadline_ms, else the server default;
  // an explicit deadline_ms=0 means "no deadline" (trusted clients only).
  double deadline_seconds = server_->options().default_deadline_seconds;
  if (frame.fields.count("deadline_ms") > 0) {
    deadline_seconds =
        static_cast<double>(frame.GetUint("deadline_ms")) / 1e3;
  }
  const auto deadline =
      deadline_seconds > 0
          ? started + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(deadline_seconds))
          : std::chrono::steady_clock::time_point::max();

  query_in_flight_.store(true, std::memory_order_relaxed);
  auto admitted =
      server_->admission().Acquire(tenant_, deadline);
  if (!admitted.ok()) {
    query_in_flight_.store(false, std::memory_order_relaxed);
    query_errors_.fetch_add(1, std::memory_order_relaxed);
    if (m_errors_ != nullptr) m_errors_->Increment();
    // A shed or queue-timeout burns the tenant's error budget: from the
    // client's side the query failed, whatever the reason.
    const double shed_elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    server_->slo().Record(tenant_, shed_elapsed * 1e3, /*ok=*/false);
    uint64_t retry_after =
        admitted.status().code() == StatusCode::kResourceExhausted
            ? server_->admission().RetryAfterMs()
            : 0;
    SendOrDrop(MakeErrFrame(admitted.status(), retry_after));
    return;
  }
  AdmissionTicket ticket = std::move(admitted.value());
  const AdmissionGrant& grant = ticket.grant();

  RunOptions opts = server_->options().run_template;
  opts.cancel_flag = &cancel_;
  opts.search_node_budget =
      std::min(opts.search_node_budget, grant.node_budget);
  opts.memory_budget_bytes =
      std::min(opts.memory_budget_bytes, grant.memory_budget_bytes);
  if (grant.force_spill &&
      opts.memory_budget_bytes != std::numeric_limits<std::size_t>::max()) {
    opts.enable_spill = true;
  }
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    // Budget what's left after the queue, floored so the run can at least
    // start (its own first checkpoint will trip if the floor was charity).
    opts.deadline_seconds = std::max(
        1e-3, std::chrono::duration<double>(
                  deadline - std::chrono::steady_clock::now())
                  .count());
  } else {
    opts.deadline_seconds = 0;
  }

  // Adaptive feedback loop (DESIGN.md §6h). When enabled, the query runs
  // traced under a shared statistics lock; after a success, the trace is
  // reconciled against the registry under the exclusive lock — a drifted
  // relation's statistics are re-analyzed in place, its stats epoch bumps,
  // and the next query (any session) plans informed. Queries that don't
  // resolve to a single CQ (nested FROM subqueries) run the plain path:
  // they can't be trace-mined, and correctness never depends on feedback.
  const bool feedback = server_->feedback_enabled();
  Tracer tracer;
  if (trace_armed) {
    tracer.SetTraceId(remote_trace.valid() ? remote_trace
                                           : TraceId::Random());
    if (!remote_parent.empty()) {
      tracer.SetRemoteParent(std::move(remote_parent));
    }
    opts.trace.tracer = &tracer;
  }
  std::optional<ResolvedQuery> resolved;
  double resolve_seconds = 0;
  if (feedback) {
    const auto resolve_start = std::chrono::steady_clock::now();
    auto rq = server_->optimizer().Resolve(frame.payload, opts.tid_mode);
    resolve_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - resolve_start)
                          .count();
    if (rq.ok()) {
      resolved = std::move(rq.value());
      opts.trace.tracer = &tracer;
    }
  }
  Result<QueryRun> run = Status::Internal("query never ran");
  {
    std::shared_lock<std::shared_mutex> stats_lock(server_->stats_mu_,
                                                   std::defer_lock);
    if (feedback) stats_lock.lock();
    run = resolved.has_value()
              ? server_->optimizer().RunResolved(*resolved, opts)
              : server_->optimizer().Run(frame.payload, opts);
  }
  std::size_t feedback_refreshed = 0;
  if (run.ok() && resolved.has_value()) {
    std::unique_lock<std::shared_mutex> stats_lock(server_->stats_mu_);
    FeedbackCollector collector(&server_->optimizer().catalog(),
                                server_->mutable_stats_);
    feedback_refreshed =
        collector.Reconcile(*resolved, tracer).refreshed.size();
  }
  query_in_flight_.store(false, std::memory_order_relaxed);
  ticket.Release();  // frees the slot before the (possibly slow) write

  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  metrics.GetHistogram(kMetricServerQueryLatencyUs)
      ->Record(static_cast<uint64_t>(elapsed * 1e6));
  // Per-tenant mirrors + SLO accounting.
  if (m_latency_us_ != nullptr) {
    m_latency_us_->Record(static_cast<uint64_t>(elapsed * 1e6));
  }
  if (!run.ok()) {
    query_errors_.fetch_add(1, std::memory_order_relaxed);
    if (m_errors_ != nullptr) m_errors_->Increment();
  } else {
    if (m_spill_bytes_ != nullptr && run->spill.bytes_written > 0) {
      m_spill_bytes_->Add(run->spill.bytes_written);
    }
    if (m_replans_ != nullptr && run->replans > 0) {
      m_replans_->Add(run->replans);
    }
    if (run->plan_cache == "hit" || run->plan_cache == "shared-hit") {
      if (m_cache_hits_ != nullptr) m_cache_hits_->Increment();
    } else if (run->plan_cache == "miss" ||
               run->plan_cache == "stale-miss") {
      if (m_cache_misses_ != nullptr) m_cache_misses_->Increment();
    }
  }
  server_->slo().Record(tenant_, elapsed * 1e3, run.ok());

  // Trace export decision, made now that the outcome is known: the
  // stitching case (client sent context) always exports, head sampling is
  // deterministic on the trace id (client and server agree), and slow or
  // errored queries are tail-captured.
  bool trace_exported = false;
  if (trace_armed && !sopts.trace_dir.empty()) {
    const TraceId tid = tracer.trace_id();
    bool head_sampled = false;
    if (sopts.trace_sample_rate > 0) {
      const uint64_t bucket = (tid.hi ^ tid.lo) % 10000;
      head_sampled =
          bucket < static_cast<uint64_t>(sopts.trace_sample_rate * 10000.0);
    }
    const bool slow =
        sopts.trace_slow_ms > 0 && elapsed * 1e3 >= sopts.trace_slow_ms;
    if (remote_trace.valid() || head_sampled || slow || !run.ok()) {
      const std::string path = sopts.trace_dir + "/trace_" + tid.ToHex() +
                               "_" + std::to_string(::getpid()) + ".json";
      if (tracer.WriteChromeTrace(path).ok()) {
        trace_exported = true;
        metrics.GetCounter(kMetricTracesExportedTotal)->Increment();
      }
    }
    if (tracer.dropped_spans() > 0) {
      metrics.GetCounter(kMetricTraceDroppedSpansTotal)
          ->Add(tracer.dropped_spans());
    }
  }

  // Flight record: one POD per completed query, success or failure.
  FlightRecord rec;
  rec.SetTenant(tenant_);
  if (trace_armed) rec.SetTraceIdHex(tracer.trace_id().ToHex());
  rec.fingerprint = QueryShapeFingerprint(frame.payload);
  rec.status = static_cast<int32_t>(run.ok() ? StatusCode::kOk
                                             : run.status().code());
  rec.queue_us = static_cast<uint64_t>(grant.queue_wait.count());
  rec.admission_level = grant.degrade_level;
  rec.total_us = static_cast<uint64_t>(elapsed * 1e6);
  rec.sampled_trace = trace_exported ? 1 : 0;
  if (run.ok()) {
    rec.rows = run->output.NumRows();
    rec.width = static_cast<uint32_t>(run->decomposition_width);
    rec.degradations = static_cast<uint32_t>(run->degradations.size());
    rec.replans = static_cast<uint32_t>(run->replans);
    rec.spill_bytes = run->spill.bytes_written;
    // The feedback path parses inside Resolve(); the plain path inside
    // Run(). Either way the parse phase lands in the record.
    const double parse_seconds =
        resolved.has_value() ? resolve_seconds : run->parse_seconds;
    rec.parse_us = static_cast<uint64_t>(parse_seconds * 1e6);
    rec.plan_us = static_cast<uint64_t>(run->plan_seconds * 1e6);
    rec.exec_us = static_cast<uint64_t>(run->exec_seconds * 1e6);
  }
  const uint64_t record_id = FlightRecorder::Global().Record(rec);
  last_record_id_.store(record_id, std::memory_order_relaxed);
  metrics.GetCounter(kMetricFlightRecordsTotal)->Increment();

  if (!run.ok()) {
    SendOrDrop(MakeErrFrame(run.status()));
    return;
  }
  Frame ok = MakeOkFrame(
      run->output.ToString(server_->options().max_result_rows));
  ok.fields["record"] = std::to_string(record_id);
  ok.fields["rows"] = std::to_string(run->output.NumRows());
  ok.fields["queued_us"] = std::to_string(grant.queue_wait.count());
  ok.fields["plan_ms"] = FormatMs(run->plan_seconds);
  ok.fields["exec_ms"] = FormatMs(run->exec_seconds);
  if (!run->degradations.empty()) {
    ok.fields["degraded"] = std::to_string(run->degradations.size());
  }
  if (grant.degrade_level > 0) {
    ok.fields["admission_level"] = std::to_string(grant.degrade_level);
  }
  if (run->replans > 0) {
    ok.fields["replans"] = std::to_string(run->replans);
  }
  if (feedback_refreshed > 0) {
    ok.fields["feedback_refreshed"] = std::to_string(feedback_refreshed);
  }
  SendOrDrop(ok);
}

}  // namespace htqo

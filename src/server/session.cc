#include "server/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <optional>

#include "obs/metrics.h"
#include "server/server.h"
#include "stats/feedback.h"

namespace htqo {

namespace {

// Poll slice for the frame loop: short enough that drain requests and idle
// timeouts are noticed promptly, long enough to stay out of the way.
constexpr int kPollSliceMs = 200;

std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

}  // namespace

Session::Session(QueryServer* server, int fd, uint64_t id)
    : server_(server), fd_(fd), id_(id) {}

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

void Session::Cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  drain_requested_.store(true, std::memory_order_relaxed);
  // Half-close unblocks a session parked in poll(); the frame loop then
  // reads EOF and exits through its normal cleanup.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::SendOrDrop(const Frame& frame) {
  // A failed response write (peer vanished, server.write fault) ends the
  // session on the next loop iteration; the write itself must not.
  Status s = WriteFrame(fd_, frame);
  if (!s.ok()) {
    MetricsRegistry::Global()
        .GetCounter(kMetricServerProtocolErrorsTotal)
        ->Increment();
    drain_requested_.store(true, std::memory_order_relaxed);
  }
}

void Session::Run() {
  using Clock = std::chrono::steady_clock;
  auto last_activity = Clock::now();
  const double idle_limit = server_->options().idle_timeout_seconds;
  while (!drain_requested_.load(std::memory_order_relaxed)) {
    Frame frame;
    Status s = ReadFrame(fd_, &carry_, &frame, kPollSliceMs);
    if (s.code() == StatusCode::kDeadlineExceeded) {
      // Poll slice elapsed without a complete frame: check idle + drain.
      if (idle_limit > 0 &&
          std::chrono::duration<double>(Clock::now() - last_activity)
                  .count() > idle_limit) {
        SendOrDrop(MakeErrFrame(
            Status::DeadlineExceeded("session idle timeout")));
        break;
      }
      continue;
    }
    if (s.code() == StatusCode::kNotFound) break;  // clean EOF
    if (!s.ok()) {
      MetricsRegistry::Global()
          .GetCounter(kMetricServerProtocolErrorsTotal)
          ->Increment();
      if (s.code() == StatusCode::kInvalidArgument) {
        SendOrDrop(MakeErrFrame(s));
      }
      break;
    }
    last_activity = Clock::now();
    if (!HandleFrame(frame)) break;
  }
  // Half-close immediately: a peer still waiting on a response must see
  // EOF now, not when the server gets around to reaping this session.
  ::shutdown(fd_, SHUT_RDWR);
  finished_.store(true, std::memory_order_release);
}

bool Session::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      std::string tenant(frame.GetString("tenant"));
      if (tenant.empty()) {
        SendOrDrop(MakeErrFrame(
            Status::InvalidArgument("HELLO requires tenant=<name>")));
        return false;
      }
      tenant_ = std::move(tenant);
      Frame ok = MakeOkFrame("");
      ok.fields["session"] = std::to_string(id_);
      SendOrDrop(ok);
      return true;
    }
    case FrameType::kPing:
      SendOrDrop(MakeOkFrame(""));
      return true;
    case FrameType::kMetrics:
      SendOrDrop(MakeOkFrame(MetricsRegistry::Global().PrometheusText()));
      return true;
    case FrameType::kQuery:
      HandleQuery(frame);
      return true;
    case FrameType::kQuit:
      {
        Frame bye;
        bye.type = FrameType::kBye;
        SendOrDrop(bye);
      }
      return false;
    default:
      SendOrDrop(MakeErrFrame(Status::InvalidArgument(
          std::string("unexpected frame type ") + FrameTypeName(frame.type))));
      return false;
  }
}

void Session::HandleQuery(const Frame& frame) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter(kMetricServerQueriesTotal)->Increment();
  const auto started = std::chrono::steady_clock::now();
  if (tenant_.empty()) {
    SendOrDrop(MakeErrFrame(
        Status::InvalidArgument("QUERY before HELLO: no tenant bound")));
    return;
  }
  // Per-query deadline: the frame's deadline_ms, else the server default;
  // an explicit deadline_ms=0 means "no deadline" (trusted clients only).
  double deadline_seconds = server_->options().default_deadline_seconds;
  if (frame.fields.count("deadline_ms") > 0) {
    deadline_seconds =
        static_cast<double>(frame.GetUint("deadline_ms")) / 1e3;
  }
  const auto deadline =
      deadline_seconds > 0
          ? started + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(deadline_seconds))
          : std::chrono::steady_clock::time_point::max();

  query_in_flight_.store(true, std::memory_order_relaxed);
  auto admitted =
      server_->admission().Acquire(tenant_, deadline);
  if (!admitted.ok()) {
    query_in_flight_.store(false, std::memory_order_relaxed);
    uint64_t retry_after =
        admitted.status().code() == StatusCode::kResourceExhausted
            ? server_->admission().RetryAfterMs()
            : 0;
    SendOrDrop(MakeErrFrame(admitted.status(), retry_after));
    return;
  }
  AdmissionTicket ticket = std::move(admitted.value());
  const AdmissionGrant& grant = ticket.grant();

  RunOptions opts = server_->options().run_template;
  opts.cancel_flag = &cancel_;
  opts.search_node_budget =
      std::min(opts.search_node_budget, grant.node_budget);
  opts.memory_budget_bytes =
      std::min(opts.memory_budget_bytes, grant.memory_budget_bytes);
  if (grant.force_spill &&
      opts.memory_budget_bytes != std::numeric_limits<std::size_t>::max()) {
    opts.enable_spill = true;
  }
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    // Budget what's left after the queue, floored so the run can at least
    // start (its own first checkpoint will trip if the floor was charity).
    opts.deadline_seconds = std::max(
        1e-3, std::chrono::duration<double>(
                  deadline - std::chrono::steady_clock::now())
                  .count());
  } else {
    opts.deadline_seconds = 0;
  }

  // Adaptive feedback loop (DESIGN.md §6h). When enabled, the query runs
  // traced under a shared statistics lock; after a success, the trace is
  // reconciled against the registry under the exclusive lock — a drifted
  // relation's statistics are re-analyzed in place, its stats epoch bumps,
  // and the next query (any session) plans informed. Queries that don't
  // resolve to a single CQ (nested FROM subqueries) run the plain path:
  // they can't be trace-mined, and correctness never depends on feedback.
  const bool feedback = server_->feedback_enabled();
  Tracer tracer;
  std::optional<ResolvedQuery> resolved;
  if (feedback) {
    auto rq = server_->optimizer().Resolve(frame.payload, opts.tid_mode);
    if (rq.ok()) {
      resolved = std::move(rq.value());
      opts.trace.tracer = &tracer;
    }
  }
  Result<QueryRun> run = Status::Internal("query never ran");
  {
    std::shared_lock<std::shared_mutex> stats_lock(server_->stats_mu_,
                                                   std::defer_lock);
    if (feedback) stats_lock.lock();
    run = resolved.has_value()
              ? server_->optimizer().RunResolved(*resolved, opts)
              : server_->optimizer().Run(frame.payload, opts);
  }
  std::size_t feedback_refreshed = 0;
  if (run.ok() && resolved.has_value()) {
    std::unique_lock<std::shared_mutex> stats_lock(server_->stats_mu_);
    FeedbackCollector collector(&server_->optimizer().catalog(),
                                server_->mutable_stats_);
    feedback_refreshed =
        collector.Reconcile(*resolved, tracer).refreshed.size();
  }
  query_in_flight_.store(false, std::memory_order_relaxed);
  ticket.Release();  // frees the slot before the (possibly slow) write

  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  metrics.GetHistogram(kMetricServerQueryLatencyUs)
      ->Record(static_cast<uint64_t>(elapsed * 1e6));
  if (!run.ok()) {
    SendOrDrop(MakeErrFrame(run.status()));
    return;
  }
  Frame ok = MakeOkFrame(
      run->output.ToString(server_->options().max_result_rows));
  ok.fields["rows"] = std::to_string(run->output.NumRows());
  ok.fields["queued_us"] = std::to_string(grant.queue_wait.count());
  ok.fields["plan_ms"] = FormatMs(run->plan_seconds);
  ok.fields["exec_ms"] = FormatMs(run->exec_seconds);
  if (!run->degradations.empty()) {
    ok.fields["degraded"] = std::to_string(run->degradations.size());
  }
  if (grant.degrade_level > 0) {
    ok.fields["admission_level"] = std::to_string(grant.degrade_level);
  }
  if (run->replans > 0) {
    ok.fields["replans"] = std::to_string(run->replans);
  }
  if (feedback_refreshed > 0) {
    ok.fields["feedback_refreshed"] = std::to_string(feedback_refreshed);
  }
  SendOrDrop(ok);
}

}  // namespace htqo

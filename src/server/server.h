// QueryServer: the long-running, multi-session front end (DESIGN.md §6f).
//
// Wraps a Catalog + StatisticsRegistry (both treated as immutable while
// serving) behind the TCP frame protocol, with an AdmissionController
// mapping per-tenant quotas onto per-query ResourceGovernor budgets. All
// sessions share the process-wide ThreadPool (pre-grown once in Start(),
// so pool growth never races in-flight queries), DecompCache, and
// MetricsRegistry — which is the point: a hot query template planned by
// one tenant is a cache hit for every other tenant.
//
// Robustness contract:
//   * admission queues are bounded and deadline-aware; overload degrades
//     per-query service (shrunk budgets, forced spill) before shedding,
//     and sheds carry retry-after hints;
//   * injected faults at server.accept / server.read / server.write /
//     admission.enqueue, or a peer vanishing at any point, end at most
//     that one connection — never the server, never shared state;
//   * Drain() stops accepting, sheds the queues, lets in-flight queries
//     finish until the drain deadline, then cancels stragglers through
//     their governors' cancel flags, and joins every thread. A drained
//     server is fully torn down: Drain is what the destructor runs.
//
// The optional metrics listener speaks just enough HTTP to serve
// GET /metrics (Prometheus text exposition) and the live-introspection
// endpoints GET /debug/{sessions,queues,cache,slow,record/<id>,build}
// (JSON) on a second port.

#ifndef HTQO_SERVER_SERVER_H_
#define HTQO_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/hybrid_optimizer.h"
#include "obs/slo.h"
#include "server/admission.h"
#include "server/session.h"
#include "stats/statistics.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace htqo {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  // Prometheus text endpoint (GET /metrics) on a second listener; port 0 =
  // kernel-assigned. Disabled unless enable_metrics_http is set.
  bool enable_metrics_http = false;
  uint16_t metrics_http_port = 0;
  AdmissionConfig admission;
  // Template for every query run; per-query deadline and the admission
  // grant's budgets/spill overrides are layered on top. num_threads here
  // decides the shared pool size Start() pre-grows.
  RunOptions run_template;
  // Deadline applied when a QUERY frame carries no deadline_ms field (an
  // explicit deadline_ms=0 disables the deadline for that query).
  double default_deadline_seconds = 30;
  double idle_timeout_seconds = 300;   // session dies after this much quiet
  std::size_t max_result_rows = 100;   // result-table render cap
  std::size_t max_sessions = 256;      // concurrent connections cap
  // Adaptive feedback loop (DESIGN.md §6h): after every successful query,
  // mine its trace and re-analyze relations whose statistics have drifted.
  // Requires the mutable-statistics constructor — silently off otherwise.
  // Queries take a shared lock on the registry; a refresh takes the
  // exclusive lock for the (brief) re-analyze, so a burst of sessions never
  // reads statistics mid-rewrite.
  bool enable_feedback = false;

  // --- Observability plane (DESIGN.md §6i) ---
  // Per-query trace export directory. Non-empty arms always-on tracing:
  // every query runs under a Tracer carrying a 128-bit trace id (the
  // client's, when the QUERY frame sent one, else freshly minted), and the
  // export decision is made *after* the run — head-sampled by
  // trace_sample_rate (deterministic on the trace id, so client and server
  // sample the same queries), plus tail capture of queries slower than
  // trace_slow_ms or that errored, plus every query that arrived with
  // client trace context (the stitching case). Files land as
  // trace_<hex>_<pid>.json so per-process halves of one query share a name
  // prefix.
  std::string trace_dir;
  double trace_sample_rate = 0.0;  // head-sampling fraction in [0, 1]
  double trace_slow_ms = 0.0;      // >0: tail-capture threshold
  // Per-tenant SLOs: target p99 + error budget, exported as burn-rate
  // gauges. Tenants absent from tenant_slos get default_slo.
  SloPolicy default_slo;
  std::map<std::string, SloPolicy> tenant_slos;
  // Flight recorder ring size (Start() resizes the process-global ring) and
  // the optional fatal-signal crash-dump target. An empty path installs no
  // signal handlers.
  std::size_t flight_capacity = 1024;
  std::string crash_dump_path;
};

class QueryServer {
 public:
  // The pointees must outlive the server and stay unmodified while it
  // serves (analyze before Start; plan-cache epochs handle the rest).
  QueryServer(const Catalog* catalog, const StatisticsRegistry* stats,
              ServerOptions options);
  // As above with a *mutable* statistics registry: unlocks the
  // enable_feedback path, which re-analyzes drifted relations in place
  // (each refresh bumps that relation's stats epoch, so cached plans
  // self-invalidate). The catalog still stays unmodified.
  QueryServer(const Catalog* catalog, StatisticsRegistry* stats,
              ServerOptions options);
  ~QueryServer();  // drains with a short default deadline if still running

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, pre-grows the shared thread pool, and spawns the
  // accept (and metrics) threads. kInternal on bind/listen failure.
  Status Start();

  // Bound ports, valid after Start() (useful with port = 0).
  uint16_t port() const { return port_; }
  uint16_t metrics_http_port() const { return metrics_http_port_; }

  // Graceful shutdown: stop accepting, shed the admission queues, wait up
  // to `deadline_seconds` for in-flight queries, cancel stragglers, join
  // everything. Idempotent; returns the number of cancelled stragglers
  // through *cancelled (optional).
  Status Drain(double deadline_seconds, std::size_t* cancelled = nullptr);

  bool running() const { return running_.load(std::memory_order_acquire); }

  AdmissionController& admission() { return admission_; }
  SloTracker& slo() { return slo_; }
  const ServerOptions& options() const { return options_; }
  const HybridOptimizer& optimizer() const { return optimizer_; }

  // Live-introspection JSON shared by the DEBUG frame verb and the HTTP
  // /debug/* endpoints. `what` is sessions|queues|cache|slow|record|build;
  // `id` selects a flight record (what=record), `n` bounds the slow log
  // (what=slow, 0 = default). Unknown `what` returns the empty string.
  std::string DebugJson(const std::string& what, uint64_t id, uint64_t n);
  // True when the adaptive feedback loop is active (enable_feedback set AND
  // the server was built over a mutable statistics registry).
  bool feedback_enabled() const {
    return options_.enable_feedback && mutable_stats_ != nullptr;
  }

 private:
  friend class Session;

  void AcceptLoop();
  void MetricsLoop();
  // Drops finished sessions (joining their threads); called from the
  // accept loop between accepts and from Drain.
  void ReapFinishedLocked();

  ServerOptions options_;
  HybridOptimizer optimizer_;
  AdmissionController admission_;
  SloTracker slo_;
  // Feedback path (nullptr under the const-statistics constructor).
  // stats_mu_ arbitrates sessions (shared: plan + run) against the
  // feedback refresh (exclusive: StatisticsRegistry::Put).
  StatisticsRegistry* mutable_stats_ = nullptr;
  std::shared_mutex stats_mu_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t metrics_http_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread metrics_thread_;

  struct SessionHandle {
    std::unique_ptr<Session> session;
    std::thread thread;
  };
  std::mutex sessions_mu_;
  std::vector<SessionHandle> sessions_;
  uint64_t next_session_id_ = 1;
};

}  // namespace htqo

#endif  // HTQO_SERVER_SERVER_H_

// Admission control for the query server: per-tenant quotas, bounded FIFO
// queues, deadline-aware rejection, a budget-shrinking degradation ladder,
// and load shedding — the admit -> queue -> degrade -> shed -> drain state
// machine of DESIGN.md §6f.
//
// The controller owns no sockets and runs no queries; it only decides
// *whether* and *with what budgets* a query may run, which makes it unit-
// testable without a server. Sessions call Acquire() before planning and
// destroy the returned AdmissionTicket when the query finishes.
//
// Decision order for a QUERY from tenant T with deadline D:
//
//   1. draining          -> shed (kResourceExhausted + retry-after): the
//                           server is winding down; retry elsewhere/later.
//   2. D already passed  -> kDeadlineExceeded immediately.
//   3. free slot for T   -> admit now. The grant's governor budgets are the
//                           process budgets scaled by T's shares
//                           (ScaleBudget), then shrunk by the current
//                           degradation level: level 1 halves them, level 2
//                           quarters them and forces spill-to-disk. The
//                           ladder degrades service before refusing it.
//   4. queue full for T  -> shed (kResourceExhausted + retry-after hint
//                           sized from the EMA of recent query durations).
//   5. would expire in   -> kDeadlineExceeded immediately: estimated wait
//      queue                (queue position x EMA duration / slots) already
//                           overshoots D, so queueing would only burn the
//                           client's budget. Never queue a corpse.
//   6. otherwise         -> queue (FIFO within the tenant), woken either by
//                           a freed slot, by D expiring (kDeadlineExceeded),
//                           or by drain starting (shed).
//
// The `admission.enqueue` fault site fires between steps 5 and 6: a query
// that would have queued is shed instead, exactly as if the queue had no
// room — clients see the standard retry-after contract.
//
// Thread safety: one mutex guards all state; waiters block on a single
// condition variable and re-check "am I the head of my tenant's queue and
// is a slot free". Wakeups scan tenants round-robin from after the last
// admitted tenant, so one chatty tenant cannot starve the others.

#ifndef HTQO_SERVER_ADMISSION_H_
#define HTQO_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "util/governor.h"
#include "util/status.h"

namespace htqo {

struct TenantQuota {
  std::size_t max_concurrent = 2;   // running queries
  std::size_t max_queue_depth = 8;  // waiting queries beyond the running ones
  // Shares of the process-wide budgets granted to each of this tenant's
  // queries (clamped to (0, 1]; unlimited budgets stay unlimited).
  double memory_share = 1.0;
  double node_share = 1.0;
};

struct AdmissionConfig {
  // Hard cap on queries running concurrently across all tenants. This is
  // what maps tenant quotas onto the shared ThreadPool: total parallelism
  // is bounded by max_total_concurrent x per-query num_threads.
  std::size_t max_total_concurrent = 4;
  // Process-wide budgets the per-tenant shares divide (SIZE_MAX = none).
  std::size_t memory_budget_bytes = std::numeric_limits<std::size_t>::max();
  std::size_t node_budget = std::numeric_limits<std::size_t>::max();
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;  // by tenant name
  // Degradation ladder thresholds, as fractions of pressure (the max of
  // slot occupancy and aggregate queue occupancy). Crossing degrade_at
  // grants half budgets; crossing degrade_hard_at grants quarter budgets
  // and forces the spill path. Shedding only happens past both: when a
  // tenant's queue is full or the deadline math says queueing is futile.
  double degrade_at = 0.5;
  double degrade_hard_at = 0.75;
  // Seed EMA for the retry-after / would-expire estimates before any query
  // has completed.
  double initial_query_seconds = 0.05;
  // Bounds on the retry-after hint the EMA pricing may emit. The floor
  // keeps a cold (or microsecond-query) EMA from telling clients to hammer
  // the server back instantly; the cap keeps one pathological slow query
  // from parking every client for minutes. Sanitized in the constructor:
  // floor is clamped to >= 1ms, cap to >= floor.
  double retry_after_floor_ms = 10.0;
  double retry_after_cap_ms = 10000.0;
};

class AdmissionController;

// What an admitted query runs with. Returned inside an AdmissionTicket;
// the session translates it into RunOptions / governor budgets.
struct AdmissionGrant {
  std::string tenant;
  int degrade_level = 0;  // 0 = full budgets, 1 = halved, 2 = quartered
  std::size_t memory_budget_bytes = std::numeric_limits<std::size_t>::max();
  std::size_t node_budget = std::numeric_limits<std::size_t>::max();
  bool force_spill = false;  // level 2: spill rather than trip memory
  bool waited = false;       // went through the queue
  std::chrono::microseconds queue_wait{0};
};

// RAII slot: releases the tenant's concurrency slot (and wakes the next
// eligible waiter) on destruction, feeding the query's duration back into
// the EMA that prices retry-after hints and would-expire estimates.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionController* owner, AdmissionGrant grant);
  AdmissionTicket(AdmissionTicket&& other) noexcept;
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket();

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  const AdmissionGrant& grant() const { return grant_; }
  bool valid() const { return owner_ != nullptr; }
  void Release();  // idempotent early release

 private:
  AdmissionController* owner_ = nullptr;
  AdmissionGrant grant_;
  std::chrono::steady_clock::time_point admitted_at_;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(AdmissionConfig config);

  // Blocks until admitted, the deadline passes, drain starts, or the
  // request is shed. Error codes follow the header comment's state machine:
  // kResourceExhausted = shed (message carries the admission-shed governor
  // suffix; pair with RetryAfterMs for the client hint), kDeadlineExceeded
  // = the query's own deadline. `deadline` = time_point::max() means none.
  Result<AdmissionTicket> Acquire(const std::string& tenant,
                                  Clock::time_point deadline);

  // Stops admitting: queued waiters and future Acquires are shed. Running
  // queries are unaffected (the server cancels stragglers separately).
  void BeginDrain();
  bool draining() const;

  // Suggested client backoff right now: scales with how oversubscribed the
  // slots are, priced by the recent-duration EMA and clamped to
  // [retry_after_floor_ms, retry_after_cap_ms].
  uint64_t RetryAfterMs() const;

  // Feeds one observed query duration into the retry-after EMA without
  // touching slot accounting — for callers that time queries outside the
  // ticket, and for tests steering the pricing.
  void NoteQueryDuration(double query_seconds);

  struct Snapshot {
    std::size_t active_total = 0;
    std::size_t waiting_total = 0;
    uint64_t admitted = 0;       // total grants handed out
    uint64_t queued = 0;         // grants that waited first
    uint64_t shed = 0;           // queue-full / fault / drain rejections
    uint64_t queue_timeouts = 0; // deadline died in (or would die in) queue
    uint64_t degraded = 0;       // grants at level >= 1
    double pressure = 0.0;       // instantaneous [0,1] ladder input
    int degrade_level = 0;       // ladder level implied by pressure
    bool draining = false;
    uint64_t retry_after_ms = 0; // hint the shedder would emit right now
    std::map<std::string, std::size_t> waiting_by_tenant;
    std::map<std::string, std::size_t> active_by_tenant;
    // Per-tenant occupancy vs. quota for /debug/queues — every tenant seen
    // since startup, idle ones included.
    struct TenantInfo {
      std::size_t active = 0;
      std::size_t waiting = 0;
      std::size_t max_concurrent = 0;
      std::size_t max_queue_depth = 0;
    };
    std::map<std::string, TenantInfo> tenants;
  };
  Snapshot snapshot() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  friend class AdmissionTicket;

  struct Waiter {
    bool admitted = false;
    bool shed = false;  // drain arrived while queued
    // Ladder level snapshotted by AdmitNextLocked while this waiter still
    // counts toward queue pressure — its own demand is part of the overload
    // it gets degraded for.
    int degrade_level = 0;
  };
  struct Tenant {
    TenantQuota quota;
    std::size_t active = 0;
    std::deque<Waiter*> queue;  // FIFO: head = next to admit
    // Labeled mirrors of the admission counters (htqo_tenant_*{tenant=...}),
    // resolved once when the tenant is first seen (DESIGN.md §6i).
    class Counter* m_admitted = nullptr;
    class Counter* m_queued = nullptr;
    class Counter* m_shed = nullptr;
    class Counter* m_timeout = nullptr;
    class Counter* m_degraded = nullptr;
    class Histogram* m_queue_wait_us = nullptr;
  };

  void Release(const std::string& tenant, double query_seconds);
  Tenant& TenantState(const std::string& name);
  // Pressure in [0, 1]: max of slot occupancy and queue occupancy.
  double PressureLocked() const;
  int DegradeLevelLocked() const;
  // level_override >= 0 uses a pre-snapshotted ladder level (queued
  // admissions) instead of the instantaneous pressure.
  AdmissionGrant GrantLocked(const std::string& tenant, Tenant& t,
                             bool waited, std::chrono::microseconds wait,
                             int level_override = -1);
  // Wakes the next eligible head-of-queue waiter, round-robin over tenants.
  void AdmitNextLocked();
  uint64_t RetryAfterMsLocked() const;

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;
  std::size_t active_total_ = 0;
  std::size_t waiting_total_ = 0;
  bool draining_ = false;
  double ema_query_seconds_;
  // Round-robin cursor: name of the tenant admitted most recently.
  std::string last_admitted_tenant_;
  // Counter mirrors for snapshot(); the MetricsRegistry gets the same
  // increments (resolved once in the constructor).
  uint64_t admitted_ = 0;
  uint64_t queued_ = 0;
  uint64_t shed_ = 0;
  uint64_t queue_timeouts_ = 0;
  uint64_t degraded_ = 0;
  class Counter* metric_admitted_;
  class Counter* metric_queued_;
  class Counter* metric_shed_;
  class Counter* metric_timeout_;
  class Counter* metric_degraded_;
  class Histogram* metric_queue_wait_us_;
};

}  // namespace htqo

#endif  // HTQO_SERVER_ADMISSION_H_

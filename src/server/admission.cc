#include "server/admission.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/fault_injector.h"

namespace htqo {

AdmissionTicket::AdmissionTicket(AdmissionController* owner,
                                 AdmissionGrant grant)
    : owner_(owner),
      grant_(std::move(grant)),
      admitted_at_(std::chrono::steady_clock::now()) {}

AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : owner_(other.owner_),
      grant_(std::move(other.grant_)),
      admitted_at_(other.admitted_at_) {
  other.owner_ = nullptr;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = other.owner_;
    grant_ = std::move(other.grant_);
    admitted_at_ = other.admitted_at_;
    other.owner_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() { Release(); }

void AdmissionTicket::Release() {
  if (owner_ == nullptr) return;
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - admitted_at_)
                       .count();
  owner_->Release(grant_.tenant, seconds);
  owner_ = nullptr;
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)),
      ema_query_seconds_(std::max(1e-4, config_.initial_query_seconds)) {
  if (config_.max_total_concurrent == 0) config_.max_total_concurrent = 1;
  config_.retry_after_floor_ms = std::max(1.0, config_.retry_after_floor_ms);
  config_.retry_after_cap_ms =
      std::max(config_.retry_after_floor_ms, config_.retry_after_cap_ms);
  MetricsRegistry& m = MetricsRegistry::Global();
  metric_admitted_ = m.GetCounter(kMetricAdmissionAdmittedTotal);
  metric_queued_ = m.GetCounter(kMetricAdmissionQueuedTotal);
  metric_shed_ = m.GetCounter(kMetricAdmissionShedTotal);
  metric_timeout_ = m.GetCounter(kMetricAdmissionQueueTimeoutTotal);
  metric_degraded_ = m.GetCounter(kMetricAdmissionDegradedTotal);
  metric_queue_wait_us_ = m.GetHistogram(kMetricAdmissionQueueWaitUs);
}

AdmissionController::Tenant& AdmissionController::TenantState(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    auto q = config_.tenant_quotas.find(name);
    t.quota = q == config_.tenant_quotas.end() ? config_.default_quota
                                               : q->second;
    t.quota.max_concurrent = std::max<std::size_t>(1, t.quota.max_concurrent);
    MetricsRegistry& m = MetricsRegistry::Global();
    t.m_admitted = m.GetCounter(TenantMetricName(kMetricTenantAdmittedTotal, name));
    t.m_queued = m.GetCounter(TenantMetricName(kMetricTenantQueuedTotal, name));
    t.m_shed = m.GetCounter(TenantMetricName(kMetricTenantShedTotal, name));
    t.m_timeout =
        m.GetCounter(TenantMetricName(kMetricTenantQueueTimeoutTotal, name));
    t.m_degraded =
        m.GetCounter(TenantMetricName(kMetricTenantDegradedTotal, name));
    t.m_queue_wait_us =
        m.GetHistogram(TenantMetricName(kMetricTenantQueueWaitUs, name));
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

double AdmissionController::PressureLocked() const {
  // Queue-driven pressure: the ladder only engages once demand exceeds the
  // slots (waiters exist), so an unloaded server always grants full budgets.
  double queue_occ = 0;
  for (const auto& [name, t] : tenants_) {
    if (t.quota.max_queue_depth == 0 || t.queue.empty()) continue;
    queue_occ = std::max(queue_occ,
                         static_cast<double>(t.queue.size()) /
                             static_cast<double>(t.quota.max_queue_depth));
  }
  double global_occ = std::min(
      1.0, static_cast<double>(waiting_total_) /
               static_cast<double>(config_.max_total_concurrent));
  return std::max(queue_occ, global_occ);
}

int AdmissionController::DegradeLevelLocked() const {
  double p = PressureLocked();
  if (p >= config_.degrade_hard_at) return 2;
  if (p >= config_.degrade_at) return 1;
  return 0;
}

AdmissionGrant AdmissionController::GrantLocked(
    const std::string& tenant, Tenant& t, bool waited,
    std::chrono::microseconds wait, int level_override) {
  AdmissionGrant g;
  g.tenant = tenant;
  g.degrade_level =
      level_override >= 0 ? level_override : DegradeLevelLocked();
  g.waited = waited;
  g.queue_wait = wait;
  // Tenant share of the process budgets, then the ladder: each level halves
  // again. ScaleBudget preserves the "unlimited" sentinel throughout.
  double ladder = 1.0 / static_cast<double>(1u << g.degrade_level);
  g.memory_budget_bytes = ScaleBudget(
      ScaleBudget(config_.memory_budget_bytes, t.quota.memory_share), ladder);
  g.node_budget =
      ScaleBudget(ScaleBudget(config_.node_budget, t.quota.node_share), ladder);
  g.force_spill = g.degrade_level >= 2;
  ++admitted_;
  metric_admitted_->Increment();
  t.m_admitted->Increment();
  if (waited) {
    ++queued_;
    metric_queued_->Increment();
    t.m_queued->Increment();
  }
  if (g.degrade_level >= 1) {
    ++degraded_;
    metric_degraded_->Increment();
    t.m_degraded->Increment();
  }
  metric_queue_wait_us_->Record(static_cast<uint64_t>(wait.count()));
  t.m_queue_wait_us->Record(static_cast<uint64_t>(wait.count()));
  return g;
}

void AdmissionController::AdmitNextLocked() {
  bool woke = false;
  // Round-robin over tenant names, starting after the last admitted tenant,
  // so a freed slot rotates across tenants instead of always favoring the
  // alphabetically-first backlog.
  while (active_total_ < config_.max_total_concurrent) {
    auto start = tenants_.upper_bound(last_admitted_tenant_);
    Tenant* chosen = nullptr;
    std::string chosen_name;
    for (std::size_t i = 0, n = tenants_.size(); i < n; ++i) {
      if (start == tenants_.end()) start = tenants_.begin();
      Tenant& t = start->second;
      if (!t.queue.empty() && t.active < t.quota.max_concurrent) {
        chosen = &t;
        chosen_name = start->first;
        break;
      }
      ++start;
    }
    if (chosen == nullptr) break;
    Waiter* w = chosen->queue.front();
    // Snapshot the ladder level while the waiter still counts as demand:
    // being queued at all means the slots were oversubscribed, and that is
    // the pressure this grant is degraded for.
    w->degrade_level = DegradeLevelLocked();
    chosen->queue.pop_front();
    --waiting_total_;
    // Slot accounting happens here, before the waiter wakes, so a racing
    // Acquire cannot steal the slot the waiter was promised; the waiter
    // finishes its own grant bookkeeping when it reacquires the lock.
    ++chosen->active;
    ++active_total_;
    w->admitted = true;
    last_admitted_tenant_ = chosen_name;
    woke = true;
  }
  if (woke) cv_.notify_all();
}

Result<AdmissionTicket> AdmissionController::Acquire(
    const std::string& tenant, Clock::time_point deadline) {
  const auto arrival = Clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  Tenant& t = TenantState(tenant);
  if (draining_) {
    ++shed_;
    metric_shed_->Increment();
    t.m_shed->Increment();
    return AdmissionShedStatus("server is draining");
  }
  if (deadline != Clock::time_point::max() && arrival >= deadline) {
    ++queue_timeouts_;
    metric_timeout_->Increment();
    t.m_timeout->Increment();
    return Status::DeadlineExceeded(
        "deadline expired before admission [governor trip: deadline]");
  }
  if (t.queue.empty() && t.active < t.quota.max_concurrent &&
      active_total_ < config_.max_total_concurrent) {
    ++t.active;
    ++active_total_;
    AdmissionGrant g =
        GrantLocked(tenant, t, /*waited=*/false, std::chrono::microseconds(0));
    lock.unlock();
    return AdmissionTicket(this, std::move(g));
  }
  // The query must queue. Bounded: a full tenant queue sheds immediately.
  if (t.queue.size() >= t.quota.max_queue_depth) {
    ++shed_;
    metric_shed_->Increment();
    t.m_shed->Increment();
    return AdmissionShedStatus("admission queue full for tenant '" + tenant +
                               "' (" + std::to_string(t.quota.max_queue_depth) +
                               " waiting)");
  }
  // Deadline-aware: when the queue-position estimate already overshoots the
  // deadline, reject now instead of burning the client's budget in line.
  if (deadline != Clock::time_point::max()) {
    double est_wait_seconds =
        ema_query_seconds_ *
        static_cast<double>(t.queue.size() + 1 + active_total_) /
        static_cast<double>(config_.max_total_concurrent);
    auto est_admit =
        arrival + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(est_wait_seconds));
    if (est_admit >= deadline) {
      ++queue_timeouts_;
      metric_timeout_->Increment();
      t.m_timeout->Increment();
      return Status::DeadlineExceeded(
          "deadline would expire in admission queue (estimated wait " +
          std::to_string(est_wait_seconds) + "s) [governor trip: deadline]");
    }
  }
  if (FaultInjector::Instance().ShouldFail(kFaultSiteAdmissionEnqueue)) {
    ++shed_;
    metric_shed_->Increment();
    t.m_shed->Increment();
    return AdmissionShedStatus("injected fault at admission.enqueue");
  }
  Waiter w;
  t.queue.push_back(&w);
  ++waiting_total_;
  while (!w.admitted && !w.shed) {
    if (deadline == Clock::time_point::max()) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
               !w.admitted && !w.shed) {
      auto it = std::find(t.queue.begin(), t.queue.end(), &w);
      if (it != t.queue.end()) {
        t.queue.erase(it);
        --waiting_total_;
      }
      ++queue_timeouts_;
      metric_timeout_->Increment();
      t.m_timeout->Increment();
      return Status::DeadlineExceeded(
          "deadline expired in admission queue [governor trip: deadline]");
    }
  }
  if (w.shed) {
    // BeginDrain already removed us from the queue and counted the shed.
    return AdmissionShedStatus("server is draining");
  }
  // AdmitNextLocked granted the slot; finish the bookkeeping ourselves,
  // at the ladder level snapshotted while we were still queued demand.
  auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - arrival);
  AdmissionGrant g =
      GrantLocked(tenant, t, /*waited=*/true, wait, w.degrade_level);
  lock.unlock();
  return AdmissionTicket(this, std::move(g));
}

void AdmissionController::Release(const std::string& tenant,
                                  double query_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.active > 0) {
    --it->second.active;
  }
  if (active_total_ > 0) --active_total_;
  // EMA of recent query durations prices the retry-after hints and the
  // would-expire estimates. 0.2 weight: reactive but not jumpy.
  ema_query_seconds_ =
      0.8 * ema_query_seconds_ + 0.2 * std::max(query_seconds, 1e-4);
  AdmitNextLocked();
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) return;
  draining_ = true;
  for (auto& [name, t] : tenants_) {
    for (Waiter* w : t.queue) {
      w->shed = true;
      ++shed_;
      metric_shed_->Increment();
      t.m_shed->Increment();
    }
    t.queue.clear();
  }
  waiting_total_ = 0;
  cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

uint64_t AdmissionController::RetryAfterMsLocked() const {
  double oversubscription =
      static_cast<double>(waiting_total_ + active_total_ + 1) /
      static_cast<double>(config_.max_total_concurrent);
  double ms = ema_query_seconds_ * 1e3 * oversubscription;
  return static_cast<uint64_t>(std::clamp(ms, config_.retry_after_floor_ms,
                                          config_.retry_after_cap_ms));
}

uint64_t AdmissionController::RetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterMsLocked();
}

void AdmissionController::NoteQueryDuration(double query_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ema_query_seconds_ =
      0.8 * ema_query_seconds_ + 0.2 * std::max(query_seconds, 1e-4);
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.active_total = active_total_;
  s.waiting_total = waiting_total_;
  s.admitted = admitted_;
  s.queued = queued_;
  s.shed = shed_;
  s.queue_timeouts = queue_timeouts_;
  s.degraded = degraded_;
  s.pressure = PressureLocked();
  s.degrade_level = DegradeLevelLocked();
  s.draining = draining_;
  s.retry_after_ms = RetryAfterMsLocked();
  for (const auto& [name, t] : tenants_) {
    if (!t.queue.empty()) s.waiting_by_tenant[name] = t.queue.size();
    if (t.active > 0) s.active_by_tenant[name] = t.active;
    Snapshot::TenantInfo info;
    info.active = t.active;
    info.waiting = t.queue.size();
    info.max_concurrent = t.quota.max_concurrent;
    info.max_queue_depth = t.quota.max_queue_depth;
    s.tenants[name] = info;
  }
  return s;
}

}  // namespace htqo

// Wire protocol for the htqo query server: line/length-prefixed frames.
//
// Every frame is one ASCII header line terminated by '\n', optionally
// followed by a binary payload of exactly the byte count named by the
// header's `len=` field:
//
//   frame       := header-line payload?
//   header-line := type field* '\n'
//   field       := ' ' key '=' value
//   payload     := len bytes (present iff len > 0)
//
// Types (client -> server): HELLO, QUERY, PING, METRICS, DEBUG, QUIT.
// Types (server -> client): OK, ERR, BYE.
//
//   HELLO tenant=<name>                 first frame on a connection
//   QUERY len=<n> [deadline_ms=<d>]     n bytes of SQL follow
//         [trace_id=<32hex>]            wire trace context (DESIGN.md §6i):
//         [parent_span=<pid:id>]        the server's query spans stitch
//                                       under the client's span
//   PING                                liveness probe -> OK len=0
//   METRICS                             -> OK with Prometheus text payload
//   DEBUG what=<w> [id=<n>] [n=<k>]     -> OK with JSON payload; <w> is one
//                                       of sessions|queues|cache|slow|
//                                       record|build (id selects a flight
//                                       record, n bounds the slow log)
//   QUIT                                -> BYE, connection closes
//
//   OK len=<n> [rows=<r>] [queued_us=<q>] [plan_ms=<p>] [exec_ms=<e>]
//      [degraded=<d>] [record=<id>]     payload = rendered result table;
//                                       record = flight-recorder id of this
//                                       query (/debug/record/<id>)
//   ERR code=<code> len=<n> [retry_after_ms=<t>]
//                                       payload = human-readable message
//
// <code> is the kebab-case StatusCode name (invalid-argument, not-found,
// resource-exhausted, deadline-exceeded, internal). resource-exhausted
// responses carrying retry_after_ms are the load shedder speaking: the
// client contract is to back off at least that long (with jitter) before
// retrying. deadline-exceeded is never retryable — the query's own budget
// is gone.
//
// Values are space-free ASCII tokens; anything free-form (SQL, result
// tables, error text) travels in the length-prefixed payload, so the
// header grammar never needs quoting. Limits: header line <= 4096 bytes,
// payload <= 64 MiB — both enforced on read so a malicious peer cannot
// balloon server memory.
//
// The socket helpers route through the `server.read` / `server.write`
// fault sites; an injected failure surfaces as a clean kInternal Status,
// exactly like a peer that vanished mid-frame.

#ifndef HTQO_SERVER_PROTOCOL_H_
#define HTQO_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace htqo {

enum class FrameType {
  kHello,
  kQuery,
  kPing,
  kMetrics,
  kDebug,
  kQuit,
  kOk,
  kErr,
  kBye,
};

const char* FrameTypeName(FrameType type);

// StatusCode <-> wire `code=` token.
const char* StatusCodeWireName(StatusCode code);
StatusCode StatusCodeFromWireName(std::string_view name);

struct Frame {
  FrameType type = FrameType::kPing;
  // Header key/value fields, excluding `len` (implied by payload.size()).
  std::map<std::string, std::string, std::less<>> fields;
  std::string payload;

  // Field accessors with defaults; numeric parses that fail return `def`.
  std::string_view GetString(std::string_view key,
                             std::string_view def = "") const;
  uint64_t GetUint(std::string_view key, uint64_t def = 0) const;

  // Serializes header line + payload, ready for a single write.
  std::string Serialize() const;
};

inline constexpr std::size_t kMaxHeaderBytes = 4096;
inline constexpr std::size_t kMaxPayloadBytes = 64ull << 20;

// Parses one header line (without the trailing '\n') into `frame` (type and
// fields; payload left empty) and reports the payload length the caller
// must read next. Unknown types, malformed fields, and oversized lengths
// are kInvalidArgument.
Status ParseFrameHeader(std::string_view line, Frame* frame,
                        std::size_t* payload_len);

// Blocking frame I/O over a connected socket. ReadFrame enforces the
// header/payload limits and returns:
//   kOk               a complete frame was read
//   kNotFound         clean EOF before any header byte (peer closed)
//   kDeadlineExceeded no complete frame within `timeout_ms` (<=0 = forever)
//   kInvalidArgument  malformed or oversized frame
//   kInternal         socket error, or the server.read fault site fired
// `carry` holds bytes read past the previous frame; pass the same buffer
// for every read on one connection.
Status ReadFrame(int fd, std::string* carry, Frame* frame, int timeout_ms);

// Writes frame.Serialize() fully; kInternal on socket error or when the
// server.write fault site fires. Uses MSG_NOSIGNAL so a vanished peer is a
// Status, never a SIGPIPE.
Status WriteFrame(int fd, const Frame& frame);

// Convenience constructors for the common server responses.
Frame MakeOkFrame(std::string payload);
Frame MakeErrFrame(const Status& status, uint64_t retry_after_ms = 0);

}  // namespace htqo

#endif  // HTQO_SERVER_PROTOCOL_H_

// One connected client: frame loop, per-session state, idle timeout.
//
// A Session owns its socket and runs on its own thread (the server spawns
// one per accepted connection; query *concurrency* is bounded by the
// admission controller, not the session count). The lifecycle:
//
//   HELLO tenant=<t>            binds the session to a tenant
//   QUERY ...                   admission -> run -> OK/ERR response
//   PING / METRICS / DEBUG      served without admission (cheap, bounded)
//   QUIT / EOF / idle timeout   session ends
//
// Queries run synchronously on the session thread between frames, so a
// session never has a query in flight while blocked in a read — which is
// what makes teardown safe: a peer that vanishes mid-query is discovered
// on the response write, the admission ticket is released by RAII, and no
// shared state (cache, metrics, catalog) is left inconsistent.
//
// Drain protocol: RequestDrain() makes the frame loop exit at the next
// poll slice (idle sessions) or after the in-flight query completes (busy
// sessions). Cancel() additionally flips the session's cancel flag — every
// governor the session's queries create polls it — and half-closes the
// socket, unblocking any read. The server escalates from RequestDrain to
// Cancel when the drain deadline expires.

#ifndef HTQO_SERVER_SESSION_H_
#define HTQO_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace htqo {

class Counter;
class Histogram;
class QueryServer;

class Session {
 public:
  // `fd` is an accepted, connected socket; the session owns and closes it.
  Session(QueryServer* server, int fd, uint64_t id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Blocking frame loop; returns when the session ends (QUIT, EOF, error,
  // idle timeout, or drain). Runs on the session's thread.
  void Run();

  // Cooperative teardown (callable from any thread).
  void RequestDrain() { drain_requested_.store(true, std::memory_order_relaxed); }
  // Drain escalation: cancel the in-flight query (if any) and unblock
  // reads. The session still exits through its normal cleanup path.
  void Cancel();

  uint64_t id() const { return id_; }
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  // True while a query is between admission and response — the drain path
  // uses this to distinguish stragglers (cancelled) from idle sessions.
  bool query_in_flight() const {
    return query_in_flight_.load(std::memory_order_relaxed);
  }

  // Cross-thread view for /debug/sessions. The tenant copy is taken under
  // the same mutex HELLO writes it under; the counters are relaxed atomics.
  struct StatsView {
    uint64_t id = 0;
    std::string tenant;
    bool in_flight = false;
    uint64_t queries = 0;
    uint64_t errors = 0;
    uint64_t last_record_id = 0;  // flight-recorder id of the last query
  };
  StatsView Stats() const;

 private:
  // One frame dispatch; false = end the session.
  bool HandleFrame(const Frame& frame);
  void HandleQuery(const Frame& frame);
  void SendOrDrop(const Frame& frame);

  QueryServer* server_;
  int fd_;
  uint64_t id_;
  std::string tenant_;  // empty until HELLO; only the session thread writes
  std::string carry_;   // read-ahead buffer shared across ReadFrame calls
  // Guards tenant_ against the /debug/sessions reader (the only other
  // thread that ever looks at it).
  mutable std::mutex meta_mu_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> cancel_{false};  // RunOptions::cancel_flag pointee
  std::atomic<bool> query_in_flight_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> query_errors_{0};
  std::atomic<uint64_t> last_record_id_{0};
  // Per-tenant labeled metric handles (htqo_tenant_*{tenant=...}), resolved
  // once at HELLO so the per-query path stays registry-lookup-free.
  Counter* m_queries_ = nullptr;
  Counter* m_errors_ = nullptr;
  Histogram* m_latency_us_ = nullptr;
  Counter* m_spill_bytes_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_cache_misses_ = nullptr;
  Counter* m_replans_ = nullptr;
};

}  // namespace htqo

#endif  // HTQO_SERVER_SESSION_H_

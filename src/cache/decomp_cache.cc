#include "cache/decomp_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "stats/statistics.h"
#include "util/fault_injector.h"

namespace htqo {

namespace {

// Approximate retained footprint of an entry: tree nodes with their bitset
// words and child lists, plus the epoch snapshot and the key certificate it
// is stored under. Order-of-magnitude accounting is enough for an LRU byte
// budget.
std::size_t EstimateEntryBytes(const DecompCache::Entry& entry,
                               const PlanCacheKey& key) {
  std::size_t bytes = sizeof(DecompCache::Entry) + key.certificate.size();
  const std::size_t chi_words = (entry.num_vertices + 63) / 64;
  const std::size_t lambda_words = (entry.num_edges + 63) / 64;
  for (std::size_t i = 0; i < entry.canon_hd.NumNodes(); ++i) {
    const HypertreeNode& n = entry.canon_hd.node(i);
    bytes += sizeof(HypertreeNode) + 8 * (chi_words + lambda_words) +
             8 * (n.children.size() + n.priority_children.size());
  }
  for (const auto& [name, epoch] : entry.epochs) {
    bytes += sizeof(std::pair<std::string, uint64_t>) + name.size();
  }
  return bytes;
}

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* stale;
  Counter* singleflight_waits;
  Histogram* hit_latency_us;

  static CacheMetrics& Get() {
    static CacheMetrics* m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return new CacheMetrics{
          reg.GetCounter(kMetricPlanCacheHitsTotal),
          reg.GetCounter(kMetricPlanCacheMissesTotal),
          reg.GetCounter(kMetricPlanCacheEvictionsTotal),
          reg.GetCounter(kMetricPlanCacheStaleTotal),
          reg.GetCounter(kMetricPlanCacheSingleflightWaitsTotal),
          reg.GetHistogram(kMetricPlanCacheHitLatencyUs)};
    }();
    return *m;
  }
};

std::string FingerprintHex(const PlanCacheKey& key) {
  char buf[34];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return buf;
}

}  // namespace

PlanCacheKey PlanCacheKey::FromCertificate(std::string certificate) {
  PlanCacheKey key;
  key.certificate = std::move(certificate);
  Fingerprint128(key.certificate, &key.lo, &key.hi);
  return key;
}

DecompCache::DecompCache(std::size_t byte_budget, std::size_t num_shards)
    : byte_budget_(byte_budget) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DecompCache& DecompCache::Global() {
  static DecompCache* cache = new DecompCache();
  return *cache;
}

DecompCache::AcquireResult DecompCache::Acquire(const PlanCacheKey& key,
                                                const Validator& fresh,
                                                ResourceGovernor* governor) {
  CacheMetrics& metrics = CacheMetrics::Get();
  const std::pair<uint64_t, uint64_t> kp{key.lo, key.hi};
  Shard& s = shard(key);
  AcquireResult result;
  std::unique_lock<std::mutex> lock(s.mu);
  for (;;) {
    auto it = s.table.find(kp);
    if (it != s.table.end() && it->second.certificate == key.certificate) {
      if (fresh == nullptr || fresh(*it->second.entry)) {
        s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        metrics.hits->Increment();
        result.kind = AcquireKind::kHit;
        result.entry = it->second.entry;
        return result;
      }
      // Stale: drop it and fall through to claiming the recompute.
      s.bytes -= it->second.entry->bytes;
      s.lru.erase(it->second.lru_it);
      s.table.erase(it);
      stale_.fetch_add(1, std::memory_order_relaxed);
      metrics.stale->Increment();
      result.stale = true;
    } else if (it != s.table.end()) {
      // 128-bit fingerprint collision with a different certificate: treat
      // as a miss; Publish will overwrite the colliding slot.
      s.bytes -= it->second.entry->bytes;
      s.lru.erase(it->second.lru_it);
      s.table.erase(it);
    }
    auto fit = s.flights.find(kp);
    if (fit == s.flights.end()) {
      s.flights.emplace(kp, std::make_shared<Flight>());
      misses_.fetch_add(1, std::memory_order_relaxed);
      metrics.misses->Increment();
      result.kind = AcquireKind::kOwner;
      return result;
    }
    // Someone else is computing this fingerprint: wait for their Publish,
    // checking the governor so a deadline still fires mid-wait.
    result.waited = true;
    std::shared_ptr<Flight> flight = fit->second;
    while (!flight->done) {
      if (governor != nullptr) {
        s.cv.wait_for(lock, std::chrono::milliseconds(2));
        Status st = governor->Check();
        if (!st.ok()) {
          result.kind = AcquireKind::kTripped;
          result.status = st;
          return result;
        }
      } else {
        s.cv.wait(lock);
      }
    }
    singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
    metrics.singleflight_waits->Increment();
    if (flight->result != nullptr) {
      result.kind = AcquireKind::kShared;
      result.entry = flight->result;
      return result;
    }
    // The owner's search failed; every waiter computes (and fails or
    // degrades) under its own budgets, without re-claiming the flight.
    result.kind = AcquireKind::kRetry;
    return result;
  }
}

void DecompCache::Publish(const PlanCacheKey& key, EntryPtr entry) {
  const std::pair<uint64_t, uint64_t> kp{key.lo, key.hi};
  Shard& s = shard(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto fit = s.flights.find(kp);
  if (fit != s.flights.end()) {
    fit->second->done = true;
    fit->second->result = entry;
    s.flights.erase(fit);
  }
  s.cv.notify_all();
  if (entry != nullptr) InsertLocked(&s, key, std::move(entry));
}

void DecompCache::InsertLocked(Shard* s, const PlanCacheKey& key,
                               EntryPtr entry) {
  // Injected insert failure: the computed result was already handed to the
  // caller and any waiters; only the retain degrades (to a future miss).
  if (FaultInjector::Instance().ShouldFail(kFaultSiteCacheInsert)) return;
  CacheMetrics& metrics = CacheMetrics::Get();
  const std::pair<uint64_t, uint64_t> kp{key.lo, key.hi};
  // Publish computed `bytes` on a mutable copy before the entry goes const.
  auto sized = std::make_shared<Entry>(*entry);
  sized->bytes = EstimateEntryBytes(*sized, key);
  auto it = s->table.find(kp);
  if (it != s->table.end()) {
    s->bytes -= it->second.entry->bytes;
    s->lru.erase(it->second.lru_it);
    s->table.erase(it);
  }
  s->lru.push_front(kp);
  Slot slot;
  slot.certificate = key.certificate;
  slot.entry = std::move(sized);
  slot.lru_it = s->lru.begin();
  s->bytes += slot.entry->bytes;
  s->table.emplace(kp, std::move(slot));
  const std::size_t per_shard =
      std::max<std::size_t>(1, byte_budget_.load(std::memory_order_relaxed) /
                                   shards_.size());
  while (s->bytes > per_shard && !s->lru.empty()) {
    auto victim = s->table.find(s->lru.back());
    s->bytes -= victim->second.entry->bytes;
    s->lru.pop_back();
    s->table.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics.evictions->Increment();
  }
}

void DecompCache::Clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->table.clear();
    s->lru.clear();
    s->bytes = 0;
  }
}

void DecompCache::set_byte_budget(std::size_t bytes) {
  // Applied lazily by the next insert's eviction loop.
  byte_budget_.store(bytes, std::memory_order_relaxed);
}

DecompCache::Stats DecompCache::stats() const {
  Stats stats;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    stats.entries += s->table.size();
    stats.bytes += s->bytes;
  }
  stats.byte_budget = byte_budget_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.stale = stale_.load(std::memory_order_relaxed);
  stats.singleflight_waits =
      singleflight_waits_.load(std::memory_order_relaxed);
  return stats;
}

std::string PlanCacheOutcome::ToString() const {
  if (!enabled) return "";
  if (hit) return waited ? "shared-hit" : "hit";
  return stale ? "stale-miss" : "miss";
}

Hypertree MapHypertree(const Hypertree& in,
                       const std::vector<std::size_t>& vertex_map,
                       const std::vector<std::size_t>& edge_map,
                       std::size_t num_vertices, std::size_t num_edges) {
  Hypertree out;
  for (std::size_t i = 0; i < in.NumNodes(); ++i) {
    const HypertreeNode& n = in.node(i);
    Bitset chi(num_vertices);
    for (std::size_t v = n.chi.FirstSet(); v < n.chi.size();
         v = n.chi.NextSet(v)) {
      chi.Set(vertex_map[v]);
    }
    Bitset lambda(num_edges);
    for (std::size_t e = n.lambda.FirstSet(); e < n.lambda.size();
         e = n.lambda.NextSet(e)) {
      lambda.Set(edge_map[e]);
    }
    out.AddNode(std::move(chi), std::move(lambda), n.parent);
    out.mutable_node(i).priority_children = n.priority_children;
  }
  return out;
}

Result<QhdResult> CachedQHypertreeDecomp(
    const Hypergraph& h, const Bitset& out_vars,
    const std::vector<std::string>& edge_labels, std::size_t max_width,
    bool use_statistics, ResourceGovernor* governor, Tracer* tracer,
    const std::function<Result<QhdResult>()>& compute,
    PlanCacheOutcome* outcome) {
  outcome->enabled = true;
  DecompCache& cache = DecompCache::Global();
  const auto warm_start = std::chrono::steady_clock::now();

  CanonicalForm form;
  PlanCacheKey key;
  {
    ScopedSpan span(tracer, "cache.lookup");
    form = CanonicalizeHypergraph(h, out_vars, edge_labels);
    // The certificate covers everything a reusable search result depends
    // on: the canonical labeled hypergraph + out-set, the width bound, and
    // the cost-model flavor (not run_optimize — entries are pre-Optimize).
    std::string cert = std::move(form.certificate);
    cert += "|w";
    cert += std::to_string(max_width);
    cert += use_statistics ? "|stats" : "|struct";
    key = PlanCacheKey::FromCertificate(std::move(cert));
    span.Attr("fingerprint", FingerprintHex(key));
  }

  // Epoch snapshot, taken *before* the search: a stats update racing the
  // compute leaves the entry already-stale, which errs toward recompute.
  std::vector<std::pair<std::string, uint64_t>> epochs;
  {
    std::map<std::string, uint64_t> by_name;
    for (const std::string& rel : edge_labels) by_name.emplace(rel, 0);
    for (auto& [name, epoch] : by_name) {
      epoch = StatsEpochRegistry::Global().Get(name);
    }
    epochs.assign(by_name.begin(), by_name.end());
  }
  auto fresh = [&](const DecompCache::Entry& e) {
    return e.num_vertices == h.NumVertices() &&
           e.num_edges == h.NumEdges() && e.epochs == epochs;
  };

  DecompCache::AcquireResult acq = cache.Acquire(key, fresh, governor);
  outcome->stale = acq.stale;
  outcome->waited = acq.waited;
  switch (acq.kind) {
    case DecompCache::AcquireKind::kTripped:
      return acq.status;
    case DecompCache::AcquireKind::kHit:
    case DecompCache::AcquireKind::kShared: {
      outcome->hit = true;
      ScopedSpan span(tracer, "cache.rebind");
      span.Attr("nodes", acq.entry->canon_hd.NumNodes());
      if (governor != nullptr) {
        Status st = governor->ChargeNodes(acq.entry->canon_hd.NumNodes());
        if (!st.ok()) return st;
      }
      QhdResult result;
      result.hd =
          MapHypertree(acq.entry->canon_hd, form.canon_to_vertex,
                       form.canon_to_edge, h.NumVertices(), h.NumEdges());
      result.width = acq.entry->width;
      CacheMetrics::Get().hit_latency_us->Record(static_cast<uint64_t>(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - warm_start)
              .count()));
      return result;
    }
    case DecompCache::AcquireKind::kOwner: {
      Result<QhdResult> computed = compute();
      if (!computed.ok()) {
        cache.Publish(key, nullptr);
        return computed;
      }
      auto entry = std::make_shared<DecompCache::Entry>();
      entry->canon_hd =
          MapHypertree(computed->hd, form.vertex_to_canon, form.edge_to_canon,
                       h.NumVertices(), h.NumEdges());
      entry->width = computed->width;
      entry->num_vertices = h.NumVertices();
      entry->num_edges = h.NumEdges();
      entry->epochs = std::move(epochs);
      cache.Publish(key, std::move(entry));
      return computed;
    }
    case DecompCache::AcquireKind::kRetry:
      return compute();
  }
  return Status::Internal("unreachable cache acquire kind");
}

}  // namespace htqo

// Process-wide decomposition & plan cache keyed by canonical hypergraph
// fingerprints (DESIGN.md §6e).
//
// A (q-)hypertree decomposition depends only on the query's labeled
// hypergraph and output-variable set, so repeated query *templates* —
// same shape over the same relations, different constants and names —
// can reuse one search result. DecompCache stores completed (pre-Optimize)
// decompositions in canonical vertex/edge numbering:
//
//   * keyed by the 128-bit fingerprint of the canonical certificate (which
//     folds in the width bound and cost-model flavor); the full certificate
//     is kept in the entry and compared on lookup, so a fingerprint
//     collision degrades to a miss, never a wrong rebind;
//   * sharded (fingerprint-low bits) with per-shard LRU eviction under a
//     process byte budget;
//   * single-flight: concurrent misses on one fingerprint compute once —
//     the first caller owns the search, later callers block on a per-shard
//     condition variable (governor-checkpointed, so a deadline still fires
//     mid-wait) and share the published entry;
//   * invalidated by statistics epochs: each entry snapshots the
//     StatsEpochRegistry epoch of every referenced relation at compute
//     time; any later ANALYZE/Put/Clear makes the entry stale and the next
//     lookup transparently recomputes;
//   * fault site `cache.insert`: an injected failure drops the retain —
//     the computing query still returns its fresh decomposition, the cache
//     just behaves as if the entry were never stored.
//
// CachedQHypertreeDecomp is the glue HybridOptimizer uses: canonicalize,
// acquire, rebind-on-hit / compute-and-publish-on-miss, with cache.lookup /
// cache.rebind spans and the cache.{hit,miss,stale,evict,singleflight_wait}
// metrics recorded from day one.

#ifndef HTQO_CACHE_DECOMP_CACHE_H_
#define HTQO_CACHE_DECOMP_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "decomp/hypertree.h"
#include "decomp/qhd.h"
#include "hypergraph/canonical.h"
#include "hypergraph/hypergraph.h"
#include "obs/trace.h"
#include "util/bitset.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

struct PlanCacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;
  // Exact-compare payload (canonical certificate + width + cost-model tag);
  // guards against 128-bit collisions.
  std::string certificate;

  static PlanCacheKey FromCertificate(std::string certificate);
};

class DecompCache {
 public:
  struct Entry {
    // Completed (post-CompleteDecomposition, pre-Optimize) tree whose chi /
    // lambda bitsets are over canonical vertex / edge positions.
    Hypertree canon_hd;
    std::size_t width = 0;
    std::size_t num_vertices = 0;
    std::size_t num_edges = 0;
    // Lowercased relation name -> StatsEpochRegistry epoch at compute time,
    // sorted by name (vector equality is the freshness test).
    std::vector<std::pair<std::string, uint64_t>> epochs;
    std::size_t bytes = 0;  // approximate footprint, filled on insert
  };
  using EntryPtr = std::shared_ptr<const Entry>;
  // Freshness predicate evaluated under the shard lock; false drops the
  // entry (counted as stale) and turns the lookup into a miss.
  using Validator = std::function<bool(const Entry&)>;

  enum class AcquireKind {
    kHit,      // fresh entry returned
    kOwner,    // caller must compute and then Publish (success or failure)
    kShared,   // waited on another caller's compute; entry returned
    kRetry,    // waited, but the owner failed: compute locally, no Publish
    kTripped,  // the caller's governor tripped while waiting
  };
  struct AcquireResult {
    AcquireKind kind = AcquireKind::kOwner;
    EntryPtr entry;       // kHit / kShared
    bool waited = false;  // blocked on an in-flight compute
    bool stale = false;   // an existing entry failed validation and was dropped
    Status status;  // kTripped: the governor's trip status
  };

  struct Stats {
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t byte_budget = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale = 0;
    uint64_t singleflight_waits = 0;
  };

  static constexpr std::size_t kDefaultByteBudget = 64ull << 20;

  explicit DecompCache(std::size_t byte_budget = kDefaultByteBudget,
                       std::size_t num_shards = 8);
  static DecompCache& Global();

  // Lookup + single-flight claim in one step. kOwner obligates the caller
  // to call Publish exactly once (nullptr on failure) or waiters block
  // until their governor trips.
  AcquireResult Acquire(const PlanCacheKey& key, const Validator& fresh,
                        ResourceGovernor* governor);

  // Resolves the in-flight compute for `key`: wakes waiters (they share
  // `entry`; nullptr tells them to compute locally) and retains the entry
  // in the LRU table — unless the cache.insert fault site fires, which
  // degrades the retain to a no-op.
  void Publish(const PlanCacheKey& key, EntryPtr entry);

  // Drops every cached entry (in-flight computes are unaffected).
  void Clear();

  void set_byte_budget(std::size_t bytes);
  Stats stats() const;

  DecompCache(const DecompCache&) = delete;
  DecompCache& operator=(const DecompCache&) = delete;

 private:
  struct Flight {
    bool done = false;
    EntryPtr result;  // null = owner failed
  };
  struct Slot {
    std::string certificate;
    EntryPtr entry;
    std::list<std::pair<uint64_t, uint64_t>>::iterator lru_it;
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<uint64_t, uint64_t>, Slot> table;
    // Front = most recently used.
    std::list<std::pair<uint64_t, uint64_t>> lru;
    std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<Flight>> flights;
    std::size_t bytes = 0;
  };

  Shard& shard(const PlanCacheKey& key) {
    return *shards_[key.lo % shards_.size()];
  }
  void InsertLocked(Shard* s, const PlanCacheKey& key, EntryPtr entry);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> byte_budget_;

  // Mirrors of the MetricsRegistry counters, for the shell's \cache view.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
};

// What the cached planning path observed, for QueryRun/tests.
struct PlanCacheOutcome {
  bool enabled = false;
  bool hit = false;     // entry served (own lookup or shared in-flight)
  bool stale = false;   // an entry was dropped for a stats-epoch mismatch
  bool waited = false;  // blocked on another caller's compute
  // "hit" / "shared-hit" / "miss" / "stale-miss", "" when disabled.
  std::string ToString() const;
};

// Cache-fronted QHypertreeDecomp for HybridOptimizer's q-HD path.
//
// `edge_labels` holds one lowercased relation name per hyperedge (atom
// order); it feeds both the canonical certificate and the epoch snapshot.
// `compute` must run the decomposition search *without* Procedure Optimize
// (the cache stores pre-Optimize trees; the caller re-runs Optimize on the
// rebound result each time, keeping kQhdNoOptimize and kQhdHybrid on one
// entry). On a hit the entry is rebound through the canonical relabeling to
// the caller's vertex/edge numbering, with the governor charged one search
// node per rebound tree node so rebind work stays bounded.
Result<QhdResult> CachedQHypertreeDecomp(
    const Hypergraph& h, const Bitset& out_vars,
    const std::vector<std::string>& edge_labels, std::size_t max_width,
    bool use_statistics, ResourceGovernor* governor, Tracer* tracer,
    const std::function<Result<QhdResult>()>& compute,
    PlanCacheOutcome* outcome);

// Remaps a hypertree's chi/lambda bitsets through per-vertex / per-edge
// position maps (tree shape, parents and children are preserved). Exposed
// for tests; the cache uses it for both directions of the canonical
// relabeling.
Hypertree MapHypertree(const Hypertree& in,
                       const std::vector<std::size_t>& vertex_map,
                       const std::vector<std::size_t>& edge_map,
                       std::size_t num_vertices, std::size_t num_edges);

}  // namespace htqo

#endif  // HTQO_CACHE_DECOMP_CACHE_H_

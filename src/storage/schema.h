// Relation schemas: ordered lists of typed, named columns.

#ifndef HTQO_STORAGE_SCHEMA_H_
#define HTQO_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace htqo {

struct Column {
  std::string name;
  ValueType type;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  std::size_t arity() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column with the given (case-insensitive) name, if present.
  std::optional<std::size_t> IndexOf(std::string_view name) const;

  // Appends a column; name collisions are a checked failure.
  void AddColumn(Column column);

  // Schema containing the columns at `indices`, in that order.
  Schema Project(const std::vector<std::size_t>& indices) const;

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace htqo

#endif  // HTQO_STORAGE_SCHEMA_H_

#include "storage/value.h"

#include <charconv>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <unordered_set>

namespace htqo {

namespace internal_value {

const std::string* Intern(std::string_view s) {
  // Node-based set: element addresses are stable across rehashing. Leaked
  // at exit by design (static storage duration with trivial destruction of
  // the pointer). Mutex-guarded: parallel scans intern from pool workers.
  // Interning is off the join hot path (joins copy 16-byte Values and
  // compare interned strings by pointer first), so one global lock is fine.
  static std::mutex& mu = *new std::mutex();
  static std::unordered_set<std::string>& pool =
      *new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return &*pool.emplace(s).first;
}

}  // namespace internal_value

namespace {

// Civil-date <-> day-count conversion (proleptic Gregorian), Howard Hinnant's
// public-domain algorithms.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(year + (*m <= 2));
}

}  // namespace

std::string ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "?";
}

Value Value::DateFromString(std::string_view ymd) {
  int64_t days = 0;
  bool ok = ParseDate(ymd, &days);
  HTQO_CHECK(ok);
  return Value::Date(days);
}

int Value::Compare(const Value& other) const {
  if (type_ == ValueType::kString || other.type_ == ValueType::kString) {
    HTQO_CHECK(type_ == ValueType::kString &&
               other.type_ == ValueType::kString);
    if (string_ == other.string_) return 0;  // interned: pointer fast path
    return string_->compare(*other.string_);
  }
  if (type_ == ValueType::kDouble || other.type_ == ValueType::kDouble) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // int64/date mix compares by payload.
  if (int_ < other.int_) return -1;
  if (int_ > other.int_) return 1;
  return 0;
}

std::size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      uint64_t z = static_cast<uint64_t>(int_) * 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(z ^ (z >> 32));
    }
    case ValueType::kDouble: {
      // Hash doubles through their int value when integral so that
      // Int64(3) and Double(3.0), which compare equal, hash equal too.
      double d = double_;
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        uint64_t z = static_cast<uint64_t>(as_int) * 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(z ^ (z >> 32));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      uint64_t z = bits * 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(z ^ (z >> 32));
    }
    case ValueType::kString:
      return std::hash<std::string>()(*string_);
  }
  return 0;
}

std::string Value::ToString(bool quoted) const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_);
      return buf;
    }
    case ValueType::kString:
      return quoted ? "'" + *string_ + "'" : *string_;
    case ValueType::kDate:
      return quoted ? "date '" + FormatDate(int_) + "'" : FormatDate(int_);
  }
  return "?";
}

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      int64_t payload = v.AsInt64();
      out->append(reinterpret_cast<const char*>(&payload), sizeof(payload));
      return;
    }
    case ValueType::kDouble: {
      double payload = v.AsDouble();
      out->append(reinterpret_cast<const char*>(&payload), sizeof(payload));
      return;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      return;
    }
  }
}

bool DecodeValue(const char** cursor, const char* end, Value* out) {
  const char* p = *cursor;
  if (p >= end) return false;
  uint8_t tag = static_cast<uint8_t>(*p++);
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      int64_t payload;
      if (end - p < static_cast<ptrdiff_t>(sizeof(payload))) return false;
      __builtin_memcpy(&payload, p, sizeof(payload));
      p += sizeof(payload);
      *out = static_cast<ValueType>(tag) == ValueType::kDate
                 ? Value::Date(payload)
                 : Value::Int64(payload);
      break;
    }
    case ValueType::kDouble: {
      double payload;
      if (end - p < static_cast<ptrdiff_t>(sizeof(payload))) return false;
      __builtin_memcpy(&payload, p, sizeof(payload));
      p += sizeof(payload);
      *out = Value::Double(payload);
      break;
    }
    case ValueType::kString: {
      uint32_t len;
      if (end - p < static_cast<ptrdiff_t>(sizeof(len))) return false;
      __builtin_memcpy(&len, p, sizeof(len));
      p += sizeof(len);
      if (end - p < static_cast<ptrdiff_t>(len)) return false;
      *out = Value::String(std::string_view(p, len));
      p += len;
      break;
    }
    default:
      return false;
  }
  *cursor = p;
  return true;
}

std::string FormatDate(int64_t days_since_epoch) {
  int y;
  unsigned m, d;
  CivilFromDays(days_since_epoch, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

bool ParseDate(std::string_view ymd, int64_t* days_out) {
  if (ymd.size() != 10 || ymd[4] != '-' || ymd[7] != '-') return false;
  int y = 0;
  unsigned m = 0, d = 0;
  auto parse = [](std::string_view s, auto* out) {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  if (!parse(ymd.substr(0, 4), &y) || !parse(ymd.substr(5, 2), &m) ||
      !parse(ymd.substr(8, 2), &d)) {
    return false;
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *days_out = DaysFromCivil(y, m, d);
  return true;
}

}  // namespace htqo

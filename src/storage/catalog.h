// Catalog: the named-relation store a Database exposes to the optimizer and
// executor. Relation names are case-insensitive, as in SQL.

#ifndef HTQO_STORAGE_CATALOG_H_
#define HTQO_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/status.h"

namespace htqo {

class Catalog {
 public:
  Catalog() = default;

  // Catalog is the owner of all base relations; moving it around would
  // invalidate pointers handed out by Find, so it is pinned.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers `relation` under `name`, replacing any previous relation with
  // that name.
  void Put(const std::string& name, Relation relation);

  // Pointer to the relation registered under `name`, or nullptr. The pointer
  // stays valid until the relation is replaced or the catalog is destroyed.
  const Relation* Find(const std::string& name) const;

  // As Find, but returns InvalidArgument when missing.
  Result<const Relation*> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  std::vector<std::string> Names() const;

  // Total number of tuples over all relations; a proxy for database size.
  std::size_t TotalRows() const;

 private:
  // unique_ptr keeps Relation addresses stable across map rehash/growth.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace htqo

#endif  // HTQO_STORAGE_CATALOG_H_

// CSV import/export for relations (RFC-4180-style quoting). The header row
// encodes the typed schema as "name:type" so round-trips preserve types:
//   a:int64,name:string,price:double,day:date

#ifndef HTQO_STORAGE_CSV_H_
#define HTQO_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "storage/relation.h"
#include "util/status.h"

namespace htqo {

// Writes `relation` with a typed header. Strings containing separators,
// quotes or newlines are quoted; embedded quotes are doubled.
void WriteCsv(const Relation& relation, std::ostream& out);
Status WriteCsvFile(const Relation& relation, const std::string& path);

// Parses a relation written by WriteCsv (or hand-authored with the same
// header convention). InvalidArgument on malformed headers/cells.
Result<Relation> ReadCsv(std::istream& in);
Result<Relation> ReadCsvFile(const std::string& path);

}  // namespace htqo

#endif  // HTQO_STORAGE_CSV_H_

// Typed runtime values.
//
// Value is deliberately trivially copyable (16 bytes): the engine moves
// billions of values through joins and projections, so row copies must be
// memcpy. Strings are interned in a process-lifetime pool and represented
// by a stable pointer; dates are stored as days since 1970-01-01 with their
// own type tag so printing and interval arithmetic behave correctly.
//
// The intern pool is append-only and leaked at process exit (static
// storage); the engine is single-threaded by design.

#ifndef HTQO_STORAGE_VALUE_H_
#define HTQO_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.h"

namespace htqo {

enum class ValueType : uint8_t {
  kInt64,
  kDouble,
  kString,
  kDate,  // days since 1970-01-01, int64 payload
};

std::string ValueTypeName(ValueType t);

namespace internal_value {
// Returns a stable pointer to the pooled copy of `s`.
const std::string* Intern(std::string_view s);
}  // namespace internal_value

class Value {
 public:
  Value() : type_(ValueType::kInt64), int_(0) {}

  static Value Int64(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string_view v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = internal_value::Intern(v);
    return out;
  }
  static Value Date(int64_t days) {
    Value out;
    out.type_ = ValueType::kDate;
    out.int_ = days;
    return out;
  }
  // Wraps a pointer that is already in the intern pool (obtained from the
  // string_ of a live kString value) without the pool lookup. The vectorized
  // gather kernels reconstruct string cells through this; passing a pointer
  // from outside the pool would break the pointer-equality fast path.
  static Value InternedString(const std::string* s) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = s;
    return out;
  }

  // Parses "YYYY-MM-DD" into a kDate value; checked failure on bad input
  // (callers validate first — the SQL lexer does).
  static Value DateFromString(std::string_view ymd);

  ValueType type() const { return type_; }

  int64_t AsInt64() const {
    HTQO_DCHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDate);
    return int_;
  }
  double AsDouble() const {
    if (type_ == ValueType::kDouble) return double_;
    HTQO_DCHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDate);
    return static_cast<double>(int_);
  }
  const std::string& AsString() const {
    HTQO_DCHECK(type_ == ValueType::kString);
    return *string_;
  }

  bool IsNumeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble;
  }

  // SQL-style comparison. Numeric types compare by value (int vs double
  // allowed); strings compare lexicographically; dates compare as days.
  // Comparing string with numeric is a checked failure.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::size_t Hash() const;

  // Rendering used by relation dumps and the SQL view rewriter. Strings are
  // rendered with single quotes when `quoted` is true.
  std::string ToString(bool quoted = false) const;

 private:
  ValueType type_;
  union {
    int64_t int_;
    double double_;
    const std::string* string_;
  };
};

static_assert(sizeof(Value) == 16);
static_assert(std::is_trivially_copyable_v<Value>);

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

// Compact binary serialization, used by the spill layer's row-batch files.
// Layout: one type-tag byte, then an 8-byte little-endian payload for
// int64/double/date, or a u32 length + raw bytes for strings (re-interned
// on decode, so round-tripped Values keep the pointer-equality fast path).
void EncodeValue(const Value& v, std::string* out);
// Decodes one value at *cursor, advancing it. Returns false (cursor
// position unspecified) on truncated or malformed input.
bool DecodeValue(const char** cursor, const char* end, Value* out);

// "YYYY-MM-DD" for a day count; used by Value::ToString for kDate.
std::string FormatDate(int64_t days_since_epoch);
// Inverse of FormatDate. Returns false on malformed input.
bool ParseDate(std::string_view ymd, int64_t* days_out);

}  // namespace htqo

#endif  // HTQO_STORAGE_VALUE_H_

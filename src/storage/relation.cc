#include "storage/relation.h"

#include <algorithm>
#include <unordered_set>

#include "util/fault_injector.h"
#include "util/hash_chain.h"
#include "util/strings.h"

namespace htqo {

Status Relation::TryReserve(std::size_t estimated_rows) {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteRelationAlloc)) {
    return Status::ResourceExhausted(
        "injected fault: allocation failure in Relation");
  }
  constexpr std::size_t kMaxSpeculativeRows = 4096;
  Reserve(std::min(estimated_rows, kMaxSpeculativeRows));
  return Status::Ok();
}

namespace {

int CompareRows(std::span<const Value> a, std::span<const Value> b,
                const std::vector<std::size_t>& cols) {
  for (std::size_t c : cols) {
    int cmp = a[c].Compare(b[c]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace

Relation Relation::Project(const std::vector<std::size_t>& indices) const {
  Relation out(schema_.Project(indices));
  out.Reserve(NumRows());
  std::vector<Value> row(indices.size());
  for (std::size_t r = 0; r < NumRows(); ++r) {
    auto src = Row(r);
    for (std::size_t i = 0; i < indices.size(); ++i) row[i] = src[indices[i]];
    out.AddRow(row);
  }
  if (arity() == 0 || indices.empty()) {
    out.zero_arity_rows_ = NumRows();
  }
  return out;
}

Relation Relation::Distinct() const {
  Relation out(schema_);
  if (arity() == 0) {
    out.zero_arity_rows_ = zero_arity_rows_ > 0 ? 1 : 0;
    return out;
  }
  std::vector<std::size_t> all_cols(arity());
  for (std::size_t i = 0; i < arity(); ++i) all_cols[i] = i;

  HashChainIndex seen(NumRows());
  std::vector<std::size_t> kept_hash;
  kept_hash.reserve(NumRows());
  out.Reserve(NumRows());
  for (std::size_t r = 0; r < NumRows(); ++r) {
    auto row = Row(r);
    std::size_t h = HashRowKey(row, all_cols);
    bool dup = false;
    for (uint32_t it = seen.First(h); it != HashChainIndex::kEnd;
         it = seen.Next(it)) {
      if (kept_hash[it] == h &&
          RowKeysEqual(out.Row(it), all_cols, row, all_cols)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.Insert(h, out.NumRows());
      kept_hash.push_back(h);
      out.AddRow(row);
    }
  }
  return out;
}

void Relation::SortBy(const std::vector<std::size_t>& cols) {
  SortBy(cols, std::vector<bool>(cols.size(), false));
}

void Relation::SortBy(const std::vector<std::size_t>& cols,
                      const std::vector<bool>& descending) {
  HTQO_CHECK(cols.size() == descending.size());
  if (arity() == 0 || NumRows() <= 1) return;
  std::vector<std::size_t> effective = cols;
  std::vector<bool> desc = descending;
  if (effective.empty()) {
    effective.resize(arity());
    for (std::size_t i = 0; i < arity(); ++i) effective[i] = i;
    desc.assign(arity(), false);
  }
  auto compare = [&](std::span<const Value> a,
                     std::span<const Value> b) {
    for (std::size_t i = 0; i < effective.size(); ++i) {
      int cmp = a[effective[i]].Compare(b[effective[i]]);
      if (cmp != 0) return desc[i] ? -cmp : cmp;
    }
    return 0;
  };
  std::vector<std::size_t> order(NumRows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return compare(Row(a), Row(b)) < 0;
                   });
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  for (std::size_t r : order) {
    auto row = Row(r);
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  data_ = std::move(sorted);
}

void Relation::Truncate(std::size_t n) {
  if (n >= NumRows()) return;
  if (arity() == 0) {
    zero_arity_rows_ = n;
    return;
  }
  data_.resize(n * arity());
}

bool Relation::SameRowsAs(const Relation& other) const {
  if (arity() != other.arity()) return false;
  if (NumRows() != other.NumRows()) return false;
  if (arity() == 0) return zero_arity_rows_ == other.zero_arity_rows_;
  Relation a = *this;
  Relation b = other;
  a.SortBy({});
  b.SortBy({});
  std::vector<std::size_t> all(arity());
  for (std::size_t i = 0; i < arity(); ++i) all[i] = i;
  for (std::size_t r = 0; r < a.NumRows(); ++r) {
    if (CompareRows(a.Row(r), b.Row(r), all) != 0) return false;
  }
  return true;
}

std::size_t Relation::StringPayloadBytes() const {
  bool any_string = false;
  for (const Column& c : schema_.columns()) {
    if (c.type == ValueType::kString) {
      any_string = true;
      break;
    }
  }
  if (!any_string) return 0;
  // Interned pointers are stable and unique per content, so a pointer set
  // counts each payload exactly once.
  std::unordered_set<const std::string*> seen;
  std::size_t bytes = 0;
  const std::size_t n = NumRows();
  for (std::size_t c = 0; c < arity(); ++c) {
    if (schema_.column(c).type != ValueType::kString) continue;
    for (std::size_t r = 0; r < n; ++r) {
      const Value& v = At(r, c);
      if (v.type() != ValueType::kString) continue;  // schema is advisory
      const std::string* s = &v.AsString();
      if (seen.insert(s).second) bytes += s->size() + sizeof(std::string);
    }
  }
  return bytes;
}

std::string Relation::ToString(std::size_t max_rows) const {
  std::string out = schema_.ToString() + " [" + std::to_string(NumRows()) +
                    " rows]\n";
  for (std::size_t r = 0; r < NumRows() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    auto row = Row(r);
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    out += "  (" + Join(cells, ", ") + ")\n";
  }
  if (NumRows() > max_rows) out += "  ...\n";
  return out;
}

std::size_t HashRowKey(std::span<const Value> row,
                       const std::vector<std::size_t>& cols) {
  std::size_t h = 0x9e3779b97f4a7c15ull;
  for (std::size_t c : cols) {
    h ^= row[c].Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowKeysEqual(std::span<const Value> a, const std::vector<std::size_t>& ac,
                  std::span<const Value> b,
                  const std::vector<std::size_t>& bc) {
  HTQO_DCHECK(ac.size() == bc.size());
  for (std::size_t i = 0; i < ac.size(); ++i) {
    if (a[ac[i]].Compare(b[bc[i]]) != 0) return false;
  }
  return true;
}

}  // namespace htqo

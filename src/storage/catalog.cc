#include "storage/catalog.h"

#include "util/strings.h"

namespace htqo {

void Catalog::Put(const std::string& name, Relation relation) {
  relations_[ToLower(name)] =
      std::make_unique<Relation>(std::move(relation));
}

const Relation* Catalog::Find(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) return nullptr;
  return it->second.get();
}

Result<const Relation*> Catalog::Get(const std::string& name) const {
  const Relation* r = Find(name);
  if (r == nullptr) {
    return Status::InvalidArgument("unknown relation: " + name);
  }
  return r;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

std::size_t Catalog::TotalRows() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->NumRows();
  return n;
}

}  // namespace htqo

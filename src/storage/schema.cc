#include "storage/schema.h"

#include "util/strings.h"

namespace htqo {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      HTQO_CHECK(!EqualsIgnoreCase(columns_[i].name, columns_[j].name));
    }
  }
}

std::optional<std::size_t> Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

void Schema::AddColumn(Column column) {
  HTQO_CHECK(!IndexOf(column.name).has_value());
  columns_.push_back(std::move(column));
}

Schema Schema::Project(const std::vector<std::size_t>& indices) const {
  std::vector<Column> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    HTQO_CHECK(i < columns_.size());
    out.push_back(columns_[i]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.name + ":" + ValueTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace htqo

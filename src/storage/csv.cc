#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>

#include "util/strings.h"

namespace htqo {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& s) {
  if (s.empty()) return "\"\"";  // distinguish from a blank line
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// Splits one CSV record (handles quoted fields; `in` may span lines for
// quoted newlines). Returns false at EOF with no record.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields,
                bool* saw_quote) {
  fields->clear();
  *saw_quote = false;
  std::string cell;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          cell += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        cell += static_cast<char>(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      *saw_quote = true;
    } else if (c == ',') {
      fields->push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      break;
    } else if (c == '\r') {
      // swallow (CRLF)
    } else {
      cell += static_cast<char>(c);
    }
  }
  if (!any) return false;
  fields->push_back(std::move(cell));
  return true;
}

Result<ValueType> ParseType(const std::string& name) {
  if (EqualsIgnoreCase(name, "int64")) return ValueType::kInt64;
  if (EqualsIgnoreCase(name, "double")) return ValueType::kDouble;
  if (EqualsIgnoreCase(name, "string")) return ValueType::kString;
  if (EqualsIgnoreCase(name, "date")) return ValueType::kDate;
  return Status::InvalidArgument("unknown CSV column type: " + name);
}

Result<Value> ParseCell(const std::string& cell, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [p, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec != std::errc() || p != cell.data() + cell.size()) {
        return Status::InvalidArgument("bad int64 cell: '" + cell + "'");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      double v = 0;
      auto [p, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec != std::errc() || p != cell.data() + cell.size()) {
        return Status::InvalidArgument("bad double cell: '" + cell + "'");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(cell);
    case ValueType::kDate: {
      int64_t days = 0;
      if (!ParseDate(cell, &days)) {
        return Status::InvalidArgument("bad date cell: '" + cell + "'");
      }
      return Value::Date(days);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

void WriteCsv(const Relation& relation, std::ostream& out) {
  const Schema& schema = relation.schema();
  for (std::size_t c = 0; c < schema.arity(); ++c) {
    if (c > 0) out << ',';
    out << QuoteCell(schema.column(c).name) << ':'
        << ValueTypeName(schema.column(c).type);
  }
  out << '\n';
  for (std::size_t r = 0; r < relation.NumRows(); ++r) {
    for (std::size_t c = 0; c < schema.arity(); ++c) {
      if (c > 0) out << ',';
      out << QuoteCell(relation.At(r, c).ToString(/*quoted=*/false));
    }
    out << '\n';
  }
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  WriteCsv(relation, out);
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed: " + path);
}

Result<Relation> ReadCsv(std::istream& in) {
  std::vector<std::string> fields;
  bool saw_quote = false;
  if (!ReadRecord(in, &fields, &saw_quote)) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<Column> columns;
  columns.reserve(fields.size());
  for (const std::string& header : fields) {
    std::size_t colon = header.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("CSV header cell needs name:type: '" +
                                     header + "'");
    }
    auto type = ParseType(header.substr(colon + 1));
    if (!type.ok()) return type.status();
    columns.push_back(Column{header.substr(0, colon), *type});
  }
  Relation relation{Schema(std::move(columns))};
  std::vector<Value> row(relation.arity());
  std::size_t line = 1;
  while (ReadRecord(in, &fields, &saw_quote)) {
    ++line;
    if (fields.size() == 1 && fields[0].empty() && !saw_quote) {
      continue;  // blank line (a quoted "" is a real empty cell)
    }
    if (fields.size() != relation.arity()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(line) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(relation.arity()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      auto value = ParseCell(fields[c], relation.schema().column(c).type);
      if (!value.ok()) return value.status();
      row[c] = std::move(value.value());
    }
    relation.AddRow(row);
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open for read: " + path);
  return ReadCsv(in);
}

}  // namespace htqo

// In-memory relations: a schema plus a row-major tuple store.
//
// Rows are stored flat in a single vector with stride = arity, which keeps
// scans cache-friendly and row copies cheap. Relation is the unit of exchange
// between physical operators: every operator consumes and produces whole
// Relations (full materialization), which is the right fidelity for the
// paper's experiments — its cost phenomena are intermediate-result sizes.

#ifndef HTQO_STORAGE_RELATION_H_
#define HTQO_STORAGE_RELATION_H_

#include <span>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace htqo {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t arity() const { return schema_.arity(); }
  std::size_t NumRows() const {
    return arity() == 0 ? zero_arity_rows_ : data_.size() / arity();
  }

  // For zero-arity relations (Boolean query results) the row count is the
  // only payload: 0 rows = false, >0 = true.
  void SetZeroArityRows(std::size_t n) {
    HTQO_CHECK(arity() == 0);
    zero_arity_rows_ = n;
  }

  void Reserve(std::size_t rows) { data_.reserve(rows * arity()); }

  // Rows the tuple store can hold before reallocating. The vectorized join
  // extrapolates its output density through this to reserve once instead of
  // riding vector doubling (each doubling recopies every row written so far).
  std::size_t CapacityRows() const {
    return arity() == 0 ? 0 : data_.capacity() / arity();
  }

  // Fallible allocation entry point used by the physical operators when
  // materializing output: consults the fault injector's relation.alloc site
  // (so tests can simulate allocation failure as a clean Status) and
  // reserves up to `estimated_rows` rows, capped to keep speculative
  // reservations from dominating peak memory.
  Status TryReserve(std::size_t estimated_rows);

  void AddRow(std::vector<Value> row) {
    HTQO_CHECK(row.size() == arity());
    if (arity() == 0) {
      ++zero_arity_rows_;
      return;
    }
    for (auto& v : row) data_.push_back(std::move(v));
  }

  void AddRow(std::span<const Value> row) {
    HTQO_CHECK(row.size() == arity());
    if (arity() == 0) {
      ++zero_arity_rows_;
      return;
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }

  // Appends every row of `other` (same arity required), preserving order.
  // The parallel operators concatenate per-chunk outputs with this; bulk
  // vector insert, no per-row checks.
  void AppendFrom(const Relation& other) {
    HTQO_CHECK(other.arity() == arity());
    if (arity() == 0) {
      zero_arity_rows_ += other.zero_arity_rows_;
      return;
    }
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }

  // Appends `n` default-initialized rows and returns a write pointer to the
  // first new value. The vectorized gather kernels fill output rows through
  // this instead of per-row AddRow span inserts. Returns nullptr for
  // zero-arity relations (the rows are still counted).
  Value* AppendRaw(std::size_t n) {
    if (arity() == 0) {
      zero_arity_rows_ += n;
      return nullptr;
    }
    std::size_t old = data_.size();
    data_.resize(old + n * arity());
    return data_.data() + old;
  }

  std::span<const Value> Row(std::size_t i) const {
    HTQO_DCHECK(i < NumRows());
    return {data_.data() + i * arity(), arity()};
  }

  // Raw pointer to row `i`'s first value; the vectorized kernels memcpy
  // whole rows through this (Value is trivially copyable).
  const Value* RowPtr(std::size_t i) const {
    HTQO_DCHECK(i < NumRows());
    return data_.data() + i * arity();
  }

  const Value& At(std::size_t row, std::size_t col) const {
    HTQO_DCHECK(row < NumRows() && col < arity());
    return data_[row * arity() + col];
  }

  // Relation with columns at `indices` (in that order), duplicates kept.
  Relation Project(const std::vector<std::size_t>& indices) const;

  // Relation with duplicate rows removed (order not preserved).
  Relation Distinct() const;

  // Sorts rows lexicographically by the given column indices (all columns
  // when empty). Used for canonicalization in tests and ORDER BY.
  void SortBy(const std::vector<std::size_t>& cols);

  // As above with a per-column descending flag (parallel to `cols`).
  void SortBy(const std::vector<std::size_t>& cols,
              const std::vector<bool>& descending);

  // Keeps only the first `n` rows (LIMIT).
  void Truncate(std::size_t n);

  // True when both relations contain the same multiset of rows, ignoring
  // order. Schemas must have equal arity; column names are not compared.
  bool SameRowsAs(const Relation& other) const;

  // Bytes of interned-string payload reachable from this relation, counting
  // each distinct pooled string once. Zero-cost when the schema declares no
  // string columns (the common numeric-join case).
  std::size_t StringPayloadBytes() const;

  // Approximate resident footprint: tuple store plus distinct string
  // payloads. Feeds governor memory accounting (NotePeak / spill
  // thresholds) so string-heavy relations register their real size.
  std::size_t FootprintBytes() const {
    return NumRows() * arity() * sizeof(Value) + StringPayloadBytes();
  }

  // Human-readable dump, truncated to `max_rows`.
  std::string ToString(std::size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Value> data_;
  std::size_t zero_arity_rows_ = 0;
};

// Hash of the row values at the given column indices. Used by hash join,
// distinct, and group-by.
std::size_t HashRowKey(std::span<const Value> row,
                       const std::vector<std::size_t>& cols);

// True when the two rows agree on their respective key columns.
bool RowKeysEqual(std::span<const Value> a, const std::vector<std::size_t>& ac,
                  std::span<const Value> b, const std::vector<std::size_t>& bc);

}  // namespace htqo

#endif  // HTQO_STORAGE_RELATION_H_

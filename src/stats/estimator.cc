#include "stats/estimator.h"

#include <algorithm>

#include "util/fault_injector.h"

namespace htqo {

const RelationStats* Estimator::StatsFor(const std::string& relation) const {
  if (registry_ == nullptr) return nullptr;
  // Injected lookup failure degrades to the no-statistics defaults — the
  // estimator keeps answering, just less precisely (never a crash).
  if (FaultInjector::Instance().ShouldFail(kFaultSiteStatsLookup)) {
    return nullptr;
  }
  return registry_->Find(relation);
}

bool Estimator::has_statistics(const std::string& relation) const {
  return StatsFor(relation) != nullptr;
}

double Estimator::Rows(const std::string& relation) const {
  const RelationStats* s = StatsFor(relation);
  if (s == nullptr) return defaults_.default_rows;
  return static_cast<double>(s->row_count);
}

double Estimator::DistinctCount(const std::string& relation,
                                std::size_t column) const {
  const RelationStats* s = StatsFor(relation);
  // distinct_count == 0 means "not gathered" (manual statistics may declare
  // only some columns); fall back to a default guess scaled by the known
  // row count.
  if (s == nullptr || column >= s->columns.size() ||
      s->columns[column].distinct_count == 0) {
    double rows = s != nullptr ? static_cast<double>(s->row_count)
                               : defaults_.default_rows;
    return std::max(1.0, rows * defaults_.eq_selectivity * 20);
  }
  return std::max<double>(1.0, s->columns[column].distinct_count);
}

double Estimator::ConstantSelectivity(const std::string& relation,
                                      std::size_t column,
                                      const std::string& op,
                                      const Value& constant) const {
  const RelationStats* s = StatsFor(relation);
  if (op == "=") {
    if (s == nullptr || column >= s->columns.size() ||
        s->columns[column].distinct_count == 0) {
      return defaults_.eq_selectivity;
    }
    return 1.0 / std::max<double>(1.0, s->columns[column].distinct_count);
  }
  if (op == "<>") {
    double eq = ConstantSelectivity(relation, column, "=", constant);
    return std::clamp(1.0 - eq, 0.0, 1.0);
  }
  // Range comparison: use the equi-depth histogram when present, falling
  // back to [min, max] interpolation.
  if (s != nullptr && column < s->columns.size()) {
    const ColumnStats& cs = s->columns[column];
    if (cs.histogram_bounds.size() >= 2 &&
        constant.type() != ValueType::kString) {
      const std::vector<Value>& bounds = cs.histogram_bounds;
      const double buckets = static_cast<double>(bounds.size() - 1);
      // Fraction of rows strictly below `constant`.
      double below = 0;
      for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
        const Value& lo = bounds[b];
        const Value& hi = bounds[b + 1];
        if (constant >= hi) {
          below += 1.0;
          continue;
        }
        if (constant <= lo) break;
        // Partial bucket: linear interpolation inside it.
        double lo_d = lo.AsDouble();
        double hi_d = hi.AsDouble();
        if (hi_d > lo_d) {
          below += std::clamp((constant.AsDouble() - lo_d) / (hi_d - lo_d),
                              0.0, 1.0);
        }
        break;
      }
      double frac = std::clamp(below / buckets, 0.0, 1.0);
      if (op == "<" || op == "<=") return frac;
      if (op == ">" || op == ">=") return 1.0 - frac;
    }
    if (cs.min && cs.max && cs.min->IsNumeric() == constant.IsNumeric() &&
        constant.type() != ValueType::kString &&
        cs.min->type() != ValueType::kString) {
      double lo = cs.min->AsDouble();
      double hi = cs.max->AsDouble();
      double v = constant.AsDouble();
      if (hi > lo) {
        double frac = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
        if (op == "<" || op == "<=") return frac;
        if (op == ">" || op == ">=") return 1.0 - frac;
      } else {
        // Degenerate single-valued column.
        if (op == "<") return v > lo ? 1.0 : 0.0;
        if (op == "<=") return v >= lo ? 1.0 : 0.0;
        if (op == ">") return v < lo ? 1.0 : 0.0;
        if (op == ">=") return v <= lo ? 1.0 : 0.0;
      }
    }
  }
  return defaults_.range_selectivity;
}

double Estimator::JoinSelectivity(const std::string& left, std::size_t lcol,
                                  const std::string& right,
                                  std::size_t rcol) const {
  const RelationStats* ls = StatsFor(left);
  const RelationStats* rs = StatsFor(right);
  if (ls == nullptr || rs == nullptr || lcol >= ls->columns.size() ||
      rcol >= rs->columns.size() || ls->columns[lcol].distinct_count == 0 ||
      rs->columns[rcol].distinct_count == 0) {
    return defaults_.join_selectivity;
  }
  double vl = std::max<double>(1.0, ls->columns[lcol].distinct_count);
  double vr = std::max<double>(1.0, rs->columns[rcol].distinct_count);
  return 1.0 / std::max(vl, vr);
}

}  // namespace htqo

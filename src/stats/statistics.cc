#include "stats/statistics.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace htqo {

RelationStats CollectStats(const Relation& relation,
                           std::size_t histogram_buckets) {
  RelationStats stats;
  stats.row_count = relation.NumRows();
  stats.columns.resize(relation.arity());
  for (std::size_t c = 0; c < relation.arity(); ++c) {
    std::unordered_set<Value, ValueHash> distinct;
    distinct.reserve(relation.NumRows() * 2);
    ColumnStats& cs = stats.columns[c];
    for (std::size_t r = 0; r < relation.NumRows(); ++r) {
      const Value& v = relation.At(r, c);
      distinct.insert(v);
      if (!cs.min || v < *cs.min) cs.min = v;
      if (!cs.max || v > *cs.max) cs.max = v;
    }
    cs.distinct_count = distinct.size();

    // Equi-depth histogram for orderable non-string columns.
    const bool orderable =
        relation.NumRows() >= 2 && histogram_buckets >= 2 &&
        relation.schema().column(c).type != ValueType::kString;
    if (orderable) {
      std::vector<Value> sorted;
      sorted.reserve(relation.NumRows());
      for (std::size_t r = 0; r < relation.NumRows(); ++r) {
        sorted.push_back(relation.At(r, c));
      }
      std::sort(sorted.begin(), sorted.end());
      std::size_t buckets =
          std::min(histogram_buckets, sorted.size());
      cs.histogram_bounds.reserve(buckets + 1);
      for (std::size_t b = 0; b <= buckets; ++b) {
        std::size_t idx = b * (sorted.size() - 1) / buckets;
        cs.histogram_bounds.push_back(sorted[idx]);
      }
    }
  }
  return stats;
}

RelationStats MakeManualStats(
    std::size_t row_count, const std::vector<std::size_t>& distinct_counts) {
  RelationStats stats;
  stats.row_count = row_count;
  stats.columns.resize(distinct_counts.size());
  for (std::size_t c = 0; c < distinct_counts.size(); ++c) {
    // 0 stays 0 = unknown; the estimator falls back to defaults for it.
    stats.columns[c].distinct_count = distinct_counts[c];
  }
  return stats;
}

StatsEpochRegistry& StatsEpochRegistry::Global() {
  static StatsEpochRegistry* registry = new StatsEpochRegistry();
  return *registry;
}

uint64_t StatsEpochRegistry::Get(const std::string& relation_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = epochs_.find(ToLower(relation_name));
  return it == epochs_.end() ? 0 : it->second;
}

void StatsEpochRegistry::Bump(const std::string& relation_name) {
  std::lock_guard<std::mutex> lock(mu_);
  ++epochs_[ToLower(relation_name)];
}

void StatisticsRegistry::Put(const std::string& relation_name,
                             RelationStats stats) {
  stats_[ToLower(relation_name)] = std::move(stats);
  StatsEpochRegistry::Global().Bump(relation_name);
}

void StatisticsRegistry::Clear() {
  // Dropping statistics changes what the estimator will say just as much as
  // replacing them does: bump every relation this registry was covering.
  for (const auto& [name, stats] : stats_) {
    StatsEpochRegistry::Global().Bump(name);
  }
  stats_.clear();
}

const RelationStats* StatisticsRegistry::Find(
    const std::string& relation_name) const {
  auto it = stats_.find(ToLower(relation_name));
  if (it == stats_.end()) return nullptr;
  return &it->second;
}

void StatisticsRegistry::AnalyzeAll(const Catalog& catalog) {
  for (const std::string& name : catalog.Names()) {
    Put(name, CollectStats(*catalog.Find(name)));
  }
}

}  // namespace htqo

#include "stats/feedback.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "sql/ast.h"
#include "stats/estimator.h"
#include "util/fault_injector.h"

namespace htqo {

namespace {

// max/min ratio with both sides floored at 1 row: symmetric in over- and
// under-estimation, and never skewed by empty scans.
double ErrorFactor(double estimated, double actual) {
  const double e = std::max(1.0, estimated);
  const double a = std::max(1.0, actual);
  return std::max(e, a) / std::min(e, a);
}

}  // namespace

std::vector<double> EstimateAtomRows(const ConjunctiveQuery& cq,
                                     const StatisticsRegistry* stats) {
  // Mirrors the row half of BuildEdgeStats (decomp/qhd.cc): base cardinality
  // times the local filters' selectivities, floored at one row. Kept here —
  // not shared — because htqo_stats sits below htqo_decomp in the library
  // DAG.
  Estimator estimator(stats);
  std::vector<double> out;
  out.reserve(cq.atoms.size());
  for (const Atom& atom : cq.atoms) {
    double rows = estimator.Rows(atom.relation);
    for (const AtomFilter& f : atom.filters) {
      if (!f.in_values.empty() || f.negated) {
        double sel = 0;
        for (const Value& v : f.in_values) {
          sel += estimator.ConstantSelectivity(atom.relation, f.column, "=",
                                               v);
        }
        sel = std::min(1.0, sel);
        rows *= f.negated ? std::max(0.0, 1.0 - sel) : sel;
      } else {
        rows *= estimator.ConstantSelectivity(atom.relation, f.column,
                                              CompareOpSymbol(f.op), f.value);
      }
    }
    out.push_back(std::max(1.0, rows));
  }
  return out;
}

FeedbackReport FeedbackCollector::Reconcile(const ResolvedQuery& rq,
                                            const Tracer& tracer) {
  // Mine the actual scan cardinalities: op.scan spans carry the atom index
  // and rows_out. Later spans overwrite earlier ones — a replanned query
  // re-scans some atoms, with identical actuals.
  std::vector<std::size_t> actuals(
      rq.cq.atoms.size(), std::numeric_limits<std::size_t>::max());
  for (const Span& span : tracer.Snapshot()) {
    if (span.name != "op.scan") continue;
    std::size_t atom = std::numeric_limits<std::size_t>::max();
    std::size_t rows = std::numeric_limits<std::size_t>::max();
    for (const SpanAttr& attr : span.attrs) {
      if (attr.key == "atom") atom = std::stoull(attr.value);
      if (attr.key == "rows_out") rows = std::stoull(attr.value);
    }
    if (atom < actuals.size() &&
        rows != std::numeric_limits<std::size_t>::max()) {
      actuals[atom] = rows;
    }
  }
  return ReconcileActuals(rq.cq, actuals);
}

FeedbackReport FeedbackCollector::ReconcileActuals(
    const ConjunctiveQuery& cq, const std::vector<std::size_t>& actuals) {
  FeedbackReport report;
  const std::vector<double> estimates = EstimateAtomRows(cq, stats_);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  // Relations to refresh, deduplicated in first-divergence order so the
  // stats.feedback fault site sees a deterministic hit sequence.
  std::vector<std::string> to_refresh;
  std::set<std::string> marked;
  for (std::size_t a = 0; a < cq.atoms.size() && a < actuals.size(); ++a) {
    if (actuals[a] == std::numeric_limits<std::size_t>::max()) continue;
    FeedbackReport::AtomError err;
    err.atom_index = a;
    err.relation = cq.atoms[a].relation;
    err.estimated_rows = estimates[a];
    err.actual_rows = actuals[a];
    err.error_factor =
        ErrorFactor(estimates[a], static_cast<double>(actuals[a]));
    report.max_error_factor =
        std::max(report.max_error_factor, err.error_factor);
    metrics.GetHistogram(kMetricEstimateErrorFactor)
        ->Record(static_cast<uint64_t>(std::llround(err.error_factor)));
    if (err.error_factor >= options_.refresh_error_factor &&
        marked.insert(err.relation).second) {
      to_refresh.push_back(err.relation);
    }
    report.errors.push_back(std::move(err));
  }
  for (const std::string& relation : to_refresh) {
    const Relation* rel = catalog_->Find(relation);
    if (rel == nullptr) continue;  // derived/scratch relation: nothing to do
    if (FaultInjector::Instance().ShouldFail(kFaultSiteStatsFeedback)) {
      // Degrade cleanly: this refresh (and its epoch bump) is skipped; the
      // stale estimate simply survives until a later query reconciles.
      ++report.skipped;
      metrics.GetCounter(kMetricFeedbackSkippedTotal)->Increment();
      continue;
    }
    stats_->Put(relation, CollectStats(*rel, options_.histogram_buckets));
    report.refreshed.push_back(relation);
    metrics.GetCounter(kMetricFeedbackRefreshesTotal)->Increment();
  }
  return report;
}

}  // namespace htqo

// Data statistics: the "Statistics Picker" of the paper's architecture
// (Fig. 5). Collected by scanning relations, or absent — the optimizers
// support both regimes, which is exactly the CommDB with/without-statistics
// axis of Section 6.

#ifndef HTQO_STATS_STATISTICS_H_
#define HTQO_STATS_STATISTICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/relation.h"

namespace htqo {

struct ColumnStats {
  std::size_t distinct_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
  // Equi-depth histogram boundaries for orderable columns (like
  // pg_stats.histogram_bounds): bounds[0] = min, bounds.back() = max, and
  // each of the bounds.size()-1 buckets holds ~the same number of rows.
  // Empty when the column was not histogrammed (too few rows, or strings).
  std::vector<Value> histogram_bounds;
};

struct RelationStats {
  std::size_t row_count = 0;
  // Parallel to the relation's schema columns.
  std::vector<ColumnStats> columns;
};

// Exact statistics computed by a full scan. `histogram_buckets` controls
// the equi-depth histograms built for numeric/date columns (0 disables).
RelationStats CollectStats(const Relation& relation,
                           std::size_t histogram_buckets = 32);

// Manually declared statistics — the paper's stand-alone usage: "the user
// may optionally indicate the cardinality of the involved relations, and
// the selectivity of their attributes" (Section 5). `distinct_counts` is
// parallel to the relation's columns; zero entries mean unknown (the
// estimator falls back to defaults for them).
RelationStats MakeManualStats(std::size_t row_count,
                              const std::vector<std::size_t>& distinct_counts);

// Process-wide per-relation statistics epochs, keyed by lowercased relation
// name. Every StatisticsRegistry::Put/Clear bumps the touched relations'
// epochs; the decomposition cache snapshots them at compute time and treats
// any later bump as invalidation. The registry is deliberately global (not
// per-StatisticsRegistry): several registries naming the same relation are
// indistinguishable to a process-wide plan cache, so invalidation must be
// conservative across all of them. A never-touched relation reads epoch 0.
class StatsEpochRegistry {
 public:
  static StatsEpochRegistry& Global();

  uint64_t Get(const std::string& relation_name) const;
  void Bump(const std::string& relation_name);

  StatsEpochRegistry() = default;
  StatsEpochRegistry(const StatsEpochRegistry&) = delete;
  StatsEpochRegistry& operator=(const StatsEpochRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> epochs_;
};

// Statistics registry for a database; mirrors pg_statistic. Lookup failures
// mean "no statistics gathered yet" and estimators fall back to defaults.
class StatisticsRegistry {
 public:
  void Put(const std::string& relation_name, RelationStats stats);

  const RelationStats* Find(const std::string& relation_name) const;

  // Scans every relation in `catalog` (the ANALYZE command).
  void AnalyzeAll(const Catalog& catalog);

  void Clear();
  bool empty() const { return stats_.empty(); }

 private:
  std::map<std::string, RelationStats> stats_;
};

}  // namespace htqo

#endif  // HTQO_STATS_STATISTICS_H_

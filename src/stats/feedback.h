// Post-query reconciliation (DESIGN.md §6h): the feedback half of the
// adaptive re-optimization loop.
//
// EXPLAIN ANALYZE traces already record every operator's true cardinality;
// a FeedbackCollector mines the op.scan spans of a finished query, compares
// each atom's actual row count against what the estimator would have
// predicted from the current statistics, and — when the error factor
// crosses a threshold — re-analyzes the affected base relations in place.
// StatisticsRegistry::Put bumps the relation's stats epoch, so DecompCache
// entries planned from the stale estimates invalidate themselves on their
// next lookup: the plan cache self-corrects under data drift instead of
// serving a wrong-cost plan indefinitely.
//
// The stats.feedback fault site covers the refresh: a firing site skips
// that relation's refresh (and its epoch bump) cleanly; the query result
// that produced the trace is never affected.

#ifndef HTQO_STATS_FEEDBACK_H_
#define HTQO_STATS_FEEDBACK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/isolator.h"
#include "obs/trace.h"
#include "stats/statistics.h"
#include "storage/catalog.h"

namespace htqo {

struct FeedbackOptions {
  // Refresh a relation's statistics when some scan of it diverged from its
  // estimate by at least this factor (max/min ratio, so 1.0 = perfect and
  // over- and under-estimates are symmetric).
  double refresh_error_factor = 2.0;
  // Histogram resolution of the refreshed statistics (CollectStats).
  std::size_t histogram_buckets = 32;
};

struct FeedbackReport {
  struct AtomError {
    std::size_t atom_index = 0;
    std::string relation;
    double estimated_rows = 0;
    std::size_t actual_rows = 0;
    double error_factor = 1.0;  // max/min ratio, >= 1
  };
  // One entry per atom whose scan the trace recorded, in atom order.
  std::vector<AtomError> errors;
  // Relations re-analyzed (each Put bumped that relation's stats epoch).
  std::vector<std::string> refreshed;
  // Refreshes abandoned because the stats.feedback fault site fired.
  std::size_t skipped = 0;
  double max_error_factor = 1.0;
};

class FeedbackCollector {
 public:
  // Both pointees are borrowed and must outlive the collector. `stats` is
  // the registry the *next* optimization will read — refreshes land there.
  FeedbackCollector(const Catalog* catalog, StatisticsRegistry* stats,
                    FeedbackOptions options = FeedbackOptions())
      : catalog_(catalog), stats_(stats), options_(options) {}

  // Mines `tracer`'s op.scan spans for the resolved query `rq` (the run
  // must have been traced), reconciles actual vs. estimated cardinalities,
  // refreshes the statistics of every relation whose error crossed the
  // threshold, and records the htqo_feedback_* / estimate-error metrics.
  FeedbackReport Reconcile(const ResolvedQuery& rq, const Tracer& tracer);

  // As above on a pre-mined actual-rows list (parallel to cq.atoms; entries
  // of SIZE_MAX mean "scan not observed"). Lets callers without a tracer —
  // the replan rung has the observed cardinalities in hand — feed back.
  FeedbackReport ReconcileActuals(const ConjunctiveQuery& cq,
                                  const std::vector<std::size_t>& actuals);

 private:
  const Catalog* catalog_;
  StatisticsRegistry* stats_;
  FeedbackOptions options_;
};

// The estimator's predicted cardinality for each atom of `cq` after its
// local filters, from the statistics in `stats` (nullptr = defaults) — the
// same per-edge row estimate BuildEdgeStats feeds the decomposition search.
// Exposed for the collector and tests.
std::vector<double> EstimateAtomRows(const ConjunctiveQuery& cq,
                                     const StatisticsRegistry* stats);

}  // namespace htqo

#endif  // HTQO_STATS_FEEDBACK_H_

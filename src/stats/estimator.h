// Cardinality and selectivity estimation, following the textbook formulas of
// Garcia-Molina/Ullman/Widom and Ioannidis (paper refs [3, 4]).
//
// Two regimes:
//   * With statistics: equality selectivity 1/V(R,a), range selectivity from
//     min/max interpolation, join size |R||S| / max(V(R,a), V(S,b)).
//   * Without statistics: PostgreSQL-style magic defaults (DEFAULT_EQ_SEL
//     etc.) and a default relation cardinality, reproducing the
//     "statistics disabled" optimizer regime of Section 6.

#ifndef HTQO_STATS_ESTIMATOR_H_
#define HTQO_STATS_ESTIMATOR_H_

#include <string>

#include "stats/statistics.h"
#include "storage/value.h"

namespace htqo {

struct EstimatorDefaults {
  double default_rows = 1000.0;      // unknown relation cardinality
  double eq_selectivity = 0.005;     // PostgreSQL DEFAULT_EQ_SEL
  double range_selectivity = 1.0 / 3.0;  // PostgreSQL DEFAULT_INEQ_SEL
  double join_selectivity = 0.01;    // unknown equi-join selectivity
};

class Estimator {
 public:
  // `registry` may be nullptr (or empty): every estimate then uses defaults.
  explicit Estimator(const StatisticsRegistry* registry,
                     EstimatorDefaults defaults = EstimatorDefaults())
      : registry_(registry), defaults_(defaults) {}

  bool has_statistics(const std::string& relation) const;

  // Estimated |relation|.
  double Rows(const std::string& relation) const;

  // Number of distinct values in relation.column; falls back to
  // rows * eq_selectivity guess when unknown.
  double DistinctCount(const std::string& relation, std::size_t column) const;

  // Selectivity of `relation.column <op> constant`. `op` uses the comparison
  // spelling of the SQL AST: "=", "<", "<=", ">", ">=", "<>".
  double ConstantSelectivity(const std::string& relation, std::size_t column,
                             const std::string& op, const Value& constant)
      const;

  // Selectivity of the equi-join predicate left.lcol = right.rcol, i.e. the
  // fraction of the cross product that survives: 1 / max(V(l), V(r)).
  double JoinSelectivity(const std::string& left, std::size_t lcol,
                         const std::string& right, std::size_t rcol) const;

  const EstimatorDefaults& defaults() const { return defaults_; }

 private:
  const RelationStats* StatsFor(const std::string& relation) const;

  const StatisticsRegistry* registry_;
  EstimatorDefaults defaults_;
};

}  // namespace htqo

#endif  // HTQO_STATS_ESTIMATOR_H_

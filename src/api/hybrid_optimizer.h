// The public entry point: the hybrid optimizer of Section 5 (Fig. 5/6).
//
// A HybridOptimizer wraps a database (Catalog + optional statistics) and
// runs SQL through the full pipeline — parse, isolate CQ(Q), decompose /
// plan, execute, evaluate aggregates — under one of several optimizer modes
// that reproduce the comparison axes of Section 6:
//
//   kQhdHybrid       q-HD with the statistics cost model; the tight
//                    PostgreSQL coupling ("PostgreSQL + q-HD").
//   kQhdStructural   q-HD with the structural cost model; the stand-alone
//                    regime when statistics are unavailable ("q-HD").
//   kQhdNoOptimize   kQhdHybrid without Procedure Optimize (Fig. 10).
//   kDpStatistics    bushy DP join ordering on exact statistics, hash
//                    joins ("CommDB" with its standard optimizer).
//   kNaive           FROM-order nested-loop evaluation ("CommDB without
//                    its standard optimizer" / statistics disabled).
//   kGeqoDefaults    GEQO left-deep search on default estimates with the
//                    nested-loop misestimation pathology ("PostgreSQL"
//                    basic, no ANALYZE).
//   kYannakakis      the classical three-pass semijoin algorithm (Section
//                    3.2, ref [12]); acyclic queries only (falls back to DP
//                    on cyclic inputs when fallback_to_dp is set).
//   kClassicHd       the classic decomposition pipeline S2'+S2'': cost-k-
//                    decomp *without* the out(Q) rooting, then Yannakakis
//                    over the vertex relations — what the literature
//                    offered before q-hypertree decompositions.

#ifndef HTQO_API_HYBRID_OPTIMIZER_H_
#define HTQO_API_HYBRID_OPTIMIZER_H_

#include <atomic>
#include <string>
#include <string_view>

#include "cq/isolator.h"
#include "exec/operators.h"
#include "exec/shard.h"
#include "obs/trace.h"
#include "opt/qhd_planner.h"
#include "rewrite/view_rewriter.h"
#include "stats/statistics.h"
#include "storage/catalog.h"
#include "util/governor.h"
#include "util/status.h"

namespace htqo {

enum class OptimizerMode {
  kQhdHybrid,
  kQhdStructural,
  kQhdNoOptimize,
  kDpStatistics,
  kNaive,
  kGeqoDefaults,
  kYannakakis,
  kClassicHd,
  // Tree-decomposition method (related work [9,7,1]): min-fill tree
  // decomposition of the primal graph, converted to a generalized hypertree
  // decomposition and evaluated with the classic three-pass pipeline.
  kTreeDecomposition,
};

std::string OptimizerModeName(OptimizerMode mode);

struct RunOptions {
  OptimizerMode mode = OptimizerMode::kQhdHybrid;
  std::size_t max_width = 4;  // the constant k of Fig. 4
  TidMode tid_mode = TidMode::kAggregatesOnly;
  std::size_t row_budget = std::numeric_limits<std::size_t>::max();
  std::size_t work_budget = std::numeric_limits<std::size_t>::max();
  uint64_t seed = 1;  // GEQO determinism
  // On q-HD "Failure" (no width-<=k rooted decomposition), fall back to the
  // DP plan instead of erroring — the hybrid behaviour.
  bool fallback_to_dp = true;

  // --- Query-governor limits. The paper's hostile instances "do not
  // terminate after 10 minutes"; these make the pipeline *return* instead.
  // Wall-clock deadline over the whole pipeline (every degradation-ladder
  // attempt shares it); <= 0 disables.
  double deadline_seconds = 0;
  // Deterministic search-node budget, granted afresh to each optimization
  // attempt (reproducible across machines — tests should prefer this over
  // the deadline).
  std::size_t search_node_budget = std::numeric_limits<std::size_t>::max();
  // Live-memory budget for decomposition memo tables.
  std::size_t memory_budget_bytes = std::numeric_limits<std::size_t>::max();
  // When a governor limit trips, walk the degradation ladder — q-HD at
  // width k → k-1 → … → 1 → DP plan → GEQO plan — instead of failing with
  // kDeadlineExceeded. Each step is recorded in QueryRun::degradations.
  bool degrade_on_budget = true;
  // External cooperative-cancel flag polled by every governor checkpoint in
  // the run (ResourceGovernor::Options::cancel_flag). Setting the pointee
  // from any thread — a SIGINT handler, the query server's drain path —
  // makes the in-flight query return kDeadlineExceeded at its next
  // checkpoint. The pointee must outlive the Run call; nullptr disables.
  const std::atomic<bool>* cancel_flag = nullptr;

  // --- Memory-adaptive execution (spilling). With enable_spill set and a
  // finite memory_budget_bytes, an operator whose working set would push
  // live charged memory past soft_memory_fraction * memory_budget_bytes
  // switches to the Grace-partitioned spill path (byte-identical output,
  // recorded in QueryRun::degradations) instead of materializing in memory
  // and hard-tripping the budget. Spilling's own hard kill is
  // spill_disk_budget_bytes.
  bool enable_spill = false;
  double soft_memory_fraction = 0.5;  // clamped to (0, 1]
  std::string spill_dir;              // empty = the system temp directory
  std::size_t spill_disk_budget_bytes =
      std::numeric_limits<std::size_t>::max();

  // --- Vectorized batch execution (on by default). Hot operators — scan,
  // filter, hash join, semijoin, distinct, select-output, aggregation —
  // process fixed-size columnar batches (kBatchRows rows) with typed tight
  // loops and per-batch key-hash blocks instead of row-at-a-time Value
  // dispatch. Output, meters (rows/work charges, bloom_skips, hash_probes)
  // and spill decisions are byte-identical to the row engine at any thread
  // count; turning this off selects the original row path for differential
  // testing. DESIGN.md §6g.
  bool use_vectorized = true;

  // Worker lanes for the parallel execution engine and decomposition
  // search. 1 (the default) is the exact serial engine; N > 1 fans the
  // partitioned join/semijoin kernels, the Yannakakis/q-HD tree waves, and
  // the cost-k-decomp root candidates out over a process-wide thread pool.
  // Results and chosen decompositions are bit-identical at any setting.
  std::size_t num_threads = 1;

  // --- Sharded evaluation (off by default). With num_shards >= 1, the
  // Yannakakis/q-HD reduction passes run as a hash-partitioned semijoin
  // program: each forest node's relation splits into num_shards pieces on
  // its parent-link join columns (small or keyless relations broadcast via
  // replicate-small), and the up/down passes ship blocked Bloom filters —
  // or exact key sets under shard_exact_key_threshold — between pieces
  // instead of rows (exec/shard.h, DESIGN.md §6j). Final output is
  // byte-identical to the unsharded engine for the forest-reduction modes
  // and identical across any S and thread count for all supported modes;
  // RunResolved grows the shared pool by num_threads x num_shards so shard
  // fan-out gets real lanes. num_shards = 1 runs the full sharded path
  // with one piece (the scale-out baseline); 0 keeps sharding entirely
  // off. Plan-only modes (DP/GEQO/Naive) and replan-armed runs ignore it.
  std::size_t num_shards = 0;
  std::size_t shard_replicate_threshold = 64;
  std::size_t shard_exact_key_threshold = 4096;

  // --- Plan caching (opt-in). With use_plan_cache set, every q-HD width
  // attempt consults the process-wide DecompCache before searching: the
  // query's hypergraph is canonicalized (cache.lookup span), and a fresh
  // entry is rebound to this query's numbering (cache.rebind span) with
  // only Procedure Optimize re-run — skipping the decomposition search and
  // the stats lookup entirely on hits. Entries invalidate on statistics
  // epochs (StatsEpochRegistry) and concurrent misses on one fingerprint
  // compute once. Results are byte-identical to the uncached path at any
  // thread count. Off by default so single-shot library users and the
  // search-path tests/benches measure the real search. DESIGN.md §6e.
  bool use_plan_cache = false;

  // --- Adaptive mid-query re-planning (opt-in; q-HD modes only). With
  // enable_replan set, the q-HD evaluator compares every decomposition
  // node's actual cardinality against the cost model's estimate at each
  // wave barrier. When an intermediate exceeds its estimate by
  // replan_blowup_factor (and is at least replan_min_rows tall), the
  // completed node results are checkpointed, the decomposition search is
  // re-entered with the observed scan cardinalities pinned, and evaluation
  // resumes, reusing checkpoints whose subtree matches. Each replan records
  // a kReplan degradation entry and htqo_replans_total. The final answer is
  // canonically sorted whenever replan is armed, so a replanned query is
  // byte-identical to its never-replanned twin at any thread count.
  // DESIGN.md §6h.
  bool enable_replan = false;
  double replan_blowup_factor = 4.0;
  std::size_t replan_min_rows = 1024;
  std::size_t max_replans = 1;

  // --- Tracing (off by default: a null tracer costs one branch per
  // instrumentation point). With a tracer set, the pipeline emits one span
  // per stage — parse, isolation, stats lookup, each search width attempt,
  // Optimize, each Yannakakis pass/wave, each physical operator — under
  // trace.parent, and QueryRun::plan_details gains per-node actuals
  // (EXPLAIN ANALYZE). Span taxonomy: DESIGN.md §6d.
  TraceContext trace;
};

struct QueryRun {
  Relation output;           // final SELECT result
  ExecContext ctx;           // rows/work metering
  double parse_seconds = 0;  // SQL parse time (0 on pre-parsed entry points)
  double plan_seconds = 0;   // optimization time (decomposition or search)
  double exec_seconds = 0;   // evaluation time
  std::string plan_description;
  // Multi-line plan rendering (the decomposition tree for q-HD modes, the
  // join tree for plan modes); for EXPLAIN-style output. With tracing on,
  // nodes carry actuals: [rows=N time=T.TTTms ...].
  std::string plan_details;
  // q-HD modes only:
  std::size_t decomposition_width = 0;
  std::size_t pruned_lambda_entries = 0;
  // Why the produced plan differs from the requested mode: one entry per
  // degradation-ladder step taken, in order (empty when the requested mode
  // ran to completion). Benchmarks report these instead of silent failure.
  std::vector<std::string> degradations;
  // Aggregated governor observations across every attempt (search nodes,
  // peak memory, deadline/budget trips).
  GovernorStats governor;
  // Plan-cache outcome of the decomposition phase: "" when caching was off
  // (or a non-q-HD mode ran); otherwise "hit", "shared-hit" (waited on
  // another thread's in-flight compute), "miss", or "stale-miss" (an entry
  // existed but its statistics epochs were out of date).
  std::string plan_cache;
  // Spill-to-disk activity of the run (zeros when spilling never armed or
  // never activated). A run that spilled also records a degradation entry.
  SpillCounters spill;
  // Mid-query replans taken (enable_replan only). Each one also appends a
  // kReplan degradation entry and bumps governor.replan_trips.
  std::size_t replans = 0;
  // Sharded-evaluation activity (zeros when num_shards == 0): partition/
  // replicate counts, exchange message volume vs. the row-shipping
  // baseline, rows pruned by exchange probes, and piece-size skew.
  ShardStats shard;

  // Whether the produced plan differs from what the requested mode would
  // have produced unconstrained. Derived — `degradations` is the single
  // source of truth; every ladder step, mode fallback, and spill activation
  // appends exactly one entry there.
  bool used_fallback() const { return !degradations.empty(); }
};

class HybridOptimizer {
 public:
  // `stats` may be nullptr (no statistics gathered). Both pointees must
  // outlive the optimizer.
  HybridOptimizer(const Catalog* catalog, const StatisticsRegistry* stats)
      : catalog_(catalog), stats_(stats) {}

  // Parse + isolate only.
  Result<ResolvedQuery> Resolve(std::string_view sql,
                                TidMode tid_mode = TidMode::kAggregatesOnly)
      const;

  // Full pipeline on a SQL string. Nested queries (derived tables in FROM)
  // are supported: each subquery is recursively evaluated — under
  // TidMode::kAllAtoms, so bag semantics survive the materialization — and
  // registered as a scratch relation before the outer query runs.
  Result<QueryRun> Run(std::string_view sql, const RunOptions& options) const;

  // As Run, on an already parsed statement.
  Result<QueryRun> RunStatement(const SelectStatement& stmt,
                                const RunOptions& options) const;

  // Full pipeline on an already resolved query (lets benchmarks exclude
  // parse time and reuse isolations).
  Result<QueryRun> RunResolved(const ResolvedQuery& rq,
                               const RunOptions& options) const;

  // Stand-alone mode output: the query rewritten as SQL views following its
  // q-hypertree decomposition (requires a TidMode::kNone isolation).
  Result<RewrittenQuery> RewriteQuery(std::string_view sql,
                                      const RunOptions& options) const;

  const Catalog& catalog() const { return *catalog_; }
  const StatisticsRegistry* stats() const { return stats_; }

 private:
  const Catalog* catalog_;
  const StatisticsRegistry* stats_;
};

// Executes a RewrittenQuery by materializing every view bottom-up in a
// scratch catalog (copying the base relations of `base`) and running the
// final statement — the "evaluated on top of any DBMS" path, using our own
// engine as that DBMS. Used by tests and examples to validate rewritings.
Result<Relation> ExecuteRewrittenQuery(const RewrittenQuery& rewritten,
                                       const Catalog& base,
                                       ExecContext* ctx);

}  // namespace htqo

#endif  // HTQO_API_HYBRID_OPTIMIZER_H_

#include "api/hybrid_optimizer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_map>

#include "cache/decomp_cache.h"
#include "cq/hypergraph_builder.h"
#include "decomp/optimize.h"
#include "exec/adaptive.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "opt/dp_optimizer.h"
#include "opt/geqo_optimizer.h"
#include "opt/naive_optimizer.h"
#include "decomp/tree_decomposition.h"
#include "opt/yannakakis.h"
#include "sql/parser.h"
#include "util/thread_pool.h"

namespace htqo {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool IsQhdMode(OptimizerMode mode) {
  return mode == OptimizerMode::kQhdHybrid ||
         mode == OptimizerMode::kQhdStructural ||
         mode == OptimizerMode::kQhdNoOptimize;
}

// Folds a subquery run's meters into an accumulator (scalar, IN and
// derived-table paths of RunStatement all need the same bookkeeping).
void MergeSubRun(const QueryRun& sub, QueryRun* into) {
  into->ctx.rows_charged =
      SaturatingAdd(into->ctx.rows_charged, sub.ctx.rows_charged);
  into->ctx.work_charged =
      SaturatingAdd(into->ctx.work_charged, sub.ctx.work_charged);
  into->ctx.NotePeak(sub.ctx.peak_rows);
  into->plan_seconds += sub.plan_seconds;
  into->exec_seconds += sub.exec_seconds;
  into->governor.Merge(sub.governor);
  into->spill.Merge(sub.spill);
  into->shard.Merge(sub.shard);
  into->degradations.insert(into->degradations.end(),
                            sub.degradations.begin(),
                            sub.degradations.end());
}

// Opens the root "query" span when this call is the outermost traced entry
// on the calling thread. Run/RunStatement/RunResolved are all public, so
// whichever one the caller used becomes the root; deeper frames (and
// recursive subquery runs) nest under it via the thread-local span stack.
void BeginQueryRoot(std::optional<ScopedSpan>* root, const RunOptions& options,
                    OptimizerMode mode) {
  Tracer* tracer = options.trace.tracer;
  if (tracer == nullptr || Tracer::CurrentParent(tracer) != 0) return;
  root->emplace(tracer, "query", options.trace.parent);
  (*root)->Attr("mode", OptimizerModeName(mode));
  (*root)->Attr("threads", options.num_threads);
}

// EXPLAIN ANALYZE: rewrites the decomposition rendering with per-node
// actuals mined from the qhd.node spans the evaluator emitted — rows
// produced, wall time, worker thread, spill partitions under the node.
void AnnotatePlanDetails(const Tracer* tracer, const Hypergraph& h,
                         const Hypertree& hd, QueryRun* run) {
  if (tracer == nullptr) return;
  const std::vector<Span> spans = tracer->Snapshot();
  struct NodeActuals {
    double ms = 0;
    uint64_t rows = 0;
    uint64_t thread = 0;
    std::size_t spill_partitions = 0;
    uint64_t batches = 0;
  };
  std::map<std::size_t, NodeActuals> actuals;
  std::unordered_map<uint64_t, uint64_t> parent_of;
  std::unordered_map<uint64_t, std::size_t> span_to_node;
  parent_of.reserve(spans.size());
  for (const Span& span : spans) parent_of[span.id] = span.parent;
  for (const Span& span : spans) {
    if (span.name != "qhd.node") continue;
    std::size_t node = HypertreeNode::kNoParent;
    uint64_t rows = 0;
    for (const SpanAttr& attr : span.attrs) {
      if (attr.key == "node") node = std::stoull(attr.value);
      if (attr.key == "rows") rows = std::stoull(attr.value);
    }
    if (node == HypertreeNode::kNoParent) continue;
    span_to_node[span.id] = node;
    NodeActuals& na = actuals[node];
    na.ms = static_cast<double>(std::max<int64_t>(0, span.duration_ns)) / 1e6;
    na.rows = rows;
    na.thread = span.thread;
  }
  if (actuals.empty()) return;
  for (const Span& span : spans) {
    const bool is_spill = span.name == "spill.partition";
    uint64_t span_batches = 0;
    if (!is_spill) {
      // Vectorized operator spans (op.*) carry a "batches" attr; roll those
      // up into the owning decomposition node like the spill partitions.
      if (span.name.rfind("op.", 0) != 0) continue;
      for (const SpanAttr& attr : span.attrs) {
        if (attr.key == "batches") span_batches = std::stoull(attr.value);
      }
      if (span_batches == 0) continue;
    }
    // Attribute the span to its nearest qhd.node ancestor.
    uint64_t cursor = span.parent;
    for (int guard = 0; cursor != 0 && guard < 64; ++guard) {
      auto node_it = span_to_node.find(cursor);
      if (node_it != span_to_node.end()) {
        if (is_spill) {
          ++actuals[node_it->second].spill_partitions;
        } else {
          actuals[node_it->second].batches += span_batches;
        }
        break;
      }
      auto parent_it = parent_of.find(cursor);
      if (parent_it == parent_of.end()) break;
      cursor = parent_it->second;
    }
  }
  run->plan_details = hd.ToString(h, [&](std::size_t p) -> std::string {
    auto it = actuals.find(p);
    if (it == actuals.end()) return std::string();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " [rows=%llu time=%.3fms thread=%llu",
                  static_cast<unsigned long long>(it->second.rows),
                  it->second.ms,
                  static_cast<unsigned long long>(it->second.thread));
    std::string annotation = buf;
    if (it->second.batches > 0) {
      annotation += " batches=" + std::to_string(it->second.batches);
    }
    if (it->second.spill_partitions > 0) {
      annotation +=
          " spill_partitions=" + std::to_string(it->second.spill_partitions);
    }
    annotation += "]";
    return annotation;
  });
}

}  // namespace

std::string OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kQhdHybrid:
      return "qhd-hybrid";
    case OptimizerMode::kQhdStructural:
      return "qhd-structural";
    case OptimizerMode::kQhdNoOptimize:
      return "qhd-no-optimize";
    case OptimizerMode::kDpStatistics:
      return "dp-statistics";
    case OptimizerMode::kNaive:
      return "naive";
    case OptimizerMode::kGeqoDefaults:
      return "geqo-defaults";
    case OptimizerMode::kYannakakis:
      return "yannakakis";
    case OptimizerMode::kClassicHd:
      return "classic-hd";
    case OptimizerMode::kTreeDecomposition:
      return "tree-decomposition";
  }
  return "?";
}

Result<ResolvedQuery> HybridOptimizer::Resolve(std::string_view sql,
                                               TidMode tid_mode) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  IsolatorOptions options;
  options.tid_mode = tid_mode;
  return IsolateConjunctiveQuery(*stmt, *catalog_, options);
}

Result<QueryRun> HybridOptimizer::Run(std::string_view sql,
                                      const RunOptions& options) const {
  std::optional<ScopedSpan> root;
  BeginQueryRoot(&root, options, options.mode);
  std::optional<ScopedSpan> parse_span(std::in_place, options.trace.tracer,
                                       "parse");
  const auto parse_start = std::chrono::steady_clock::now();
  auto stmt = ParseSelect(sql);
  const double parse_seconds = SecondsSince(parse_start);
  parse_span.reset();
  if (!stmt.ok()) return stmt.status();
  auto run = RunStatement(*stmt, options);
  if (run.ok()) run->parse_seconds = parse_seconds;
  return run;
}

Result<QueryRun> HybridOptimizer::RunStatement(const SelectStatement& stmt,
                                               const RunOptions& options)
    const {
  std::optional<ScopedSpan> root;
  BeginQueryRoot(&root, options, options.mode);
  // Uncorrelated scalar subqueries in WHERE evaluate first and become
  // literals: x > (SELECT avg(y) FROM ...) compares against the computed
  // value. SQL semantics: more than one row is an error; zero rows compare
  // as unknown, i.e. the conjunct (and with it the whole WHERE) is false.
  bool has_scalar = false;
  for (const Comparison& cmp : stmt.where) {
    has_scalar |= cmp.lhs.ContainsScalarSubquery() ||
                  cmp.rhs.ContainsScalarSubquery();
  }
  if (has_scalar) {
    SelectStatement rewritten = stmt.Clone();
    QueryRun accumulated;
    bool always_false = false;
    std::function<Status(Expr*)> replace = [&](Expr* e) -> Status {
      if (e->kind == ExprKind::kScalarSubquery) {
        auto sub_run = RunStatement(*e->subquery, options);
        if (!sub_run.ok()) return sub_run.status();
        MergeSubRun(*sub_run, &accumulated);
        const Relation& out = sub_run->output;
        if (out.arity() != 1) {
          return Status::InvalidArgument(
              "scalar subquery must select exactly one column");
        }
        if (out.NumRows() > 1) {
          return Status::InvalidArgument(
              "scalar subquery returned more than one row");
        }
        if (out.NumRows() == 0) {
          always_false = true;
          *e = Expr::MakeLiteral(Value::Int64(0));
          return Status::Ok();
        }
        *e = Expr::MakeLiteral(out.At(0, 0));
        return Status::Ok();
      }
      if (e->lhs) {
        Status s = replace(e->lhs.get());
        if (!s.ok()) return s;
      }
      if (e->rhs) {
        Status s = replace(e->rhs.get());
        if (!s.ok()) return s;
      }
      return Status::Ok();
    };
    for (Comparison& cmp : rewritten.where) {
      Status s = replace(&cmp.lhs);
      if (!s.ok()) return s;
      s = replace(&cmp.rhs);
      if (!s.ok()) return s;
    }
    if (always_false) {
      rewritten.where.clear();
      rewritten.where_in.clear();
      rewritten.where.emplace_back(Expr::MakeLiteral(Value::Int64(1)),
                                   CompareOp::kEq,
                                   Expr::MakeLiteral(Value::Int64(2)));
    }
    auto run = RunStatement(rewritten, options);
    if (!run.ok()) return run.status();
    MergeSubRun(accumulated, &run.value());
    return run;
  }

  // Uncorrelated IN-subqueries rewrite into a join with a DISTINCT derived
  // table: x IN (SELECT y FROM ...) ≡ JOIN (SELECT DISTINCT y ...) s ON
  // x = s.y — exact under bag semantics since the distinct single column
  // matches each outer row at most once. The rewritten statement then goes
  // through the derived-table materialization below.
  if (stmt.HasInSubqueries()) {
    SelectStatement rewritten = stmt.Clone();
    std::vector<InCondition> remaining;
    std::size_t counter = 0;
    QueryRun accumulated_in;
    for (InCondition& cond : rewritten.where_in) {
      if (cond.subquery == nullptr) {
        remaining.push_back(std::move(cond));
        continue;
      }
      if (cond.subquery->items.size() != 1) {
        return Status::InvalidArgument(
            "IN subquery must select exactly one column");
      }
      if (cond.negated) {
        // NOT IN: a join rewrite would be wrong (anti-semijoin); instead
        // materialize the subquery's values into a negated membership
        // filter.
        auto sub_run = RunStatement(*cond.subquery, options);
        if (!sub_run.ok()) return sub_run.status();
        MergeSubRun(*sub_run, &accumulated_in);
        InCondition literal;
        literal.lhs = std::move(cond.lhs);
        literal.negated = true;
        literal.values.reserve(sub_run->output.NumRows());
        for (std::size_t r = 0; r < sub_run->output.NumRows(); ++r) {
          literal.values.push_back(sub_run->output.At(r, 0));
        }
        remaining.push_back(std::move(literal));
        continue;
      }
      // Wrap the subquery so its single output column gets a collision-free
      // name (outer unqualified references would otherwise become
      // ambiguous): SELECT DISTINCT w.<col> AS htqo_in_N FROM (<sub>) w.
      const SelectItem& item = cond.subquery->items[0];
      std::string inner_column = item.alias;
      if (inner_column.empty()) {
        inner_column = item.expr.kind == ExprKind::kColumnRef
                           ? item.expr.column
                           : "col0";
      }
      std::string unique = "htqo_in_" + std::to_string(counter);
      SelectStatement wrapper;
      wrapper.distinct = true;
      wrapper.items.emplace_back(Expr::MakeColumnRef("w", inner_column),
                                 unique);
      TableRef inner_ref;
      inner_ref.alias = "w";
      inner_ref.subquery = cond.subquery;
      wrapper.from.push_back(std::move(inner_ref));

      TableRef ref;
      ref.alias = "htqo_insub_" + std::to_string(counter);
      ref.subquery =
          std::make_shared<const SelectStatement>(std::move(wrapper));
      rewritten.from.push_back(ref);
      rewritten.where.emplace_back(std::move(cond.lhs), CompareOp::kEq,
                                   Expr::MakeColumnRef(ref.alias, unique));
      ++counter;
    }
    rewritten.where_in = std::move(remaining);
    auto run = RunStatement(rewritten, options);
    if (!run.ok()) return run.status();
    MergeSubRun(accumulated_in, &run.value());
    return run;
  }

  if (!stmt.HasDerivedTables()) {
    IsolatorOptions iso;
    iso.tid_mode = options.tid_mode;
    std::optional<ScopedSpan> isolate_span(std::in_place, options.trace.tracer,
                                           "isolate");
    auto rq = IsolateConjunctiveQuery(stmt, *catalog_, iso);
    if (rq.ok()) isolate_span->Attr("atoms", rq->cq.atoms.size());
    isolate_span.reset();
    if (!rq.ok()) return rq.status();
    return RunResolved(*rq, options);
  }

  // Materialize every derived table into a scratch database, then run the
  // rewritten outer statement against it.
  Catalog scratch;
  for (const std::string& name : catalog_->Names()) {
    scratch.Put(name, *catalog_->Find(name));
  }
  StatisticsRegistry scratch_stats;
  if (stats_ != nullptr) scratch_stats = *stats_;

  SelectStatement rewritten = stmt.Clone();
  QueryRun accumulated;
  std::size_t derived_count = 0;
  for (TableRef& table : rewritten.from) {
    if (!table.IsDerived()) continue;
    // Bag semantics must survive materialization: a non-DISTINCT subquery
    // feeding an outer aggregate contributes multiplicities.
    RunOptions sub_options = options;
    sub_options.tid_mode = TidMode::kAllAtoms;
    HybridOptimizer sub_engine(&scratch, &scratch_stats);
    ScopedSpan subquery_span(options.trace.tracer, "subquery");
    subquery_span.Attr("alias", table.alias);
    auto sub_run = sub_engine.RunStatement(*table.subquery, sub_options);
    if (!sub_run.ok()) return sub_run.status();

    std::string derived_name =
        "htqo_derived_" + std::to_string(derived_count++) + "_" + table.alias;
    scratch_stats.Put(derived_name, CollectStats(sub_run->output));
    scratch.Put(derived_name, std::move(sub_run->output));
    table.name = derived_name;
    table.subquery.reset();

    MergeSubRun(*sub_run, &accumulated);
  }

  HybridOptimizer outer(&scratch, &scratch_stats);
  auto run = outer.RunStatement(rewritten, options);
  if (!run.ok()) return run.status();
  MergeSubRun(accumulated, &run.value());
  run->plan_description += " [+" + std::to_string(derived_count) +
                           " materialized subquer" +
                           (derived_count == 1 ? "y" : "ies") + "]";
  return run;
}

Result<QueryRun> HybridOptimizer::RunResolved(const ResolvedQuery& rq,
                                              const RunOptions& options)
    const {
  std::optional<ScopedSpan> query_root;
  BeginQueryRoot(&query_root, options, options.mode);
  Tracer* const tracer = options.trace.tracer;

  QueryRun run;
  run.ctx.row_budget = options.row_budget;
  run.ctx.work_budget = options.work_budget;
  // Process-wide worker pool; nullptr (serial) when num_threads <= 1.
  // Sharded runs fan each wave out over num_shards x num_threads lanes, so
  // the pool is grown to the product up front — otherwise shard pieces
  // would serialize behind each other on a pool sized for one shard.
  const std::size_t shard_lanes =
      std::max<std::size_t>(std::size_t{1}, options.num_shards);
  ThreadPool* pool = ThreadPool::Shared(std::min(
      kMaxShardLanes, options.num_threads * shard_lanes));
  run.ctx.pool = pool;
  run.ctx.num_threads = options.num_threads;
  run.ctx.vectorized = options.use_vectorized;
  run.ctx.tracer = tracer;
  run.ctx.trace_parent = Tracer::CurrentParent(tracer);

  // Sharded evaluation (DESIGN.md §6j): stack-owned runtime, borrowed by
  // the context like the governor; seal() snapshots and detaches it. The
  // forest-reduction evaluators check ctx->shard themselves; quantitative
  // modes simply never look at it.
  ShardRuntime shard_runtime;
  shard_runtime.options.num_shards = options.num_shards;
  shard_runtime.options.replicate_threshold =
      options.shard_replicate_threshold;
  shard_runtime.options.exact_key_threshold =
      options.shard_exact_key_threshold;
  if (options.num_shards >= 1) run.ctx.shard = &shard_runtime;

  if (rq.cq.always_false) {
    auto out = EvaluateSelectOutput(rq, EmptyAnswer(rq), &run.ctx);
    if (!out.ok()) return out.status();
    run.output = std::move(out.value());
    run.plan_description = "constant-false";
    run.ctx.tracer = nullptr;
    run.ctx.trace_parent = 0;
    run.ctx.shard = nullptr;  // stack-local runtime, must not escape
    MetricsRegistry::Global().GetCounter(kMetricQueriesTotal)->Increment();
    return run;
  }

  constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();
  // Tracing wants per-attempt nodes-visited counts, which the search loops
  // only report through a governor; an unlimited one counts without ever
  // tripping, so creating it is behavior-neutral.
  const bool governed = options.deadline_seconds > 0 ||
                        options.search_node_budget != kNoLimit ||
                        options.memory_budget_bytes != kNoLimit ||
                        options.cancel_flag != nullptr ||
                        tracer != nullptr;

  // Memory-adaptive execution: armed only when spilling is enabled AND the
  // memory budget is finite (the soft threshold is a fraction of it). The
  // manager lives on this frame; seal() snapshots its counters and clears
  // the borrowed pointer before QueryRun escapes.
  const bool spill_armed =
      options.enable_spill && options.memory_budget_bytes != kNoLimit;
  std::optional<SpillManager> spill_manager;
  if (spill_armed) {
    SpillOptions sopt;
    sopt.dir = options.spill_dir;
    sopt.disk_budget_bytes = options.spill_disk_budget_bytes;
    spill_manager.emplace(std::move(sopt));
    run.ctx.spill = &*spill_manager;
    double frac = options.soft_memory_fraction;
    if (frac <= 0.0 || frac > 1.0) frac = 0.5;
    run.ctx.soft_memory_bytes = static_cast<std::size_t>(
        static_cast<double>(options.memory_budget_bytes) * frac);
  }
  // One absolute wall deadline shared by every degradation-ladder attempt;
  // node and memory budgets are granted afresh per attempt.
  const auto wall_deadline =
      options.deadline_seconds > 0
          ? ResourceGovernor::Clock::now() +
                std::chrono::duration_cast<ResourceGovernor::Clock::duration>(
                    std::chrono::duration<double>(options.deadline_seconds))
          : ResourceGovernor::Clock::time_point::max();

  std::optional<ResourceGovernor> governor;
  // `last_resort` lifts the per-attempt budgets (not the deadline) for the
  // final GEQO rung, whose search is iteration-bounded by construction —
  // guaranteeing the ladder ends in a plan rather than a tripped budget.
  auto begin_attempt = [&](bool last_resort = false) -> ResourceGovernor* {
    if (!governed) return nullptr;
    if (governor.has_value()) run.governor.Merge(governor->stats());
    ResourceGovernor::Options gopt;
    gopt.deadline = wall_deadline;
    gopt.node_budget = last_resort ? kNoLimit : options.search_node_budget;
    gopt.memory_budget_bytes =
        last_resort ? kNoLimit : options.memory_budget_bytes;
    if (spill_armed) gopt.soft_memory_bytes = run.ctx.soft_memory_bytes;
    gopt.cancel_flag = options.cancel_flag;
    governor.emplace(gopt);
    run.ctx.governor = &*governor;
    return &*governor;
  };
  // QueryRun holds its ExecContext by value and outlives this frame, so the
  // stack-local governor must never escape through it: seal before every
  // successful return.
  auto seal = [&]() {
    if (governor.has_value()) run.governor.Merge(governor->stats());
    run.ctx.governor = nullptr;
    run.ctx.replan = nullptr;  // stack-local controller, must not escape
    if (spill_manager.has_value()) {
      run.spill = spill_manager->counters();
      if (run.spill.spill_events > 0) {
        run.degradations.push_back(
            "memory-adaptive execution: " +
            std::to_string(run.spill.spill_events) +
            " operator(s) spilled " +
            std::to_string(run.spill.bytes_written) +
            " bytes to disk (soft threshold " +
            std::to_string(run.ctx.soft_memory_bytes) + " bytes)");
      }
    }
    run.ctx.spill = nullptr;
    if (run.ctx.shard != nullptr) {
      run.shard = run.ctx.shard->Snapshot();
      run.ctx.shard = nullptr;  // stack-local runtime, must not escape
    }
    // The tracer is caller-owned like the governor: don't let the borrowed
    // pointer escape through the embedded context.
    run.ctx.tracer = nullptr;
    run.ctx.trace_parent = 0;
    // Process-wide metrics: a handful of atomic adds per query, always on.
    MetricsRegistry& metrics = MetricsRegistry::Global();
    metrics.GetCounter(kMetricQueriesTotal)->Increment();
    metrics.GetHistogram(kMetricPlanLatencyUs)
        ->Record(static_cast<uint64_t>(run.plan_seconds * 1e6));
    metrics.GetHistogram(kMetricExecLatencyUs)
        ->Record(static_cast<uint64_t>(run.exec_seconds * 1e6));
    metrics.GetHistogram(kMetricRowsPerQuery)->Record(run.output.NumRows());
    metrics.GetHistogram(kMetricSearchNodesPerQuery)
        ->Record(run.governor.search_nodes);
    metrics.GetHistogram(kMetricHashProbesPerQuery)
        ->Record(run.ctx.hash_probes.load(std::memory_order_relaxed));
    metrics.GetHistogram(kMetricBloomSkipsPerQuery)
        ->Record(run.ctx.bloom_skips.load(std::memory_order_relaxed));
    metrics.GetHistogram(kMetricExecBatchesPerQuery)
        ->Record(run.ctx.batches.load(std::memory_order_relaxed));
    if (run.spill.spill_events > 0) {
      metrics.GetCounter(kMetricSpillEventsTotal)->Add(run.spill.spill_events);
      metrics.GetCounter(kMetricSpillBytesWrittenTotal)
          ->Add(run.spill.bytes_written);
    }
    if (run.governor.trips() > 0) {
      metrics.GetCounter(kMetricGovernorTripsTotal)->Add(run.governor.trips());
    }
    if (!run.degradations.empty()) {
      metrics.GetCounter(kMetricDegradationStepsTotal)
          ->Add(run.degradations.size());
    }
    if (run.shard.num_shards > 0) {
      metrics.GetCounter(kMetricShardedQueriesTotal)->Increment();
      metrics.GetCounter(kMetricShardFilterBytesTotal)
          ->Add(run.shard.filter_bytes);
      metrics.GetCounter(kMetricShardKeyBytesTotal)->Add(run.shard.key_bytes);
      metrics.GetCounter(kMetricShardRowShipBytesTotal)
          ->Add(run.shard.row_ship_bytes);
      metrics.GetCounter(kMetricShardRowsPrunedTotal)
          ->Add(run.shard.rows_pruned);
      metrics.GetHistogram(kMetricShardExchangesPerQuery)
          ->Record(run.shard.exchanges);
    }
  };
  auto budget_tripped = [&](const Status& s) {
    return options.degrade_on_budget &&
           s.code() == StatusCode::kDeadlineExceeded;
  };

  OptimizerMode mode = options.mode;
  auto start = std::chrono::steady_clock::now();

  if (mode == OptimizerMode::kYannakakis) {
    begin_attempt();
    std::optional<ScopedSpan> exec_span(std::in_place, tracer, "execute");
    run.ctx.trace_parent = exec_span->id();
    auto answer = YannakakisEvaluate(rq, *catalog_, &run.ctx);
    if (!answer.ok()) {
      exec_span.reset();
      if (answer.status().code() == StatusCode::kNotFound &&
          options.fallback_to_dp) {
        run.degradations.push_back(
            "yannakakis inapplicable (cyclic query); falling back to the DP "
            "plan");
        mode = OptimizerMode::kDpStatistics;
      } else {
        return answer.status();
      }
    } else {
      run.plan_description = "yannakakis three-pass over the join forest";
      auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
      if (!out.ok()) return out.status();
      run.output = std::move(out.value());
      exec_span.reset();
      run.exec_seconds = SecondsSince(start);
      seal();
      return run;
    }
  }

  if (mode == OptimizerMode::kTreeDecomposition) {
    begin_attempt();
    Hypergraph h = BuildHypergraph(rq.cq);
    std::optional<ScopedSpan> search_span(std::in_place, tracer,
                                          "search.tree-decomposition");
    TreeDecomposition td = MinFillTreeDecomposition(h);
    Hypertree hd = TreeDecompositionToHypertree(h, td);
    CompleteDecomposition(h, &hd);
    search_span->Attr("treewidth", td.Width());
    search_span->Attr("width", hd.Width());
    search_span.reset();
    run.plan_seconds = SecondsSince(start);
    run.decomposition_width = hd.Width();
    run.plan_description = "min-fill tree decomposition (treewidth " +
                           std::to_string(td.Width()) + ", cover width " +
                           std::to_string(hd.Width()) + ") + Yannakakis";
    auto exec_start = std::chrono::steady_clock::now();
    std::optional<ScopedSpan> exec_span(std::in_place, tracer, "execute");
    run.ctx.trace_parent = exec_span->id();
    auto answer = EvaluateDecompositionClassic(rq, *catalog_, h, hd,
                                               &run.ctx);
    if (!answer.ok()) return answer.status();
    auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
    if (!out.ok()) return out.status();
    run.output = std::move(out.value());
    exec_span.reset();
    run.exec_seconds = SecondsSince(exec_start);
    seal();
    return run;
  }

  if (mode == OptimizerMode::kClassicHd) {
    ResourceGovernor* gov = begin_attempt();
    Hypergraph h = BuildHypergraph(rq.cq);
    std::optional<ScopedSpan> stats_span(std::in_place, tracer, "stats.lookup");
    Estimator estimator(stats_);
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq.cq, estimator));
    stats_span.reset();
    // No out(Q) rooting, no Optimize: the pre-q-HD pipeline.
    std::optional<ScopedSpan> search_span(std::in_place, tracer,
                                          "search.classic-hd");
    search_span->Attr("max_width", options.max_width);
    auto hd = CostKDecomp(h, options.max_width, model, /*root_conn=*/nullptr,
                          gov, pool, options.num_threads);
    if (gov != nullptr) {
      search_span->Attr("nodes_visited", gov->stats().search_nodes);
    }
    search_span->Attr("outcome", hd.ok() ? "ok" : "failure");
    search_span.reset();
    run.plan_seconds = SecondsSince(start);
    if (!hd.ok()) {
      bool degrade = budget_tripped(hd.status());
      if (!degrade && (hd.status().code() != StatusCode::kNotFound ||
                       !options.fallback_to_dp)) {
        return hd.status();
      }
      run.degradations.push_back(
          degrade ? "classic HD search exceeded its budget; falling back to "
                    "the DP plan"
                  : "classic HD found no decomposition of width <= " +
                        std::to_string(options.max_width) +
                        "; falling back to the DP plan");
      mode = OptimizerMode::kDpStatistics;
    } else {
      CompleteDecomposition(h, &hd.value());
      run.decomposition_width = hd->Width();
      run.plan_description = "classic HD + Yannakakis (width " +
                             std::to_string(hd->Width()) + ")";
      auto exec_start = std::chrono::steady_clock::now();
      std::optional<ScopedSpan> exec_span(std::in_place, tracer, "execute");
      run.ctx.trace_parent = exec_span->id();
      auto answer =
          EvaluateDecompositionClassic(rq, *catalog_, h, *hd, &run.ctx);
      if (!answer.ok()) return answer.status();
      auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
      if (!out.ok()) return out.status();
      run.output = std::move(out.value());
      exec_span.reset();
      run.exec_seconds = SecondsSince(exec_start);
      seal();
      return run;
    }
  }

  if (IsQhdMode(mode)) {
    const bool use_statistics = mode != OptimizerMode::kQhdStructural;
    const bool run_optimize = mode != OptimizerMode::kQhdNoOptimize;

    Hypergraph h = BuildHypergraph(rq.cq);
    Bitset out_vars = OutputVarsBitset(rq.cq);

    // Plan cache: lowercased relation names, one per hyperedge (atom
    // order) — the canonical certificate's edge labels and the keys of the
    // statistics-epoch snapshot.
    std::vector<std::string> edge_labels;
    if (options.use_plan_cache) {
      edge_labels.reserve(rq.cq.atoms.size());
      for (const Atom& atom : rq.cq.atoms) {
        edge_labels.push_back(ToLower(atom.relation));
      }
    }

    // Degradation ladder, upper rungs: a governed q-HD attempt that trips
    // its budget retries at the next smaller width (cheaper search space)
    // before surrendering to the quantitative fallbacks below.
    std::size_t width = options.max_width;
    while (IsQhdMode(mode)) {
      ResourceGovernor* gov = begin_attempt();
      QhdOptions dopt;
      dopt.max_width = width;
      dopt.run_optimize = run_optimize;
      dopt.governor = gov;
      dopt.pool = pool;
      dopt.num_threads = options.num_threads;
      dopt.tracer = tracer;
      auto attempt_start = std::chrono::steady_clock::now();
      // One span per width attempt: the degradation ladder's retries show
      // up as search.qhd siblings with descending width attributes.
      std::optional<ScopedSpan> attempt_span(std::in_place, tracer,
                                             "search.qhd");
      attempt_span->Attr("width", width);
      attempt_span->Attr("cost_model",
                         use_statistics ? "statistics" : "structural");
      auto run_search = [&](const QhdOptions& sopt) -> Result<QhdResult> {
        if (use_statistics) {
          std::optional<ScopedSpan> stats_span(std::in_place, tracer,
                                               "stats.lookup");
          Estimator estimator(stats_);
          StatsDecompositionCostModel model(h,
                                            BuildEdgeStats(rq.cq, estimator));
          stats_span.reset();
          return QHypertreeDecomp(h, out_vars, model, sopt);
        }
        StructuralCostModel model;
        return QHypertreeDecomp(h, out_vars, model, sopt);
      };
      Result<QhdResult> decomp = Status::Internal("unset");
      if (options.use_plan_cache) {
        // The cache stores pre-Optimize trees, so the search closure
        // disables Optimize and it is re-run below on whichever tree comes
        // back — rebound hit or fresh miss — keeping pruning (a cheap,
        // purely structural pass) per-run while the expensive search is
        // shared. A hit skips the search *and* the stats lookup.
        QhdOptions search_opt = dopt;
        search_opt.run_optimize = false;
        PlanCacheOutcome cache_outcome;
        decomp = CachedQHypertreeDecomp(
            h, out_vars, edge_labels, width, use_statistics, gov, tracer,
            [&] { return run_search(search_opt); }, &cache_outcome);
        run.plan_cache = cache_outcome.ToString();
        attempt_span->Attr("plan_cache", run.plan_cache);
        if (decomp.ok() && run_optimize) {
          ScopedSpan optimize_span(tracer, "optimize");
          decomp->pruned = OptimizeDecomposition(h, &decomp->hd, gov);
          optimize_span.Attr("pruned", decomp->pruned);
          if (gov != nullptr && gov->exhausted()) {
            decomp = gov->trip_status();
          }
        }
      } else {
        decomp = run_search(dopt);
      }
      if (gov != nullptr) {
        attempt_span->Attr("nodes_visited", gov->stats().search_nodes);
      }
      attempt_span->Attr(
          "outcome",
          decomp.ok() ? "ok"
                      : (budget_tripped(decomp.status()) ? "budget-exceeded"
                                                         : "failure"));
      if (decomp.ok()) attempt_span->Attr("pruned", decomp->pruned);
      attempt_span.reset();
      run.plan_seconds += SecondsSince(attempt_start);

      if (decomp.ok()) {
        run.decomposition_width = decomp->width;
        run.pruned_lambda_entries = decomp->pruned;
        run.plan_description =
            "q-hypertree decomposition (width " +
            std::to_string(decomp->width) + ", " +
            std::to_string(decomp->pruned) + " pruned)";
        run.plan_details = decomp->hd.ToString(h);

        // Adaptive mid-query re-planning (DESIGN.md §6h). With a controller
        // on the context, the evaluator backs out when an intermediate blows
        // past its estimate; we then pin the observed scan cardinalities
        // into the edge statistics, re-enter the decomposition search, and
        // resume — checkpointed subtree results carry over. Structural mode
        // re-plans with the stats model on defaults: the pins land either
        // way.
        std::optional<ReplanController> controller;
        std::vector<StatsDecompositionCostModel::EdgeStats> edge_stats;
        if (options.enable_replan) {
          ReplanController::Options ropt;
          ropt.blowup_factor = options.replan_blowup_factor;
          ropt.min_rows = options.replan_min_rows;
          controller.emplace(ropt);
          controller->set_armed(options.max_replans > 0);
          run.ctx.replan = &*controller;
          Estimator estimator(stats_);
          edge_stats = BuildEdgeStats(rq.cq, estimator);
        }

        Hypertree current_hd = std::move(decomp->hd);
        auto exec_start = std::chrono::steady_clock::now();
        std::optional<ScopedSpan> exec_span(std::in_place, tracer, "execute");
        run.ctx.trace_parent = exec_span->id();
        Result<Relation> answer = Status::Internal("unset");
        for (;;) {
          if (controller.has_value()) {
            StatsDecompositionCostModel est_model(h, edge_stats);
            std::vector<double> estimates(current_hd.NumNodes(), 0.0);
            for (std::size_t p = 0; p < current_hd.NumNodes(); ++p) {
              estimates[p] = est_model.VertexRows(current_hd.node(p).lambda,
                                                  current_hd.node(p).chi);
            }
            controller->BeginTree(std::move(estimates));
          }
          answer = EvaluateDecomposition(rq, *catalog_, h, current_hd,
                                         &run.ctx);
          if (answer.ok()) break;
          if (!controller.has_value() || !controller->tripped()) {
            run.ctx.replan = nullptr;
            return answer.status();
          }

          // The evaluator tripped: account for the replan, then re-optimize
          // with the observed cardinalities pinned.
          ++run.replans;
          run.governor.replan_trips += 1;
          const std::size_t trip_node = controller->tripped_node();
          const std::size_t actual = controller->tripped_actual();
          const double estimate =
              std::max(1.0, controller->tripped_estimate());
          const double actual_f =
              static_cast<double>(std::max<std::size_t>(1, actual));
          const double error_factor = std::max(actual_f, estimate) /
                                      std::min(actual_f, estimate);
          MetricsRegistry& metrics = MetricsRegistry::Global();
          metrics.GetCounter(kMetricReplansTotal)->Increment();
          metrics.GetHistogram(kMetricEstimateErrorFactor)
              ->Record(static_cast<uint64_t>(std::llround(error_factor)));
          run.degradations.push_back(
              "mid-query replan: node " + std::to_string(trip_node) +
              " produced " + std::to_string(actual) + " rows vs estimate " +
              std::to_string(static_cast<std::size_t>(estimate)) +
              "; re-planning with observed cardinalities");
          std::optional<ScopedSpan> replan_span(std::in_place, tracer,
                                                "replan");
          replan_span->Attr("node", trip_node);
          replan_span->Attr("actual", actual);
          replan_span->Attr("estimate",
                            static_cast<std::size_t>(estimate));
          replan_span->Attr("checkpoints",
                            controller->checkpoints_stored());

          for (const auto& [atom, rows] : controller->ObservedEdgeRows()) {
            if (atom >= edge_stats.size()) continue;
            const double r = std::max(1.0, static_cast<double>(rows));
            edge_stats[atom].rows = r;
            for (auto& [var, distinct] : edge_stats[atom].distinct) {
              (void)var;
              distinct = std::min(distinct, r);
            }
          }

          // Fresh node/memory budgets for the re-planning search and the
          // resumed evaluation; the wall deadline keeps running.
          ResourceGovernor* rgov = begin_attempt();
          auto replan_start = std::chrono::steady_clock::now();
          QhdOptions sopt2;
          sopt2.max_width = width;
          sopt2.run_optimize = run_optimize;
          sopt2.governor = rgov;
          sopt2.pool = pool;
          sopt2.num_threads = options.num_threads;
          sopt2.tracer = tracer;
          StatsDecompositionCostModel pinned_model(h, edge_stats);
          // Deliberately bypasses the plan cache: a pinned search is
          // specific to this execution's observations.
          auto re = QHypertreeDecomp(h, out_vars, pinned_model, sopt2);
          run.plan_seconds += SecondsSince(replan_start);
          if (re.ok()) {
            current_hd = std::move(re->hd);
            run.decomposition_width = re->width;
            run.pruned_lambda_entries = re->pruned;
            run.plan_description =
                "q-hypertree decomposition (width " +
                std::to_string(re->width) + ", " +
                std::to_string(re->pruned) + " pruned, replanned x" +
                std::to_string(run.replans) + ")";
            run.plan_details = current_hd.ToString(h);
          }
          // On search failure the current tree stands — the checkpoints
          // still short-circuit its finished subtrees.
          replan_span.reset();
          controller->set_armed(run.replans < options.max_replans);
        }
        if (controller.has_value()) {
          // Canonical order: the resumed tree may emit rows in a different
          // order, so every replan-armed run sorts its answer — a replanned
          // query and its never-replanned twin become byte-identical.
          answer->SortBy({});
          run.ctx.replan = nullptr;
        }
        auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
        if (!out.ok()) return out.status();
        run.output = std::move(out.value());
        exec_span.reset();
        run.exec_seconds = SecondsSince(exec_start);
        AnnotatePlanDetails(tracer, h, current_hd, &run);
        seal();
        return run;
      }
      if (budget_tripped(decomp.status())) {
        if (width > 1) {
          run.degradations.push_back(
              "q-HD search at width " + std::to_string(width) +
              " exceeded its budget; retrying at width " +
              std::to_string(width - 1));
          --width;
          continue;
        }
        run.degradations.push_back(
            "q-HD search at width 1 exceeded its budget; falling back to "
            "the DP plan");
        mode = OptimizerMode::kDpStatistics;
      } else if (decomp.status().code() == StatusCode::kNotFound &&
                 options.fallback_to_dp) {
        run.degradations.push_back(
            "q-HD found no rooted decomposition of width <= " +
            std::to_string(width) + "; falling back to the DP plan");
        mode = OptimizerMode::kDpStatistics;  // hybrid fallback below
      } else {
        return decomp.status();
      }
    }
  }

  // --- Quantitative plan modes (and the hybrid fallback). -------------------
  start = std::chrono::steady_clock::now();
  std::unique_ptr<JoinPlan> plan;
  if (mode == OptimizerMode::kDpStatistics) {
    ResourceGovernor* gov = begin_attempt();
    std::optional<ScopedSpan> stats_span(std::in_place, tracer, "stats.lookup");
    Estimator estimator(stats_);
    JoinGraph graph = BuildJoinGraph(rq, estimator);
    PlanCostModel cost(graph);
    stats_span.reset();
    // Left-deep System-R search: the plan space of the commercial
    // optimizers the paper benchmarked against. (Bushy DP is available
    // via DpOptions for library users.)
    DpOptions dp_options;
    dp_options.bushy = false;
    dp_options.governor = gov;
    std::optional<ScopedSpan> search_span(std::in_place, tracer, "search.dp");
    auto dp = DpOptimize(graph, cost, dp_options);
    if (gov != nullptr) {
      search_span->Attr("nodes_visited", gov->stats().search_nodes);
    }
    search_span->Attr("outcome", dp.ok() ? "ok" : "budget-exceeded");
    search_span.reset();
    if (dp.ok()) {
      plan = std::move(dp.value());
    } else if (budget_tripped(dp.status())) {
      // Bottom rung: the genetic search is iteration-bounded, so it always
      // produces some plan (unless the wall deadline itself has passed).
      run.degradations.push_back(
          "DP join search exceeded its budget; falling back to GEQO");
      mode = OptimizerMode::kGeqoDefaults;
    } else {
      return dp.status();
    }
  }
  if (plan == nullptr && mode == OptimizerMode::kNaive) {
    plan = NaiveFromOrderPlan(rq.cq.atoms.size(), JoinAlgo::kNestedLoop);
    begin_attempt();  // execution still honors the deadline
  }
  if (plan == nullptr && mode == OptimizerMode::kGeqoDefaults) {
    ResourceGovernor* gov = begin_attempt(/*last_resort=*/run.used_fallback());
    // No statistics: the estimator runs on PostgreSQL-style defaults, and
    // the optimizer prefers nested loops for inputs it believes are small
    // — which, under default estimates, is all of them.
    Estimator estimator(nullptr);
    JoinGraph graph = BuildJoinGraph(rq, estimator);
    PlanCostModel cost(graph);
    GeqoOptions geqo;
    geqo.seed = options.seed;
    geqo.nested_loop_threshold = 2000.0;
    geqo.governor = gov;
    std::optional<ScopedSpan> search_span(std::in_place, tracer, "search.geqo");
    auto best = GeqoOptimize(graph, cost, geqo);
    if (gov != nullptr) {
      search_span->Attr("nodes_visited", gov->stats().search_nodes);
    }
    search_span.reset();
    if (!best.ok()) return best.status();
    plan = std::move(best.value());
  }
  if (plan == nullptr) return Status::Internal("unhandled optimizer mode");

  run.plan_seconds += SecondsSince(start);
  if (run.plan_description.empty() || run.used_fallback()) {
    run.plan_description = (run.used_fallback() ? "fallback: " : "") +
                           plan->ToString(rq);
  }
  run.plan_details = plan->ToString(rq) + "\n";

  auto exec_start = std::chrono::steady_clock::now();
  std::optional<ScopedSpan> exec_span(std::in_place, tracer, "execute");
  run.ctx.trace_parent = exec_span->id();
  auto joined = ExecuteJoinPlan(*plan, rq, *catalog_, &run.ctx);
  if (!joined.ok()) return joined.status();
  auto answer = ProjectToOutputVars(rq, *joined, &run.ctx);
  if (!answer.ok()) return answer.status();
  auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
  if (!out.ok()) return out.status();
  run.output = std::move(out.value());
  exec_span.reset();
  run.exec_seconds = SecondsSince(exec_start);
  seal();
  return run;
}

Result<RewrittenQuery> HybridOptimizer::RewriteQuery(
    std::string_view sql, const RunOptions& options) const {
  auto rq = Resolve(sql, TidMode::kNone);
  if (!rq.ok()) return rq.status();

  Hypergraph h = BuildHypergraph(rq->cq);
  Bitset out_vars = OutputVarsBitset(rq->cq);
  QhdOptions qhd;
  qhd.max_width = options.max_width;
  qhd.run_optimize = options.mode != OptimizerMode::kQhdNoOptimize;
  qhd.tracer = options.trace.tracer;

  Result<QhdResult> decomp = Status::Internal("unset");
  if (options.mode == OptimizerMode::kQhdStructural || stats_ == nullptr) {
    StructuralCostModel model;
    decomp = QHypertreeDecomp(h, out_vars, model, qhd);
  } else {
    Estimator estimator(stats_);
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq->cq, estimator));
    decomp = QHypertreeDecomp(h, out_vars, model, qhd);
  }
  if (!decomp.ok()) return decomp.status();
  return RewriteAsViews(*rq, h, decomp->hd);
}

Result<Relation> ExecuteRewrittenQuery(const RewrittenQuery& rewritten,
                                       const Catalog& base,
                                       ExecContext* ctx) {
  // Scratch catalog: base relations plus materialized views.
  Catalog scratch;
  for (const std::string& name : base.Names()) {
    scratch.Put(name, *base.Find(name));
  }

  RunOptions options;
  options.mode = OptimizerMode::kDpStatistics;  // any engine would do
  options.row_budget = ctx->row_budget;
  options.work_budget = ctx->work_budget;

  for (std::size_t i = 0; i < rewritten.view_bodies.size(); ++i) {
    HybridOptimizer engine(&scratch, nullptr);
    auto run = engine.Run(rewritten.view_bodies[i], options);
    if (!run.ok()) return run.status();
    ctx->rows_charged += run->ctx.rows_charged;
    ctx->work_charged += run->ctx.work_charged;
    ctx->NotePeak(run->ctx.peak_rows);
    scratch.Put(rewritten.view_names[i], std::move(run->output));
  }
  HybridOptimizer engine(&scratch, nullptr);
  auto run = engine.Run(rewritten.final_statement, options);
  if (!run.ok()) return run.status();
  ctx->rows_charged += run->ctx.rows_charged;
  ctx->work_charged += run->ctx.work_charged;
  ctx->NotePeak(run->ctx.peak_rows);
  return std::move(run->output);
}

}  // namespace htqo

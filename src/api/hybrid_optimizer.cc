#include "api/hybrid_optimizer.h"

#include <chrono>

#include "cq/hypergraph_builder.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "opt/dp_optimizer.h"
#include "opt/geqo_optimizer.h"
#include "opt/naive_optimizer.h"
#include "decomp/tree_decomposition.h"
#include "opt/yannakakis.h"
#include "sql/parser.h"

namespace htqo {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool IsQhdMode(OptimizerMode mode) {
  return mode == OptimizerMode::kQhdHybrid ||
         mode == OptimizerMode::kQhdStructural ||
         mode == OptimizerMode::kQhdNoOptimize;
}

}  // namespace

std::string OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kQhdHybrid:
      return "qhd-hybrid";
    case OptimizerMode::kQhdStructural:
      return "qhd-structural";
    case OptimizerMode::kQhdNoOptimize:
      return "qhd-no-optimize";
    case OptimizerMode::kDpStatistics:
      return "dp-statistics";
    case OptimizerMode::kNaive:
      return "naive";
    case OptimizerMode::kGeqoDefaults:
      return "geqo-defaults";
    case OptimizerMode::kYannakakis:
      return "yannakakis";
    case OptimizerMode::kClassicHd:
      return "classic-hd";
    case OptimizerMode::kTreeDecomposition:
      return "tree-decomposition";
  }
  return "?";
}

Result<ResolvedQuery> HybridOptimizer::Resolve(std::string_view sql,
                                               TidMode tid_mode) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  IsolatorOptions options;
  options.tid_mode = tid_mode;
  return IsolateConjunctiveQuery(*stmt, *catalog_, options);
}

Result<QueryRun> HybridOptimizer::Run(std::string_view sql,
                                      const RunOptions& options) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return RunStatement(*stmt, options);
}

Result<QueryRun> HybridOptimizer::RunStatement(const SelectStatement& stmt,
                                               const RunOptions& options)
    const {
  // Uncorrelated scalar subqueries in WHERE evaluate first and become
  // literals: x > (SELECT avg(y) FROM ...) compares against the computed
  // value. SQL semantics: more than one row is an error; zero rows compare
  // as unknown, i.e. the conjunct (and with it the whole WHERE) is false.
  bool has_scalar = false;
  for (const Comparison& cmp : stmt.where) {
    has_scalar |= cmp.lhs.ContainsScalarSubquery() ||
                  cmp.rhs.ContainsScalarSubquery();
  }
  if (has_scalar) {
    SelectStatement rewritten = stmt.Clone();
    QueryRun accumulated;
    bool always_false = false;
    std::function<Status(Expr*)> replace = [&](Expr* e) -> Status {
      if (e->kind == ExprKind::kScalarSubquery) {
        auto sub_run = RunStatement(*e->subquery, options);
        if (!sub_run.ok()) return sub_run.status();
        accumulated.ctx.rows_charged += sub_run->ctx.rows_charged;
        accumulated.ctx.work_charged += sub_run->ctx.work_charged;
        accumulated.ctx.NotePeak(sub_run->ctx.peak_rows);
        accumulated.plan_seconds += sub_run->plan_seconds;
        accumulated.exec_seconds += sub_run->exec_seconds;
        const Relation& out = sub_run->output;
        if (out.arity() != 1) {
          return Status::InvalidArgument(
              "scalar subquery must select exactly one column");
        }
        if (out.NumRows() > 1) {
          return Status::InvalidArgument(
              "scalar subquery returned more than one row");
        }
        if (out.NumRows() == 0) {
          always_false = true;
          *e = Expr::MakeLiteral(Value::Int64(0));
          return Status::Ok();
        }
        *e = Expr::MakeLiteral(out.At(0, 0));
        return Status::Ok();
      }
      if (e->lhs) {
        Status s = replace(e->lhs.get());
        if (!s.ok()) return s;
      }
      if (e->rhs) {
        Status s = replace(e->rhs.get());
        if (!s.ok()) return s;
      }
      return Status::Ok();
    };
    for (Comparison& cmp : rewritten.where) {
      Status s = replace(&cmp.lhs);
      if (!s.ok()) return s;
      s = replace(&cmp.rhs);
      if (!s.ok()) return s;
    }
    if (always_false) {
      rewritten.where.clear();
      rewritten.where_in.clear();
      rewritten.where.emplace_back(Expr::MakeLiteral(Value::Int64(1)),
                                   CompareOp::kEq,
                                   Expr::MakeLiteral(Value::Int64(2)));
    }
    auto run = RunStatement(rewritten, options);
    if (!run.ok()) return run.status();
    run->ctx.rows_charged += accumulated.ctx.rows_charged;
    run->ctx.work_charged += accumulated.ctx.work_charged;
    run->ctx.NotePeak(accumulated.ctx.peak_rows);
    run->plan_seconds += accumulated.plan_seconds;
    run->exec_seconds += accumulated.exec_seconds;
    return run;
  }

  // Uncorrelated IN-subqueries rewrite into a join with a DISTINCT derived
  // table: x IN (SELECT y FROM ...) ≡ JOIN (SELECT DISTINCT y ...) s ON
  // x = s.y — exact under bag semantics since the distinct single column
  // matches each outer row at most once. The rewritten statement then goes
  // through the derived-table materialization below.
  if (stmt.HasInSubqueries()) {
    SelectStatement rewritten = stmt.Clone();
    std::vector<InCondition> remaining;
    std::size_t counter = 0;
    QueryRun accumulated_in;
    for (InCondition& cond : rewritten.where_in) {
      if (cond.subquery == nullptr) {
        remaining.push_back(std::move(cond));
        continue;
      }
      if (cond.subquery->items.size() != 1) {
        return Status::InvalidArgument(
            "IN subquery must select exactly one column");
      }
      if (cond.negated) {
        // NOT IN: a join rewrite would be wrong (anti-semijoin); instead
        // materialize the subquery's values into a negated membership
        // filter.
        auto sub_run = RunStatement(*cond.subquery, options);
        if (!sub_run.ok()) return sub_run.status();
        accumulated_in.ctx.rows_charged += sub_run->ctx.rows_charged;
        accumulated_in.ctx.work_charged += sub_run->ctx.work_charged;
        accumulated_in.ctx.NotePeak(sub_run->ctx.peak_rows);
        accumulated_in.plan_seconds += sub_run->plan_seconds;
        accumulated_in.exec_seconds += sub_run->exec_seconds;
        InCondition literal;
        literal.lhs = std::move(cond.lhs);
        literal.negated = true;
        literal.values.reserve(sub_run->output.NumRows());
        for (std::size_t r = 0; r < sub_run->output.NumRows(); ++r) {
          literal.values.push_back(sub_run->output.At(r, 0));
        }
        remaining.push_back(std::move(literal));
        continue;
      }
      // Wrap the subquery so its single output column gets a collision-free
      // name (outer unqualified references would otherwise become
      // ambiguous): SELECT DISTINCT w.<col> AS htqo_in_N FROM (<sub>) w.
      const SelectItem& item = cond.subquery->items[0];
      std::string inner_column = item.alias;
      if (inner_column.empty()) {
        inner_column = item.expr.kind == ExprKind::kColumnRef
                           ? item.expr.column
                           : "col0";
      }
      std::string unique = "htqo_in_" + std::to_string(counter);
      SelectStatement wrapper;
      wrapper.distinct = true;
      wrapper.items.emplace_back(Expr::MakeColumnRef("w", inner_column),
                                 unique);
      TableRef inner_ref;
      inner_ref.alias = "w";
      inner_ref.subquery = cond.subquery;
      wrapper.from.push_back(std::move(inner_ref));

      TableRef ref;
      ref.alias = "htqo_insub_" + std::to_string(counter);
      ref.subquery =
          std::make_shared<const SelectStatement>(std::move(wrapper));
      rewritten.from.push_back(ref);
      rewritten.where.emplace_back(std::move(cond.lhs), CompareOp::kEq,
                                   Expr::MakeColumnRef(ref.alias, unique));
      ++counter;
    }
    rewritten.where_in = std::move(remaining);
    auto run = RunStatement(rewritten, options);
    if (!run.ok()) return run.status();
    run->ctx.rows_charged += accumulated_in.ctx.rows_charged;
    run->ctx.work_charged += accumulated_in.ctx.work_charged;
    run->ctx.NotePeak(accumulated_in.ctx.peak_rows);
    run->plan_seconds += accumulated_in.plan_seconds;
    run->exec_seconds += accumulated_in.exec_seconds;
    return run;
  }

  if (!stmt.HasDerivedTables()) {
    IsolatorOptions iso;
    iso.tid_mode = options.tid_mode;
    auto rq = IsolateConjunctiveQuery(stmt, *catalog_, iso);
    if (!rq.ok()) return rq.status();
    return RunResolved(*rq, options);
  }

  // Materialize every derived table into a scratch database, then run the
  // rewritten outer statement against it.
  Catalog scratch;
  for (const std::string& name : catalog_->Names()) {
    scratch.Put(name, *catalog_->Find(name));
  }
  StatisticsRegistry scratch_stats;
  if (stats_ != nullptr) scratch_stats = *stats_;

  SelectStatement rewritten = stmt.Clone();
  QueryRun accumulated;
  std::size_t derived_count = 0;
  for (TableRef& table : rewritten.from) {
    if (!table.IsDerived()) continue;
    // Bag semantics must survive materialization: a non-DISTINCT subquery
    // feeding an outer aggregate contributes multiplicities.
    RunOptions sub_options = options;
    sub_options.tid_mode = TidMode::kAllAtoms;
    HybridOptimizer sub_engine(&scratch, &scratch_stats);
    auto sub_run = sub_engine.RunStatement(*table.subquery, sub_options);
    if (!sub_run.ok()) return sub_run.status();

    std::string derived_name =
        "htqo_derived_" + std::to_string(derived_count++) + "_" + table.alias;
    scratch_stats.Put(derived_name, CollectStats(sub_run->output));
    scratch.Put(derived_name, std::move(sub_run->output));
    table.name = derived_name;
    table.subquery.reset();

    accumulated.ctx.rows_charged += sub_run->ctx.rows_charged;
    accumulated.ctx.work_charged += sub_run->ctx.work_charged;
    accumulated.ctx.NotePeak(sub_run->ctx.peak_rows);
    accumulated.plan_seconds += sub_run->plan_seconds;
    accumulated.exec_seconds += sub_run->exec_seconds;
    accumulated.used_fallback |= sub_run->used_fallback;
  }

  HybridOptimizer outer(&scratch, &scratch_stats);
  auto run = outer.RunStatement(rewritten, options);
  if (!run.ok()) return run.status();
  run->ctx.rows_charged += accumulated.ctx.rows_charged;
  run->ctx.work_charged += accumulated.ctx.work_charged;
  run->ctx.NotePeak(accumulated.ctx.peak_rows);
  run->plan_seconds += accumulated.plan_seconds;
  run->exec_seconds += accumulated.exec_seconds;
  run->used_fallback |= accumulated.used_fallback;
  run->plan_description += " [+" + std::to_string(derived_count) +
                           " materialized subquer" +
                           (derived_count == 1 ? "y" : "ies") + "]";
  return run;
}

Result<QueryRun> HybridOptimizer::RunResolved(const ResolvedQuery& rq,
                                              const RunOptions& options)
    const {
  QueryRun run;
  run.ctx.row_budget = options.row_budget;
  run.ctx.work_budget = options.work_budget;

  if (rq.cq.always_false) {
    auto out = EvaluateSelectOutput(rq, EmptyAnswer(rq), &run.ctx);
    if (!out.ok()) return out.status();
    run.output = std::move(out.value());
    run.plan_description = "constant-false";
    return run;
  }

  OptimizerMode mode = options.mode;
  auto start = std::chrono::steady_clock::now();

  if (mode == OptimizerMode::kYannakakis) {
    auto answer = YannakakisEvaluate(rq, *catalog_, &run.ctx);
    if (!answer.ok()) {
      if (answer.status().code() == StatusCode::kNotFound &&
          options.fallback_to_dp) {
        run.used_fallback = true;
        mode = OptimizerMode::kDpStatistics;
      } else {
        return answer.status();
      }
    } else {
      run.plan_description = "yannakakis three-pass over the join forest";
      auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
      if (!out.ok()) return out.status();
      run.output = std::move(out.value());
      run.exec_seconds = SecondsSince(start);
      return run;
    }
  }

  if (mode == OptimizerMode::kTreeDecomposition) {
    Hypergraph h = BuildHypergraph(rq.cq);
    TreeDecomposition td = MinFillTreeDecomposition(h);
    Hypertree hd = TreeDecompositionToHypertree(h, td);
    CompleteDecomposition(h, &hd);
    run.plan_seconds = SecondsSince(start);
    run.decomposition_width = hd.Width();
    run.plan_description = "min-fill tree decomposition (treewidth " +
                           std::to_string(td.Width()) + ", cover width " +
                           std::to_string(hd.Width()) + ") + Yannakakis";
    auto exec_start = std::chrono::steady_clock::now();
    auto answer = EvaluateDecompositionClassic(rq, *catalog_, h, hd,
                                               &run.ctx);
    if (!answer.ok()) return answer.status();
    auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
    if (!out.ok()) return out.status();
    run.output = std::move(out.value());
    run.exec_seconds = SecondsSince(exec_start);
    return run;
  }

  if (mode == OptimizerMode::kClassicHd) {
    Hypergraph h = BuildHypergraph(rq.cq);
    Estimator estimator(stats_);
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq.cq, estimator));
    // No out(Q) rooting, no Optimize: the pre-q-HD pipeline.
    auto hd = CostKDecomp(h, options.max_width, model, /*root_conn=*/nullptr);
    run.plan_seconds = SecondsSince(start);
    if (!hd.ok()) {
      if (!options.fallback_to_dp) return hd.status();
      run.used_fallback = true;
      mode = OptimizerMode::kDpStatistics;
    } else {
      CompleteDecomposition(h, &hd.value());
      run.decomposition_width = hd->Width();
      run.plan_description = "classic HD + Yannakakis (width " +
                             std::to_string(hd->Width()) + ")";
      auto exec_start = std::chrono::steady_clock::now();
      auto answer =
          EvaluateDecompositionClassic(rq, *catalog_, h, *hd, &run.ctx);
      if (!answer.ok()) return answer.status();
      auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
      if (!out.ok()) return out.status();
      run.output = std::move(out.value());
      run.exec_seconds = SecondsSince(exec_start);
      return run;
    }
  }

  if (IsQhdMode(mode)) {
    QhdPlanOptions qhd;
    qhd.decomp.max_width = options.max_width;
    qhd.decomp.run_optimize = mode != OptimizerMode::kQhdNoOptimize;
    qhd.use_statistics = mode != OptimizerMode::kQhdStructural;

    // Split plan/exec timing around the decomposition.
    Hypergraph h = BuildHypergraph(rq.cq);
    Bitset out_vars = OutputVarsBitset(rq.cq);
    Result<QhdResult> decomp = Status::Internal("unset");
    if (qhd.use_statistics) {
      Estimator estimator(stats_);
      StatsDecompositionCostModel model(h, BuildEdgeStats(rq.cq, estimator));
      decomp = QHypertreeDecomp(h, out_vars, model, qhd.decomp);
    } else {
      StructuralCostModel model;
      decomp = QHypertreeDecomp(h, out_vars, model, qhd.decomp);
    }
    run.plan_seconds = SecondsSince(start);

    if (!decomp.ok()) {
      if (!options.fallback_to_dp) return decomp.status();
      run.used_fallback = true;
      mode = OptimizerMode::kDpStatistics;  // hybrid fallback below
    } else {
      run.decomposition_width = decomp->width;
      run.pruned_lambda_entries = decomp->pruned;
      run.plan_description =
          "q-hypertree decomposition (width " +
          std::to_string(decomp->width) + ", " +
          std::to_string(decomp->pruned) + " pruned)";
      run.plan_details = decomp->hd.ToString(h);
      auto exec_start = std::chrono::steady_clock::now();
      auto answer = EvaluateDecomposition(rq, *catalog_, h, decomp->hd,
                                          &run.ctx);
      if (!answer.ok()) return answer.status();
      auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
      if (!out.ok()) return out.status();
      run.output = std::move(out.value());
      run.exec_seconds = SecondsSince(exec_start);
      return run;
    }
  }

  // --- Quantitative plan modes (and the hybrid fallback). -------------------
  start = std::chrono::steady_clock::now();
  std::unique_ptr<JoinPlan> plan;
  switch (mode) {
    case OptimizerMode::kDpStatistics: {
      Estimator estimator(stats_);
      JoinGraph graph = BuildJoinGraph(rq, estimator);
      PlanCostModel cost(graph);
      // Left-deep System-R search: the plan space of the commercial
      // optimizers the paper benchmarked against. (Bushy DP is available
      // via DpOptions for library users.)
      DpOptions dp_options;
      dp_options.bushy = false;
      auto dp = DpOptimize(graph, cost, dp_options);
      if (!dp.ok()) return dp.status();
      plan = std::move(dp.value());
      break;
    }
    case OptimizerMode::kNaive: {
      plan = NaiveFromOrderPlan(rq.cq.atoms.size(), JoinAlgo::kNestedLoop);
      break;
    }
    case OptimizerMode::kGeqoDefaults: {
      // No statistics: the estimator runs on PostgreSQL-style defaults, and
      // the optimizer prefers nested loops for inputs it believes are small
      // — which, under default estimates, is all of them.
      Estimator estimator(nullptr);
      JoinGraph graph = BuildJoinGraph(rq, estimator);
      PlanCostModel cost(graph);
      GeqoOptions geqo;
      geqo.seed = options.seed;
      geqo.nested_loop_threshold = 2000.0;
      auto best = GeqoOptimize(graph, cost, geqo);
      if (!best.ok()) return best.status();
      plan = std::move(best.value());
      break;
    }
    default:
      return Status::Internal("unhandled optimizer mode");
  }
  run.plan_seconds += SecondsSince(start);
  if (run.plan_description.empty() || run.used_fallback) {
    run.plan_description = (run.used_fallback ? "fallback: " : "") +
                           plan->ToString(rq);
  }
  run.plan_details = plan->ToString(rq) + "\n";

  auto exec_start = std::chrono::steady_clock::now();
  auto joined = ExecuteJoinPlan(*plan, rq, *catalog_, &run.ctx);
  if (!joined.ok()) return joined.status();
  auto answer = ProjectToOutputVars(rq, *joined, &run.ctx);
  if (!answer.ok()) return answer.status();
  auto out = EvaluateSelectOutput(rq, *answer, &run.ctx);
  if (!out.ok()) return out.status();
  run.output = std::move(out.value());
  run.exec_seconds = SecondsSince(exec_start);
  return run;
}

Result<RewrittenQuery> HybridOptimizer::RewriteQuery(
    std::string_view sql, const RunOptions& options) const {
  auto rq = Resolve(sql, TidMode::kNone);
  if (!rq.ok()) return rq.status();

  Hypergraph h = BuildHypergraph(rq->cq);
  Bitset out_vars = OutputVarsBitset(rq->cq);
  QhdOptions qhd;
  qhd.max_width = options.max_width;
  qhd.run_optimize = options.mode != OptimizerMode::kQhdNoOptimize;

  Result<QhdResult> decomp = Status::Internal("unset");
  if (options.mode == OptimizerMode::kQhdStructural || stats_ == nullptr) {
    StructuralCostModel model;
    decomp = QHypertreeDecomp(h, out_vars, model, qhd);
  } else {
    Estimator estimator(stats_);
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq->cq, estimator));
    decomp = QHypertreeDecomp(h, out_vars, model, qhd);
  }
  if (!decomp.ok()) return decomp.status();
  return RewriteAsViews(*rq, h, decomp->hd);
}

Result<Relation> ExecuteRewrittenQuery(const RewrittenQuery& rewritten,
                                       const Catalog& base,
                                       ExecContext* ctx) {
  // Scratch catalog: base relations plus materialized views.
  Catalog scratch;
  for (const std::string& name : base.Names()) {
    scratch.Put(name, *base.Find(name));
  }

  RunOptions options;
  options.mode = OptimizerMode::kDpStatistics;  // any engine would do
  options.row_budget = ctx->row_budget;
  options.work_budget = ctx->work_budget;

  for (std::size_t i = 0; i < rewritten.view_bodies.size(); ++i) {
    HybridOptimizer engine(&scratch, nullptr);
    auto run = engine.Run(rewritten.view_bodies[i], options);
    if (!run.ok()) return run.status();
    ctx->rows_charged += run->ctx.rows_charged;
    ctx->work_charged += run->ctx.work_charged;
    ctx->NotePeak(run->ctx.peak_rows);
    scratch.Put(rewritten.view_names[i], std::move(run->output));
  }
  HybridOptimizer engine(&scratch, nullptr);
  auto run = engine.Run(rewritten.final_statement, options);
  if (!run.ok()) return run.status();
  ctx->rows_charged += run->ctx.rows_charged;
  ctx->work_charged += run->ctx.work_charged;
  ctx->NotePeak(run->ctx.peak_rows);
  return std::move(run->output);
}

}  // namespace htqo

#include "rewrite/view_rewriter.h"

#include <map>

#include "util/strings.h"

namespace htqo {

namespace {

// One source of a variable inside a view body: either alias.column of a
// lambda atom or view.varname of a child view.
struct VarSource {
  std::string qualifier;
  std::string column;

  std::string Ref() const { return qualifier + "." + column; }
};

}  // namespace

std::string RewrittenQuery::ToScript() const {
  std::string out;
  for (const std::string& v : view_statements) out += v + "\n\n";
  out += final_statement + ";\n";
  return out;
}

Result<RewrittenQuery> RewriteAsViews(const ResolvedQuery& rq,
                                      const Hypergraph& /*h*/,
                                      const Hypertree& hd) {
  for (const VarInfo& v : rq.cq.vars) {
    if (v.is_tid) {
      return Status::InvalidArgument(
          "view rewriting requires a tuple-id-free isolation "
          "(TidMode::kNone): synthetic tuple ids are not expressible in "
          "SQL views");
    }
  }

  RewrittenQuery out;
  // Per-node view names (view_names itself stays parallel to view_bodies,
  // i.e. in postorder).
  std::vector<std::string> name_of(hd.NumNodes());
  for (std::size_t p = 0; p < hd.NumNodes(); ++p) {
    name_of[p] = "htqo_v" + std::to_string(p);
  }
  std::vector<std::size_t> order = hd.PostOrder();

  for (std::size_t p : order) {
    const HypertreeNode& node = hd.node(p);
    const std::string& view_name = name_of[p];
    out.view_names.push_back(view_name);

    // Collect variable sources: lambda atoms first, then child views.
    std::map<VarId, std::vector<VarSource>> sources;
    std::vector<std::string> from_items;
    std::vector<std::string> where_items;

    for (std::size_t e : node.lambda.ToVector()) {
      const Atom& atom = rq.cq.atoms[e];
      from_items.push_back(atom.relation == atom.alias
                               ? atom.relation
                               : atom.relation + " " + atom.alias);
      // Bindings: the base relation's column names are needed; recover them
      // from var_of (alias, column) -> var.
      for (const auto& [key, var] : rq.var_of) {
        if (key.first != atom.alias) continue;
        sources[var].push_back(VarSource{atom.alias, key.second});
      }
    }
    for (std::size_t c : node.children) {
      const std::string& child = name_of[c];
      from_items.push_back(child);
      for (std::size_t v : hd.node(c).chi.ToVector()) {
        sources[v].push_back(VarSource{child, rq.cq.vars[v].name});
      }
    }

    // Join conditions: chain-equate all sources of each variable.
    for (const auto& [var, src] : sources) {
      for (std::size_t i = 1; i < src.size(); ++i) {
        where_items.push_back(src[0].Ref() + " = " + src[i].Ref());
      }
    }

    // Atom-local filters and comparisons, rendered from the original
    // statement's WHERE conjuncts that touch exactly the lambda atoms.
    for (std::size_t e : node.lambda.ToVector()) {
      const Atom& atom = rq.cq.atoms[e];
      for (const AtomFilter& f : atom.filters) {
        if (!f.in_values.empty() || f.negated) {
          if (f.in_values.empty()) continue;  // NOT IN () is always true
          std::vector<std::string> vals;
          vals.reserve(f.in_values.size());
          for (const Value& v : f.in_values) vals.push_back(v.ToString(true));
          where_items.push_back(atom.alias + "." + f.column_name +
                                (f.negated ? " NOT IN (" : " IN (") +
                                Join(vals, ", ") + ")");
          continue;
        }
        where_items.push_back(atom.alias + "." + f.column_name + " " +
                              CompareOpSymbol(f.op) + " " +
                              f.value.ToString(/*quoted=*/true));
      }
      for (const LocalComparison& c : atom.local_comparisons) {
        where_items.push_back(atom.alias + "." + c.lcolumn_name + " " +
                              CompareOpSymbol(c.op) + " " + atom.alias + "." +
                              c.rcolumn_name);
      }
    }

    // Projection: one column per chi variable.
    std::vector<std::string> select_items;
    for (std::size_t v : node.chi.ToVector()) {
      auto it = sources.find(v);
      if (it == sources.end() || it->second.empty()) {
        return Status::Internal("variable " + rq.cq.vars[v].name +
                                " has no source in view " + view_name);
      }
      select_items.push_back(it->second[0].Ref() + " AS " +
                             rq.cq.vars[v].name);
    }

    std::string body = "SELECT DISTINCT " + Join(select_items, ", ") +
                       "\nFROM " + Join(from_items, ", ");
    if (!where_items.empty()) {
      body += "\nWHERE " + Join(where_items, "\n  AND ");
    }
    out.view_bodies.push_back(body);
    out.view_statements.push_back("CREATE VIEW " + view_name + " AS\n" + body +
                                  ";");
  }

  // Final statement: the original SELECT over the root view, with column
  // references rewritten to the root view's variable columns.
  std::function<std::string(const Expr&)> render = [&](const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef: {
        auto var = rq.ResolveRef(e);
        HTQO_CHECK(var.ok());
        return rq.cq.vars[*var].name;
      }
      case ExprKind::kLiteral:
        return e.literal.ToString(/*quoted=*/true);
      case ExprKind::kBinary:
        return "(" + render(*e.lhs) + " " + std::string(1, e.op) + " " +
               render(*e.rhs) + ")";
      case ExprKind::kAggregate:
        return AggFuncName(e.agg) + "(" + (e.lhs ? render(*e.lhs) : "*") + ")";
      case ExprKind::kScalarSubquery:
        // Materialized into a literal before isolation; unreachable here.
        HTQO_CHECK(false);
        return std::string();
    }
    return std::string("?");
  };

  const SelectStatement& stmt = rq.stmt;
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < stmt.items.size(); ++i) {
    std::string item = render(stmt.items[i].expr);
    if (!stmt.items[i].alias.empty()) item += " AS " + stmt.items[i].alias;
    parts.push_back(std::move(item));
  }
  std::string final_stmt = std::string("SELECT ") +
                           (stmt.distinct ? "DISTINCT " : "") +
                           Join(parts, ", ") + "\nFROM " +
                           name_of[hd.root()];
  if (!stmt.group_by.empty()) {
    parts.clear();
    for (const Expr& g : stmt.group_by) parts.push_back(render(g));
    final_stmt += "\nGROUP BY " + Join(parts, ", ");
  }
  if (!stmt.having.empty()) {
    parts.clear();
    for (const Comparison& hv : stmt.having) {
      parts.push_back(render(hv.lhs) + " " + CompareOpSymbol(hv.op) + " " +
                      render(hv.rhs));
    }
    final_stmt += "\nHAVING " + Join(parts, " AND ");
  }
  if (!stmt.order_by.empty()) {
    parts.clear();
    for (const OrderItem& o : stmt.order_by) {
      parts.push_back(o.name + (o.descending ? " DESC" : ""));
    }
    final_stmt += "\nORDER BY " + Join(parts, ", ");
  }
  if (stmt.limit.has_value()) {
    final_stmt += "\nLIMIT " + std::to_string(*stmt.limit);
  }
  out.final_statement = std::move(final_stmt);
  return out;
}

}  // namespace htqo

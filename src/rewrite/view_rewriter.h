// Stand-alone mode (Section 5): rewrites a query as a cascade of SQL views,
// one per decomposition vertex, that any DBMS can evaluate. View v_p selects
// the chi(p) variables from the lambda(p) relations joined with the views of
// p's children; the final statement applies the original SELECT list,
// aggregates, GROUP BY and ORDER BY on top of the root view.

#ifndef HTQO_REWRITE_VIEW_REWRITER_H_
#define HTQO_REWRITE_VIEW_REWRITER_H_

#include <string>
#include <vector>

#include "cq/isolator.h"
#include "decomp/hypertree.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace htqo {

struct RewrittenQuery {
  // One CREATE VIEW statement per decomposition vertex, children before
  // parents (executable in order).
  std::vector<std::string> view_statements;
  // SELECT body of each view (same order), parseable by our own parser;
  // used to round-trip the rewriting through the engine in tests.
  std::vector<std::string> view_bodies;
  std::vector<std::string> view_names;
  // The final statement over the root view.
  std::string final_statement;

  // Full script.
  std::string ToScript() const;
};

// Rewrites `rq` according to decomposition `hd` of hypergraph `h`.
Result<RewrittenQuery> RewriteAsViews(const ResolvedQuery& rq,
                                      const Hypergraph& h,
                                      const Hypertree& hd);

}  // namespace htqo

#endif  // HTQO_REWRITE_VIEW_REWRITER_H_

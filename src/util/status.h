// Error propagation without exceptions: Status and Result<T>.
//
// The library never throws. Fallible public entry points (parsing, query
// isolation, decomposition search) return Status or Result<T>; internal
// invariant violations use HTQO_CHECK.

#ifndef HTQO_UTIL_STATUS_H_
#define HTQO_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace htqo {

enum class StatusCode {
  kOk,
  kInvalidArgument,  // malformed input (bad SQL, unknown relation, ...)
  kNotFound,         // lookup miss (no decomposition of width <= k, ...)
  kResourceExhausted,  // row-budget guard tripped during evaluation
  kDeadlineExceeded,   // governor trip: deadline, search-node or memory
                       // budget, or cooperative cancellation
  kInternal,
  kDataLoss,  // persisted bytes failed verification (spill page checksum
              // mismatch that survived the bounded re-read retries)
};

// A success/error outcome with a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of type T or an error Status. Dereferencing a non-ok
// Result is a checked failure.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    HTQO_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HTQO_CHECK(ok());
    return *value_;
  }
  T& value() & {
    HTQO_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    HTQO_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace htqo

#endif  // HTQO_UTIL_STATUS_H_

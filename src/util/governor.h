// ResourceGovernor: one cancellable budget object threaded through every
// exponential search loop (det-k-decomp, cost-k-decomp, q-HD construction,
// Procedure Optimize, DP and GEQO join ordering) and, via ExecContext, the
// execution operators.
//
// The paper's evaluation reports queries that "do not terminate after 10
// minutes"; a production pipeline must *return* in that situation, not
// stall. The governor enforces three limits and a cooperative cancellation
// flag, all surfacing as StatusCode::kDeadlineExceeded:
//
//   * a wall-clock deadline (steady_clock, polled every kPollStride node
//     charges so the hot search loops stay syscall-free);
//   * a deterministic search-node budget — reproducible across machines,
//     the limit tests and benchmarks should prefer;
//   * a live-memory budget with high-water accounting (searches charge
//     their memoization tables, execution charges materialized rows).
//
// A tripped governor is sticky: every later Charge*/Check returns the same
// error, so deeply nested loops unwind without re-deriving the reason.
//
// Thread safety: all charge/check/cancel entry points may be called
// concurrently — the parallel execution engine charges from every pool
// worker. Counters are lock-free atomics; the trip record is written once
// under a mutex and published through the atomic `tripped_` flag. Totals
// are exact (saturating) regardless of interleaving, so a budget that the
// serial engine would trip also trips at any thread count, and vice versa.

#ifndef HTQO_UTIL_GOVERNOR_H_
#define HTQO_UTIL_GOVERNOR_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>

#include "util/status.h"

namespace htqo {

// Addition that sticks at SIZE_MAX instead of wrapping — resource counters
// must never lap their budgets.
inline std::size_t SaturatingAdd(std::size_t a, std::size_t b) {
  std::size_t sum = a + b;
  return sum < a ? std::numeric_limits<std::size_t>::max() : sum;
}

// Saturating fetch-add on an atomic counter; returns the new value. CAS
// loop rather than fetch_add so a counter parked at SIZE_MAX never wraps.
inline std::size_t AtomicSaturatingAdd(std::atomic<std::size_t>* counter,
                                       std::size_t n) {
  std::size_t cur = counter->load(std::memory_order_relaxed);
  std::size_t next;
  do {
    next = SaturatingAdd(cur, n);
  } while (!counter->compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
  return next;
}

// Monotonic max on an atomic high-water mark.
inline void AtomicMax(std::atomic<std::size_t>* high_water,
                      std::size_t candidate) {
  std::size_t cur = high_water->load(std::memory_order_relaxed);
  while (cur < candidate &&
         !high_water->compare_exchange_weak(cur, candidate,
                                            std::memory_order_relaxed)) {
  }
}

// Why a governor tripped. All trips still surface as
// StatusCode::kDeadlineExceeded (the pipeline-wide "governed stop" code);
// the reason disambiguates deadline vs. node budget vs. memory in
// QueryRun::governor and the bench JSON without changing the error contract.
enum class TripReason {
  kNone = 0,
  kDeadline,
  kNodeBudget,
  kMemory,
  kCancelled,
  // Shed at the admission door before any search or execution ran — the
  // query server's load shedder rejected the query (queue full, drain in
  // progress, or the admission.enqueue fault site fired). Distinguishes
  // "never started" from "tripped mid-query" in bench JSON and the
  // `[governor trip: …]` message suffixes.
  kAdmissionShed,
  // Mid-query re-planning rung: an intermediate's actual cardinality blew
  // past its estimate and execution was abandoned to re-enter the optimizer
  // with observed cardinalities pinned. Unlike the reasons above this is a
  // *soft* trip — the query still answers; the reason only labels the
  // degradation entry and the replan_trips counter.
  kReplan,
};

const char* TripReasonName(TripReason reason);

// Snapshot of what a governor observed; aggregated across degradation-ladder
// attempts into QueryRun::governor and the benchmark JSON.
struct GovernorStats {
  std::size_t search_nodes = 0;      // nodes charged by search loops
  std::size_t exec_charges = 0;      // rows/work units forwarded by exec
  std::size_t peak_memory_bytes = 0;  // high-water of live charged bytes
  std::size_t deadline_hits = 0;     // trips by the wall clock
  std::size_t budget_hits = 0;       // trips by the node budget
  std::size_t memory_hits = 0;       // trips by the memory budget
  std::size_t cancellations = 0;     // trips by Cancel()
  std::size_t soft_memory_hits = 0;  // soft-threshold crossings (no trip)
  std::size_t admission_sheds = 0;   // rejected at the admission door
  // Mid-query replans taken (soft trips: the query still answered, so these
  // are excluded from trips() and never set trip_reason).
  std::size_t replan_trips = 0;
  TripReason trip_reason = TripReason::kNone;  // first trip's reason
  double elapsed_seconds = 0;

  std::size_t trips() const {
    return deadline_hits + budget_hits + memory_hits + cancellations +
           admission_sheds;
  }
  void Merge(const GovernorStats& other);
};

class ResourceGovernor {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    // Absolute deadline so several governors (one per degradation-ladder
    // attempt) can share one wall-clock cutoff. max() = no deadline.
    Clock::time_point deadline = Clock::time_point::max();
    std::size_t node_budget = std::numeric_limits<std::size_t>::max();
    std::size_t memory_budget_bytes = std::numeric_limits<std::size_t>::max();
    // Soft memory threshold: crossing it never trips — it flips a sticky
    // flag (and fires the callback once) that the execution layer reads to
    // switch operators into spill mode before the hard budget is reached.
    std::size_t soft_memory_bytes = std::numeric_limits<std::size_t>::max();
    // Invoked at most once, from whichever thread first crosses the soft
    // threshold, with the live byte balance at the crossing. May be empty.
    std::function<void(std::size_t)> soft_memory_callback;
    // External cooperative-cancel flag, polled at every checkpoint next to
    // the internal Cancel() request. One flag can cover a whole group of
    // governors: the shell's SIGINT handler and the query server's drain
    // path both flip a single atomic to cancel every in-flight query. The
    // pointee must outlive the governor; nullptr disables the poll.
    const std::atomic<bool>* cancel_flag = nullptr;

    static Options Unlimited() { return Options(); }
    // Deadline `seconds` from now; <= 0 means no deadline.
    static Options AfterSeconds(double seconds);
  };

  ResourceGovernor() : ResourceGovernor(Options()) {}
  explicit ResourceGovernor(const Options& options);

  // Charges `n` search nodes against the deterministic budget; polls the
  // wall clock every kPollStride charged nodes. Sticky on trip.
  Status ChargeNodes(std::size_t n = 1);

  // Execution-side charge (rows or work units); same polling cadence.
  Status ChargeExecution(std::size_t units);

  // Live-memory accounting: Charge may trip the memory budget, Release
  // never fails. Peak is recorded in stats().
  Status ChargeMemory(std::size_t bytes);
  void ReleaseMemory(std::size_t bytes);

  // Raises the peak-memory high-water mark without touching the live
  // balance — for materializations whose lifetime the owner tracks itself
  // (ExecContext forwards its peak-rows estimate here).
  void NotePeakMemory(std::size_t bytes) { AtomicMax(&peak_memory_, bytes); }

  // Current live charged bytes; operators add their projected working set
  // to this when deciding whether to take the spill path.
  std::size_t live_memory_bytes() const {
    return live_memory_.load(std::memory_order_relaxed);
  }
  // Sticky: true once live memory has ever crossed soft_memory_bytes.
  bool soft_memory_exceeded() const {
    return soft_exceeded_.load(std::memory_order_relaxed);
  }

  // Polls deadline, cancellation, and the governor.checkpoint fault site
  // immediately. Sticky on trip.
  Status Check();

  // Cooperative cancellation; safe to call from another thread. The next
  // checkpoint in the governed pipeline trips kDeadlineExceeded on every
  // worker.
  void Cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  bool exhausted() const {
    return tripped_.load(std::memory_order_acquire);
  }
  // Valid (and stable) once exhausted(); Ok before any trip.
  Status trip_status() const;
  double elapsed_seconds() const;
  // Snapshot including elapsed time; valid whether or not the governor
  // tripped.
  GovernorStats stats() const;

  static constexpr std::size_t kPollStride = 256;

  // Records an admission-door shed against this governor: trips it with
  // TripReason::kAdmissionShed so stats()/trip_status() report "shed before
  // any work ran". Used by the server's admission controller, which creates
  // the per-query governor only to account for the rejection.
  Status TripShed(std::string message);

 private:
  Status Trip(TripReason reason, std::size_t GovernorStats::* counter,
              std::string message);
  Status Poll();  // deadline + cancellation + fault site

  Options options_;
  Clock::time_point start_;
  std::atomic<std::size_t> search_nodes_{0};
  std::atomic<std::size_t> exec_charges_{0};
  std::atomic<std::size_t> charges_since_poll_{0};
  std::atomic<std::size_t> live_memory_{0};
  std::atomic<std::size_t> peak_memory_{0};
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> soft_exceeded_{false};
  // Trip record: written once by the first tripping thread, then read-only.
  // trip_counters_ holds the deadline/budget/memory/cancel hit counts.
  mutable std::mutex trip_mu_;
  Status trip_;
  GovernorStats trip_counters_;
};

// Tenant-scoped budget derivation: scales a process-wide budget by a
// tenant's share, preserving the "unlimited" sentinel (SIZE_MAX stays
// SIZE_MAX at any share) and never rounding a positive budget down to zero.
// Shares are clamped to (0, 1]. The query server's admission controller
// uses this to split memory_budget_bytes / node budgets across tenants.
std::size_t ScaleBudget(std::size_t budget, double share);

// The canonical Status for a query shed at the admission door: carries the
// same "[governor trip: …]" suffix convention as mid-query trips, with the
// admission-shed reason, under kResourceExhausted (retryable — unlike the
// kDeadlineExceeded a governed query trips mid-flight).
Status AdmissionShedStatus(std::string message);

}  // namespace htqo

#endif  // HTQO_UTIL_GOVERNOR_H_

// Small string helpers shared across modules.

#ifndef HTQO_UTIL_STRINGS_H_
#define HTQO_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace htqo {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

// True when `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

}  // namespace htqo

#endif  // HTQO_UTIL_STRINGS_H_

// Array-chained hash index: the classic allocation-free build side of a
// hash join. Maps hash values to chains of row indices using two flat
// arrays (bucket heads + per-row next links); the caller re-checks key
// equality on each hit. Used by hash join, semi join, DISTINCT and GROUP BY
// instead of node-based unordered containers, which allocate per entry.

#ifndef HTQO_UTIL_HASH_CHAIN_H_
#define HTQO_UTIL_HASH_CHAIN_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace htqo {

class HashChainIndex {
 public:
  static constexpr uint32_t kEnd = UINT32_MAX;

  // `expected_entries` sizes the bucket array (2x entries, power of two).
  explicit HashChainIndex(std::size_t expected_entries) {
    std::size_t buckets = 16;
    while (buckets < expected_entries * 2) buckets <<= 1;
    mask_ = buckets - 1;
    head_.assign(buckets, kEnd);
    next_.reserve(expected_entries);
  }

  // Inserts entry `index` (must equal the number of prior inserts).
  void Insert(std::size_t hash, std::size_t index) {
    HTQO_DCHECK(index == next_.size());
    std::size_t bucket = hash & mask_;
    next_.push_back(head_[bucket]);
    head_[bucket] = static_cast<uint32_t>(index);
  }

  // First candidate entry for `hash` (kEnd when none). Candidates sharing a
  // bucket may have different hashes; callers must verify keys anyway.
  uint32_t First(std::size_t hash) const { return head_[hash & mask_]; }

  // Next candidate in the same bucket chain.
  uint32_t Next(uint32_t index) const { return next_[index]; }

  std::size_t size() const { return next_.size(); }

 private:
  std::size_t mask_ = 0;
  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
};

}  // namespace htqo

#endif  // HTQO_UTIL_HASH_CHAIN_H_

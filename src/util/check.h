// Lightweight assertion macros used across htqo.
//
// CHECK(cond) aborts with a diagnostic when `cond` is false, in every build
// mode. DCHECK(cond) is compiled out in NDEBUG builds. Both are intended for
// programming errors (broken invariants), never for user-input validation —
// user input flows through util/status.h instead.

#ifndef HTQO_UTIL_CHECK_H_
#define HTQO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace htqo {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal_check
}  // namespace htqo

#define HTQO_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::htqo::internal_check::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define HTQO_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define HTQO_DCHECK(cond) HTQO_CHECK(cond)
#endif

#endif  // HTQO_UTIL_CHECK_H_

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace htqo {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain, std::size_t lanes,
    ResourceGovernor* governor,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t total = end - begin;
  const std::size_t num_chunks = (total + grain - 1) / grain;
  lanes = std::max<std::size_t>(lanes, 1);
  const std::size_t helpers =
      std::min({lanes - 1, num_chunks - 1, threads_.size()});

  // Shared dispatch state. Helpers submitted to the queue may start late —
  // or, under a tripped governor, effectively never claim work — so the
  // join condition is "no chunk in flight and none claimable", tracked
  // here, not task completion. shared_ptr keeps the state alive for
  // stragglers that wake after the caller has returned.
  struct Loop {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> active{0};
    std::mutex m;
    std::condition_variable done;
  };
  auto loop = std::make_shared<Loop>();

  // Decrement-and-maybe-notify. Taking the mutex before notifying closes
  // the classic lost-wakeup window against a caller that has evaluated the
  // wait predicate but not yet blocked.
  auto leave = [loop] {
    if (loop->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> g(loop->m);
      loop->done.notify_all();
    }
  };
  // Claim order matters for lifetime safety: a runner must CLAIM before it
  // touches `governor` or `body`, both of which may dangle once the caller
  // has returned. The caller drains the cursor before its join below, so a
  // straggler task that dequeues late fails its claim and exits without
  // dereferencing anything caller-owned (beyond the shared Loop).
  auto runner = [loop, leave, begin, end, grain, num_chunks, governor, body] {
    for (;;) {
      loop->active.fetch_add(1, std::memory_order_acq_rel);
      std::size_t chunk = loop->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) {
        leave();
        return;
      }
      if (governor != nullptr && governor->exhausted()) {
        // Cooperative cancellation: drain the cursor so no lane (including
        // one yet to start) claims the remaining chunks, then bow out. The
        // claimed-but-unrun chunk is fine — after a trip the whole result
        // is discarded.
        loop->next.store(num_chunks, std::memory_order_relaxed);
        leave();
        return;
      }
      std::size_t lo = begin + chunk * grain;
      std::size_t hi = std::min(end, lo + grain);
      body(lo, hi);
      leave();
    }
  };

  for (std::size_t i = 0; i < helpers; ++i) Submit(runner);
  runner();  // the caller is always a lane: progress without free workers

  // Drain before joining: the caller's runner stopped because the cursor
  // ran dry or the governor tripped; either way no further chunk may run.
  // After this store, any late helper's claim fails, so it can no longer
  // reach `body` or `governor` once we return.
  loop->next.store(num_chunks, std::memory_order_release);

  // Wait out helpers' in-flight chunks. Helpers that wake later leave the
  // state untouched beyond a transient active bump with no body run.
  std::unique_lock<std::mutex> lock(loop->m);
  loop->done.wait(lock, [&] {
    return loop->active.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool* ThreadPool::Shared(std::size_t num_threads) {
  if (num_threads <= 1) return nullptr;
  static std::mutex mu;
  static ThreadPool* shared = nullptr;
  std::lock_guard<std::mutex> lock(mu);
  if (shared == nullptr || shared->workers() < num_threads - 1) {
    delete shared;  // joins the old workers; see header contract
    shared = new ThreadPool(num_threads - 1);
  }
  return shared;
}

}  // namespace htqo

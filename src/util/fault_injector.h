// Deterministic, seeded fault injection for robustness tests.
//
// The injector is a process-wide singleton that is compiled in always and
// disarmed by default: every site reduces to a single branch on a bool, so
// production paths pay (almost) nothing. Tests arm it with a FaultPlan —
// which site to fail, after how many eligible hits, with what probability
// under which seed — run the pipeline, and assert that the forced failure
// surfaces as a clean Status (never a crash, never a leak).
//
// Sites decide their own failure semantics at the call point:
//   relation.alloc       operators fail relation materialization with
//                        kResourceExhausted (simulated allocation failure)
//   stats.lookup         the Estimator behaves as if the relation had no
//                        gathered statistics (degrades to defaults)
//   governor.checkpoint  the ResourceGovernor trips kDeadlineExceeded
//   spill.open           SpillManager fails to create a partition temp file
//   spill.write          a buffered spill write fails (retried, bounded)
//   spill.read           a spilled partition read fails (retried, bounded)
//   trace.write          Tracer::WriteChromeTrace fails; callers warn, the
//                        query result is unaffected
//   metrics.export       MetricsRegistry::WritePrometheus fails; same deal
//   cache.insert         DecompCache fails to retain a computed entry; the
//                        query keeps its freshly computed decomposition and
//                        only the caching degrades (to a future miss)
//   server.accept        QueryServer's accept loop drops the incoming
//                        connection (simulated accept(2) failure); the
//                        server keeps serving existing sessions
//   server.read          a session read fails as if the peer vanished; the
//                        session closes cleanly, shared state untouched
//   server.write         a session write fails mid-response (broken pipe);
//                        the session closes cleanly after the query's
//                        admission slot and metrics are settled
//   admission.enqueue    the admission controller fails to enqueue a query
//                        that would have waited; the client sees an
//                        admission-shed rejection with a retry-after hint
//   stats.feedback       FeedbackCollector fails to refresh a relation's
//                        statistics after reconciliation; the refresh (and
//                        its epoch bump) is skipped, the query result that
//                        produced the trace is unaffected
//   replan.checkpoint    checkpointing a completed subtree result during a
//                        mid-query replan fails; that node is recomputed by
//                        the replanned tree instead of reused
//   obs.flightrec.dump   FlightRecorder::DumpToFile fails (exporter I/O);
//                        the in-memory ring and the query results that fed
//                        it are unaffected, callers warn
//   shard.partition      hash-partitioning a relation across shard pieces
//                        fails (retried, bounded -> kResourceExhausted,
//                        matching the spill sites' semantics)
//   shard.exchange       merging a reduction link's per-piece exchange
//                        messages fails (retried, bounded ->
//                        kResourceExhausted)

#ifndef HTQO_UTIL_FAULT_INJECTOR_H_
#define HTQO_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace htqo {

// Canonical site names (the sweep in tests/fault_injection_test.cc iterates
// FaultInjector::KnownSites(); add new sites there too).
inline constexpr const char kFaultSiteRelationAlloc[] = "relation.alloc";
inline constexpr const char kFaultSiteStatsLookup[] = "stats.lookup";
inline constexpr const char kFaultSiteGovernorCheckpoint[] =
    "governor.checkpoint";
inline constexpr const char kFaultSiteSpillOpen[] = "spill.open";
inline constexpr const char kFaultSiteSpillWrite[] = "spill.write";
inline constexpr const char kFaultSiteSpillRead[] = "spill.read";
inline constexpr const char kFaultSiteTraceWrite[] = "trace.write";
inline constexpr const char kFaultSiteMetricsExport[] = "metrics.export";
inline constexpr const char kFaultSiteCacheInsert[] = "cache.insert";
inline constexpr const char kFaultSiteServerAccept[] = "server.accept";
inline constexpr const char kFaultSiteServerRead[] = "server.read";
inline constexpr const char kFaultSiteServerWrite[] = "server.write";
inline constexpr const char kFaultSiteAdmissionEnqueue[] = "admission.enqueue";
inline constexpr const char kFaultSiteStatsFeedback[] = "stats.feedback";
inline constexpr const char kFaultSiteReplanCheckpoint[] = "replan.checkpoint";
inline constexpr const char kFaultSiteFlightRecDump[] = "obs.flightrec.dump";
inline constexpr const char kFaultSiteShardPartition[] = "shard.partition";
inline constexpr const char kFaultSiteShardExchange[] = "shard.exchange";

struct FaultPlan {
  // Exact site to target; the empty string targets every site.
  std::string site;
  uint64_t seed = 1;
  // Chance that an eligible hit fires (evaluated with a SplitMix64 stream
  // derived from `seed`, so a plan replays bit-for-bit).
  double probability = 1.0;
  // Eligible hits to let pass before any can fire.
  std::size_t skip_first = 0;
  // Stop firing after this many injected faults.
  std::size_t max_fires = std::numeric_limits<std::size_t>::max();
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms the plan. A plan naming a site that is not in KnownSites() (and is
  // not the match-everything empty string) returns kInvalidArgument and
  // leaves the injector disarmed — a typo'd site in a chaos configuration
  // must fail loudly, not silently never fire.
  Status Arm(const FaultPlan& plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Called at an injection site; true when the site must fail now.
  // Disarmed: a single atomic branch. Armed evaluations serialize on a
  // mutex so the hit/fire bookkeeping and the seeded RNG stream stay exact
  // when sites are reached from pool workers. (Which worker consumes which
  // RNG draw is scheduling-dependent, but plans used by the multithreaded
  // tests pin probability to 0 or 1, where the stream order is irrelevant.)
  bool ShouldFail(const char* site) {
    if (!armed()) return false;
    return ShouldFailSlow(site);
  }

  // Eligible evaluations / injected faults since the last Arm.
  std::size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::size_t fires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fires_;
  }

  // Every canonical site, for exhaustive sweeps.
  static std::vector<std::string> KnownSites();

 private:
  FaultInjector() = default;
  bool ShouldFailSlow(const char* site);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;  // guards plan_, rng_, hits_, fires_
  FaultPlan plan_;
  Rng rng_{0};
  std::size_t hits_ = 0;
  std::size_t fires_ = 0;
};

// Arms on construction, disarms on destruction. `status()` reports whether
// the plan was accepted (kInvalidArgument for unknown sites).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan)
      : status_(FaultInjector::Instance().Arm(plan)) {}
  ~ScopedFaultInjection() { FaultInjector::Instance().Disarm(); }

  const Status& status() const { return status_; }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  Status status_;
};

}  // namespace htqo

#endif  // HTQO_UTIL_FAULT_INJECTOR_H_

// Deterministic pseudo-random number generation for workload synthesis.
//
// All data and query generators take explicit seeds so every experiment is
// reproducible bit-for-bit. SplitMix64 is used both as a generator and to
// derive independent substream seeds.

#ifndef HTQO_UTIL_RNG_H_
#define HTQO_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace htqo {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  // Next 64 uniform random bits (SplitMix64).
  uint64_t Next() {
    uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    HTQO_DCHECK(bound > 0);
    // Rejection-free modulo is fine here: bound << 2^64 in every caller.
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    HTQO_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Seed for an independent substream identified by `stream`.
  uint64_t Fork(uint64_t stream) {
    Rng sub(state_ ^ (stream * 0x9e3779b97f4a7c15ull));
    return sub.Next();
  }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;
  uint64_t state_;
};

}  // namespace htqo

#endif  // HTQO_UTIL_RNG_H_

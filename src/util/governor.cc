#include "util/governor.h"

#include <algorithm>

#include "util/fault_injector.h"

namespace htqo {

const char* TripReasonName(TripReason reason) {
  switch (reason) {
    case TripReason::kNone:
      return "none";
    case TripReason::kDeadline:
      return "deadline";
    case TripReason::kNodeBudget:
      return "node-budget";
    case TripReason::kMemory:
      return "memory";
    case TripReason::kCancelled:
      return "cancelled";
    case TripReason::kAdmissionShed:
      return "admission-shed";
    case TripReason::kReplan:
      return "replan";
  }
  return "none";
}

void GovernorStats::Merge(const GovernorStats& other) {
  search_nodes = SaturatingAdd(search_nodes, other.search_nodes);
  exec_charges = SaturatingAdd(exec_charges, other.exec_charges);
  peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  deadline_hits += other.deadline_hits;
  budget_hits += other.budget_hits;
  memory_hits += other.memory_hits;
  cancellations += other.cancellations;
  soft_memory_hits += other.soft_memory_hits;
  admission_sheds += other.admission_sheds;
  replan_trips += other.replan_trips;
  // The aggregate keeps the first attempt's reason: that trip is what set
  // the degradation ladder in motion.
  if (trip_reason == TripReason::kNone) trip_reason = other.trip_reason;
  elapsed_seconds += other.elapsed_seconds;
}

ResourceGovernor::Options ResourceGovernor::Options::AfterSeconds(
    double seconds) {
  Options options;
  if (seconds > 0) {
    options.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  }
  return options;
}

ResourceGovernor::ResourceGovernor(const Options& options)
    : options_(options), start_(Clock::now()) {}

Status ResourceGovernor::Trip(TripReason reason,
                              std::size_t GovernorStats::* counter,
                              std::string message) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  // First tripping thread wins; later trips (possible when several workers
  // cross a budget in the same instant) return the established record so the
  // whole pipeline reports one coherent reason.
  if (!tripped_.load(std::memory_order_relaxed)) {
    ++(trip_counters_.*counter);
    trip_counters_.trip_reason = reason;
    message += " [governor trip: ";
    message += TripReasonName(reason);
    message += "]";
    trip_ = Status::DeadlineExceeded(std::move(message));
    tripped_.store(true, std::memory_order_release);
  }
  return trip_;
}

Status ResourceGovernor::trip_status() const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  return tripped_.load(std::memory_order_relaxed) ? trip_ : Status::Ok();
}

Status ResourceGovernor::Poll() {
  if (cancel_requested_.load(std::memory_order_relaxed) ||
      (options_.cancel_flag != nullptr &&
       options_.cancel_flag->load(std::memory_order_relaxed))) {
    return Trip(TripReason::kCancelled, &GovernorStats::cancellations,
                "query cancelled");
  }
  if (FaultInjector::Instance().ShouldFail(kFaultSiteGovernorCheckpoint)) {
    return Trip(TripReason::kDeadline, &GovernorStats::deadline_hits,
                "injected fault at governor checkpoint");
  }
  if (options_.deadline != Clock::time_point::max() &&
      Clock::now() >= options_.deadline) {
    return Trip(TripReason::kDeadline, &GovernorStats::deadline_hits,
                "deadline exceeded");
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeNodes(std::size_t n) {
  if (exhausted()) return trip_status();
  if (AtomicSaturatingAdd(&search_nodes_, n) > options_.node_budget) {
    return Trip(TripReason::kNodeBudget, &GovernorStats::budget_hits,
                "search-node budget exceeded");
  }
  if (AtomicSaturatingAdd(&charges_since_poll_, n) >= kPollStride) {
    charges_since_poll_.store(0, std::memory_order_relaxed);
    return Poll();
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeExecution(std::size_t units) {
  if (exhausted()) return trip_status();
  AtomicSaturatingAdd(&exec_charges_, units);
  if (AtomicSaturatingAdd(&charges_since_poll_, units) >= kPollStride) {
    charges_since_poll_.store(0, std::memory_order_relaxed);
    return Poll();
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeMemory(std::size_t bytes) {
  if (exhausted()) return trip_status();
  std::size_t live = AtomicSaturatingAdd(&live_memory_, bytes);
  AtomicMax(&peak_memory_, live);
  if (live > options_.soft_memory_bytes &&
      !soft_exceeded_.exchange(true, std::memory_order_relaxed)) {
    if (options_.soft_memory_callback) options_.soft_memory_callback(live);
  }
  if (live > options_.memory_budget_bytes) {
    return Trip(TripReason::kMemory, &GovernorStats::memory_hits,
                "memory budget exceeded");
  }
  return Status::Ok();
}

void ResourceGovernor::ReleaseMemory(std::size_t bytes) {
  // Saturating subtract: a release may race a concurrent charge, but the
  // balance never goes below the charges actually outstanding.
  std::size_t cur = live_memory_.load(std::memory_order_relaxed);
  std::size_t next;
  do {
    next = cur - std::min(bytes, cur);
  } while (!live_memory_.compare_exchange_weak(cur, next,
                                               std::memory_order_relaxed));
}

Status ResourceGovernor::Check() {
  if (exhausted()) return trip_status();
  charges_since_poll_.store(0, std::memory_order_relaxed);
  return Poll();
}

double ResourceGovernor::elapsed_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

Status ResourceGovernor::TripShed(std::string message) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  if (!tripped_.load(std::memory_order_relaxed)) {
    ++trip_counters_.admission_sheds;
    trip_counters_.trip_reason = TripReason::kAdmissionShed;
    // AdmissionShedStatus appends the "[governor trip: …]" suffix; unlike
    // Trip() this surfaces as kResourceExhausted, the retryable code.
    trip_ = AdmissionShedStatus(std::move(message));
    tripped_.store(true, std::memory_order_release);
  }
  return trip_;
}

GovernorStats ResourceGovernor::stats() const {
  GovernorStats out;
  {
    std::lock_guard<std::mutex> lock(trip_mu_);
    out = trip_counters_;
  }
  out.search_nodes = search_nodes_.load(std::memory_order_relaxed);
  out.exec_charges = exec_charges_.load(std::memory_order_relaxed);
  out.peak_memory_bytes = peak_memory_.load(std::memory_order_relaxed);
  out.soft_memory_hits = soft_exceeded_.load(std::memory_order_relaxed) ? 1 : 0;
  out.elapsed_seconds = elapsed_seconds();
  return out;
}

std::size_t ScaleBudget(std::size_t budget, double share) {
  if (budget == std::numeric_limits<std::size_t>::max()) return budget;
  if (share >= 1.0 || share <= 0.0) return budget;
  double scaled = static_cast<double>(budget) * share;
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

Status AdmissionShedStatus(std::string message) {
  message += " [governor trip: ";
  message += TripReasonName(TripReason::kAdmissionShed);
  message += "]";
  return Status::ResourceExhausted(std::move(message));
}

}  // namespace htqo

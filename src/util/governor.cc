#include "util/governor.h"

#include <algorithm>

#include "util/fault_injector.h"

namespace htqo {

void GovernorStats::Merge(const GovernorStats& other) {
  search_nodes = SaturatingAdd(search_nodes, other.search_nodes);
  exec_charges = SaturatingAdd(exec_charges, other.exec_charges);
  peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  deadline_hits += other.deadline_hits;
  budget_hits += other.budget_hits;
  memory_hits += other.memory_hits;
  cancellations += other.cancellations;
  elapsed_seconds += other.elapsed_seconds;
}

ResourceGovernor::Options ResourceGovernor::Options::AfterSeconds(
    double seconds) {
  Options options;
  if (seconds > 0) {
    options.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  }
  return options;
}

ResourceGovernor::ResourceGovernor(const Options& options)
    : options_(options), start_(Clock::now()) {}

Status ResourceGovernor::Trip(std::size_t GovernorStats::* counter,
                              std::string message) {
  ++(stats_.*counter);
  tripped_ = true;
  trip_ = Status::DeadlineExceeded(std::move(message));
  return trip_;
}

Status ResourceGovernor::Poll() {
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    return Trip(&GovernorStats::cancellations, "query cancelled");
  }
  if (FaultInjector::Instance().ShouldFail(kFaultSiteGovernorCheckpoint)) {
    return Trip(&GovernorStats::deadline_hits,
                "injected fault at governor checkpoint");
  }
  if (options_.deadline != Clock::time_point::max() &&
      Clock::now() >= options_.deadline) {
    return Trip(&GovernorStats::deadline_hits, "deadline exceeded");
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeNodes(std::size_t n) {
  if (tripped_) return trip_;
  stats_.search_nodes = SaturatingAdd(stats_.search_nodes, n);
  if (stats_.search_nodes > options_.node_budget) {
    return Trip(&GovernorStats::budget_hits, "search-node budget exceeded");
  }
  charges_since_poll_ += n;
  if (charges_since_poll_ >= kPollStride) {
    charges_since_poll_ = 0;
    return Poll();
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeExecution(std::size_t units) {
  if (tripped_) return trip_;
  stats_.exec_charges = SaturatingAdd(stats_.exec_charges, units);
  charges_since_poll_ = SaturatingAdd(charges_since_poll_, units);
  if (charges_since_poll_ >= kPollStride) {
    charges_since_poll_ = 0;
    return Poll();
  }
  return Status::Ok();
}

Status ResourceGovernor::ChargeMemory(std::size_t bytes) {
  if (tripped_) return trip_;
  live_memory_bytes_ = SaturatingAdd(live_memory_bytes_, bytes);
  stats_.peak_memory_bytes =
      std::max(stats_.peak_memory_bytes, live_memory_bytes_);
  if (live_memory_bytes_ > options_.memory_budget_bytes) {
    return Trip(&GovernorStats::memory_hits, "memory budget exceeded");
  }
  return Status::Ok();
}

void ResourceGovernor::ReleaseMemory(std::size_t bytes) {
  live_memory_bytes_ -= std::min(bytes, live_memory_bytes_);
}

Status ResourceGovernor::Check() {
  if (tripped_) return trip_;
  charges_since_poll_ = 0;
  return Poll();
}

double ResourceGovernor::elapsed_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

GovernorStats ResourceGovernor::stats() const {
  GovernorStats out = stats_;
  out.elapsed_seconds = elapsed_seconds();
  return out;
}

}  // namespace htqo

// Fixed-size worker pool for the parallel execution engine.
//
// Design constraints, in order:
//   1. Determinism. Parallel callers must produce bit-identical results to
//      the serial engine, so the pool only provides *scheduling*, never
//      ordering: ParallelFor hands out index chunks through a shared
//      cursor, and callers own the deterministic merge of per-chunk
//      results.
//   2. Cooperative cancellation. Every dispatch loop polls the optional
//      ResourceGovernor; once a deadline/budget/cancel trip is observed no
//      further chunk is claimed, so a tripped query unwinds quickly on all
//      workers instead of racing to finish.
//   3. Nested use without deadlock. A ParallelFor caller always executes
//      chunks itself (it is one of the lanes), so progress never depends on
//      a pool worker being free — operators may run ParallelFor from inside
//      a tree-wave task that itself runs on the pool.
//
// The process-wide Shared() pool is grown on demand and reused across
// queries; per-call concurrency is bounded by the `lanes` argument (the
// query's num_threads knob), not by the pool size.

#ifndef HTQO_UTIL_THREAD_POOL_H_
#define HTQO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/governor.h"

namespace htqo {

class ThreadPool {
 public:
  // Spawns `workers` threads (0 is allowed: every ParallelFor then runs
  // entirely on the calling thread).
  explicit ThreadPool(std::size_t workers);
  // Drains the queue and joins. Outstanding tasks run to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  // Enqueues a task; the future resolves when it has run. Tasks must not
  // throw (the engine is exception-free by design).
  std::future<void> Submit(std::function<void()> task);

  // Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks
  // of at least `grain` indices, using at most `lanes` concurrent lanes
  // (the calling thread is always one of them). Blocks until every claimed
  // chunk has finished. When `governor` is non-null and trips, no further
  // chunk is claimed; chunks already running finish normally. The body is
  // responsible for its own error capture (e.g. a per-chunk Status array).
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   std::size_t lanes, ResourceGovernor* governor,
                   const std::function<void(std::size_t, std::size_t)>& body);

  // Process-wide pool for `num_threads`-way execution: returns nullptr when
  // num_threads <= 1 (serial), otherwise a pool with at least
  // num_threads - 1 workers. The pool is created lazily, grown when a
  // larger request arrives, and intentionally leaked at exit. Growth joins
  // the previous pool, so it must not race with in-flight queries; the
  // engine runs one query at a time per process, which the callers
  // (HybridOptimizer, benches, tests) respect.
  static ThreadPool* Shared(std::size_t num_threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace htqo

#endif  // HTQO_UTIL_THREAD_POOL_H_

// Dynamic bitset used for variable sets and hyperedge sets.
//
// Hypergraph algorithms manipulate sets of variables (query attributes) and
// sets of hyperedges (query atoms) heavily; both are represented as Bitset.
// The universe size is fixed at construction. All binary operations require
// both operands to share the same universe size.

#ifndef HTQO_UTIL_BITSET_H_
#define HTQO_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace htqo {

class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  void Set(std::size_t i) {
    HTQO_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(std::size_t i) {
    HTQO_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(std::size_t i) const {
    HTQO_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  std::size_t Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  // Index of the lowest set bit, or size() when empty.
  std::size_t FirstSet() const;
  // Index of the lowest set bit strictly greater than `i`, or size().
  std::size_t NextSet(std::size_t i) const;

  bool IsSubsetOf(const Bitset& other) const;
  bool Intersects(const Bitset& other) const;

  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  // Set difference: removes other's bits from this.
  Bitset& operator-=(const Bitset& other);

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) {
    return !(a == b);
  }
  // Lexicographic on words; total order suitable for std::map keys.
  friend bool operator<(const Bitset& a, const Bitset& b) {
    HTQO_DCHECK(a.size_ == b.size_);
    return a.words_ < b.words_;
  }

  // All set-bit indices in increasing order.
  std::vector<std::size_t> ToVector() const;

  // "{1,4,7}" style rendering, for diagnostics.
  std::string ToString() const;

  std::size_t Hash() const;

 private:
  std::size_t size_;
  std::vector<uint64_t> words_;
};

struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace htqo

#endif  // HTQO_UTIL_BITSET_H_

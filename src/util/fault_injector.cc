#include "util/fault_injector.h"

#include <algorithm>
#include <cstring>

namespace htqo {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  if (!plan.site.empty()) {
    const std::vector<std::string> known = KnownSites();
    if (std::find(known.begin(), known.end(), plan.site) == known.end()) {
      Disarm();
      return Status::InvalidArgument("unknown fault site '" + plan.site +
                                     "' (see FaultInjector::KnownSites)");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  rng_ = Rng(plan.seed);
  hits_ = 0;
  fires_ = 0;
  armed_.store(true, std::memory_order_release);
  return Status::Ok();
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFailSlow(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!plan_.site.empty() && std::strcmp(site, plan_.site.c_str()) != 0) {
    return false;
  }
  std::size_t hit = hits_++;
  if (hit < plan_.skip_first) return false;
  if (fires_ >= plan_.max_fires) return false;
  if (plan_.probability < 1.0 && rng_.NextDouble() >= plan_.probability) {
    return false;
  }
  ++fires_;
  return true;
}

std::vector<std::string> FaultInjector::KnownSites() {
  return {kFaultSiteRelationAlloc,     kFaultSiteStatsLookup,
          kFaultSiteGovernorCheckpoint, kFaultSiteSpillOpen,
          kFaultSiteSpillWrite,         kFaultSiteSpillRead,
          kFaultSiteTraceWrite,         kFaultSiteMetricsExport,
          kFaultSiteCacheInsert,        kFaultSiteServerAccept,
          kFaultSiteServerRead,         kFaultSiteServerWrite,
          kFaultSiteAdmissionEnqueue,   kFaultSiteStatsFeedback,
          kFaultSiteReplanCheckpoint,   kFaultSiteFlightRecDump,
          kFaultSiteShardPartition,     kFaultSiteShardExchange};
}

}  // namespace htqo

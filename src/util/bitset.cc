#include "util/bitset.h"

#include <bit>

namespace htqo {

std::size_t Bitset::Count() const {
  std::size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool Bitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t Bitset::FirstSet() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return (i << 6) + std::countr_zero(words_[i]);
    }
  }
  return size_;
}

std::size_t Bitset::NextSet(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t word = i >> 6;
  uint64_t w = words_[word] >> (i & 63);
  if (w != 0) return i + std::countr_zero(w);
  for (++word; word < words_.size(); ++word) {
    if (words_[word] != 0) {
      return (word << 6) + std::countr_zero(words_[word]);
    }
  }
  return size_;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  HTQO_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::Intersects(const Bitset& other) const {
  HTQO_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  HTQO_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  HTQO_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator-=(const Bitset& other) {
  HTQO_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

std::vector<std::size_t> Bitset::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  for (std::size_t i = FirstSet(); i < size_; i = NextSet(i)) {
    out.push_back(i);
  }
  return out;
}

std::string Bitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = FirstSet(); i < size_; i = NextSet(i)) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

std::size_t Bitset::Hash() const {
  // FNV-1a over the words; good enough for unordered_map keys.
  std::size_t h = 1469598103934665603ull;
  for (uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace htqo

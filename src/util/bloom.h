// Blocked Bloom filter over precomputed row-key hashes.
//
// The join/semijoin kernels already compute one 64-bit hash per build-side
// row (PrecomputeKeyHashes); this filter folds those hashes into one
// cache-line-sized block each, so a probe costs a single memory access
// before the hash-chain walk. A probe that misses the filter provably has
// no build-side match *for that hash*, so the kernel can skip the chain
// walk (and its per-candidate work charges are never incurred in the first
// place — the filter is built before any probing, identically at every
// thread count, which keeps output and meters byte-identical). False
// positives fall through to the ordinary chain walk + RowKeysEqual, so
// they cost time, never correctness.
//
// Layout: power-of-two array of 64-bit words at ~kBitsPerKey bits per key;
// the word index comes from the hash's high bits, two bit positions within
// the word from independent low fields. With 8 bits/key and 2 probes the
// false-positive rate is a few percent — plenty to skip the bulk of
// non-matching probes in selective semijoins.

#ifndef HTQO_UTIL_BLOOM_H_
#define HTQO_UTIL_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace htqo {

class BlockedBloomFilter {
 public:
  static constexpr std::size_t kBitsPerKey = 8;

  explicit BlockedBloomFilter(std::size_t expected_keys) {
    std::size_t words = 1;
    while (words * 64 < expected_keys * kBitsPerKey) words <<= 1;
    words_.assign(words, 0);
  }

  void Add(std::size_t hash) {
    const uint64_t h = static_cast<uint64_t>(hash);
    words_[WordIndex(h)] |= MaskOf(h);
  }

  bool MayContain(std::size_t hash) const {
    const uint64_t h = static_cast<uint64_t>(hash);
    const uint64_t mask = MaskOf(h);
    return (words_[WordIndex(h)] & mask) == mask;
  }

  std::size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  // ORs `other`'s bits into this filter. Both filters must share geometry
  // (same expected-key sizing); the result is exactly the filter that one
  // builder inserting both key sets would produce — the property the
  // sharded exchange relies on to merge per-piece filters into an
  // S-invariant link summary.
  void MergeFrom(const BlockedBloomFilter& other) {
    HTQO_CHECK(words_.size() == other.words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

 private:
  // Word index from hash bits 12.., disjoint from the 12 mask bits below
  // (for filters past 2^52 words the fields would overlap — far beyond any
  // build side this engine materializes).
  std::size_t WordIndex(uint64_t h) const {
    return (h >> 12) & (words_.size() - 1);
  }
  // Two bits per key from independent 6-bit fields of the hash's low bits.
  static uint64_t MaskOf(uint64_t h) {
    return (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
  }

  std::vector<uint64_t> words_;
};

}  // namespace htqo

#endif  // HTQO_UTIL_BLOOM_H_

// Structured hypergraph families — the instance zoo of the hypertree-
// decomposition benchmark tradition (the paper's ref [10], the Hypertree
// Decompositions Homepage). Used to exercise and benchmark the
// decomposition algorithms themselves, independent of SQL.

#ifndef HTQO_WORKLOAD_HYPERGRAPH_ZOO_H_
#define HTQO_WORKLOAD_HYPERGRAPH_ZOO_H_

#include "hypergraph/hypergraph.h"

namespace htqo {

// Path of n binary edges over n+1 vertices. Acyclic; hw = 1.
Hypergraph LineHypergraph(std::size_t n);

// Cycle of n binary edges. hw = 2 for n >= 3.
Hypergraph CycleHypergraph(std::size_t n);

// Complete graph K_n as binary edges. hw(K_n) = ceil(n / 2).
Hypergraph CliqueHypergraph(std::size_t n);

// rows x cols grid: one vertex per cell, one binary edge per horizontally
// or vertically adjacent pair — the classic CSP grid. Treewidth
// min(rows, cols); hypertree width ~ half of that (binary edges pair up).
Hypergraph GridHypergraph(std::size_t rows, std::size_t cols);

// n spokes around a hub: hub-vertex edges {hub, i} plus rim edges
// {i, i+1 mod n} — a wheel. hw = 2 for n >= 3 (the hub edge plus a rim
// edge cover every separator), 3-connected, a classic small-width cyclic
// family.
Hypergraph WheelHypergraph(std::size_t n);

// k-uniform "hyper-cycle": n edges of arity k, consecutive edges overlap in
// k-1 vertices (a sliding window over a cycle of n vertices). For k >= 2:
// acyclic-looking locally but globally cyclic; hw = 2.
Hypergraph SlidingWindowCycle(std::size_t n, std::size_t k);

}  // namespace htqo

#endif  // HTQO_WORKLOAD_HYPERGRAPH_ZOO_H_

// TPC-H-style data generator (the dbgen substitution; see DESIGN.md).
//
// Generates the eight TPC-H tables with the schema shape, key relationships
// and value distributions the paper's Fig. 8 experiments depend on:
// region(5) and nation(25) are fixed; the other tables scale linearly with
// the scale factor (TPC-H row counts at SF=1). Two deliberate deviations,
// both documented substitutions:
//   * orders carries an extra o_orderyear column (stands in for
//     extract(year from o_orderdate), which our SQL fragment lacks);
//   * string columns irrelevant to Q5/Q8 (addresses, comments, ...) are
//     omitted — they would only inflate memory without affecting any
//     measured phenomenon.

#ifndef HTQO_WORKLOAD_TPCH_GEN_H_
#define HTQO_WORKLOAD_TPCH_GEN_H_

#include "storage/catalog.h"

namespace htqo {

struct TpchConfig {
  // Fraction of the official TPC-H SF=1 row counts. The paper's 200 MB to
  // 1000 MB databases correspond to SF 0.2..1.0; benchmarks here use
  // 0.002..0.010 (same 1:5 spread, laptop-scale).
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

// Registers region, nation, supplier, customer, part, partsupp, orders and
// lineitem into `catalog`.
void PopulateTpch(const TpchConfig& config, Catalog* catalog);

// Row counts implied by a scale factor (for reporting).
std::size_t TpchCustomerRows(double sf);
std::size_t TpchOrdersRows(double sf);

}  // namespace htqo

#endif  // HTQO_WORKLOAD_TPCH_GEN_H_

// Generators for the Acyclic (line) and Chain query families of Section 6.
//
//   Acyclic: q(y) <- p1(x1), ..., pn(xn) with x_i ∩ x_{i+1} != ∅ and
//            x_i ∩ x_j = ∅ otherwise — a line.
//   Chain:   the simplest cyclic variation — additionally x_1 ∩ x_n != ∅.
//
// Rendered over the synthetic relations r1..rn(a, b):
//   line:  r1.b = r2.a AND r2.b = r3.a AND ... AND r(n-1).b = rn.a
//   chain: line plus rn.b = r1.a
// The head selects r1.a (DISTINCT — conjunctive-query set semantics).

#ifndef HTQO_WORKLOAD_QUERY_GEN_H_
#define HTQO_WORKLOAD_QUERY_GEN_H_

#include <string>

namespace htqo {

// Acyclic line query with n >= 2 body atoms.
std::string LineQuerySql(std::size_t n);

// Cyclic chain query with n >= 2 body atoms.
std::string ChainQuerySql(std::size_t n);

}  // namespace htqo

#endif  // HTQO_WORKLOAD_QUERY_GEN_H_

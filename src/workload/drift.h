// Drift workload for the adaptive re-optimization loop (DESIGN.md §6h).
//
// Three relations forming a line query  hot ⋈ mid ⋈ dim:
//
//   hot(a, b)   the drifting fact table: starts tiny with b spread over
//               mid.a's key domain, then ApplyDrift regrows it orders of
//               magnitude larger with b collapsed onto a handful of heavily
//               duplicated keys — the classic "yesterday's ANALYZE lies
//               about today's load" scenario.
//   mid(a, b)   a stable bridge table; every hot.b key matches ~10 rows, so
//               joining the drifted hot first explodes.
//   dim(a, b)   a stable, *mis-estimated* dimension: dim.a's value range
//               barely overlaps mid.b's, so the V-based join estimate
//               (|mid||dim| / max(V(mid.b), V(dim.a))) over-predicts mid ⋈
//               dim by ~10x. That over-prediction is the trap: with stale
//               statistics the DP orderer believes hot is still tiny and
//               joins it first (estimated ~1e3 rows, actual ~4e5); with
//               refreshed statistics hot's true size pushes the search to
//               the dim-first order whose actual intermediate is ~1e2 rows.
//
// The gap between the two orders is what bench_adaptive measures: a
// feedback-on loop (FeedbackCollector refreshing hot after the first
// post-drift query) against a feedback-off loop stuck on the stale plan.

#ifndef HTQO_WORKLOAD_DRIFT_H_
#define HTQO_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <string>

#include "storage/catalog.h"

namespace htqo {

struct DriftConfig {
  // Pre-drift hot: what ANALYZE sees before the data moves.
  std::size_t initial_hot_rows = 100;
  // Post-drift hot: ApplyDrift regrows it to this many rows...
  std::size_t drifted_hot_rows = 40000;
  // ...with the join key b drawn from only this many distinct values
  // (heavy duplication = join fan-out the stale plan never priced).
  std::size_t drifted_hot_keys = 40;
  // mid.a (and pre-drift hot.b) value domain.
  std::size_t hot_key_domain = 400;
  std::size_t mid_rows = 8000;
  // mid.b / dim.a live in [0, dim_key_domain); dim.a is shifted so only
  // `dim_overlap_keys` of its values can match mid.b — the source of the
  // deliberate over-estimate documented above.
  std::size_t dim_key_domain = 100;
  std::size_t dim_overlap_keys = 5;
  std::size_t dim_rows = 120;
  uint64_t seed = 11;
};

// Registers hot/mid/dim in their pre-drift shape (overwrites existing
// entries, so a bench can rebuild the world between iterations).
void PopulateDriftCatalog(const DriftConfig& config, Catalog* catalog);

// Replaces `hot` with its post-drift shape. Statistics collected before
// this call are stale by ~drifted_hot_rows / initial_hot_rows in both row
// count and key skew.
void ApplyDrift(const DriftConfig& config, Catalog* catalog);

// The probe query: SELECT DISTINCT hot.a FROM hot, mid, dim
//                  WHERE hot.b = mid.a AND mid.b = dim.a
std::string DriftQuerySql();

}  // namespace htqo

#endif  // HTQO_WORKLOAD_DRIFT_H_

#include "workload/hypergraph_zoo.h"

#include "util/check.h"

namespace htqo {

Hypergraph LineHypergraph(std::size_t n) {
  HTQO_CHECK(n >= 1);
  Hypergraph h(n + 1);
  for (std::size_t i = 0; i < n; ++i) h.AddEdge({i, i + 1});
  return h;
}

Hypergraph CycleHypergraph(std::size_t n) {
  HTQO_CHECK(n >= 3);
  Hypergraph h(n);
  for (std::size_t i = 0; i < n; ++i) h.AddEdge({i, (i + 1) % n});
  return h;
}

Hypergraph CliqueHypergraph(std::size_t n) {
  HTQO_CHECK(n >= 2);
  Hypergraph h(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      h.AddEdge({i, j});
    }
  }
  return h;
}

Hypergraph GridHypergraph(std::size_t rows, std::size_t cols) {
  HTQO_CHECK(rows >= 1 && cols >= 1);
  Hypergraph h(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) h.AddEdge({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) h.AddEdge({id(r, c), id(r + 1, c)});
    }
  }
  return h;
}

Hypergraph WheelHypergraph(std::size_t n) {
  HTQO_CHECK(n >= 3);
  Hypergraph h(n + 1);  // vertex n is the hub
  for (std::size_t i = 0; i < n; ++i) {
    h.AddEdge({i, (i + 1) % n});  // rim
    h.AddEdge({i, n});            // spoke
  }
  return h;
}

Hypergraph SlidingWindowCycle(std::size_t n, std::size_t k) {
  HTQO_CHECK(n >= 3 && k >= 2 && k <= n);
  Hypergraph h(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> window;
    window.reserve(k);
    for (std::size_t j = 0; j < k; ++j) window.push_back((i + j) % n);
    h.AddEdge(window);
  }
  return h;
}

}  // namespace htqo

#include "workload/query_gen.h"

#include "util/check.h"
#include "util/strings.h"

namespace htqo {

namespace {

std::string BuildQuery(std::size_t n, bool close_cycle) {
  HTQO_CHECK(n >= 2);
  std::vector<std::string> from;
  from.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) from.push_back("r" + std::to_string(i));
  std::vector<std::string> where;
  for (std::size_t i = 1; i < n; ++i) {
    where.push_back("r" + std::to_string(i) + ".b = r" +
                    std::to_string(i + 1) + ".a");
  }
  if (close_cycle) {
    where.push_back("r" + std::to_string(n) + ".b = r1.a");
  }
  return "SELECT DISTINCT r1.a FROM " + Join(from, ", ") + " WHERE " +
         Join(where, " AND ");
}

}  // namespace

std::string LineQuerySql(std::size_t n) { return BuildQuery(n, false); }

std::string ChainQuerySql(std::size_t n) { return BuildQuery(n, true); }

}  // namespace htqo

// The TPC-H queries of the paper's Fig. 8: Q5 verbatim from the
// introduction, and Q8 flattened into the paper's supported fragment
// (no nested statements; extract(year ...) replaced by the generated
// o_orderyear column — see DESIGN.md substitutions). Both have hypertree
// width 2 as the paper states.

#ifndef HTQO_WORKLOAD_TPCH_QUERIES_H_
#define HTQO_WORKLOAD_TPCH_QUERIES_H_

#include <string>

namespace htqo {

// TPC-H Q5 ("local supplier volume").
std::string TpchQ5(const std::string& region = "ASIA",
                   const std::string& date = "1994-01-01");

// TPC-H Q8 ("national market share"), flattened.
std::string TpchQ8(const std::string& region = "AMERICA",
                   const std::string& type = "ECONOMY ANODIZED STEEL");

// TPC-H Q8 in its original nested shape: an inner SELECT computing
// (o_year, volume) in FROM, aggregated outside — exercises the derived-
// table support (the paper's "dealing with nested queries" future work).
// Same answer as TpchQ8 (the CASE'd market-share numerator is out of the
// engine's expression fragment either way; both variants report volume).
std::string TpchQ8Nested(const std::string& region = "AMERICA",
                         const std::string& type = "ECONOMY ANODIZED STEEL");

}  // namespace htqo

#endif  // HTQO_WORKLOAD_TPCH_QUERIES_H_

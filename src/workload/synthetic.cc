#include "workload/synthetic.h"

#include <algorithm>

#include "util/rng.h"

namespace htqo {

Relation MakeSyntheticRelation(std::size_t rows,
                               const std::vector<std::string>& columns,
                               std::size_t selectivity_percent,
                               uint64_t seed) {
  std::vector<Column> cols;
  cols.reserve(columns.size());
  for (const std::string& name : columns) {
    cols.push_back(Column{name, ValueType::kInt64});
  }
  Relation rel{Schema(std::move(cols))};
  rel.Reserve(rows);

  const std::size_t domain =
      std::max<std::size_t>(1, rows * selectivity_percent / 100);
  Rng rng(seed);
  std::vector<Value> row(columns.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      row[c] = Value::Int64(static_cast<int64_t>(rng.Uniform(domain)));
    }
    rel.AddRow(row);
  }
  return rel;
}

void PopulateSyntheticCatalog(const SyntheticConfig& config,
                              Catalog* catalog) {
  Rng rng(config.seed);
  for (std::size_t i = 1; i <= config.num_relations; ++i) {
    catalog->Put("r" + std::to_string(i),
                 MakeSyntheticRelation(config.cardinality, {"a", "b"},
                                       config.selectivity, rng.Fork(i)));
  }
}

}  // namespace htqo

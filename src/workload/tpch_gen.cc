#include "workload/tpch_gen.h"

#include <algorithm>

#include "util/rng.h"

namespace htqo {

namespace {

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

// The 25 TPC-H nations with their region assignment (region index).
struct NationSpec {
  const char* name;
  int region;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kTypeSyllable1[6] = {"STANDARD", "SMALL",  "MEDIUM",
                                           "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                           "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyllable3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                           "COPPER"};

int64_t DateDays(const char* ymd) {
  int64_t days = 0;
  bool ok = ParseDate(ymd, &days);
  HTQO_CHECK(ok);
  return days;
}

std::size_t Scaled(double sf, std::size_t at_sf1) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(sf * static_cast<double>(at_sf1)));
}

}  // namespace

std::size_t TpchCustomerRows(double sf) { return Scaled(sf, 150000); }
std::size_t TpchOrdersRows(double sf) { return Scaled(sf, 1500000); }

void PopulateTpch(const TpchConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  const double sf = config.scale_factor;

  // --- region ---------------------------------------------------------------
  {
    Relation region{Schema({{"r_regionkey", ValueType::kInt64},
                            {"r_name", ValueType::kString}})};
    for (int64_t i = 0; i < 5; ++i) {
      region.AddRow({Value::Int64(i), Value::String(kRegions[i])});
    }
    catalog->Put("region", std::move(region));
  }

  // --- nation ---------------------------------------------------------------
  {
    Relation nation{Schema({{"n_nationkey", ValueType::kInt64},
                            {"n_name", ValueType::kString},
                            {"n_regionkey", ValueType::kInt64}})};
    for (int64_t i = 0; i < 25; ++i) {
      nation.AddRow({Value::Int64(i), Value::String(kNations[i].name),
                     Value::Int64(kNations[i].region)});
    }
    catalog->Put("nation", std::move(nation));
  }

  // --- supplier ---------------------------------------------------------------
  const std::size_t num_suppliers = Scaled(sf, 10000);
  {
    Relation supplier{Schema({{"s_suppkey", ValueType::kInt64},
                              {"s_nationkey", ValueType::kInt64},
                              {"s_acctbal", ValueType::kDouble}})};
    supplier.Reserve(num_suppliers);
    Rng r(rng.Fork(1));
    for (std::size_t i = 0; i < num_suppliers; ++i) {
      supplier.AddRow({Value::Int64(static_cast<int64_t>(i)),
                       Value::Int64(static_cast<int64_t>(r.Uniform(25))),
                       Value::Double(r.Range(-99999, 999999) / 100.0)});
    }
    catalog->Put("supplier", std::move(supplier));
  }

  // --- customer ---------------------------------------------------------------
  const std::size_t num_customers = TpchCustomerRows(sf);
  {
    Relation customer{Schema({{"c_custkey", ValueType::kInt64},
                              {"c_nationkey", ValueType::kInt64},
                              {"c_acctbal", ValueType::kDouble}})};
    customer.Reserve(num_customers);
    Rng r(rng.Fork(2));
    for (std::size_t i = 0; i < num_customers; ++i) {
      customer.AddRow({Value::Int64(static_cast<int64_t>(i)),
                       Value::Int64(static_cast<int64_t>(r.Uniform(25))),
                       Value::Double(r.Range(-99999, 999999) / 100.0)});
    }
    catalog->Put("customer", std::move(customer));
  }

  // --- part ---------------------------------------------------------------
  const std::size_t num_parts = Scaled(sf, 200000);
  {
    Relation part{Schema({{"p_partkey", ValueType::kInt64},
                          {"p_type", ValueType::kString},
                          {"p_size", ValueType::kInt64}})};
    part.Reserve(num_parts);
    Rng r(rng.Fork(3));
    for (std::size_t i = 0; i < num_parts; ++i) {
      std::string type = std::string(kTypeSyllable1[r.Uniform(6)]) + " " +
                         kTypeSyllable2[r.Uniform(5)] + " " +
                         kTypeSyllable3[r.Uniform(5)];
      part.AddRow({Value::Int64(static_cast<int64_t>(i)),
                   Value::String(std::move(type)),
                   Value::Int64(r.Range(1, 50))});
    }
    catalog->Put("part", std::move(part));
  }

  // --- partsupp ---------------------------------------------------------------
  {
    Relation partsupp{Schema({{"ps_partkey", ValueType::kInt64},
                              {"ps_suppkey", ValueType::kInt64},
                              {"ps_supplycost", ValueType::kDouble}})};
    partsupp.Reserve(num_parts * 4);
    Rng r(rng.Fork(4));
    for (std::size_t p = 0; p < num_parts; ++p) {
      for (int s = 0; s < 4; ++s) {
        partsupp.AddRow(
            {Value::Int64(static_cast<int64_t>(p)),
             Value::Int64(static_cast<int64_t>(r.Uniform(num_suppliers))),
             Value::Double(r.Range(100, 100000) / 100.0)});
      }
    }
    catalog->Put("partsupp", std::move(partsupp));
  }

  // --- orders + lineitem ------------------------------------------------------
  const std::size_t num_orders = TpchOrdersRows(sf);
  const int64_t date_lo = DateDays("1992-01-01");
  const int64_t date_hi = DateDays("1998-08-02");
  {
    Relation orders{Schema({{"o_orderkey", ValueType::kInt64},
                            {"o_custkey", ValueType::kInt64},
                            {"o_orderdate", ValueType::kDate},
                            {"o_orderyear", ValueType::kInt64},
                            {"o_totalprice", ValueType::kDouble}})};
    Relation lineitem{Schema({{"l_orderkey", ValueType::kInt64},
                              {"l_partkey", ValueType::kInt64},
                              {"l_suppkey", ValueType::kInt64},
                              {"l_extendedprice", ValueType::kDouble},
                              {"l_discount", ValueType::kDouble},
                              {"l_quantity", ValueType::kInt64}})};
    orders.Reserve(num_orders);
    lineitem.Reserve(num_orders * 4);
    Rng r(rng.Fork(5));
    for (std::size_t o = 0; o < num_orders; ++o) {
      int64_t date = r.Range(date_lo, date_hi);
      // Year from the rendered date (cheap and correct).
      int64_t year = std::stoll(FormatDate(date).substr(0, 4));
      double total = 0;
      std::size_t lines = 1 + r.Uniform(7);  // 1..7, mean 4
      for (std::size_t l = 0; l < lines; ++l) {
        double price = static_cast<double>(r.Range(90000, 10500000)) / 100.0;
        double discount = static_cast<double>(r.Range(0, 10)) / 100.0;
        total += price * (1 - discount);
        lineitem.AddRow(
            {Value::Int64(static_cast<int64_t>(o)),
             Value::Int64(static_cast<int64_t>(r.Uniform(num_parts))),
             Value::Int64(static_cast<int64_t>(r.Uniform(num_suppliers))),
             Value::Double(price), Value::Double(discount),
             Value::Int64(r.Range(1, 50))});
      }
      orders.AddRow({Value::Int64(static_cast<int64_t>(o)),
                     Value::Int64(static_cast<int64_t>(r.Uniform(
                         num_customers))),
                     Value::Date(date), Value::Int64(year),
                     Value::Double(total)});
    }
    catalog->Put("orders", std::move(orders));
    catalog->Put("lineitem", std::move(lineitem));
  }
}

}  // namespace htqo

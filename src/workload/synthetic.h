// Synthetic data for the Acyclic/Chain experiments of Section 6:
// "synthetic data ... generated randomly by using an uniform distribution
// over a fixed range of values, and setting the desired values for the
// cardinality of each relation and the selectivity of each attribute."
//
// Selectivity is a percentage: an attribute of selectivity s in a relation
// of cardinality N draws its values uniformly from a domain of
// max(1, round(N * s / 100)) distinct values — selectivity 90 means almost
// all values distinct (small join fan-out), selectivity 30 means heavy
// duplication (fan-out ~3.3x per join).

#ifndef HTQO_WORKLOAD_SYNTHETIC_H_
#define HTQO_WORKLOAD_SYNTHETIC_H_

#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/relation.h"

namespace htqo {

struct SyntheticConfig {
  std::size_t cardinality = 500;   // rows per relation
  std::size_t selectivity = 30;    // percent distinct per attribute
  std::size_t num_relations = 10;  // r1..rN
  uint64_t seed = 7;
};

// One relation with the given int64 columns, rows uniform over the domain
// implied by (rows, selectivity_percent).
Relation MakeSyntheticRelation(std::size_t rows,
                               const std::vector<std::string>& columns,
                               std::size_t selectivity_percent, uint64_t seed);

// Registers r1..rN, each with columns (a, b), into `catalog`.
void PopulateSyntheticCatalog(const SyntheticConfig& config, Catalog* catalog);

}  // namespace htqo

#endif  // HTQO_WORKLOAD_SYNTHETIC_H_

#include "workload/drift.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace htqo {
namespace {

// A two-int64-column relation (a, b) with a = row index (so the DISTINCT
// head has real work to do) and b drawn uniformly from
// [key_lo, key_lo + key_span).
Relation MakeKeyedRelation(std::size_t rows, std::size_t key_lo,
                           std::size_t key_span, uint64_t seed) {
  Relation rel{Schema({Column{"a", ValueType::kInt64},
                       Column{"b", ValueType::kInt64}})};
  rel.Reserve(rows);
  Rng rng(seed);
  std::vector<Value> row(2);
  for (std::size_t r = 0; r < rows; ++r) {
    row[0] = Value::Int64(static_cast<int64_t>(r));
    row[1] = Value::Int64(
        static_cast<int64_t>(key_lo + rng.Uniform(std::max<std::size_t>(
                                          1, key_span))));
    rel.AddRow(row);
  }
  return rel;
}

// dim(a, b): the join key is column a (mid.b = dim.a), so here *a* is the
// shifted random key and b is the row index.
Relation MakeDimRelation(std::size_t rows, std::size_t key_lo,
                         std::size_t key_span, uint64_t seed) {
  Relation rel{Schema({Column{"a", ValueType::kInt64},
                       Column{"b", ValueType::kInt64}})};
  rel.Reserve(rows);
  Rng rng(seed);
  std::vector<Value> row(2);
  for (std::size_t r = 0; r < rows; ++r) {
    row[0] = Value::Int64(
        static_cast<int64_t>(key_lo + rng.Uniform(std::max<std::size_t>(
                                          1, key_span))));
    row[1] = Value::Int64(static_cast<int64_t>(r));
    rel.AddRow(row);
  }
  return rel;
}

// mid(a, b): a uniform over the hot-key domain (the hot join side), b
// uniform over the dim-key domain (the dim join side).
Relation MakeMidRelation(const DriftConfig& c, uint64_t seed) {
  Relation rel{Schema({Column{"a", ValueType::kInt64},
                       Column{"b", ValueType::kInt64}})};
  rel.Reserve(c.mid_rows);
  Rng rng(seed);
  std::vector<Value> row(2);
  for (std::size_t r = 0; r < c.mid_rows; ++r) {
    row[0] = Value::Int64(static_cast<int64_t>(
        rng.Uniform(std::max<std::size_t>(1, c.hot_key_domain))));
    row[1] = Value::Int64(static_cast<int64_t>(
        rng.Uniform(std::max<std::size_t>(1, c.dim_key_domain))));
    rel.AddRow(row);
  }
  return rel;
}

}  // namespace

void PopulateDriftCatalog(const DriftConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  // Pre-drift hot: tiny, join key spread over mid.a's whole domain.
  catalog->Put("hot", MakeKeyedRelation(config.initial_hot_rows, 0,
                                        config.hot_key_domain, rng.Fork(1)));
  catalog->Put("mid", MakeMidRelation(config, rng.Fork(2)));
  // dim.a is shifted up so only the top `dim_overlap_keys` values of its
  // range can match mid.b: both sides have a small V(), so the estimator
  // over-predicts mid ⋈ dim by ~dim_key_domain / dim_overlap_keys while
  // the actual join stays tiny. See the header comment for why.
  const std::size_t overlap =
      std::min(config.dim_overlap_keys, config.dim_key_domain);
  catalog->Put("dim",
               MakeDimRelation(config.dim_rows,
                               config.dim_key_domain - overlap,
                               config.dim_key_domain, rng.Fork(3)));
}

void ApplyDrift(const DriftConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  // Post-drift hot: regrown, join key collapsed onto a few hot values at
  // the bottom of mid.a's domain.
  catalog->Put("hot",
               MakeKeyedRelation(config.drifted_hot_rows, 0,
                                 std::min(config.drifted_hot_keys,
                                          config.hot_key_domain),
                                 rng.Fork(4)));
}

std::string DriftQuerySql() {
  return "SELECT DISTINCT hot.a FROM hot, mid, dim "
         "WHERE hot.b = mid.a AND mid.b = dim.a";
}

}  // namespace htqo

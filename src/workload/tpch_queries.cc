#include "workload/tpch_queries.h"

namespace htqo {

std::string TpchQ5(const std::string& region, const std::string& date) {
  return "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue\n"
         "FROM customer, orders, lineitem, supplier, nation, region\n"
         "WHERE c_custkey = o_custkey\n"
         "  AND l_orderkey = o_orderkey\n"
         "  AND l_suppkey = s_suppkey\n"
         "  AND c_nationkey = s_nationkey\n"
         "  AND s_nationkey = n_nationkey\n"
         "  AND n_regionkey = r_regionkey\n"
         "  AND r_name = '" + region + "'\n"
         "  AND o_orderdate >= date '" + date + "'\n"
         "  AND o_orderdate < date '" + date + "' + interval '1' year\n"
         "GROUP BY n_name ORDER BY revenue DESC";
}

std::string TpchQ8Nested(const std::string& region, const std::string& type) {
  return "SELECT o_year, sum(volume) AS volume\n"
         "FROM (SELECT o_orderyear AS o_year,\n"
         "             l_extendedprice * (1 - l_discount) AS volume\n"
         "      FROM part, supplier, lineitem, orders, customer,\n"
         "           nation n1, nation n2, region\n"
         "      WHERE p_partkey = l_partkey\n"
         "        AND s_suppkey = l_suppkey\n"
         "        AND l_orderkey = o_orderkey\n"
         "        AND o_custkey = c_custkey\n"
         "        AND c_nationkey = n1.n_nationkey\n"
         "        AND n1.n_regionkey = r_regionkey\n"
         "        AND r_name = '" + region + "'\n"
         "        AND s_nationkey = n2.n_nationkey\n"
         "        AND o_orderdate BETWEEN date '1995-01-01' AND "
         "date '1996-12-31'\n"
         "        AND p_type = '" + type + "') all_nations\n"
         "GROUP BY o_year ORDER BY o_year";
}

std::string TpchQ8(const std::string& region, const std::string& type) {
  return "SELECT o_orderyear, sum(l_extendedprice * (1 - l_discount)) AS "
         "volume\n"
         "FROM part, supplier, lineitem, orders, customer, nation n1, "
         "nation n2, region\n"
         "WHERE p_partkey = l_partkey\n"
         "  AND s_suppkey = l_suppkey\n"
         "  AND l_orderkey = o_orderkey\n"
         "  AND o_custkey = c_custkey\n"
         "  AND c_nationkey = n1.n_nationkey\n"
         "  AND n1.n_regionkey = r_regionkey\n"
         "  AND r_name = '" + region + "'\n"
         "  AND s_nationkey = n2.n_nationkey\n"
         "  AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'\n"
         "  AND p_type = '" + type + "'\n"
         "GROUP BY o_orderyear ORDER BY o_orderyear";
}

}  // namespace htqo

// Flight recorder: a fixed-size ring of the last N completed query records.
//
// Every finished query — server session or shell — deposits one POD
// FlightRecord (tenant, query-shape fingerprint, width, degradations,
// replans, rows, spill, per-phase latencies, trace id). The ring backs
// three consumers (DESIGN.md §6i):
//
//   * the slow-query log (`/debug/slow`, shell `\slow`): Slowest(n) over
//     the retained window, sorted by total latency;
//   * point lookup (`/debug/record/<id>`): Find() by the monotonically
//     increasing record id the OK frame echoes back to clients;
//   * the crash dump: InstallCrashHandler() registers fatal-signal handlers
//     that write the ring to disk with async-signal-safe primitives only
//     (write(2) + stack-buffer formatting, no allocation, no locking), so a
//     crashing server leaves behind its last ~N queries for post-mortem.
//
// "Lock-cheap": Record() copies one POD under a mutex held for a few dozen
// nanoseconds — once per completed query, invisible next to the query
// itself, and TSan-clean (no seqlock games). Records are POD on purpose:
// fixed char arrays for tenant/trace-id keep the crash path free of
// std::string internals.
//
// DumpToFile() is the testable non-signal exporter; it goes through the
// `obs.flightrec.dump` fault site and returns a Status the caller degrades
// to a warning (the ring itself is never affected).

#ifndef HTQO_OBS_FLIGHTREC_H_
#define HTQO_OBS_FLIGHTREC_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace htqo {

struct FlightRecord {
  uint64_t id = 0;           // assigned by Record(); 1-based, monotonic
  int64_t wall_unix_us = 0;  // completion wall clock (0 = stamped on Record)
  char tenant[32] = {};      // NUL-terminated, truncated to fit
  char trace_id[36] = {};    // 32-hex trace id or empty when untraced
  uint64_t fingerprint = 0;  // QueryShapeFingerprint of the SQL text
  int32_t status = 0;        // StatusCode as int
  uint64_t rows = 0;
  uint32_t width = 0;         // decomposition width (0 = non-decomposed path)
  uint32_t degradations = 0;  // ladder steps taken
  uint32_t replans = 0;
  int32_t admission_level = 0;
  uint64_t spill_bytes = 0;
  // Per-phase latencies, microseconds. total >= queue+parse+plan+exec
  // (render/feedback ride in the remainder).
  uint64_t queue_us = 0;
  uint64_t parse_us = 0;
  uint64_t plan_us = 0;
  uint64_t exec_us = 0;
  uint64_t total_us = 0;
  uint8_t sampled_trace = 0;  // 1 when a per-query trace file was exported

  void SetTenant(std::string_view t);
  void SetTraceIdHex(std::string_view hex);
};

// Kebab-case name of a StatusCode stored in FlightRecord::status — the
// wire/JSON spelling ("ok", "resource-exhausted", ...).
const char* StatusCodeKebab(int32_t code);

// Stable fingerprint of a query's *shape*: whitespace collapsed, letters
// lowercased, numeric literals and quoted strings replaced by placeholders
// (digits continuing an identifier, as in `r2`, are kept — they are shape),
// FNV-1a hashed. Two queries differing only in constants collide (by
// design — that is the repeated-shape signal), different joins do not.
uint64_t QueryShapeFingerprint(std::string_view sql);

// One record as a JSON object (the /debug endpoint + DEBUG verb schema).
std::string FlightRecordJson(const FlightRecord& r);

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  // Process-wide ring shared by server sessions and the shell.
  static FlightRecorder& Global();

  // Drops all records and resizes the ring (server startup, tests).
  void Reset(std::size_t capacity);

  // Deposits one record; assigns and returns its id. Thread-safe.
  uint64_t Record(FlightRecord r);

  // Retained records, oldest first.
  std::vector<FlightRecord> Snapshot() const;
  // The n slowest retained records by total_us, slowest first.
  std::vector<FlightRecord> Slowest(std::size_t n) const;
  bool Find(uint64_t id, FlightRecord* out) const;

  std::size_t capacity() const;
  std::size_t size() const;
  uint64_t total_recorded() const;

  // Writes the retained records as JSON lines through the
  // `obs.flightrec.dump` fault site. Exporter failure only; the ring is
  // untouched.
  Status DumpToFile(const std::string& path) const;

  // Registers fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT)
  // that dump Global()'s ring to `path` using async-signal-safe primitives,
  // then re-raise with the default disposition. Idempotent; the path is
  // copied into static storage.
  static void InstallCrashHandler(const char* path);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;
  std::size_t capacity_;
  uint64_t total_ = 0;  // lifetime records; ring slot = (id-1) % capacity
};

}  // namespace htqo

#endif  // HTQO_OBS_FLIGHTREC_H_

#include "obs/flightrec.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault_injector.h"

namespace htqo {

const char* StatusCodeKebab(int32_t code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// ---- async-signal-safe crash-dump machinery -------------------------------
//
// The handler may run with arbitrary state (heap corrupt, locks held), so it
// touches only: these statics, the ring's flat POD array (captured at
// install time), write(2), and stack buffers. Reads of the live ring race
// with a concurrent Record() by design — a torn record in a post-mortem
// dump beats a deadlocked handler.

struct CrashDumpState {
  char path[256] = {};
  const FlightRecord* ring = nullptr;
  std::size_t capacity = 0;
  const uint64_t* total = nullptr;
  bool installed = false;
};
CrashDumpState g_crash;

void SafeAppend(char* buf, std::size_t cap, std::size_t* pos,
                const char* s) {
  while (*s != '\0' && *pos + 1 < cap) buf[(*pos)++] = *s++;
}

void SafeAppendUint(char* buf, std::size_t cap, std::size_t* pos,
                    uint64_t v) {
  char digits[24];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && n < sizeof(digits));
  while (n > 0 && *pos + 1 < cap) buf[(*pos)++] = digits[--n];
}

// One record as a JSON line using only stack formatting (no allocation).
std::size_t FormatRecordLineSafe(const FlightRecord& r, char* buf,
                                 std::size_t cap) {
  std::size_t pos = 0;
  SafeAppend(buf, cap, &pos, "{\"id\":");
  SafeAppendUint(buf, cap, &pos, r.id);
  SafeAppend(buf, cap, &pos, ",\"tenant\":\"");
  SafeAppend(buf, cap, &pos, r.tenant);  // tenant names are label-safe ASCII
  SafeAppend(buf, cap, &pos, "\",\"status\":\"");
  SafeAppend(buf, cap, &pos, StatusCodeKebab(r.status));
  SafeAppend(buf, cap, &pos, "\",\"rows\":");
  SafeAppendUint(buf, cap, &pos, r.rows);
  SafeAppend(buf, cap, &pos, ",\"total_us\":");
  SafeAppendUint(buf, cap, &pos, r.total_us);
  SafeAppend(buf, cap, &pos, ",\"trace_id\":\"");
  SafeAppend(buf, cap, &pos, r.trace_id);
  SafeAppend(buf, cap, &pos, "\"}\n");
  return pos;
}

void CrashHandler(int sig) {
  if (g_crash.ring != nullptr && g_crash.path[0] != '\0') {
    const int fd = ::open(g_crash.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      char buf[512];
      std::size_t pos = 0;
      SafeAppend(buf, sizeof(buf), &pos, "{\"crash_signal\":");
      SafeAppendUint(buf, sizeof(buf), &pos, static_cast<uint64_t>(sig));
      SafeAppend(buf, sizeof(buf), &pos, ",\"total_recorded\":");
      SafeAppendUint(buf, sizeof(buf), &pos,
                     g_crash.total != nullptr ? *g_crash.total : 0);
      SafeAppend(buf, sizeof(buf), &pos, "}\n");
      (void)!::write(fd, buf, pos);
      const uint64_t total = g_crash.total != nullptr ? *g_crash.total : 0;
      const std::size_t n =
          total < g_crash.capacity ? static_cast<std::size_t>(total)
                                   : g_crash.capacity;
      const uint64_t first = total - n;  // oldest retained id - 1
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t id = first + i + 1;
        const FlightRecord& r = g_crash.ring[(id - 1) % g_crash.capacity];
        pos = FormatRecordLineSafe(r, buf, sizeof(buf));
        (void)!::write(fd, buf, pos);
      }
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void FlightRecord::SetTenant(std::string_view t) {
  const std::size_t n = std::min(t.size(), sizeof(tenant) - 1);
  std::memcpy(tenant, t.data(), n);
  tenant[n] = '\0';
}

void FlightRecord::SetTraceIdHex(std::string_view hex) {
  const std::size_t n = std::min(hex.size(), sizeof(trace_id) - 1);
  std::memcpy(trace_id, hex.data(), n);
  trace_id[n] = '\0';
}

uint64_t QueryShapeFingerprint(std::string_view sql) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](char c) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  };
  bool pending_space = false;
  char prev = '\0';  // last character mixed
  for (std::size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending_space = true;
      continue;
    }
    if (pending_space) {
      mix(' ');
      prev = ' ';
      pending_space = false;
    }
    if (c == '\'') {  // quoted string literal -> placeholder
      mix('S');
      prev = 'S';
      ++i;
      while (i < sql.size() && sql[i] != '\'') ++i;
      continue;
    }
    if (c >= '0' && c <= '9') {
      // Digits continuing an identifier (r2, t_10) are shape; a standalone
      // digit run is a numeric literal -> placeholder.
      const bool ident_tail = (prev >= 'a' && prev <= 'z') ||
                              (prev >= '0' && prev <= '9') || prev == '_';
      if (!ident_tail) {
        mix('N');
        prev = 'N';
        while (i + 1 < sql.size() &&
               ((sql[i + 1] >= '0' && sql[i + 1] <= '9') ||
                sql[i + 1] == '.')) {
          ++i;
        }
        continue;
      }
    }
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    mix(c);
    prev = c;
  }
  return hash;
}

std::string FlightRecordJson(const FlightRecord& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"id\":%" PRIu64 ",\"time_us\":%" PRId64
      ",\"tenant\":\"%s\",\"fingerprint\":\"%016" PRIx64
      "\",\"trace_id\":\"%s\",\"status\":\"%s\",\"rows\":%" PRIu64
      ",\"width\":%u,\"degradations\":%u,\"replans\":%u"
      ",\"admission_level\":%d,\"spill_bytes\":%" PRIu64
      ",\"queue_us\":%" PRIu64 ",\"parse_us\":%" PRIu64
      ",\"plan_us\":%" PRIu64 ",\"exec_us\":%" PRIu64
      ",\"total_us\":%" PRIu64 ",\"sampled_trace\":%s}",
      r.id, r.wall_unix_us, r.tenant, r.fingerprint, r.trace_id,
      StatusCodeKebab(r.status), r.rows, r.width, r.degradations, r.replans,
      r.admission_level, r.spill_bytes, r.queue_us, r.parse_us, r.plan_us,
      r.exec_us, r.total_us, r.sampled_trace ? "true" : "false");
  return buf;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)),
      capacity_(std::max<std::size_t>(1, capacity)) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::Reset(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.assign(capacity_, FlightRecord{});
  total_ = 0;
}

uint64_t FlightRecorder::Record(FlightRecord r) {
  if (r.wall_unix_us == 0) r.wall_unix_us = NowUnixMicros();
  std::lock_guard<std::mutex> lock(mu_);
  r.id = ++total_;
  ring_[(r.id - 1) % capacity_] = r;
  return r.id;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n =
      total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
  std::vector<FlightRecord> out;
  out.reserve(n);
  const uint64_t first = total_ - n;  // oldest retained id - 1
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::Slowest(std::size_t n) const {
  std::vector<FlightRecord> records = Snapshot();
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.id > b.id;
            });
  if (records.size() > n) records.resize(n);
  return records;
}

bool FlightRecorder::Find(uint64_t id, FlightRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > total_) return false;
  const std::size_t n =
      total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
  if (id <= total_ - n) return false;  // already overwritten
  const FlightRecord& r = ring_[(id - 1) % capacity_];
  if (r.id != id) return false;
  if (out != nullptr) *out = r;
  return true;
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteFlightRecDump)) {
    return Status::Internal("injected fault: obs.flightrec.dump (" + path +
                            ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open flight dump file '" + path + "'");
  }
  for (const FlightRecord& r : Snapshot()) {
    out << FlightRecordJson(r) << '\n';
  }
  out.flush();
  if (!out) {
    return Status::Internal("short write to flight dump file '" + path + "'");
  }
  return Status::Ok();
}

void FlightRecorder::InstallCrashHandler(const char* path) {
  FlightRecorder& rec = Global();
  {
    std::lock_guard<std::mutex> lock(rec.mu_);
    std::snprintf(g_crash.path, sizeof(g_crash.path), "%s", path);
    // Captured raw: the handler cannot lock. Reset() after installation
    // would dangle these, so the server sizes the ring first.
    g_crash.ring = rec.ring_.data();
    g_crash.capacity = rec.capacity_;
    g_crash.total = &rec.total_;
  }
  if (g_crash.installed) return;
  g_crash.installed = true;
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = CrashHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace htqo

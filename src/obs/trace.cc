#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <random>
#include <utility>

#include "util/fault_injector.h"

namespace htqo {
namespace {

// Dense per-OS-thread ids: stable across a process, small enough to read in
// chrome://tracing's track list (std::thread::id would render as a hash).
uint64_t DenseThreadId() {
  static std::atomic<uint64_t> next{0};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string TraceId::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, hi, lo);
  return buf;
}

TraceId TraceId::FromHex(std::string_view hex) {
  TraceId id;
  if (hex.size() != 32) return TraceId{};
  for (int i = 0; i < 32; ++i) {
    const int d = HexDigit(hex[static_cast<std::size_t>(i)]);
    if (d < 0) return TraceId{};
    uint64_t& word = i < 16 ? id.hi : id.lo;
    word = (word << 4) | static_cast<uint64_t>(d);
  }
  return id;
}

TraceId TraceId::Random() {
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    std::seed_seq seq{
        rd(), rd(), rd(), rd(),
        static_cast<unsigned>(::getpid()),
        static_cast<unsigned>(
            std::chrono::steady_clock::now().time_since_epoch().count())};
    return std::mt19937_64(seq);
  }();
  TraceId id{rng(), rng()};
  if (!id.valid()) id.lo = 1;  // reserve zero for "no trace id"
  return id;
}

#if !defined(HTQO_DISABLE_TRACING)
namespace {

// Per-thread stack of open ScopedSpans. Entries carry the tracer so that
// two tracers interleaved on one thread (e.g. nested sub-runs in tests)
// never adopt each other's spans as parents.
thread_local std::vector<std::pair<const Tracer*, uint64_t>> g_span_stack;

}  // namespace
#endif

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      export_pid_(static_cast<uint64_t>(::getpid())) {}

uint64_t Tracer::Begin(std::string_view name, uint64_t parent) {
  const int64_t start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_spans_;
    return 0;  // every consumer of span ids already ignores 0
  }
  Span& span = spans_.emplace_back();
  span.id = spans_.size();  // ids are 1-based indexes into spans_
  span.parent = parent;
  span.name = std::string(name);
  span.thread = DenseThreadId();
  span.start_ns = start_ns;
  return span.id;
}

void Tracer::End(uint64_t id) {
  if (id == 0) return;
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - epoch_)
                             .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.duration_ns >= 0) return;  // already ended
  span.duration_ns = std::max<int64_t>(0, now_ns - span.start_ns);
}

void Tracer::Attr(uint64_t id, std::string_view key, std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].attrs.push_back(SpanAttr{std::string(key), std::move(value)});
}

uint64_t Tracer::CurrentParent(const Tracer* tracer) {
#if !defined(HTQO_DISABLE_TRACING)
  if (tracer == nullptr) return 0;
  for (auto it = g_span_stack.rbegin(); it != g_span_stack.rend(); ++it) {
    if (it->first == tracer) return it->second;
  }
#else
  (void)tracer;
#endif
  return 0;
}

void Tracer::SetMaxSpans(std::size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = max_spans;
}

std::size_t Tracer::max_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_spans_;
}

uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

void Tracer::SetTraceId(TraceId id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = id;
}

TraceId Tracer::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

void Tracer::SetRemoteParent(std::string wire_span_id) {
  std::lock_guard<std::mutex> lock(mu_);
  remote_parent_ = std::move(wire_span_id);
}

std::string Tracer::remote_parent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_parent_;
}

void Tracer::SetExportPid(uint64_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  export_pid_ = pid;
}

uint64_t Tracer::export_pid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return export_pid_;
}

std::string Tracer::WireSpanId(uint64_t id) const {
  if (id == 0) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64, export_pid(), id);
  return buf;
}

std::size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<Span> spans = Snapshot();
  const uint64_t pid = export_pid();
  const std::string remote = remote_parent();
  const TraceId tid128 = trace_id();
  const uint64_t dropped = dropped_spans();
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  uint64_t max_thread = 0;
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out += ',';
    first = false;
    max_thread = std::max(max_thread, span.thread);
    // Complete ("X") event; open spans export with dur 0 rather than
    // dropping — a crash mid-query should still leave a loadable trace.
    const double ts_us = static_cast<double>(span.start_ns) / 1e3;
    const double dur_us =
        static_cast<double>(std::max<int64_t>(0, span.duration_ns)) / 1e3;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                  ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"span_id\":\"%" PRIu64
                  ":%" PRIu64 "\"",
                  pid, span.thread, ts_us, dur_us, pid, span.id);
    out += buf;
    // Parent in wire form. Roots re-parent under the remote (cross-process)
    // span when one was propagated — that edge is what stitches the files.
    out += ",\"parent_id\":\"";
    if (span.parent != 0) {
      std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64, pid, span.parent);
      out += buf;
    } else if (!remote.empty()) {
      AppendJsonEscaped(&out, remote);
    } else {
      out += '0';
    }
    out += '"';
    for (const SpanAttr& attr : span.attrs) {
      out += ",\"";
      AppendJsonEscaped(&out, attr.key);
      out += "\":\"";
      AppendJsonEscaped(&out, attr.value);
      out += '"';
    }
    out += "}}";
  }
  // Thread-name metadata so the track list reads "worker N", not bare ids.
  for (uint64_t tid = 0; !spans.empty() && tid <= max_thread; ++tid) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu64
                  ",\"tid\":%" PRIu64
                  ",\"args\":{\"name\":\"worker %" PRIu64 "\"}}",
                  pid, tid, tid);
    out += buf;
  }
  // Trace identity + drop accounting, as metadata events so stitch-aware
  // tools (validate_trace.py) can pair per-process files without heuristics.
  if (tid128.valid()) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"trace_id\",\"ph\":\"M\",\"pid\":%" PRIu64
                  ",\"tid\":0,\"args\":{\"trace_id\":\"%s\"}}",
                  pid, tid128.ToHex().c_str());
    out += buf;
  }
  if (dropped > 0) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":%" PRIu64
                  ",\"tid\":0,\"args\":{\"count\":\"%" PRIu64 "\"}}",
                  pid, dropped);
    out += buf;
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteTraceWrite)) {
    return Status::Internal("injected fault: trace.write (" + path + ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  out << ChromeTraceJson();
  out.flush();
  if (!out) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

std::string Tracer::ToTreeString() const {
  const std::vector<Span> spans = Snapshot();
  // children[i] = indexes of spans whose parent is span id i+1; roots under 0.
  std::vector<std::vector<std::size_t>> children(spans.size() + 1);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const uint64_t parent =
        spans[i].parent <= spans.size() ? spans[i].parent : 0;
    children[parent].push_back(i);
  }
  for (auto& kids : children) {
    std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
      if (spans[a].start_ns != spans[b].start_ns) {
        return spans[a].start_ns < spans[b].start_ns;
      }
      return spans[a].id < spans[b].id;
    });
  }
  std::string out;
  char buf[64];
  // Iterative DFS; (index, depth), pushed in reverse so siblings pop in order.
  std::vector<std::pair<std::size_t, int>> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [i, depth] = stack.back();
    stack.pop_back();
    const Span& span = spans[i];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += span.name;
    if (span.duration_ns >= 0) {
      std::snprintf(buf, sizeof(buf), " %.3fms",
                    static_cast<double>(span.duration_ns) / 1e6);
      out += buf;
    } else {
      out += " (open)";
    }
    for (const SpanAttr& attr : span.attrs) {
      out += ' ';
      out += attr.key;
      out += '=';
      out += attr.value;
    }
    out += '\n';
    const auto& kids = children[span.id];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

#if !defined(HTQO_DISABLE_TRACING)

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name)
    : ScopedSpan(tracer, name, Tracer::CurrentParent(tracer)) {}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->Begin(name, parent);
  g_span_stack.emplace_back(tracer_, id_);
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tracer_->End(id_);
  // Open spans nest, so ours is the innermost entry for this tracer; pop it
  // even if other tracers' entries sit above (interleaved destruction).
  for (auto it = g_span_stack.rbegin(); it != g_span_stack.rend(); ++it) {
    if (it->first == tracer_ && it->second == id_) {
      g_span_stack.erase(std::next(it).base());
      break;
    }
  }
}

void ScopedSpan::Attr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  tracer_->Attr(id_, key, std::string(value));
}

void ScopedSpan::Attr(std::string_view key, const char* value) {
  Attr(key, std::string_view(value));
}

void ScopedSpan::Attr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  tracer_->Attr(id_, key, buf);
}

#endif  // !HTQO_DISABLE_TRACING

}  // namespace htqo

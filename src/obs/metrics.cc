#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/fault_injector.h"

namespace htqo {
namespace {

// Unix seconds captured when the obs library is initialized (process start,
// for all practical purposes — the registry is linked into every binary).
const double g_process_start_seconds =
    std::chrono::duration<double>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();
const std::chrono::steady_clock::time_point g_process_start_steady =
    std::chrono::steady_clock::now();

void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Splits `fam{inner}` into ("fam", "inner"); a plain name yields ("fam", "").
std::pair<std::string_view, std::string_view> SplitMetricName(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, std::string_view{}};
  }
  return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

void AppendGaugeValue(std::string* out, double value) {
  char buf[48];
  // %.10g round-trips the values we emit (ratios, seconds) without noise.
  std::snprintf(buf, sizeof(buf), " %.10g\n", value);
  *out += buf;
}

}  // namespace

std::string LabeledMetricName(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(family);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscapedLabelValue(&out, value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string TenantMetricName(std::string_view family, std::string_view tenant) {
  return LabeledMetricName(family, {{"tenant", tenant}});
}

const char* BuildVersionString() {
#if defined(HTQO_VERSION)
  return HTQO_VERSION;
#else
  return "unknown";
#endif
}

const char* BuildGitShaString() {
#if defined(HTQO_GIT_SHA)
  return HTQO_GIT_SHA;
#else
  return "unknown";
#endif
}

const char* BuildSanitizerString() {
#if defined(HTQO_SANITIZE_TAG)
  return HTQO_SANITIZE_TAG;
#else
  return "none";
#endif
}

double ProcessStartTimeSeconds() { return g_process_start_seconds; }

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start_steady)
      .count();
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> out{};
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double MetricsSnapshot::HistogramData::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t MetricsSnapshot::HistogramData::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, at least 1 so p0 returns the smallest
  // occupied bucket's edge.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      // Upper edge of bucket b: 2^b - 1 values map here (bucket 0 holds 0).
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;
    }
  }
  return UINT64_MAX;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    const uint64_t before = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = value > before ? value - before : 0;
  }
  out.gauges = gauges;  // instantaneous, not cumulative: no delta semantics
  for (const auto& [name, hist] : histograms) {
    HistogramData delta = hist;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end()) {
      const HistogramData& before = it->second;
      delta.count = hist.count > before.count ? hist.count - before.count : 0;
      delta.sum = hist.sum > before.sum ? hist.sum - before.sum : 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        delta.buckets[b] = hist.buckets[b] > before.buckets[b]
                               ? hist.buckets[b] - before.buckets[b]
                               : 0;
      }
    }
    out.histograms[name] = std::move(delta);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = hist->count();
    data.sum = hist->sum();
    data.buckets = hist->BucketCounts();
    out.histograms[name] = std::move(data);
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  char buf[96];
  // Group series by family so labeled variants ({tenant="..."}) share one
  // `# TYPE` line and render contiguously, as the exposition format expects.
  std::map<std::string, std::vector<std::pair<std::string, uint64_t>>,
           std::less<>>
      counter_families;
  for (const auto& [name, value] : snap.counters) {
    counter_families[std::string(SplitMetricName(name).first)].emplace_back(
        name, value);
  }
  for (const auto& [family, series] : counter_families) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [name, value] : series) {
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
      out += name + buf;
    }
  }
  std::map<std::string, std::vector<std::pair<std::string, double>>,
           std::less<>>
      gauge_families;
  for (const auto& [name, value] : snap.gauges) {
    gauge_families[std::string(SplitMetricName(name).first)].emplace_back(
        name, value);
  }
  for (const auto& [family, series] : gauge_families) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [name, value] : series) {
      out += name;
      AppendGaugeValue(&out, value);
    }
  }
  std::map<std::string,
           std::vector<const MetricsSnapshot::HistogramData*>, std::less<>>
      histogram_families;
  for (const auto& [name, hist] : snap.histograms) {
    histogram_families[std::string(SplitMetricName(name).first)].push_back(
        &hist);
  }
  for (const auto& [family, series] : histogram_families) {
    out += "# TYPE " + family + " histogram\n";
    for (const MetricsSnapshot::HistogramData* hist : series) {
      const auto [fam, labels] = SplitMetricName(hist->name);
      // `le` joins any existing label block: fam_bucket{tenant="x",le="..."}.
      const std::string bucket_prefix =
          std::string(fam) + "_bucket{" +
          (labels.empty() ? std::string() : std::string(labels) + ",");
      const std::string label_block =
          labels.empty() ? std::string() : "{" + std::string(labels) + "}";
      uint64_t cumulative = 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        cumulative += hist->buckets[b];
        // Skip empty leading/interior buckets except the first occupied
        // run's context; emitting all 65 le-lines per histogram would be
        // noise.
        if (hist->buckets[b] == 0) continue;
        const double le =
            b == 0 ? 0.0
                   : (b >= 64 ? static_cast<double>(UINT64_MAX)
                              : static_cast<double>((uint64_t{1} << b) - 1));
        std::snprintf(buf, sizeof(buf), "le=\"%.0f\"} %" PRIu64 "\n", le,
                      cumulative);
        out += bucket_prefix + buf;
      }
      std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %" PRIu64 "\n",
                    hist->count);
      out += bucket_prefix + buf;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hist->sum);
      out += std::string(fam) + "_sum" + label_block + buf;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hist->count);
      out += std::string(fam) + "_count" + label_block + buf;
    }
  }
  // Synthetic build / lifetime gauges: computed at exposition time so they
  // are present in every scrape without anyone having to record them.
  out += "# TYPE ";
  out += kMetricBuildInfo;
  out += " gauge\n";
  out += LabeledMetricName(kMetricBuildInfo,
                           {{"version", BuildVersionString()},
                            {"git_sha", BuildGitShaString()},
                            {"sanitizer", BuildSanitizerString()}});
  out += " 1\n";
  out += "# TYPE ";
  out += kMetricProcessStartTimeSeconds;
  out += " gauge\n";
  out += kMetricProcessStartTimeSeconds;
  AppendGaugeValue(&out, ProcessStartTimeSeconds());
  out += "# TYPE ";
  out += kMetricProcessUptimeSeconds;
  out += " gauge\n";
  out += kMetricProcessUptimeSeconds;
  AppendGaugeValue(&out, ProcessUptimeSeconds());
  return out;
}

Status MetricsRegistry::WritePrometheus(const std::string& path) const {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteMetricsExport)) {
    return Status::Internal("injected fault: metrics.export (" + path + ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open metrics file '" + path + "'");
  }
  out << PrometheusText();
  out.flush();
  if (!out) {
    return Status::Internal("short write to metrics file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace htqo

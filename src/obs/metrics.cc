#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/fault_injector.h"

namespace htqo {

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> out{};
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double MetricsSnapshot::HistogramData::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t MetricsSnapshot::HistogramData::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, at least 1 so p0 returns the smallest
  // occupied bucket's edge.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      // Upper edge of bucket b: 2^b - 1 values map here (bucket 0 holds 0).
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;
    }
  }
  return UINT64_MAX;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    const uint64_t before = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = value > before ? value - before : 0;
  }
  for (const auto& [name, hist] : histograms) {
    HistogramData delta = hist;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end()) {
      const HistogramData& before = it->second;
      delta.count = hist.count > before.count ? hist.count - before.count : 0;
      delta.sum = hist.sum > before.sum ? hist.sum - before.sum : 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        delta.buckets[b] = hist.buckets[b] > before.buckets[b]
                               ? hist.buckets[b] - before.buckets[b]
                               : 0;
      }
    }
    out.histograms[name] = std::move(delta);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = hist->count();
    data.sum = hist->sum();
    data.buckets = hist->BucketCounts();
    out.histograms[name] = std::move(data);
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  char buf[96];
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += name + buf;
  }
  for (const auto& [name, hist] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += hist.buckets[b];
      // Skip empty leading/interior buckets except the first occupied run's
      // context; emitting all 65 le-lines per histogram would be noise.
      if (hist.buckets[b] == 0) continue;
      const double le =
          b == 0 ? 0.0
                 : (b >= 64 ? static_cast<double>(UINT64_MAX)
                            : static_cast<double>((uint64_t{1} << b) - 1));
      std::snprintf(buf, sizeof(buf), "_bucket{le=\"%.0f\"} %" PRIu64 "\n", le,
                    cumulative);
      out += name + buf;
    }
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  hist.count);
    out += name + buf;
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", hist.sum);
    out += name + buf;
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", hist.count);
    out += name + buf;
  }
  return out;
}

Status MetricsRegistry::WritePrometheus(const std::string& path) const {
  if (FaultInjector::Instance().ShouldFail(kFaultSiteMetricsExport)) {
    return Status::Internal("injected fault: metrics.export (" + path + ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open metrics file '" + path + "'");
  }
  out << PrometheusText();
  out.flush();
  if (!out) {
    return Status::Internal("short write to metrics file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace htqo

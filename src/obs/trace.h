// Query lifecycle tracing: hierarchical, thread-safe spans over one run.
//
// A Tracer owns an append-only list of spans. Every span records a
// monotonic-clock start offset and duration (relative to the tracer's
// epoch), a parent span id, the worker thread that produced it, and
// key/value attributes. Spans are created through ScopedSpan (RAII): the
// constructor begins the span and pushes it onto a thread-local parent
// stack, so nested instrumentation points attach to the innermost open span
// of the same thread without any plumbing; the destructor ends it. Code that
// hops threads (the wave evaluators) passes an explicit parent id instead —
// the span still lands on the worker's thread-local stack, so operator
// spans opened inside the node body nest correctly.
//
// Off by default, near-zero overhead: a null Tracer* makes every ScopedSpan
// call a single branch. The no-op path is also compile-time checkable —
// building with -DHTQO_DISABLE_TRACING compiles ScopedSpan down to an empty
// object (kTracingCompiledIn is false), which the CI overhead guard uses as
// the baseline against the default build.
//
// Span names and attribute keys are a stable contract (DESIGN.md §6d):
// exporters, tools/validate_trace.py, and the bench harness key off them.
//
// Memory is bounded: a tracer retains at most max_spans() spans (default
// kDefaultMaxSpans). Begin() past the cap returns 0 — the universal "no
// span" id every other entry point already ignores — and bumps
// dropped_spans(), which exporters surface as metadata.
//
// Cross-process stitching (DESIGN.md §6i): a tracer can carry a 128-bit
// TraceId plus a remote parent span reference received over the wire. The
// Chrome exporter emits span ids in wire form "<pid>:<id>" and a trace_id
// metadata event, so per-process trace files that share a TraceId can be
// concatenated by tools/validate_trace.py --stitch (or loaded together in
// Perfetto) into one tree: the server's root spans attach under the
// client's span via the remote parent reference.
//
// Exporters: ChromeTraceJson()/WriteChromeTrace() emit Chrome trace_event
// JSON loadable in chrome://tracing or Perfetto; ToTreeString() renders the
// span tree for the shell's \analyze. WriteChromeTrace goes through the
// `trace.write` fault site — exporter I/O failures surface as a Status the
// caller degrades to a warning, never a failed query.

#ifndef HTQO_OBS_TRACE_H_
#define HTQO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace htqo {

#if defined(HTQO_DISABLE_TRACING)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

// Default retained-span cap per tracer. Generous: a pathological query with
// millions of operator spans stops accumulating here instead of exhausting
// memory; ordinary queries stay far below it.
inline constexpr std::size_t kDefaultMaxSpans = 1u << 18;

// 128-bit trace identity shared by every process participating in one
// logical query. Zero (the default) means "no trace id assigned".
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  bool operator==(const TraceId& o) const { return hi == o.hi && lo == o.lo; }

  // 32 lowercase hex characters, the wire form carried on QUERY frames.
  std::string ToHex() const;
  // Parses ToHex() output; anything else (wrong length, non-hex) yields the
  // invalid (zero) id, which callers treat as "no trace context".
  static TraceId FromHex(std::string_view hex);
  // Fresh pseudo-random id (seeded from std::random_device + pid + clock).
  static TraceId Random();
};

struct SpanAttr {
  std::string key;
  std::string value;
};

struct Span {
  uint64_t id = 0;      // 1-based; 0 is "no span"
  uint64_t parent = 0;  // 0 = root
  std::string name;
  uint64_t thread = 0;      // dense per-OS-thread id, stable per process
  int64_t start_ns = 0;     // monotonic offset from the tracer's epoch
  int64_t duration_ns = -1;  // -1 while the span is open
  std::vector<SpanAttr> attrs;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Begins a span; `parent` is a span id or 0 for a root span. Thread-safe.
  // Returns 0 (and counts a drop) once max_spans() spans are retained.
  uint64_t Begin(std::string_view name, uint64_t parent);
  // Ends the span (records its duration). Thread-safe, idempotent.
  void End(uint64_t id);
  // Attaches an attribute to an open or ended span. Thread-safe.
  void Attr(uint64_t id, std::string_view key, std::string value);

  // Innermost open ScopedSpan of `tracer` on the calling thread (0 = none).
  // Null-safe: CurrentParent(nullptr) is 0.
  static uint64_t CurrentParent(const Tracer* tracer);

  // Retained-span cap. Lowering it below the current span count only
  // affects future Begin() calls; already-recorded spans are kept.
  void SetMaxSpans(std::size_t max_spans);
  std::size_t max_spans() const;
  // Spans rejected by Begin() because the cap was reached.
  uint64_t dropped_spans() const;

  // Trace identity for cross-process stitching. Not required for local
  // tracing; set by the server/client when a query carries trace context.
  void SetTraceId(TraceId id);
  TraceId trace_id() const;
  // Wire-form span id ("<pid>:<id>") of a parent span living in another
  // process; the exporter re-parents this tracer's root spans under it.
  void SetRemoteParent(std::string wire_span_id);
  std::string remote_parent() const;
  // Process id used in the export (defaults to the real pid). Tests
  // override it to fabricate multi-process stitched traces in one process.
  void SetExportPid(uint64_t pid);
  uint64_t export_pid() const;
  // Wire form of a local span id: "<export_pid>:<id>" ("0" for id 0).
  std::string WireSpanId(uint64_t id) const;

  std::size_t NumSpans() const;
  // Copy of all spans, in creation order.
  std::vector<Span> Snapshot() const;

  // Chrome trace_event JSON: {"traceEvents": [...]} with one complete ("X")
  // event per span (ts/dur in microseconds) plus thread-name metadata. Span
  // id/parent ride in args (wire form "<pid>:<id>") so the tree survives
  // the flat format and ids stay unique across stitched per-process files.
  std::string ChromeTraceJson() const;
  // Writes ChromeTraceJson() to `path` through the `trace.write` fault
  // site. Failure is the exporter's, never the query's: callers warn.
  Status WriteChromeTrace(const std::string& path) const;

  // Indented tree rendering (children ordered by start time):
  //   query 12.34ms mode=qhd-hybrid
  //     parse 0.02ms
  //     ...
  std::string ToTreeString() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t max_spans_ = kDefaultMaxSpans;
  uint64_t dropped_spans_ = 0;
  TraceId trace_id_;
  std::string remote_parent_;
  uint64_t export_pid_ = 0;  // set to getpid() in the constructor
};

#if !defined(HTQO_DISABLE_TRACING)

// RAII span. A null tracer makes every member a single-branch no-op.
class ScopedSpan {
 public:
  // Parent = the calling thread's innermost open ScopedSpan of `tracer`.
  ScopedSpan(Tracer* tracer, std::string_view name);
  // Explicit parent (0 = root): for bodies that run on pool workers whose
  // thread-local stack does not contain the logical parent.
  ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, const char* value);
  void Attr(std::string_view key, double value);
  // Integral values (any width/signedness) format via std::to_string.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void Attr(std::string_view key, T value) {
    if (tracer_ == nullptr) return;
    tracer_->Attr(id_, key, std::to_string(value));
  }

  uint64_t id() const { return id_; }
  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
};

#else  // HTQO_DISABLE_TRACING

// Compile-time no-op path: same API surface, empty object, zero work.
class ScopedSpan {
 public:
  ScopedSpan(Tracer*, std::string_view) {}
  ScopedSpan(Tracer*, std::string_view, uint64_t) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(std::string_view, std::string_view) {}
  void Attr(std::string_view, const char*) {}
  void Attr(std::string_view, double) {}
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void Attr(std::string_view, T) {}

  uint64_t id() const { return 0; }
  Tracer* tracer() const { return nullptr; }
};

#endif  // HTQO_DISABLE_TRACING

// How a run requests tracing: a borrowed Tracer (null = off, the default)
// and the span id under which the run's spans should attach (0 = root).
// Threaded through RunOptions into ExecContext.
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t parent = 0;

  bool enabled() const { return tracer != nullptr; }
};

}  // namespace htqo

#endif  // HTQO_OBS_TRACE_H_

// Process-wide metrics: named monotonic counters and log-scale histograms.
//
// MetricsRegistry::Global() is the process singleton the pipeline records
// into (per-query latencies, rows, spill bytes, governor trips). Lookup by
// name takes a mutex, so hot paths resolve a metric once and keep the
// pointer; Counter::Add and Histogram::Record are then lock-free atomics,
// safe from pool workers. Metric objects live for the process — pointers
// never dangle and a registry is never "reset", consumers diff snapshots
// instead (MetricsSnapshot::DeltaSince), which is how bench_common scopes
// per-case histograms out of process-cumulative state.
//
// Histograms use log2 buckets: value v lands in bucket bit_width(v), i.e.
// bucket b covers [2^(b-1), 2^b). 65 buckets cover the full uint64 range in
// ~flat 520 bytes per histogram; percentile estimates take the upper edge
// of the bucket where the cumulative count crosses the rank, which is
// within 2x of the true value — plenty for latency distributions.
//
// Metric names follow prometheus conventions (htqo_<noun>_<unit/total>);
// the set used by the pipeline is part of the stable contract in
// DESIGN.md §6d. PrometheusText() emits the text exposition format;
// WritePrometheus() goes through the `metrics.export` fault site and
// returns a Status the caller degrades to a warning.

#ifndef HTQO_OBS_METRICS_H_
#define HTQO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace htqo {

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

class Histogram {
 public:
  // Bucket b counts values in [2^(b-1), 2^b); bucket 0 counts zeros.
  static constexpr int kNumBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  std::array<uint64_t, kNumBuckets> BucketCounts() const;

 private:
  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// Point-in-time copy of every metric, detached from the live registry.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};

    double Mean() const;
    // Upper edge of the bucket where the cumulative count reaches
    // `q * count` (q in [0,1]); 0 when empty.
    uint64_t Percentile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  // This snapshot minus `base` (counters/buckets that shrank clamp to 0;
  // metrics absent from `base` pass through whole). Scopes an interval of
  // activity out of process-cumulative metrics.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Name lookup, creating on first use. The returned pointer is stable for
  // the life of the registry — resolve once, record lock-free after.
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format: counters as `# TYPE ... counter`,
  // histograms as `_count`/`_sum` plus cumulative `_bucket{le="..."}` lines.
  std::string PrometheusText() const;
  // Writes PrometheusText() to `path` through the `metrics.export` fault
  // site. Failure is the exporter's, never the query's: callers warn.
  Status WritePrometheus(const std::string& path) const;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric objects
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The pipeline's metric names (stable contract, DESIGN.md §6d).
inline constexpr const char kMetricQueriesTotal[] = "htqo_queries_total";
inline constexpr const char kMetricPlanLatencyUs[] = "htqo_plan_latency_us";
inline constexpr const char kMetricExecLatencyUs[] = "htqo_exec_latency_us";
inline constexpr const char kMetricRowsPerQuery[] = "htqo_rows_per_query";
inline constexpr const char kMetricSearchNodesPerQuery[] =
    "htqo_search_nodes_per_query";
inline constexpr const char kMetricHashProbesPerQuery[] =
    "htqo_hash_probes_per_query";
inline constexpr const char kMetricSpillEventsTotal[] =
    "htqo_spill_events_total";
inline constexpr const char kMetricSpillBytesWrittenTotal[] =
    "htqo_spill_bytes_written_total";
inline constexpr const char kMetricGovernorTripsTotal[] =
    "htqo_governor_trips_total";
inline constexpr const char kMetricDegradationStepsTotal[] =
    "htqo_degradation_steps_total";
// Decomposition/plan cache (DESIGN.md §6e). hits/misses/stale classify every
// lookup; evictions count LRU victims under the byte budget; singleflight
// waits count callers that blocked on another thread's in-flight compute of
// the same fingerprint. The hit-latency histogram times the full warm path
// (canonicalize + lookup + rebind).
inline constexpr const char kMetricPlanCacheHitsTotal[] =
    "htqo_plan_cache_hits_total";
inline constexpr const char kMetricPlanCacheMissesTotal[] =
    "htqo_plan_cache_misses_total";
inline constexpr const char kMetricPlanCacheEvictionsTotal[] =
    "htqo_plan_cache_evictions_total";
inline constexpr const char kMetricPlanCacheStaleTotal[] =
    "htqo_plan_cache_stale_total";
inline constexpr const char kMetricPlanCacheSingleflightWaitsTotal[] =
    "htqo_plan_cache_singleflight_waits_total";
inline constexpr const char kMetricPlanCacheHitLatencyUs[] =
    "htqo_plan_cache_hit_latency_us";
// Bloom-guarded probes: per-query histogram of chain walks the blocked
// Bloom filter let the join/semijoin kernels skip (next to hash_probes).
inline constexpr const char kMetricBloomSkipsPerQuery[] =
    "htqo_bloom_skips_per_query";
// Columnar batches processed per query by the vectorized engine (DESIGN.md
// §6g); 0 under use_vectorized=false or for queries that never reach a
// batched operator.
inline constexpr const char kMetricExecBatchesPerQuery[] =
    "htqo_exec_batches_per_query";
// Query server & admission control (DESIGN.md §6f). The admission counters
// classify every QUERY frame exactly once: admitted (ran immediately),
// queued (waited, then ran), shed (rejected: queue full, enqueue fault, or
// drain), or queue-timeout (deadline expired — or provably would expire —
// in the queue). degraded counts admissions granted with shrunk budgets
// (ladder level >= 1). The queue-wait histogram records microseconds spent
// between arrival and admission for every query that eventually ran.
inline constexpr const char kMetricAdmissionAdmittedTotal[] =
    "htqo_admission_admitted_total";
inline constexpr const char kMetricAdmissionQueuedTotal[] =
    "htqo_admission_queued_total";
inline constexpr const char kMetricAdmissionShedTotal[] =
    "htqo_admission_shed_total";
inline constexpr const char kMetricAdmissionQueueTimeoutTotal[] =
    "htqo_admission_queue_timeout_total";
inline constexpr const char kMetricAdmissionDegradedTotal[] =
    "htqo_admission_degraded_total";
inline constexpr const char kMetricAdmissionQueueWaitUs[] =
    "htqo_admission_queue_wait_us";
// Server lifecycle: connections accepted, QUERY frames served end-to-end
// (latency histogram includes queue wait + plan + exec + render), protocol
// errors (malformed frames, oversized payloads, injected socket faults),
// and queries cancelled because the drain deadline expired around them.
inline constexpr const char kMetricServerConnectionsTotal[] =
    "htqo_server_connections_total";
inline constexpr const char kMetricServerQueriesTotal[] =
    "htqo_server_queries_total";
inline constexpr const char kMetricServerQueryLatencyUs[] =
    "htqo_server_query_latency_us";
inline constexpr const char kMetricServerProtocolErrorsTotal[] =
    "htqo_server_protocol_errors_total";
inline constexpr const char kMetricServerDrainCancelledTotal[] =
    "htqo_server_drain_cancelled_total";
// Adaptive re-optimization (DESIGN.md §6h). replans counts mid-query
// re-planning rungs taken; the estimate-error histogram records, per scanned
// atom the feedback loop reconciles, the factor by which the actual
// cardinality diverged from the estimate (max(actual,est)/min(actual,est),
// so 1.0 = perfect and both over- and under-estimates land on the same
// scale). feedback_refreshes counts relations whose statistics were rebuilt
// (each bumping that relation's stats epoch); feedback_skipped counts
// refreshes abandoned because the stats.feedback fault site fired.
inline constexpr const char kMetricReplansTotal[] = "htqo_replans_total";
inline constexpr const char kMetricEstimateErrorFactor[] =
    "htqo_estimate_error_factor";
inline constexpr const char kMetricFeedbackRefreshesTotal[] =
    "htqo_feedback_refreshes_total";
inline constexpr const char kMetricFeedbackSkippedTotal[] =
    "htqo_feedback_skipped_total";

}  // namespace htqo

#endif  // HTQO_OBS_METRICS_H_

// Process-wide metrics: named monotonic counters, gauges, and log-scale
// histograms.
//
// MetricsRegistry::Global() is the process singleton the pipeline records
// into (per-query latencies, rows, spill bytes, governor trips). Lookup by
// name takes a mutex, so hot paths resolve a metric once and keep the
// pointer; Counter::Add, Gauge::Set, and Histogram::Record are then
// lock-free atomics, safe from pool workers. Metric objects live for the
// process — pointers never dangle and a registry is never "reset",
// consumers diff snapshots instead (MetricsSnapshot::DeltaSince), which is
// how bench_common scopes per-case histograms out of process-cumulative
// state.
//
// Labeled families (DESIGN.md §6i): a metric name may carry a Prometheus
// label block — `htqo_tenant_queries_total{tenant="t0"}` — built with
// LabeledMetricName()/TenantMetricName(). Each labeled series is its own
// registry entry (own stable pointer, own lock-free hot path); the
// exposition groups series by family so `# TYPE` is emitted once per
// family and histogram buckets merge `le` into the label block. Label
// cardinality is the caller's contract: tenants are the only unbounded
// dimension and are bounded by admission's tenant set.
//
// Histograms use log2 buckets: value v lands in bucket bit_width(v), i.e.
// bucket b covers [2^(b-1), 2^b). 65 buckets cover the full uint64 range in
// ~flat 520 bytes per histogram; percentile estimates take the upper edge
// of the bucket where the cumulative count crosses the rank, which is
// within 2x of the true value — plenty for latency distributions.
//
// Metric names follow prometheus conventions (htqo_<noun>_<unit/total>);
// the set used by the pipeline is part of the stable contract in
// DESIGN.md §6d. PrometheusText() emits the text exposition format —
// including the synthetic `htqo_build_info` gauge (version/git sha/
// sanitizer labels) and process start-time/uptime gauges; WritePrometheus()
// goes through the `metrics.export` fault site and returns a Status the
// caller degrades to a warning.

#ifndef HTQO_OBS_METRICS_H_
#define HTQO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace htqo {

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

// Settable instantaneous value (burn rates, queue depths, build info).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // Bucket b counts values in [2^(b-1), 2^b); bucket 0 counts zeros.
  static constexpr int kNumBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  std::array<uint64_t, kNumBuckets> BucketCounts() const;

 private:
  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// Builds `family{k1="v1",k2="v2"}`; label values are escaped (\, ", \n).
// With no labels, returns the family name unchanged.
std::string LabeledMetricName(
    std::string_view family,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);
// The common single-label case: `family{tenant="<tenant>"}`.
std::string TenantMetricName(std::string_view family, std::string_view tenant);

// Point-in-time copy of every metric, detached from the live registry.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};

    double Mean() const;
    // Upper edge of the bucket where the cumulative count reaches
    // `q * count` (q in [0,1]); 0 when empty.
    uint64_t Percentile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  // This snapshot minus `base` (counters/buckets that shrank clamp to 0;
  // metrics absent from `base` pass through whole). Scopes an interval of
  // activity out of process-cumulative metrics. Gauges are instantaneous,
  // not cumulative: they copy through unchanged.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Name lookup, creating on first use. The returned pointer is stable for
  // the life of the registry — resolve once, record lock-free after.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format: counters as `# TYPE ... counter`,
  // gauges as `# TYPE ... gauge`, histograms as `_count`/`_sum` plus
  // cumulative `_bucket{le="..."}` lines. Series of one labeled family are
  // emitted contiguously under a single TYPE line. Appends the synthetic
  // build-info / start-time / uptime gauges (Build*String()).
  std::string PrometheusText() const;
  // Writes PrometheusText() to `path` through the `metrics.export` fault
  // site. Failure is the exporter's, never the query's: callers warn.
  Status WritePrometheus(const std::string& path) const;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric objects
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Build identity baked in by CMake (HTQO_VERSION / HTQO_GIT_SHA /
// HTQO_SANITIZE_TAG compile definitions; "unknown"/"none" fallbacks).
const char* BuildVersionString();
const char* BuildGitShaString();
const char* BuildSanitizerString();
// Unix seconds at process start (captured at static-init of the obs
// library) and seconds elapsed since.
double ProcessStartTimeSeconds();
double ProcessUptimeSeconds();

// The pipeline's metric names (stable contract, DESIGN.md §6d).
inline constexpr const char kMetricQueriesTotal[] = "htqo_queries_total";
inline constexpr const char kMetricPlanLatencyUs[] = "htqo_plan_latency_us";
inline constexpr const char kMetricExecLatencyUs[] = "htqo_exec_latency_us";
inline constexpr const char kMetricRowsPerQuery[] = "htqo_rows_per_query";
inline constexpr const char kMetricSearchNodesPerQuery[] =
    "htqo_search_nodes_per_query";
inline constexpr const char kMetricHashProbesPerQuery[] =
    "htqo_hash_probes_per_query";
inline constexpr const char kMetricSpillEventsTotal[] =
    "htqo_spill_events_total";
inline constexpr const char kMetricSpillBytesWrittenTotal[] =
    "htqo_spill_bytes_written_total";
inline constexpr const char kMetricGovernorTripsTotal[] =
    "htqo_governor_trips_total";
inline constexpr const char kMetricDegradationStepsTotal[] =
    "htqo_degradation_steps_total";
// Decomposition/plan cache (DESIGN.md §6e). hits/misses/stale classify every
// lookup; evictions count LRU victims under the byte budget; singleflight
// waits count callers that blocked on another thread's in-flight compute of
// the same fingerprint. The hit-latency histogram times the full warm path
// (canonicalize + lookup + rebind).
inline constexpr const char kMetricPlanCacheHitsTotal[] =
    "htqo_plan_cache_hits_total";
inline constexpr const char kMetricPlanCacheMissesTotal[] =
    "htqo_plan_cache_misses_total";
inline constexpr const char kMetricPlanCacheEvictionsTotal[] =
    "htqo_plan_cache_evictions_total";
inline constexpr const char kMetricPlanCacheStaleTotal[] =
    "htqo_plan_cache_stale_total";
inline constexpr const char kMetricPlanCacheSingleflightWaitsTotal[] =
    "htqo_plan_cache_singleflight_waits_total";
inline constexpr const char kMetricPlanCacheHitLatencyUs[] =
    "htqo_plan_cache_hit_latency_us";
// Bloom-guarded probes: per-query histogram of chain walks the blocked
// Bloom filter let the join/semijoin kernels skip (next to hash_probes).
inline constexpr const char kMetricBloomSkipsPerQuery[] =
    "htqo_bloom_skips_per_query";
// Columnar batches processed per query by the vectorized engine (DESIGN.md
// §6g); 0 under use_vectorized=false or for queries that never reach a
// batched operator.
inline constexpr const char kMetricExecBatchesPerQuery[] =
    "htqo_exec_batches_per_query";
// Query server & admission control (DESIGN.md §6f). The admission counters
// classify every QUERY frame exactly once: admitted (ran immediately),
// queued (waited, then ran), shed (rejected: queue full, enqueue fault, or
// drain), or queue-timeout (deadline expired — or provably would expire —
// in the queue). degraded counts admissions granted with shrunk budgets
// (ladder level >= 1). The queue-wait histogram records microseconds spent
// between arrival and admission for every query that eventually ran.
inline constexpr const char kMetricAdmissionAdmittedTotal[] =
    "htqo_admission_admitted_total";
inline constexpr const char kMetricAdmissionQueuedTotal[] =
    "htqo_admission_queued_total";
inline constexpr const char kMetricAdmissionShedTotal[] =
    "htqo_admission_shed_total";
inline constexpr const char kMetricAdmissionQueueTimeoutTotal[] =
    "htqo_admission_queue_timeout_total";
inline constexpr const char kMetricAdmissionDegradedTotal[] =
    "htqo_admission_degraded_total";
inline constexpr const char kMetricAdmissionQueueWaitUs[] =
    "htqo_admission_queue_wait_us";
// Server lifecycle: connections accepted, QUERY frames served end-to-end
// (latency histogram includes queue wait + plan + exec + render), protocol
// errors (malformed frames, oversized payloads, injected socket faults),
// and queries cancelled because the drain deadline expired around them.
inline constexpr const char kMetricServerConnectionsTotal[] =
    "htqo_server_connections_total";
inline constexpr const char kMetricServerQueriesTotal[] =
    "htqo_server_queries_total";
inline constexpr const char kMetricServerQueryLatencyUs[] =
    "htqo_server_query_latency_us";
inline constexpr const char kMetricServerProtocolErrorsTotal[] =
    "htqo_server_protocol_errors_total";
inline constexpr const char kMetricServerDrainCancelledTotal[] =
    "htqo_server_drain_cancelled_total";
// Adaptive re-optimization (DESIGN.md §6h). replans counts mid-query
// re-planning rungs taken; the estimate-error histogram records, per scanned
// atom the feedback loop reconciles, the factor by which the actual
// cardinality diverged from the estimate (max(actual,est)/min(actual,est),
// so 1.0 = perfect and both over- and under-estimates land on the same
// scale). feedback_refreshes counts relations whose statistics were rebuilt
// (each bumping that relation's stats epoch); feedback_skipped counts
// refreshes abandoned because the stats.feedback fault site fired.
inline constexpr const char kMetricReplansTotal[] = "htqo_replans_total";
inline constexpr const char kMetricEstimateErrorFactor[] =
    "htqo_estimate_error_factor";
inline constexpr const char kMetricFeedbackRefreshesTotal[] =
    "htqo_feedback_refreshes_total";
inline constexpr const char kMetricFeedbackSkippedTotal[] =
    "htqo_feedback_skipped_total";
// Per-tenant families (DESIGN.md §6i). Every family below is recorded as a
// labeled series `<family>{tenant="..."}` via TenantMetricName; the session
// resolves the pointers once per connection, so the per-query path stays
// lock-free. Queries/errors/latency classify every QUERY frame the session
// finished; the admission families mirror the global admission counters per
// tenant; spill/plan-cache/replan attribution comes from the QueryRun.
inline constexpr const char kMetricTenantQueriesTotal[] =
    "htqo_tenant_queries_total";
inline constexpr const char kMetricTenantErrorsTotal[] =
    "htqo_tenant_errors_total";
inline constexpr const char kMetricTenantQueryLatencyUs[] =
    "htqo_tenant_query_latency_us";
inline constexpr const char kMetricTenantAdmittedTotal[] =
    "htqo_tenant_admitted_total";
inline constexpr const char kMetricTenantQueuedTotal[] =
    "htqo_tenant_queued_total";
inline constexpr const char kMetricTenantShedTotal[] =
    "htqo_tenant_shed_total";
inline constexpr const char kMetricTenantQueueTimeoutTotal[] =
    "htqo_tenant_queue_timeout_total";
inline constexpr const char kMetricTenantDegradedTotal[] =
    "htqo_tenant_degraded_total";
inline constexpr const char kMetricTenantQueueWaitUs[] =
    "htqo_tenant_queue_wait_us";
inline constexpr const char kMetricTenantSpillBytesTotal[] =
    "htqo_tenant_spill_bytes_total";
inline constexpr const char kMetricTenantPlanCacheHitsTotal[] =
    "htqo_tenant_plan_cache_hits_total";
inline constexpr const char kMetricTenantPlanCacheMissesTotal[] =
    "htqo_tenant_plan_cache_misses_total";
inline constexpr const char kMetricTenantReplansTotal[] =
    "htqo_tenant_replans_total";
// Per-tenant SLOs: target/budget are configuration echoed as gauges so
// dashboards can draw the objective next to the observed burn rate
// (windowed violation rate / error budget; > 1.0 means the tenant is
// burning budget faster than allowed). violations counts every query over
// target p99 or ending in error.
inline constexpr const char kMetricTenantSloTargetP99Ms[] =
    "htqo_tenant_slo_target_p99_ms";
inline constexpr const char kMetricTenantSloErrorBudget[] =
    "htqo_tenant_slo_error_budget";
inline constexpr const char kMetricTenantSloBurnRate[] =
    "htqo_tenant_slo_burn_rate";
inline constexpr const char kMetricTenantSloViolationsTotal[] =
    "htqo_tenant_slo_violations_total";
// Observability plane self-accounting: spans rejected by tracer caps,
// per-query trace files exported (head-sampled or tail-captured), flight
// records written, and DEBUG verb / debug-endpoint requests served.
inline constexpr const char kMetricTraceDroppedSpansTotal[] =
    "htqo_trace_dropped_spans_total";
inline constexpr const char kMetricTracesExportedTotal[] =
    "htqo_traces_exported_total";
inline constexpr const char kMetricFlightRecordsTotal[] =
    "htqo_flight_records_total";
inline constexpr const char kMetricDebugRequestsTotal[] =
    "htqo_debug_requests_total";
// Sharded evaluation (DESIGN.md §6j). queries counts runs that executed
// with a shard runtime attached (num_shards >= 1); exchange bytes split
// what a process-split exchange would put on the wire (Bloom filters vs
// exact key sets) against the row-shipping baseline the same links would
// have broadcast; rows_pruned counts rows dropped by exchange probes.
inline constexpr const char kMetricShardedQueriesTotal[] =
    "htqo_sharded_queries_total";
inline constexpr const char kMetricShardFilterBytesTotal[] =
    "htqo_shard_filter_bytes_total";
inline constexpr const char kMetricShardKeyBytesTotal[] =
    "htqo_shard_key_bytes_total";
inline constexpr const char kMetricShardRowShipBytesTotal[] =
    "htqo_shard_row_ship_bytes_total";
inline constexpr const char kMetricShardRowsPrunedTotal[] =
    "htqo_shard_rows_pruned_total";
inline constexpr const char kMetricShardExchangesPerQuery[] =
    "htqo_shard_exchanges_per_query";
// Build identity / process lifetime (satellite of DESIGN.md §6i); the
// build-info gauge is synthesized in PrometheusText, always 1, with
// version/git_sha/sanitizer labels.
inline constexpr const char kMetricBuildInfo[] = "htqo_build_info";
inline constexpr const char kMetricProcessStartTimeSeconds[] =
    "htqo_process_start_time_seconds";
inline constexpr const char kMetricProcessUptimeSeconds[] =
    "htqo_process_uptime_seconds";

}  // namespace htqo

#endif  // HTQO_OBS_METRICS_H_

#include "obs/slo.h"

#include "obs/metrics.h"

namespace htqo {

SloTracker::SloTracker(SloPolicy default_policy)
    : default_policy_(default_policy) {}

SloTracker::TenantState& SloTracker::StateFor(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState state;
    state.policy = default_policy_;
    MetricsRegistry& reg = MetricsRegistry::Global();
    state.violations_total =
        reg.GetCounter(TenantMetricName(kMetricTenantSloViolationsTotal,
                                        tenant));
    state.burn_rate =
        reg.GetGauge(TenantMetricName(kMetricTenantSloBurnRate, tenant));
    state.target_gauge =
        reg.GetGauge(TenantMetricName(kMetricTenantSloTargetP99Ms, tenant));
    state.budget_gauge =
        reg.GetGauge(TenantMetricName(kMetricTenantSloErrorBudget, tenant));
    state.target_gauge->Set(state.policy.target_p99_ms);
    state.budget_gauge->Set(state.policy.error_budget);
    state.burn_rate->Set(0.0);
    it = tenants_.emplace(tenant, std::move(state)).first;
  }
  return it->second;
}

double SloTracker::BurnRate(const TenantState& s) {
  if (s.filled == 0 || s.policy.error_budget <= 0.0) return 0.0;
  const double rate = static_cast<double>(s.window_violations) /
                      static_cast<double>(s.filled);
  return rate / s.policy.error_budget;
}

void SloTracker::SetPolicy(const std::string& tenant, SloPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant);
  state.policy = policy;
  state.target_gauge->Set(policy.target_p99_ms);
  state.budget_gauge->Set(policy.error_budget);
  state.burn_rate->Set(BurnRate(state));
}

void SloTracker::Record(const std::string& tenant, double latency_ms,
                        bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant);
  const bool violation = !ok || latency_ms > state.policy.target_p99_ms;
  ++state.queries;
  if (violation) {
    ++state.violations;
    state.violations_total->Increment();
  }
  // Slide the window: retire the slot we are about to overwrite.
  if (state.filled == kWindow) {
    state.window_violations -= state.window[state.pos];
  } else {
    ++state.filled;
  }
  state.window[state.pos] = violation ? 1 : 0;
  state.window_violations += state.window[state.pos];
  state.pos = (state.pos + 1) % kWindow;
  state.burn_rate->Set(BurnRate(state));
}

std::vector<SloTracker::TenantSlo> SloTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantSlo> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_) {
    TenantSlo slo;
    slo.tenant = tenant;
    slo.policy = state.policy;
    slo.queries = state.queries;
    slo.violations = state.violations;
    slo.burn_rate = BurnRate(state);
    out.push_back(std::move(slo));
  }
  return out;
}

}  // namespace htqo

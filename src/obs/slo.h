// Per-tenant service-level objectives and burn-rate gauges.
//
// An SloPolicy is the operator's promise for one tenant: queries should
// finish under target_p99_ms, and at most error_budget (a fraction) of
// recent queries may miss that target or fail outright. The SloTracker
// turns per-query observations into Prometheus series (DESIGN.md §6i):
//
//   htqo_tenant_slo_target_p99_ms{tenant=...}    policy echo (gauge)
//   htqo_tenant_slo_error_budget{tenant=...}     policy echo (gauge)
//   htqo_tenant_slo_violations_total{tenant=...} every violating query
//   htqo_tenant_slo_burn_rate{tenant=...}        windowed violation rate
//                                                divided by the budget
//
// Burn rate reads like an SRE burn rate: 1.0 means the tenant is consuming
// its error budget exactly as fast as allowed; above 1.0 the budget is
// burning down; 0 means no recent violations. The window is a fixed ring
// of the last kWindow observations per tenant, so the gauge reacts in
// O(window) queries and needs no clocks.
//
// Record() takes one short mutex; the per-tenant metric handles are
// resolved once on first sight of the tenant.

#ifndef HTQO_OBS_SLO_H_
#define HTQO_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace htqo {

class Counter;
class Gauge;

struct SloPolicy {
  double target_p99_ms = 250.0;
  double error_budget = 0.01;  // allowed fraction of violating queries
};

class SloTracker {
 public:
  // Observations per tenant contributing to the burn-rate window.
  static constexpr std::size_t kWindow = 256;

  explicit SloTracker(SloPolicy default_policy = SloPolicy{});

  // Overrides the policy for one tenant (before or after first Record).
  void SetPolicy(const std::string& tenant, SloPolicy policy);

  // One finished query: ok=false or latency over target counts as a
  // violation. Creates the tenant state (and its metric series) on first
  // sight.
  void Record(const std::string& tenant, double latency_ms, bool ok);

  struct TenantSlo {
    std::string tenant;
    SloPolicy policy;
    uint64_t queries = 0;
    uint64_t violations = 0;
    double burn_rate = 0.0;
  };
  std::vector<TenantSlo> Snapshot() const;

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

 private:
  struct TenantState {
    SloPolicy policy;
    uint64_t queries = 0;
    uint64_t violations = 0;
    std::array<uint8_t, kWindow> window{};  // 1 = violation
    std::size_t pos = 0;
    std::size_t filled = 0;
    uint32_t window_violations = 0;
    Counter* violations_total = nullptr;
    Gauge* burn_rate = nullptr;
    Gauge* target_gauge = nullptr;
    Gauge* budget_gauge = nullptr;
  };

  TenantState& StateFor(const std::string& tenant);  // mu_ held
  static double BurnRate(const TenantState& s);

  mutable std::mutex mu_;
  SloPolicy default_policy_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace htqo

#endif  // HTQO_OBS_SLO_H_

// Recursive-descent parser for the SQL fragment described in sql/ast.h.

#ifndef HTQO_SQL_PARSER_H_
#define HTQO_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace htqo {

// Parses one SELECT statement (optionally ';'-terminated).
//
// Supported grammar:
//   SELECT [DISTINCT] item, ...
//   FROM rel [alias], ...
//   [WHERE cond AND cond ...]       cond: expr (=|<>|<|<=|>|>=) expr
//                                         | expr BETWEEN expr AND expr
//   [GROUP BY colref, ...]
//   [ORDER BY name [ASC|DESC], ...]
// Expressions: + - * / with parentheses, integer/float/string literals,
// DATE 'YYYY-MM-DD' literals, INTERVAL 'n' YEAR|MONTH|DAY (folded into the
// adjacent date literal at parse time), aggregate calls sum/count/min/max/avg
// (count(*) allowed), and [table.]column references.
Result<SelectStatement> ParseSelect(std::string_view sql);

}  // namespace htqo

#endif  // HTQO_SQL_PARSER_H_

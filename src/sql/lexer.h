// SQL tokenizer.
//
// Produces identifiers (keywords are classified by the parser), integer and
// floating-point numbers, single-quoted strings, and punctuation/operator
// symbols. Comments ("--" to end of line) and whitespace are skipped.

#ifndef HTQO_SQL_LEXER_H_
#define HTQO_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace htqo {

enum class TokenType {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // one of ( ) , . * + - / = < > <= >= <> ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw text; for strings, the unquoted content
  std::size_t offset = 0;  // byte offset in the input, for error messages

  bool Is(TokenType t) const { return type == t; }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
  // Case-insensitive keyword check against an identifier token.
  bool IsKeyword(std::string_view kw) const;
};

// Tokenizes `sql` into a vector ending in a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace htqo

#endif  // HTQO_SQL_LEXER_H_

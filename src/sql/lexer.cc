#include "sql/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace htqo {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();

  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident_char = [&](char c) {
    return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = std::string(sql.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            content += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        content += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(content);
    } else {
      tok.type = TokenType::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = std::string(sql.substr(i, 2));
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          tok.text = (two == "!=") ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(tok));
          continue;
        }
      }
      static constexpr std::string_view kSingles = "(),.*+-/=<>;";
      if (kSingles.find(c) == std::string_view::npos) {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
      }
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace htqo

#include "sql/parser.h"

#include <charconv>
#include <optional>

#include "sql/lexer.h"
#include "util/strings.h"

namespace htqo {
namespace {

// Applies "+/- n YEAR|MONTH|DAY" to a day count.
int64_t ApplyInterval(int64_t days, int64_t amount, const std::string& unit,
                      bool negate) {
  if (negate) amount = -amount;
  if (EqualsIgnoreCase(unit, "day") || EqualsIgnoreCase(unit, "days")) {
    return days + amount;
  }
  // Year/month arithmetic goes through the civil calendar.
  std::string ymd = FormatDate(days);
  int y = std::stoi(ymd.substr(0, 4));
  int m = std::stoi(ymd.substr(5, 2));
  int d = std::stoi(ymd.substr(8, 2));
  if (EqualsIgnoreCase(unit, "year") || EqualsIgnoreCase(unit, "years")) {
    y += static_cast<int>(amount);
  } else {  // month
    int total = y * 12 + (m - 1) + static_cast<int>(amount);
    y = total / 12;
    m = total % 12 + 1;
  }
  // Clamp the day-of-month (e.g. Jan 31 + 1 month -> Feb 28).
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  int dim = kDays[m - 1];
  bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  if (m == 2 && leap) dim = 29;
  if (d > dim) d = dim;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  int64_t out = 0;
  HTQO_CHECK(ParseDate(buf, &out));
  return out;
}

struct Interval {
  int64_t amount = 0;
  std::string unit;
};

// One parsed factor: either a real expression or a bare interval waiting to
// be folded into an adjacent date.
struct Factor {
  Expr expr;
  std::optional<Interval> interval;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    auto stmt = ParseSelectBody();
    if (!stmt.ok()) return stmt.status();
    ConsumeSymbol(";");
    if (!Peek().Is(TokenType::kEnd)) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  Result<SelectStatement> ParseSelectBody() {
    SelectStatement stmt;
    if (!ConsumeKeyword("select")) return Error("expected SELECT");
    if (ConsumeKeyword("distinct")) stmt.distinct = true;

    // Select list.
    while (true) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      stmt.items.push_back(std::move(item.value()));
      if (!ConsumeSymbol(",")) break;
    }

    if (!ConsumeKeyword("from")) return Error("expected FROM");
    while (true) {
      auto table = ParseTableRef();
      if (!table.ok()) return table.status();
      stmt.from.push_back(std::move(table.value()));
      if (!ConsumeSymbol(",")) break;
    }

    if (ConsumeKeyword("where")) {
      while (true) {
        Status s = ParseCondition(&stmt.where, &stmt.where_in);
        if (!s.ok()) return s;
        if (!ConsumeKeyword("and")) break;
      }
    }

    if (ConsumeKeyword("group")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after GROUP");
      while (true) {
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        stmt.group_by.push_back(std::move(col.value()));
        if (!ConsumeSymbol(",")) break;
      }
    }

    if (ConsumeKeyword("having")) {
      if (stmt.group_by.empty() && !stmt.HasAggregates()) {
        return Error("HAVING requires GROUP BY or aggregates");
      }
      while (true) {
        Status s = ParseCondition(&stmt.having, /*in_out=*/nullptr);
        if (!s.ok()) return s;
        if (!ConsumeKeyword("and")) break;
      }
    }

    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after ORDER");
      while (true) {
        if (!Peek().Is(TokenType::kIdentifier)) {
          return Error("expected name in ORDER BY");
        }
        OrderItem item;
        item.name = Next().text;
        if (ConsumeKeyword("desc")) {
          item.descending = true;
        } else {
          ConsumeKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }

    if (ConsumeKeyword("limit")) {
      if (!Peek().Is(TokenType::kInteger)) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = static_cast<std::size_t>(std::stoull(Next().text));
    }

    return stmt;
  }

  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Next();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        msg + " (at offset " + std::to_string(Peek().offset) + ")");
  }

  static bool IsReservedAfterTable(const Token& t) {
    for (const char* kw : {"where", "group", "order", "having", "limit",
                           "between", "on", "inner", "join", "select",
                           "and"}) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<SelectItem> ParseSelectItem() {
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    SelectItem item(std::move(expr.value()), "");
    if (ConsumeKeyword("as")) {
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Error("expected alias after AS");
      }
      item.alias = Next().text;
    } else if (Peek().Is(TokenType::kIdentifier) &&
               !IsReservedAfterTable(Peek()) && !Peek().IsKeyword("from")) {
      item.alias = Next().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    // Derived table: FROM (SELECT ...) alias.
    if (Peek().IsSymbol("(")) {
      Next();
      auto sub = ParseSelectBody();
      if (!sub.ok()) return sub.status();
      if (!ConsumeSymbol(")")) return Error("expected ')' after subquery");
      TableRef ref;
      ref.subquery =
          std::make_shared<const SelectStatement>(std::move(sub.value()));
      ConsumeKeyword("as");
      if (!Peek().Is(TokenType::kIdentifier) ||
          IsReservedAfterTable(Peek())) {
        return Error("derived table requires an alias");
      }
      ref.alias = Next().text;
      return ref;
    }
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error("expected relation name in FROM");
    }
    TableRef ref;
    ref.name = Next().text;
    ref.alias = ref.name;
    if (Peek().Is(TokenType::kIdentifier) && !IsReservedAfterTable(Peek())) {
      ref.alias = Next().text;
    }
    return ref;
  }

  Result<Expr> ParseColumnRef() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error("expected column reference");
    }
    std::string first = Next().text;
    if (ConsumeSymbol(".")) {
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Error("expected column name after '.'");
      }
      return Expr::MakeColumnRef(first, Next().text);
    }
    return Expr::MakeColumnRef("", first);
  }

  // Appends one or two comparisons (BETWEEN expands to two), or an IN
  // conjunct when `in_out` is non-null (IN is rejected where it is null,
  // e.g. in HAVING).
  Status ParseCondition(std::vector<Comparison>* out,
                        std::vector<InCondition>* in_out) {
    auto lhs = ParseExpr();
    if (!lhs.ok()) return lhs.status();
    bool negated = false;
    if (Peek().IsKeyword("not") && Peek(1).IsKeyword("in")) {
      negated = true;
      Next();  // NOT
    }
    if (Peek().IsKeyword("in")) {
      if (in_out == nullptr) {
        return Error("IN is not supported in this clause");
      }
      Next();
      if (!ConsumeSymbol("(")) return Error("expected '(' after IN");
      InCondition cond;
      cond.negated = negated;
      cond.lhs = std::move(lhs.value());
      if (Peek().IsKeyword("select")) {
        auto sub = ParseSelectBody();
        if (!sub.ok()) return sub.status();
        cond.subquery =
            std::make_shared<const SelectStatement>(std::move(sub.value()));
      } else {
        while (true) {
          auto item = ParseExpr();
          if (!item.ok()) return item.status();
          auto folded = [&]() -> std::optional<Value> {
            if (item->kind == ExprKind::kLiteral) return item->literal;
            return std::nullopt;
          }();
          if (!folded) {
            return Error("IN list elements must be literals");
          }
          cond.values.push_back(*folded);
          if (!ConsumeSymbol(",")) break;
        }
        if (cond.values.empty()) return Error("empty IN list");
      }
      if (!ConsumeSymbol(")")) return Error("expected ')' after IN list");
      in_out->push_back(std::move(cond));
      return Status::Ok();
    }
    if (ConsumeKeyword("between")) {
      auto lo = ParseExpr();
      if (!lo.ok()) return lo.status();
      if (!ConsumeKeyword("and")) return Error("expected AND in BETWEEN");
      auto hi = ParseExpr();
      if (!hi.ok()) return hi.status();
      out->emplace_back(lhs.value().Clone(), CompareOp::kGe,
                        std::move(lo.value()));
      out->emplace_back(std::move(lhs.value()), CompareOp::kLe,
                        std::move(hi.value()));
      return Status::Ok();
    }
    CompareOp op;
    if (ConsumeSymbol("=")) {
      op = CompareOp::kEq;
    } else if (ConsumeSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (ConsumeSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (ConsumeSymbol("<")) {
      op = CompareOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected comparison operator");
    }
    auto rhs = ParseExpr();
    if (!rhs.ok()) return rhs.status();
    out->emplace_back(std::move(lhs.value()), op, std::move(rhs.value()));
    return Status::Ok();
  }

  Result<Expr> ParseExpr() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    Expr acc = std::move(lhs.value());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      char op = Next().text[0];
      auto rhs = ParseTermOrInterval();
      if (!rhs.ok()) return rhs.status();
      Factor f = std::move(rhs.value());
      if (f.interval) {
        // Fold "date '...' +/- interval" into a date literal.
        if (acc.kind != ExprKind::kLiteral ||
            acc.literal.type() != ValueType::kDate) {
          return Error("interval arithmetic requires a date literal operand");
        }
        int64_t days = ApplyInterval(acc.literal.AsInt64(), f.interval->amount,
                                     f.interval->unit, op == '-');
        acc = Expr::MakeLiteral(Value::Date(days));
      } else {
        acc = Expr::MakeBinary(op, std::move(acc), std::move(f.expr));
      }
    }
    return acc;
  }

  Result<Expr> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs.status();
    if (lhs.value().interval) {
      return Error("interval literal outside date arithmetic");
    }
    Expr acc = std::move(lhs.value().expr);
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      char op = Next().text[0];
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs.status();
      if (rhs.value().interval) {
        return Error("interval literal outside date arithmetic");
      }
      acc = Expr::MakeBinary(op, std::move(acc), std::move(rhs.value().expr));
    }
    return acc;
  }

  Result<Factor> ParseTermOrInterval() {
    auto f = ParseFactor();
    if (!f.ok()) return f.status();
    if (f.value().interval) return f;
    // Continue multiplicative parsing for the non-interval case.
    Expr acc = std::move(f.value().expr);
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      char op = Next().text[0];
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs.status();
      if (rhs.value().interval) {
        return Error("interval literal outside date arithmetic");
      }
      acc = Expr::MakeBinary(op, std::move(acc), std::move(rhs.value().expr));
    }
    Factor out;
    out.expr = std::move(acc);
    return out;
  }

  Result<Factor> ParseFactor() {
    Factor out;
    const Token& t = Peek();
    if (t.IsSymbol("(")) {
      Next();
      if (Peek().IsKeyword("select")) {
        auto sub = ParseSelectBody();
        if (!sub.ok()) return sub.status();
        if (!ConsumeSymbol(")")) return Error("expected ')' after subquery");
        out.expr = Expr::MakeScalarSubquery(
            std::make_shared<const SelectStatement>(std::move(sub.value())));
        return out;
      }
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      out.expr = std::move(inner.value());
      return out;
    }
    if (t.Is(TokenType::kInteger)) {
      int64_t v = 0;
      std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
      Next();
      out.expr = Expr::MakeLiteral(Value::Int64(v));
      return out;
    }
    if (t.Is(TokenType::kFloat)) {
      double v = std::stod(t.text);
      Next();
      out.expr = Expr::MakeLiteral(Value::Double(v));
      return out;
    }
    if (t.Is(TokenType::kString)) {
      std::string s = Next().text;
      out.expr = Expr::MakeLiteral(Value::String(std::move(s)));
      return out;
    }
    if (t.IsKeyword("date")) {
      Next();
      if (!Peek().Is(TokenType::kString)) {
        return Error("expected string after DATE");
      }
      int64_t days = 0;
      std::string ymd = Next().text;
      if (!ParseDate(ymd, &days)) {
        return Error("bad date literal '" + ymd + "'");
      }
      out.expr = Expr::MakeLiteral(Value::Date(days));
      return out;
    }
    if (t.IsKeyword("interval")) {
      Next();
      if (!Peek().Is(TokenType::kString)) {
        return Error("expected string after INTERVAL");
      }
      Interval iv;
      std::string amount = Next().text;
      auto [p, ec] = std::from_chars(amount.data(),
                                     amount.data() + amount.size(), iv.amount);
      if (ec != std::errc() || p != amount.data() + amount.size()) {
        return Error("bad interval amount '" + amount + "'");
      }
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Error("expected interval unit");
      }
      iv.unit = Next().text;
      if (!EqualsIgnoreCase(iv.unit, "year") &&
          !EqualsIgnoreCase(iv.unit, "years") &&
          !EqualsIgnoreCase(iv.unit, "month") &&
          !EqualsIgnoreCase(iv.unit, "months") &&
          !EqualsIgnoreCase(iv.unit, "day") &&
          !EqualsIgnoreCase(iv.unit, "days")) {
        return Error("unsupported interval unit '" + iv.unit + "'");
      }
      out.interval = iv;
      return out;
    }
    if (t.Is(TokenType::kIdentifier)) {
      // Aggregate call?
      for (auto [name, func] :
           {std::pair{"sum", AggFunc::kSum}, {"count", AggFunc::kCount},
            {"min", AggFunc::kMin}, {"max", AggFunc::kMax},
            {"avg", AggFunc::kAvg}}) {
        if (t.IsKeyword(name) && Peek(1).IsSymbol("(")) {
          Next();  // function name
          Next();  // '('
          if (ConsumeSymbol("*")) {
            if (func != AggFunc::kCount) {
              return Error("'*' argument only allowed in COUNT");
            }
            if (!ConsumeSymbol(")")) return Error("expected ')'");
            out.expr = Expr::MakeAggregate(func, nullptr);
            return out;
          }
          auto arg = ParseExpr();
          if (!arg.ok()) return arg.status();
          if (!ConsumeSymbol(")")) return Error("expected ')'");
          out.expr = Expr::MakeAggregate(
              func, std::make_unique<Expr>(std::move(arg.value())));
          return out;
        }
      }
      auto col = ParseColumnRef();
      if (!col.ok()) return col.status();
      out.expr = std::move(col.value());
      return out;
    }
    return Error("unexpected token '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.Parse();
}

}  // namespace htqo

#include "sql/ast.h"

#include "util/strings.h"

namespace htqo {

std::string AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

Expr Expr::MakeColumnRef(std::string table, std::string column) {
  Expr e;
  e.kind = ExprKind::kColumnRef;
  e.table = std::move(table);
  e.column = std::move(column);
  return e;
}

Expr Expr::MakeLiteral(Value v) {
  Expr e;
  e.kind = ExprKind::kLiteral;
  e.literal = std::move(v);
  return e;
}

Expr Expr::MakeBinary(char op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind = ExprKind::kBinary;
  e.op = op;
  e.lhs = std::make_unique<Expr>(std::move(lhs));
  e.rhs = std::make_unique<Expr>(std::move(rhs));
  return e;
}

Expr Expr::MakeAggregate(AggFunc f, std::unique_ptr<Expr> arg) {
  Expr e;
  e.kind = ExprKind::kAggregate;
  e.agg = f;
  e.lhs = std::move(arg);
  return e;
}

Expr Expr::MakeScalarSubquery(
    std::shared_ptr<const SelectStatement> subquery) {
  Expr e;
  e.kind = ExprKind::kScalarSubquery;
  e.subquery = std::move(subquery);
  return e;
}

Expr Expr::Clone() const {
  Expr e;
  e.kind = kind;
  e.table = table;
  e.column = column;
  e.literal = literal;
  e.op = op;
  e.agg = agg;
  e.subquery = subquery;  // shared, immutable after parse
  if (lhs) e.lhs = std::make_unique<Expr>(lhs->Clone());
  if (rhs) e.rhs = std::make_unique<Expr>(rhs->Clone());
  return e;
}

bool Expr::ContainsScalarSubquery() const {
  if (kind == ExprKind::kScalarSubquery) return true;
  if (lhs && lhs->ContainsScalarSubquery()) return true;
  if (rhs && rhs->ContainsScalarSubquery()) return true;
  return false;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  if (lhs && lhs->ContainsAggregate()) return true;
  if (rhs && rhs->ContainsAggregate()) return true;
  return false;
}

void Expr::CollectColumnRefs(std::vector<const Expr*>* out) const {
  if (kind == ExprKind::kColumnRef) {
    out->push_back(this);
    return;
  }
  if (lhs) lhs->CollectColumnRefs(out);
  if (rhs) rhs->CollectColumnRefs(out);
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kLiteral:
      return literal.ToString(/*quoted=*/true);
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + std::string(1, op) + " " +
             rhs->ToString() + ")";
    case ExprKind::kAggregate:
      return AggFuncName(agg) + "(" + (lhs ? lhs->ToString() : "*") + ")";
    case ExprKind::kScalarSubquery:
      return "(" + subquery->ToString() + ")";
  }
  return "?";
}

std::string CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  int cmp = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CompareOpSymbol(op) + " " + rhs.ToString();
}

InCondition InCondition::Clone() const {
  InCondition out;
  out.lhs = lhs.Clone();
  out.negated = negated;
  out.values = values;
  out.subquery = subquery;  // shared, immutable after parse
  return out;
}

std::string InCondition::ToString() const {
  std::string out = lhs.ToString() + (negated ? " NOT IN (" : " IN (");
  if (subquery != nullptr) {
    out += subquery->ToString();
  } else {
    std::vector<std::string> parts;
    parts.reserve(values.size());
    for (const Value& v : values) parts.push_back(v.ToString(true));
    out += Join(parts, ", ");
  }
  return out + ")";
}

std::string TableRef::ToString() const {
  if (IsDerived()) {
    return "(" + subquery->ToString() + ") " + alias;
  }
  return EqualsIgnoreCase(name, alias) ? name : name + " " + alias;
}

std::string SelectItem::ToString() const {
  std::string out = expr.ToString();
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

SelectStatement SelectStatement::Clone() const {
  SelectStatement out;
  out.distinct = distinct;
  out.items.reserve(items.size());
  for (const auto& i : items) out.items.push_back(i.Clone());
  out.from = from;
  out.where.reserve(where.size());
  for (const auto& w : where) out.where.push_back(w.Clone());
  out.where_in.reserve(where_in.size());
  for (const auto& w : where_in) out.where_in.push_back(w.Clone());
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g.Clone());
  out.having.reserve(having.size());
  for (const auto& hv : having) out.having.push_back(hv.Clone());
  out.order_by = order_by;
  out.limit = limit;
  return out;
}

bool SelectStatement::HasDerivedTables() const {
  for (const TableRef& t : from) {
    if (t.IsDerived()) return true;
  }
  return false;
}

bool SelectStatement::HasInSubqueries() const {
  for (const InCondition& c : where_in) {
    if (c.subquery != nullptr) return true;
  }
  return false;
}

bool SelectStatement::HasAggregates() const {
  for (const auto& item : items) {
    if (item.expr.ContainsAggregate()) return true;
  }
  return false;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> parts;
  parts.reserve(items.size());
  for (const auto& i : items) parts.push_back(i.ToString());
  out += Join(parts, ", ");
  out += "\nFROM ";
  parts.clear();
  for (const auto& t : from) parts.push_back(t.ToString());
  out += Join(parts, ", ");
  if (!where.empty() || !where_in.empty()) {
    out += "\nWHERE ";
    parts.clear();
    for (const auto& w : where) parts.push_back(w.ToString());
    for (const auto& w : where_in) parts.push_back(w.ToString());
    out += Join(parts, "\n  AND ");
  }
  if (!group_by.empty()) {
    out += "\nGROUP BY ";
    parts.clear();
    for (const auto& g : group_by) parts.push_back(g.ToString());
    out += Join(parts, ", ");
  }
  if (!having.empty()) {
    out += "\nHAVING ";
    parts.clear();
    for (const auto& hv : having) parts.push_back(hv.ToString());
    out += Join(parts, "\n  AND ");
  }
  if (!order_by.empty()) {
    out += "\nORDER BY ";
    parts.clear();
    for (const auto& o : order_by) {
      parts.push_back(o.name + (o.descending ? " DESC" : ""));
    }
    out += Join(parts, ", ");
  }
  if (limit.has_value()) {
    out += "\nLIMIT " + std::to_string(*limit);
  }
  return out;
}

}  // namespace htqo

// Abstract syntax for the SQL fragment of the paper (Section 2):
// SELECT ... FROM ... WHERE <conjunction of comparisons> GROUP BY ... ORDER
// BY ..., with arithmetic expressions, aggregates, table aliases, qualified
// column names, date literals and interval arithmetic. No nesting, no OR —
// exactly the fragment the paper's Sql Analyzer handles.

#ifndef HTQO_SQL_AST_H_
#define HTQO_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace htqo {

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kAggregate,
  kScalarSubquery,  // (SELECT ...) used as a value; WHERE only, uncorrelated
};

enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

std::string AggFuncName(AggFunc f);

struct SelectStatement;

// A single tagged-union expression node. A tagged struct (rather than a
// class hierarchy) keeps cloning, printing and evaluation in one switch.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef: optional qualifier (table name or alias) + column name.
  std::string table;
  std::string column;

  // kLiteral.
  Value literal;

  // kBinary: op in {+, -, *, /}; operands in lhs/rhs.
  char op = 0;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kAggregate: func applied to lhs; COUNT(*) has lhs == nullptr.
  AggFunc agg = AggFunc::kCount;

  // kScalarSubquery: shared, immutable after parsing. Replaced by a literal
  // (HybridOptimizer::Run) before any evaluation.
  std::shared_ptr<const SelectStatement> subquery;

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  static Expr MakeColumnRef(std::string table, std::string column);
  static Expr MakeLiteral(Value v);
  static Expr MakeBinary(char op, Expr lhs, Expr rhs);
  static Expr MakeAggregate(AggFunc f, std::unique_ptr<Expr> arg);
  static Expr MakeScalarSubquery(
      std::shared_ptr<const SelectStatement> subquery);

  // True when some node in the tree is a scalar subquery.
  bool ContainsScalarSubquery() const;

  Expr Clone() const;

  bool IsAggregate() const { return kind == ExprKind::kAggregate; }
  // True when some node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  // Appends every column reference in the tree to `out`.
  void CollectColumnRefs(std::vector<const Expr*>* out) const;

  // SQL rendering.
  std::string ToString() const;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string CompareOpSymbol(CompareOp op);
// Evaluates `a <op> b` using Value::Compare.
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

// One conjunct of the WHERE clause: <expr> <op> <expr>.
struct Comparison {
  Expr lhs;
  CompareOp op = CompareOp::kEq;
  Expr rhs;

  Comparison() = default;
  Comparison(Expr l, CompareOp o, Expr r)
      : lhs(std::move(l)), op(o), rhs(std::move(r)) {}
  Comparison(const Comparison&) = delete;
  Comparison& operator=(const Comparison&) = delete;
  Comparison(Comparison&&) = default;
  Comparison& operator=(Comparison&&) = default;

  Comparison Clone() const {
    return Comparison(lhs.Clone(), op, rhs.Clone());
  }

  std::string ToString() const;
};

// WHERE <lhs> IN (<literal list>) or <lhs> IN (SELECT ...). Exactly one of
// `values` / `subquery` is populated. Uncorrelated subqueries only.
struct InCondition {
  Expr lhs;
  bool negated = false;  // NOT IN
  std::vector<Value> values;
  std::shared_ptr<const SelectStatement> subquery;

  InCondition() = default;
  InCondition(const InCondition&) = delete;
  InCondition& operator=(const InCondition&) = delete;
  InCondition(InCondition&&) = default;
  InCondition& operator=(InCondition&&) = default;

  InCondition Clone() const;
  std::string ToString() const;
};

struct TableRef {
  std::string name;   // base relation name (empty for a derived table)
  std::string alias;  // equals `name` when no alias was written

  // Derived table: FROM (SELECT ...) alias. Shared and treated as
  // immutable after parsing, so TableRef stays cheaply copyable.
  std::shared_ptr<const SelectStatement> subquery;

  bool IsDerived() const { return subquery != nullptr; }

  std::string ToString() const;
};

struct SelectItem {
  Expr expr;
  std::string alias;  // empty when none

  SelectItem() = default;
  SelectItem(Expr e, std::string a) : expr(std::move(e)), alias(std::move(a)) {}
  SelectItem(const SelectItem&) = delete;
  SelectItem& operator=(const SelectItem&) = delete;
  SelectItem(SelectItem&&) = default;
  SelectItem& operator=(SelectItem&&) = default;

  SelectItem Clone() const { return SelectItem(expr.Clone(), alias); }
  std::string ToString() const;
};

struct OrderItem {
  // Refers to a select-list alias or a column name.
  std::string name;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Comparison> where;   // implicit conjunction
  std::vector<InCondition> where_in;  // IN conjuncts (conjoined with where)
  std::vector<Expr> group_by;      // column refs only
  std::vector<Comparison> having;  // conjunction over aggregates/group cols
  std::vector<OrderItem> order_by;
  std::optional<std::size_t> limit;

  SelectStatement() = default;
  SelectStatement(const SelectStatement&) = delete;
  SelectStatement& operator=(const SelectStatement&) = delete;
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  SelectStatement Clone() const;

  bool HasAggregates() const;

  // True when some FROM entry is a derived table (nested SELECT).
  bool HasDerivedTables() const;

  // True when some IN conjunct carries a subquery.
  bool HasInSubqueries() const;

  // SQL text rendering; reparsing the result yields an equivalent statement.
  std::string ToString() const;
};

}  // namespace htqo

#endif  // HTQO_SQL_AST_H_

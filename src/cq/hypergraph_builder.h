// H(Q): the hypergraph of a conjunctive query (Section 2). One vertex per
// variable, one hyperedge per atom (edge index == atom index), names taken
// from the CQ so decompositions print readably.

#ifndef HTQO_CQ_HYPERGRAPH_BUILDER_H_
#define HTQO_CQ_HYPERGRAPH_BUILDER_H_

#include "cq/conjunctive_query.h"
#include "hypergraph/hypergraph.h"

namespace htqo {

Hypergraph BuildHypergraph(const ConjunctiveQuery& cq);

// out(Q) as a vertex bitset of H(Q).
Bitset OutputVarsBitset(const ConjunctiveQuery& cq);

}  // namespace htqo

#endif  // HTQO_CQ_HYPERGRAPH_BUILDER_H_

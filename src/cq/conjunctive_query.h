// Conjunctive-query model (Section 2 of the paper).
//
// A ConjunctiveQuery is the structural skeleton extracted from a SQL
// statement: atoms (one per FROM entry), variables (one per equivalence
// class of attributes joined by equality, plus one per attribute used in the
// SELECT/GROUP BY), the output variables out(Q), and per-atom selection
// predicates (comparisons against constants), which are applied at scan time
// and deliberately do not appear in the hypergraph — exactly as in the
// paper's Example 1, where region(RegionKey) drops the filtered r_name.

#ifndef HTQO_CQ_CONJUNCTIVE_QUERY_H_
#define HTQO_CQ_CONJUNCTIVE_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/value.h"

namespace htqo {

using VarId = std::size_t;

struct VarInfo {
  std::string name;    // unique within the query, derived from an attribute
  bool is_tid = false;  // synthetic tuple-id variable (bag-semantics device)
};

// One (column -> variable) binding inside an atom. A variable may bind
// several columns of the same atom (e.g. WHERE r.a = r.b).
struct AtomBinding {
  std::size_t column;  // column index in the base relation's schema
  VarId var;
};

// Selection predicate local to an atom: column <op> constant, or — when
// `in_values` is non-empty — a membership test column IN {values} (op and
// value are then unused). The column name is carried alongside the index so
// the SQL view rewriter can render the predicate without re-resolving
// schemas.
struct AtomFilter {
  std::size_t column;
  CompareOp op;
  Value value;
  std::string column_name;
  std::vector<Value> in_values;
  bool negated = false;  // NOT IN (membership filters only)

  // Does `v` satisfy this filter?
  bool Matches(const Value& v) const;
};

// Same-atom column/column comparison (non-equality ops allowed locally).
struct LocalComparison {
  std::size_t lcolumn;
  std::size_t rcolumn;
  CompareOp op;
  std::string lcolumn_name;
  std::string rcolumn_name;
};

struct Atom {
  std::string relation;  // base relation (catalog key, lowercase)
  std::string alias;     // unique within the query (lowercase)
  std::vector<AtomBinding> bindings;
  std::vector<AtomFilter> filters;
  std::vector<LocalComparison> local_comparisons;

  bool has_tid = false;  // true when a tuple-id variable was materialized
  VarId tid_var = 0;

  // Distinct variable ids bound by this atom, tid included, in first-binding
  // order (tid last).
  std::vector<VarId> Vars() const;
};

struct ConjunctiveQuery {
  std::vector<VarInfo> vars;
  std::vector<Atom> atoms;
  // out(Q): variables of attributes in the SELECT list (including aggregate
  // arguments) and GROUP BY, plus any tuple-id variables required to
  // preserve multiplicities. In first-appearance order, duplicates removed.
  std::vector<VarId> output_vars;

  // True when the WHERE clause contains a constant condition that folded to
  // false; the answer is empty regardless of the data.
  bool always_false = false;

  std::size_t NumVars() const { return vars.size(); }
  std::size_t NumAtoms() const { return atoms.size(); }

  // Datalog-style rendering, e.g.
  //   ans(CustKey,Name) <- customer(CustKey,NationKey), nation(Name,...).
  std::string ToString() const;
};

}  // namespace htqo

#endif  // HTQO_CQ_CONJUNCTIVE_QUERY_H_

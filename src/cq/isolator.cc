#include "cq/isolator.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/strings.h"

namespace htqo {

namespace {

// A resolved attribute: column `column` of the atom at index `atom`.
struct AttrRef {
  std::size_t atom;
  std::size_t column;

  bool operator<(const AttrRef& other) const {
    return atom != other.atom ? atom < other.atom : column < other.column;
  }
  bool operator==(const AttrRef& other) const {
    return atom == other.atom && column == other.column;
  }
};

// Union-find over attribute refs, keyed through a map.
class AttrUnionFind {
 public:
  std::size_t Id(const AttrRef& a) {
    auto it = index_.find(a);
    if (it != index_.end()) return it->second;
    std::size_t id = parent_.size();
    index_.emplace(a, id);
    parent_.push_back(id);
    attrs_.push_back(a);
    return id;
  }

  std::size_t Find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

  std::size_t size() const { return parent_.size(); }
  const AttrRef& attr(std::size_t i) const { return attrs_[i]; }

 private:
  std::map<AttrRef, std::size_t> index_;
  std::vector<std::size_t> parent_;
  std::vector<AttrRef> attrs_;
};

// Evaluates an expression containing no column references; nullopt when the
// expression does reference a column or uses an unsupported construct.
std::optional<Value> FoldConstant(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
    case ExprKind::kAggregate:
    case ExprKind::kScalarSubquery:
      return std::nullopt;
    case ExprKind::kBinary: {
      auto l = FoldConstant(*e.lhs);
      auto r = FoldConstant(*e.rhs);
      if (!l || !r) return std::nullopt;
      if (!l->IsNumeric() || !r->IsNumeric()) return std::nullopt;
      double a = l->AsDouble();
      double b = r->AsDouble();
      double out = 0;
      switch (e.op) {
        case '+':
          out = a + b;
          break;
        case '-':
          out = a - b;
          break;
        case '*':
          out = a * b;
          break;
        case '/':
          out = b == 0 ? 0 : a / b;
          break;
        default:
          return std::nullopt;
      }
      // Keep integers integral when both operands were.
      if (l->type() == ValueType::kInt64 && r->type() == ValueType::kInt64 &&
          e.op != '/') {
        return Value::Int64(static_cast<int64_t>(out));
      }
      return Value::Double(out);
    }
  }
  return std::nullopt;
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

}  // namespace

Result<VarId> ResolvedQuery::VarOf(const std::string& alias,
                                   const std::string& column) const {
  auto it = var_of.find({ToLower(alias), ToLower(column)});
  if (it == var_of.end()) {
    return Status::InvalidArgument("attribute " + alias + "." + column +
                                   " has no variable");
  }
  return it->second;
}

Result<VarId> ResolvedQuery::ResolveRef(const Expr& column_ref) const {
  HTQO_CHECK(column_ref.kind == ExprKind::kColumnRef);
  if (!column_ref.table.empty()) {
    return VarOf(column_ref.table, column_ref.column);
  }
  std::string column = ToLower(column_ref.column);
  std::optional<VarId> found;
  for (const auto& [key, var] : var_of) {
    if (key.second != column) continue;
    if (found && *found != var) {
      return Status::InvalidArgument("ambiguous column reference: " + column);
    }
    found = var;
  }
  if (!found) {
    return Status::InvalidArgument("column has no variable: " + column);
  }
  return *found;
}

Result<ResolvedQuery> IsolateConjunctiveQuery(const SelectStatement& stmt,
                                              const Catalog& catalog,
                                              const IsolatorOptions& options) {
  ResolvedQuery out;
  out.stmt = stmt.Clone();
  ConjunctiveQuery& cq = out.cq;

  if (stmt.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  for (const SelectItem& item : stmt.items) {
    if (item.expr.ContainsScalarSubquery()) {
      return Status::InvalidArgument(
          "scalar subqueries are supported in WHERE only");
    }
  }
  for (const Comparison& hv : stmt.having) {
    if (hv.lhs.ContainsScalarSubquery() || hv.rhs.ContainsScalarSubquery()) {
      return Status::InvalidArgument(
          "scalar subqueries are supported in WHERE only");
    }
  }
  for (const Comparison& cmp : stmt.where) {
    if (cmp.lhs.ContainsScalarSubquery() ||
        cmp.rhs.ContainsScalarSubquery()) {
      return Status::InvalidArgument(
          "scalar subqueries must be materialized before isolation "
          "(HybridOptimizer::Run does this automatically)");
    }
  }

  // -- Atoms, one per FROM entry. ------------------------------------------
  std::vector<const Relation*> base;  // schema source per atom
  std::map<std::string, std::size_t> alias_index;
  for (const TableRef& t : stmt.from) {
    if (t.IsDerived()) {
      return Status::InvalidArgument(
          "derived tables must be materialized before isolation "
          "(HybridOptimizer::Run does this automatically)");
    }
  }
  for (const TableRef& t : stmt.from) {
    std::string rel = ToLower(t.name);
    std::string alias = ToLower(t.alias);
    auto rel_ptr = catalog.Get(rel);
    if (!rel_ptr.ok()) return rel_ptr.status();
    if (alias_index.count(alias) > 0) {
      return Status::InvalidArgument("duplicate alias in FROM: " + alias);
    }
    alias_index[alias] = cq.atoms.size();
    Atom atom;
    atom.relation = rel;
    atom.alias = alias;
    cq.atoms.push_back(std::move(atom));
    base.push_back(rel_ptr.value());
  }

  // -- Attribute resolution. ------------------------------------------------
  auto resolve = [&](const Expr& col) -> Result<AttrRef> {
    HTQO_DCHECK(col.kind == ExprKind::kColumnRef);
    std::string column = ToLower(col.column);
    if (!col.table.empty()) {
      auto it = alias_index.find(ToLower(col.table));
      if (it == alias_index.end()) {
        return Status::InvalidArgument("unknown alias: " + col.table);
      }
      auto idx = base[it->second]->schema().IndexOf(column);
      if (!idx) {
        return Status::InvalidArgument("relation " +
                                       cq.atoms[it->second].relation +
                                       " has no column " + column);
      }
      return AttrRef{it->second, *idx};
    }
    std::optional<AttrRef> found;
    for (std::size_t a = 0; a < cq.atoms.size(); ++a) {
      auto idx = base[a]->schema().IndexOf(column);
      if (idx) {
        if (found) {
          return Status::InvalidArgument("ambiguous column: " + column);
        }
        found = AttrRef{a, *idx};
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown column: " + column);
    }
    return *found;
  };

  // -- WHERE conditions. -----------------------------------------------------
  AttrUnionFind uf;
  std::vector<std::pair<std::size_t, std::size_t>> equalities;  // uf ids
  for (const Comparison& cmp : stmt.where) {
    auto lconst = FoldConstant(cmp.lhs);
    auto rconst = FoldConstant(cmp.rhs);
    if (lconst && rconst) {
      if (!EvalCompare(cmp.op, *lconst, *rconst)) {
        cq.always_false = true;
      }
      continue;
    }
    const bool l_is_col = cmp.lhs.kind == ExprKind::kColumnRef;
    const bool r_is_col = cmp.rhs.kind == ExprKind::kColumnRef;
    auto column_name = [&](const AttrRef& a) {
      return ToLower(base[a.atom]->schema().column(a.column).name);
    };
    if (l_is_col && rconst) {
      auto attr = resolve(cmp.lhs);
      if (!attr.ok()) return attr.status();
      AtomFilter filter;
      filter.column = attr->column;
      filter.op = cmp.op;
      filter.value = *rconst;
      filter.column_name = column_name(*attr);
      cq.atoms[attr->atom].filters.push_back(std::move(filter));
      continue;
    }
    if (r_is_col && lconst) {
      auto attr = resolve(cmp.rhs);
      if (!attr.ok()) return attr.status();
      AtomFilter filter;
      filter.column = attr->column;
      filter.op = MirrorOp(cmp.op);
      filter.value = *lconst;
      filter.column_name = column_name(*attr);
      cq.atoms[attr->atom].filters.push_back(std::move(filter));
      continue;
    }
    if (l_is_col && r_is_col) {
      auto la = resolve(cmp.lhs);
      if (!la.ok()) return la.status();
      auto ra = resolve(cmp.rhs);
      if (!ra.ok()) return ra.status();
      if (cmp.op == CompareOp::kEq) {
        uf.Union(uf.Id(*la), uf.Id(*ra));
        continue;
      }
      if (la->atom == ra->atom) {
        cq.atoms[la->atom].local_comparisons.push_back(
            LocalComparison{la->column, ra->column, cmp.op, column_name(*la),
                            column_name(*ra)});
        continue;
      }
      return Status::InvalidArgument(
          "cross-relation non-equality comparison is outside the supported "
          "fragment: " + cmp.ToString());
    }
    return Status::InvalidArgument("unsupported WHERE condition: " +
                                   cmp.ToString());
  }

  // -- IN conjuncts. ----------------------------------------------------------
  for (const InCondition& cond : stmt.where_in) {
    if (cond.subquery != nullptr) {
      return Status::InvalidArgument(
          "IN (SELECT ...) must be rewritten before isolation "
          "(HybridOptimizer::Run does this automatically)");
    }
    if (cond.lhs.kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "IN requires a bare column on the left: " + cond.ToString());
    }
    auto attr = resolve(cond.lhs);
    if (!attr.ok()) return attr.status();
    AtomFilter filter;
    filter.column = attr->column;
    filter.op = CompareOp::kEq;
    filter.column_name =
        ToLower(base[attr->atom]->schema().column(attr->column).name);
    filter.in_values = cond.values;
    filter.negated = cond.negated;
    cq.atoms[attr->atom].filters.push_back(std::move(filter));
  }

  // -- Attributes needing variables: SELECT + GROUP BY references. ----------
  std::vector<AttrRef> needed;  // in appearance order
  auto need = [&](const Expr& col) -> Status {
    auto attr = resolve(col);
    if (!attr.ok()) return attr.status();
    uf.Id(*attr);  // ensure present in union-find
    needed.push_back(*attr);
    return Status::Ok();
  };
  std::vector<const Expr*> select_refs;
  for (const SelectItem& item : stmt.items) {
    item.expr.CollectColumnRefs(&select_refs);
  }
  for (const Comparison& hv : stmt.having) {
    hv.lhs.CollectColumnRefs(&select_refs);
    hv.rhs.CollectColumnRefs(&select_refs);
  }
  for (const Expr* col : select_refs) {
    Status s = need(*col);
    if (!s.ok()) return s;
  }
  for (const Expr& g : stmt.group_by) {
    if (g.kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument("GROUP BY supports column references only");
    }
    Status s = need(g);
    if (!s.ok()) return s;
  }

  // -- Variables: one per union-find class. ----------------------------------
  // Iterate classes in a deterministic order (smallest member attr).
  std::map<std::size_t, std::vector<std::size_t>> classes;  // root -> members
  for (std::size_t i = 0; i < uf.size(); ++i) {
    classes[uf.Find(i)].push_back(i);
  }
  std::set<std::string> used_names;
  std::map<std::size_t, VarId> var_of_root;
  // Order classes by their smallest attribute for stable output.
  std::vector<std::pair<AttrRef, std::size_t>> ordered_classes;
  for (const auto& [root, members] : classes) {
    AttrRef smallest = uf.attr(members[0]);
    for (std::size_t m : members) {
      smallest = std::min(smallest, uf.attr(m));
    }
    ordered_classes.emplace_back(smallest, root);
  }
  std::sort(ordered_classes.begin(), ordered_classes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [smallest, root] : ordered_classes) {
    VarId var = cq.vars.size();
    std::string base_name =
        base[smallest.atom]->schema().column(smallest.column).name;
    std::string name = base_name;
    int suffix = 2;
    while (used_names.count(name) > 0) {
      name = base_name + "_" + std::to_string(suffix++);
    }
    used_names.insert(name);
    cq.vars.push_back(VarInfo{name, /*is_tid=*/false});
    var_of_root[root] = var;
    for (std::size_t m : classes[root]) {
      const AttrRef& a = uf.attr(m);
      cq.atoms[a.atom].bindings.push_back(AtomBinding{a.column, var});
      out.var_of[{cq.atoms[a.atom].alias,
                  ToLower(base[a.atom]->schema().column(a.column).name)}] =
          var;
    }
  }

  // -- out(Q). ----------------------------------------------------------------
  auto add_output = [&](VarId v) {
    if (std::find(cq.output_vars.begin(), cq.output_vars.end(), v) ==
        cq.output_vars.end()) {
      cq.output_vars.push_back(v);
    }
  };
  for (const AttrRef& a : needed) {
    add_output(var_of_root.at(uf.Find(uf.Id(a))));
  }

  // -- Tuple-id variables. ----------------------------------------------------
  std::set<std::size_t> tid_atoms;
  if (options.tid_mode == TidMode::kAllAtoms) {
    for (std::size_t a = 0; a < cq.atoms.size(); ++a) tid_atoms.insert(a);
  } else if (options.tid_mode == TidMode::kAggregatesOnly) {
    // count(*) counts join rows, so it needs the multiplicities of every
    // atom; argument-bearing aggregates need their source atoms'.
    std::function<bool(const Expr&)> has_count_star = [&](const Expr& e) {
      if (e.kind == ExprKind::kAggregate && e.lhs == nullptr) return true;
      if (e.lhs && has_count_star(*e.lhs)) return true;
      if (e.rhs && has_count_star(*e.rhs)) return true;
      return false;
    };
    // Expressions whose aggregates need multiplicity: the select list and
    // the HAVING conjuncts.
    std::vector<const Expr*> agg_scopes;
    for (const SelectItem& item : stmt.items) agg_scopes.push_back(&item.expr);
    for (const Comparison& hv : stmt.having) {
      agg_scopes.push_back(&hv.lhs);
      agg_scopes.push_back(&hv.rhs);
    }
    bool all_atoms = false;
    for (const Expr* e : agg_scopes) {
      if (has_count_star(*e)) all_atoms = true;
    }
    if (all_atoms) {
      for (std::size_t a = 0; a < cq.atoms.size(); ++a) tid_atoms.insert(a);
    } else {
      for (const Expr* e : agg_scopes) {
        if (!e->ContainsAggregate()) continue;
        std::vector<const Expr*> refs;
        e->CollectColumnRefs(&refs);
        for (const Expr* col : refs) {
          auto attr = resolve(*col);
          if (!attr.ok()) return attr.status();
          tid_atoms.insert(attr->atom);
        }
      }
    }
  }
  for (std::size_t a : tid_atoms) {
    VarId var = cq.vars.size();
    std::string name = cq.atoms[a].alias + "$tid";
    cq.vars.push_back(VarInfo{name, /*is_tid=*/true});
    cq.atoms[a].has_tid = true;
    cq.atoms[a].tid_var = var;
    add_output(var);
  }

  // -- Validation. -------------------------------------------------------------
  for (const Atom& atom : cq.atoms) {
    if (atom.bindings.empty() && !atom.has_tid) {
      return Status::InvalidArgument(
          "relation " + atom.alias +
          " participates in no join and exports no attribute (pure "
          "cross-product factor); outside the supported fragment");
    }
  }
  if (stmt.HasAggregates() || !stmt.having.empty()) {
    // Every bare (non-aggregated) column reference in the SELECT list and
    // HAVING conjuncts must be grouped.
    std::set<VarId> grouped;
    for (const Expr& g : stmt.group_by) {
      auto attr = resolve(g);
      if (!attr.ok()) return attr.status();
      grouped.insert(var_of_root.at(uf.Find(uf.Id(*attr))));
    }
    // Collects column refs outside any aggregate subtree.
    std::function<void(const Expr&, std::vector<const Expr*>*)> bare_refs =
        [&](const Expr& e, std::vector<const Expr*>* out) {
          if (e.kind == ExprKind::kAggregate) return;  // skip agg arguments
          if (e.kind == ExprKind::kColumnRef) {
            out->push_back(&e);
            return;
          }
          if (e.lhs) bare_refs(*e.lhs, out);
          if (e.rhs) bare_refs(*e.rhs, out);
        };
    std::vector<const Expr*> refs;
    for (const SelectItem& item : stmt.items) bare_refs(item.expr, &refs);
    for (const Comparison& hv : stmt.having) {
      bare_refs(hv.lhs, &refs);
      bare_refs(hv.rhs, &refs);
    }
    for (const Expr* col : refs) {
      auto attr = resolve(*col);
      if (!attr.ok()) return attr.status();
      VarId v = var_of_root.at(uf.Find(uf.Id(*attr)));
      if (grouped.count(v) == 0) {
        return Status::InvalidArgument(
            "column " + col->column +
            " must appear in GROUP BY or inside an aggregate");
      }
    }
  }

  return out;
}

}  // namespace htqo

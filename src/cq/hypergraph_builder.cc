#include "cq/hypergraph_builder.h"

namespace htqo {

Hypergraph BuildHypergraph(const ConjunctiveQuery& cq) {
  std::vector<std::string> vertex_names;
  vertex_names.reserve(cq.vars.size());
  for (const VarInfo& v : cq.vars) vertex_names.push_back(v.name);
  std::vector<std::string> edge_names;
  edge_names.reserve(cq.atoms.size());
  for (const Atom& a : cq.atoms) edge_names.push_back(a.alias);
  Hypergraph h(cq.vars.size(), std::move(vertex_names),
               std::move(edge_names));
  for (const Atom& a : cq.atoms) {
    h.AddEdge(a.Vars());
  }
  return h;
}

Bitset OutputVarsBitset(const ConjunctiveQuery& cq) {
  Bitset out(cq.vars.size());
  for (VarId v : cq.output_vars) out.Set(v);
  return out;
}

}  // namespace htqo

#include "cq/conjunctive_query.h"

#include <algorithm>

#include "util/strings.h"

namespace htqo {

bool AtomFilter::Matches(const Value& v) const {
  if (!in_values.empty() || negated) {
    bool member = false;
    for (const Value& candidate : in_values) {
      if (v.Compare(candidate) == 0) {
        member = true;
        break;
      }
    }
    return member != negated;
  }
  return EvalCompare(op, v, value);
}

std::vector<VarId> Atom::Vars() const {
  std::vector<VarId> out;
  out.reserve(bindings.size() + 1);
  for (const AtomBinding& b : bindings) {
    if (std::find(out.begin(), out.end(), b.var) == out.end()) {
      out.push_back(b.var);
    }
  }
  if (has_tid) out.push_back(tid_var);
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> head;
  head.reserve(output_vars.size());
  for (VarId v : output_vars) head.push_back(vars[v].name);
  std::string out = "ans(" + Join(head, ",") + ") <- ";
  std::vector<std::string> body;
  body.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<std::string> args;
    for (VarId v : a.Vars()) args.push_back(vars[v].name);
    std::string atom_str = a.alias + "(" + Join(args, ",") + ")";
    if (a.alias != a.relation) atom_str += "[" + a.relation + "]";
    body.push_back(std::move(atom_str));
  }
  out += Join(body, ", ") + ".";
  return out;
}

}  // namespace htqo

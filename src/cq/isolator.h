// The Conjunctive Query Isolator (Fig. 5): SQL statement -> CQ(Q).
//
// Follows Section 2 of the paper: every set of attributes connected by
// equality conditions forms an equivalence class and yields one variable;
// attributes used in SELECT/GROUP BY but in no equality condition yield one
// variable each; comparisons against constants become atom-local filters and
// do not enter the hypergraph.
//
// Extension beyond the paper's Boolean fragment (its point (2)): tuple-id
// variables. SQL aggregates are bag-semantics, CQ evaluation is
// set-semantics. The isolator optionally appends the "fresh variable" of
// Section 2 (a synthetic tuple id) to atoms so that multiplicities survive:
// kAggregatesOnly adds it to atoms feeding aggregate arguments (the default),
// kAllAtoms to every atom (full SQL bag equivalence, used by tests), kNone
// reproduces the paper's pure set semantics.

#ifndef HTQO_CQ_ISOLATOR_H_
#define HTQO_CQ_ISOLATOR_H_

#include <map>
#include <string>
#include <utility>

#include "cq/conjunctive_query.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace htqo {

enum class TidMode {
  kNone,            // pure set semantics (paper default)
  kAggregatesOnly,  // preserve multiplicities of aggregate sources
  kAllAtoms,        // full bag semantics
};

struct IsolatorOptions {
  TidMode tid_mode = TidMode::kAggregatesOnly;
};

// The isolation result: the CQ plus the bridge back to SQL semantics.
struct ResolvedQuery {
  ConjunctiveQuery cq;
  SelectStatement stmt;  // the statement the CQ was isolated from

  // (alias, lowercase column name) -> variable, for every attribute that
  // received a variable. Used to evaluate SELECT expressions over the CQ
  // answer relation.
  std::map<std::pair<std::string, std::string>, VarId> var_of;

  // Variable bound to (alias, column); InvalidArgument when the attribute
  // has no variable (it was only filtered against constants).
  Result<VarId> VarOf(const std::string& alias,
                      const std::string& column) const;

  // Variable for a column-reference expression. Qualified references look up
  // (alias, column); unqualified ones match by column name across atoms and
  // must resolve to a single variable.
  Result<VarId> ResolveRef(const Expr& column_ref) const;
};

// Computes CQ(Q) for `stmt` against the schemas in `catalog`.
//
// Rejected inputs (with InvalidArgument): unknown relations/columns,
// ambiguous unqualified columns, cross-atom non-equality comparisons (theta
// joins — outside the paper's fragment), atoms left with no variables
// (pure cross-product factors), and aggregates mixed with bare non-grouped
// columns.
Result<ResolvedQuery> IsolateConjunctiveQuery(const SelectStatement& stmt,
                                              const Catalog& catalog,
                                              const IsolatorOptions& options =
                                                  IsolatorOptions());

}  // namespace htqo

#endif  // HTQO_CQ_ISOLATOR_H_

// Section 6.1's side claim: "gathering statistics is expensive (for 1GB,
// 800 seconds are needed) while building a structure-based query plan takes
// an average time of 1.5 seconds — not affected by the database size."
//
// Two families over the TPC-H scale factor:
//   GatherStatistics — full ANALYZE of the database (grows with size)
//   BuildQhdPlan     — cost-k-decomp + Optimize for Q5 (flat in size)
//
// Benchmark arg: scale factor in thousandths.

#include <benchmark/benchmark.h>

#include <map>

#include "api/hybrid_optimizer.h"
#include "cq/hypergraph_builder.h"
#include "decomp/qhd.h"
#include "stats/statistics.h"
#include "util/check.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace htqo {
namespace bench {
namespace {

Catalog& CatalogFor(int sf_thousandths) {
  static std::map<int, Catalog>* catalogs = new std::map<int, Catalog>();
  auto it = catalogs->find(sf_thousandths);
  if (it == catalogs->end()) {
    it = catalogs->emplace(std::piecewise_construct,
                           std::forward_as_tuple(sf_thousandths),
                           std::forward_as_tuple())
             .first;
    TpchConfig config;
    config.scale_factor = sf_thousandths / 1000.0;
    PopulateTpch(config, &it->second);
  }
  return it->second;
}

void GatherStatistics(benchmark::State& state) {
  Catalog& catalog = CatalogFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatisticsRegistry registry;
    registry.AnalyzeAll(catalog);
    benchmark::DoNotOptimize(registry);
  }
  state.counters["total_rows"] = static_cast<double>(catalog.TotalRows());
}

void BuildQhdPlan(benchmark::State& state) {
  Catalog& catalog = CatalogFor(static_cast<int>(state.range(0)));
  StatisticsRegistry registry;
  registry.AnalyzeAll(catalog);
  HybridOptimizer optimizer(&catalog, &registry);
  auto rq = optimizer.Resolve(TpchQ5());
  HTQO_CHECK(rq.ok());
  Hypergraph h = BuildHypergraph(rq->cq);
  Bitset out = OutputVarsBitset(rq->cq);
  Estimator estimator(&registry);
  std::size_t width = 0;
  for (auto _ : state) {
    StatsDecompositionCostModel model(h, BuildEdgeStats(rq->cq, estimator));
    auto qhd = QHypertreeDecomp(h, out, model, QhdOptions{4, true});
    HTQO_CHECK(qhd.ok());
    width = qhd->width;
    benchmark::DoNotOptimize(qhd);
  }
  state.counters["width"] = static_cast<double>(width);
  state.counters["total_rows"] = static_cast<double>(catalog.TotalRows());
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int sf : {2, 4, 6, 8, 10}) b->Arg(sf);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(GatherStatistics)->Apply(Sweep);
BENCHMARK(BuildQhdPlan)->Apply(Sweep);

}  // namespace
}  // namespace bench
}  // namespace htqo

BENCHMARK_MAIN();
